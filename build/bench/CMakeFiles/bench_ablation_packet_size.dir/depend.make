# Empty dependencies file for bench_ablation_packet_size.
# This may be replaced when dependencies are built.
