file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_comparison.dir/bench_fig7_comparison.cpp.o"
  "CMakeFiles/bench_fig7_comparison.dir/bench_fig7_comparison.cpp.o.d"
  "bench_fig7_comparison"
  "bench_fig7_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
