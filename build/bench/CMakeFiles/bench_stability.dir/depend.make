# Empty dependencies file for bench_stability.
# This may be replaced when dependencies are built.
