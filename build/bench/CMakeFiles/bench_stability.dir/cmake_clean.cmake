file(REMOVE_RECURSE
  "CMakeFiles/bench_stability.dir/bench_stability.cpp.o"
  "CMakeFiles/bench_stability.dir/bench_stability.cpp.o.d"
  "bench_stability"
  "bench_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
