file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cube.dir/bench_fig6_cube.cpp.o"
  "CMakeFiles/bench_fig6_cube.dir/bench_fig6_cube.cpp.o.d"
  "bench_fig6_cube"
  "bench_fig6_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
