file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_wire_delay.dir/bench_ext_wire_delay.cpp.o"
  "CMakeFiles/bench_ext_wire_delay.dir/bench_ext_wire_delay.cpp.o.d"
  "bench_ext_wire_delay"
  "bench_ext_wire_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_wire_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
