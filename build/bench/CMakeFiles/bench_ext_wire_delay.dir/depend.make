# Empty dependencies file for bench_ext_wire_delay.
# This may be replaced when dependencies are built.
