# Empty compiler generated dependencies file for bench_ablation_buffers.
# This may be replaced when dependencies are built.
