file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_buffers.dir/bench_ablation_buffers.cpp.o"
  "CMakeFiles/bench_ablation_buffers.dir/bench_ablation_buffers.cpp.o.d"
  "bench_ablation_buffers"
  "bench_ablation_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
