file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cost_model.dir/bench_table1_cost_model.cpp.o"
  "CMakeFiles/bench_table1_cost_model.dir/bench_table1_cost_model.cpp.o.d"
  "bench_table1_cost_model"
  "bench_table1_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
