# Empty dependencies file for bench_table1_cost_model.
# This may be replaced when dependencies are built.
