file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_props.dir/bench_topology_props.cpp.o"
  "CMakeFiles/bench_topology_props.dir/bench_topology_props.cpp.o.d"
  "bench_topology_props"
  "bench_topology_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
