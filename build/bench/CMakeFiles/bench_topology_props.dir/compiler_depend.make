# Empty compiler generated dependencies file for bench_topology_props.
# This may be replaced when dependencies are built.
