# Empty compiler generated dependencies file for bench_ablation_throttling.
# This may be replaced when dependencies are built.
