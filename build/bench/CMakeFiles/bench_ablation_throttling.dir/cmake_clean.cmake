file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_throttling.dir/bench_ablation_throttling.cpp.o"
  "CMakeFiles/bench_ablation_throttling.dir/bench_ablation_throttling.cpp.o.d"
  "bench_ablation_throttling"
  "bench_ablation_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
