# Empty dependencies file for bench_ext_valiant.
# This may be replaced when dependencies are built.
