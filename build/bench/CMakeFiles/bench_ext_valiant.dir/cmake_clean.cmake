file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_valiant.dir/bench_ext_valiant.cpp.o"
  "CMakeFiles/bench_ext_valiant.dir/bench_ext_valiant.cpp.o.d"
  "bench_ext_valiant"
  "bench_ext_valiant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_valiant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
