# Empty dependencies file for bench_fig5_fattree.
# This may be replaced when dependencies are built.
