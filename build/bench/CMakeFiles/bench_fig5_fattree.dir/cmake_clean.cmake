file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fattree.dir/bench_fig5_fattree.cpp.o"
  "CMakeFiles/bench_fig5_fattree.dir/bench_fig5_fattree.cpp.o.d"
  "bench_fig5_fattree"
  "bench_fig5_fattree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fattree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
