# Empty compiler generated dependencies file for bench_ext_equal_arity.
# This may be replaced when dependencies are built.
