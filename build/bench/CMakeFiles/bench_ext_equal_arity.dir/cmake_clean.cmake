file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_equal_arity.dir/bench_ext_equal_arity.cpp.o"
  "CMakeFiles/bench_ext_equal_arity.dir/bench_ext_equal_arity.cpp.o.d"
  "bench_ext_equal_arity"
  "bench_ext_equal_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_equal_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
