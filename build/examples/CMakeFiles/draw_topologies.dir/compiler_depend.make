# Empty compiler generated dependencies file for draw_topologies.
# This may be replaced when dependencies are built.
