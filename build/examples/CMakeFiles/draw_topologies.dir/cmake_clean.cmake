file(REMOVE_RECURSE
  "CMakeFiles/draw_topologies.dir/draw_topologies.cpp.o"
  "CMakeFiles/draw_topologies.dir/draw_topologies.cpp.o.d"
  "draw_topologies"
  "draw_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draw_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
