file(REMOVE_RECURSE
  "CMakeFiles/permutation_study.dir/permutation_study.cpp.o"
  "CMakeFiles/permutation_study.dir/permutation_study.cpp.o.d"
  "permutation_study"
  "permutation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permutation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
