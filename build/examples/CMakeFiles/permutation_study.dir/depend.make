# Empty dependencies file for permutation_study.
# This may be replaced when dependencies are built.
