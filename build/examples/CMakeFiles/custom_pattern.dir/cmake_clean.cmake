file(REMOVE_RECURSE
  "CMakeFiles/custom_pattern.dir/custom_pattern.cpp.o"
  "CMakeFiles/custom_pattern.dir/custom_pattern.cpp.o.d"
  "custom_pattern"
  "custom_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
