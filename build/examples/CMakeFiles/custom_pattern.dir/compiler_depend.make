# Empty compiler generated dependencies file for custom_pattern.
# This may be replaced when dependencies are built.
