file(REMOVE_RECURSE
  "libsmart_traffic.a"
)
