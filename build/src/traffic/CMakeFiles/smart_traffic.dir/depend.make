# Empty dependencies file for smart_traffic.
# This may be replaced when dependencies are built.
