file(REMOVE_RECURSE
  "CMakeFiles/smart_traffic.dir/injection.cpp.o"
  "CMakeFiles/smart_traffic.dir/injection.cpp.o.d"
  "CMakeFiles/smart_traffic.dir/pattern.cpp.o"
  "CMakeFiles/smart_traffic.dir/pattern.cpp.o.d"
  "libsmart_traffic.a"
  "libsmart_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
