file(REMOVE_RECURSE
  "CMakeFiles/smart_router.dir/nic.cpp.o"
  "CMakeFiles/smart_router.dir/nic.cpp.o.d"
  "libsmart_router.a"
  "libsmart_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
