file(REMOVE_RECURSE
  "libsmart_router.a"
)
