# Empty dependencies file for smart_router.
# This may be replaced when dependencies are built.
