file(REMOVE_RECURSE
  "libsmart_core.a"
)
