# Empty dependencies file for smart_core.
# This may be replaced when dependencies are built.
