file(REMOVE_RECURSE
  "CMakeFiles/smart_core.dir/config.cpp.o"
  "CMakeFiles/smart_core.dir/config.cpp.o.d"
  "CMakeFiles/smart_core.dir/experiment.cpp.o"
  "CMakeFiles/smart_core.dir/experiment.cpp.o.d"
  "CMakeFiles/smart_core.dir/network.cpp.o"
  "CMakeFiles/smart_core.dir/network.cpp.o.d"
  "libsmart_core.a"
  "libsmart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
