# Empty compiler generated dependencies file for smart_routing.
# This may be replaced when dependencies are built.
