
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/cube_dor.cpp" "src/routing/CMakeFiles/smart_routing.dir/cube_dor.cpp.o" "gcc" "src/routing/CMakeFiles/smart_routing.dir/cube_dor.cpp.o.d"
  "/root/repo/src/routing/cube_duato.cpp" "src/routing/CMakeFiles/smart_routing.dir/cube_duato.cpp.o" "gcc" "src/routing/CMakeFiles/smart_routing.dir/cube_duato.cpp.o.d"
  "/root/repo/src/routing/cube_valiant.cpp" "src/routing/CMakeFiles/smart_routing.dir/cube_valiant.cpp.o" "gcc" "src/routing/CMakeFiles/smart_routing.dir/cube_valiant.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/routing/CMakeFiles/smart_routing.dir/routing.cpp.o" "gcc" "src/routing/CMakeFiles/smart_routing.dir/routing.cpp.o.d"
  "/root/repo/src/routing/tree_adaptive.cpp" "src/routing/CMakeFiles/smart_routing.dir/tree_adaptive.cpp.o" "gcc" "src/routing/CMakeFiles/smart_routing.dir/tree_adaptive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/smart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smart_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/smart_router.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
