file(REMOVE_RECURSE
  "libsmart_routing.a"
)
