file(REMOVE_RECURSE
  "CMakeFiles/smart_routing.dir/cube_dor.cpp.o"
  "CMakeFiles/smart_routing.dir/cube_dor.cpp.o.d"
  "CMakeFiles/smart_routing.dir/cube_duato.cpp.o"
  "CMakeFiles/smart_routing.dir/cube_duato.cpp.o.d"
  "CMakeFiles/smart_routing.dir/cube_valiant.cpp.o"
  "CMakeFiles/smart_routing.dir/cube_valiant.cpp.o.d"
  "CMakeFiles/smart_routing.dir/routing.cpp.o"
  "CMakeFiles/smart_routing.dir/routing.cpp.o.d"
  "CMakeFiles/smart_routing.dir/tree_adaptive.cpp.o"
  "CMakeFiles/smart_routing.dir/tree_adaptive.cpp.o.d"
  "libsmart_routing.a"
  "libsmart_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
