file(REMOVE_RECURSE
  "CMakeFiles/smart_topology.dir/kary_ncube.cpp.o"
  "CMakeFiles/smart_topology.dir/kary_ncube.cpp.o.d"
  "CMakeFiles/smart_topology.dir/kary_ntree.cpp.o"
  "CMakeFiles/smart_topology.dir/kary_ntree.cpp.o.d"
  "CMakeFiles/smart_topology.dir/topology.cpp.o"
  "CMakeFiles/smart_topology.dir/topology.cpp.o.d"
  "libsmart_topology.a"
  "libsmart_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
