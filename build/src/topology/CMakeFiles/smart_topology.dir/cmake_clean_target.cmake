file(REMOVE_RECURSE
  "libsmart_topology.a"
)
