# Empty compiler generated dependencies file for smart_topology.
# This may be replaced when dependencies are built.
