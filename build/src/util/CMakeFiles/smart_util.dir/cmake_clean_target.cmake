file(REMOVE_RECURSE
  "libsmart_util.a"
)
