# Empty dependencies file for smart_util.
# This may be replaced when dependencies are built.
