file(REMOVE_RECURSE
  "CMakeFiles/smart_util.dir/bits.cpp.o"
  "CMakeFiles/smart_util.dir/bits.cpp.o.d"
  "CMakeFiles/smart_util.dir/rng.cpp.o"
  "CMakeFiles/smart_util.dir/rng.cpp.o.d"
  "CMakeFiles/smart_util.dir/stats.cpp.o"
  "CMakeFiles/smart_util.dir/stats.cpp.o.d"
  "CMakeFiles/smart_util.dir/table.cpp.o"
  "CMakeFiles/smart_util.dir/table.cpp.o.d"
  "CMakeFiles/smart_util.dir/thread_pool.cpp.o"
  "CMakeFiles/smart_util.dir/thread_pool.cpp.o.d"
  "libsmart_util.a"
  "libsmart_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
