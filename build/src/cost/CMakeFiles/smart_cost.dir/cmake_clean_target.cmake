file(REMOVE_RECURSE
  "libsmart_cost.a"
)
