
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/chien.cpp" "src/cost/CMakeFiles/smart_cost.dir/chien.cpp.o" "gcc" "src/cost/CMakeFiles/smart_cost.dir/chien.cpp.o.d"
  "/root/repo/src/cost/normalization.cpp" "src/cost/CMakeFiles/smart_cost.dir/normalization.cpp.o" "gcc" "src/cost/CMakeFiles/smart_cost.dir/normalization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/smart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smart_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
