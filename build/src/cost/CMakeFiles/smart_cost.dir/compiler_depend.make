# Empty compiler generated dependencies file for smart_cost.
# This may be replaced when dependencies are built.
