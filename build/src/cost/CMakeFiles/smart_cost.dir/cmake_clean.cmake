file(REMOVE_RECURSE
  "CMakeFiles/smart_cost.dir/chien.cpp.o"
  "CMakeFiles/smart_cost.dir/chien.cpp.o.d"
  "CMakeFiles/smart_cost.dir/normalization.cpp.o"
  "CMakeFiles/smart_cost.dir/normalization.cpp.o.d"
  "libsmart_cost.a"
  "libsmart_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
