file(REMOVE_RECURSE
  "CMakeFiles/smartsim_cli.dir/smartsim_cli.cpp.o"
  "CMakeFiles/smartsim_cli.dir/smartsim_cli.cpp.o.d"
  "smartsim_cli"
  "smartsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
