# Empty dependencies file for smartsim_cli.
# This may be replaced when dependencies are built.
