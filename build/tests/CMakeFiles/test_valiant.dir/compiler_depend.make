# Empty compiler generated dependencies file for test_valiant.
# This may be replaced when dependencies are built.
