file(REMOVE_RECURSE
  "CMakeFiles/test_valiant.dir/test_valiant.cpp.o"
  "CMakeFiles/test_valiant.dir/test_valiant.cpp.o.d"
  "test_valiant"
  "test_valiant.pdb"
  "test_valiant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_valiant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
