file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_timing.dir/test_pipeline_timing.cpp.o"
  "CMakeFiles/test_pipeline_timing.dir/test_pipeline_timing.cpp.o.d"
  "test_pipeline_timing"
  "test_pipeline_timing.pdb"
  "test_pipeline_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
