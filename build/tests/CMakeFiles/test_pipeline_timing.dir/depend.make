# Empty dependencies file for test_pipeline_timing.
# This may be replaced when dependencies are built.
