file(REMOVE_RECURSE
  "CMakeFiles/test_deadlock_watchdog.dir/test_deadlock_watchdog.cpp.o"
  "CMakeFiles/test_deadlock_watchdog.dir/test_deadlock_watchdog.cpp.o.d"
  "test_deadlock_watchdog"
  "test_deadlock_watchdog.pdb"
  "test_deadlock_watchdog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadlock_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
