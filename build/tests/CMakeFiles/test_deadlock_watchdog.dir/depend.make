# Empty dependencies file for test_deadlock_watchdog.
# This may be replaced when dependencies are built.
