# Empty dependencies file for test_property_network.
# This may be replaced when dependencies are built.
