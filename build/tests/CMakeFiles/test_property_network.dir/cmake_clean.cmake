file(REMOVE_RECURSE
  "CMakeFiles/test_property_network.dir/test_property_network.cpp.o"
  "CMakeFiles/test_property_network.dir/test_property_network.cpp.o.d"
  "test_property_network"
  "test_property_network.pdb"
  "test_property_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
