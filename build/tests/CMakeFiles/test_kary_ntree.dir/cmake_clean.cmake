file(REMOVE_RECURSE
  "CMakeFiles/test_kary_ntree.dir/test_kary_ntree.cpp.o"
  "CMakeFiles/test_kary_ntree.dir/test_kary_ntree.cpp.o.d"
  "test_kary_ntree"
  "test_kary_ntree.pdb"
  "test_kary_ntree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kary_ntree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
