# Empty compiler generated dependencies file for test_kary_ntree.
# This may be replaced when dependencies are built.
