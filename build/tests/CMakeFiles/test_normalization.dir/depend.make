# Empty dependencies file for test_normalization.
# This may be replaced when dependencies are built.
