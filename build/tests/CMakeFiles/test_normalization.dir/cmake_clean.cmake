file(REMOVE_RECURSE
  "CMakeFiles/test_normalization.dir/test_normalization.cpp.o"
  "CMakeFiles/test_normalization.dir/test_normalization.cpp.o.d"
  "test_normalization"
  "test_normalization.pdb"
  "test_normalization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
