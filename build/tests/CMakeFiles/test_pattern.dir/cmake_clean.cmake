file(REMOVE_RECURSE
  "CMakeFiles/test_pattern.dir/test_pattern.cpp.o"
  "CMakeFiles/test_pattern.dir/test_pattern.cpp.o.d"
  "test_pattern"
  "test_pattern.pdb"
  "test_pattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
