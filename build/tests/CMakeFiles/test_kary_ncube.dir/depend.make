# Empty dependencies file for test_kary_ncube.
# This may be replaced when dependencies are built.
