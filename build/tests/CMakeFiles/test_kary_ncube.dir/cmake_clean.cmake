file(REMOVE_RECURSE
  "CMakeFiles/test_kary_ncube.dir/test_kary_ncube.cpp.o"
  "CMakeFiles/test_kary_ncube.dir/test_kary_ncube.cpp.o.d"
  "test_kary_ncube"
  "test_kary_ncube.pdb"
  "test_kary_ncube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kary_ncube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
