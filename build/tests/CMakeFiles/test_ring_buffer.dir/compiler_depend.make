# Empty compiler generated dependencies file for test_ring_buffer.
# This may be replaced when dependencies are built.
