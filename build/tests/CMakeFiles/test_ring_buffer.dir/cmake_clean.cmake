file(REMOVE_RECURSE
  "CMakeFiles/test_ring_buffer.dir/test_ring_buffer.cpp.o"
  "CMakeFiles/test_ring_buffer.dir/test_ring_buffer.cpp.o.d"
  "test_ring_buffer"
  "test_ring_buffer.pdb"
  "test_ring_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
