
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_engine_edge.cpp" "tests/CMakeFiles/test_engine_edge.dir/test_engine_edge.cpp.o" "gcc" "tests/CMakeFiles/test_engine_edge.dir/test_engine_edge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/smart_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/smart_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/smart_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/smart_router.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/smart_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
