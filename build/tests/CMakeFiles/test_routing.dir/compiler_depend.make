# Empty compiler generated dependencies file for test_routing.
# This may be replaced when dependencies are built.
