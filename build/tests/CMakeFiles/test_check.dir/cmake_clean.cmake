file(REMOVE_RECURSE
  "CMakeFiles/test_check.dir/test_check.cpp.o"
  "CMakeFiles/test_check.dir/test_check.cpp.o.d"
  "test_check"
  "test_check.pdb"
  "test_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
