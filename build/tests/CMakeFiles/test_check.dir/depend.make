# Empty dependencies file for test_check.
# This may be replaced when dependencies are built.
