file(REMOVE_RECURSE
  "CMakeFiles/test_mesh.dir/test_mesh.cpp.o"
  "CMakeFiles/test_mesh.dir/test_mesh.cpp.o.d"
  "test_mesh"
  "test_mesh.pdb"
  "test_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
