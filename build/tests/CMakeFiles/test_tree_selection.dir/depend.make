# Empty dependencies file for test_tree_selection.
# This may be replaced when dependencies are built.
