file(REMOVE_RECURSE
  "CMakeFiles/test_tree_selection.dir/test_tree_selection.cpp.o"
  "CMakeFiles/test_tree_selection.dir/test_tree_selection.cpp.o.d"
  "test_tree_selection"
  "test_tree_selection.pdb"
  "test_tree_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
