file(REMOVE_RECURSE
  "CMakeFiles/test_router.dir/test_router.cpp.o"
  "CMakeFiles/test_router.dir/test_router.cpp.o.d"
  "test_router"
  "test_router.pdb"
  "test_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
