file(REMOVE_RECURSE
  "CMakeFiles/test_property_patterns.dir/test_property_patterns.cpp.o"
  "CMakeFiles/test_property_patterns.dir/test_property_patterns.cpp.o.d"
  "test_property_patterns"
  "test_property_patterns.pdb"
  "test_property_patterns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
