# Empty dependencies file for test_property_patterns.
# This may be replaced when dependencies are built.
