file(REMOVE_RECURSE
  "CMakeFiles/test_property_topology.dir/test_property_topology.cpp.o"
  "CMakeFiles/test_property_topology.dir/test_property_topology.cpp.o.d"
  "test_property_topology"
  "test_property_topology.pdb"
  "test_property_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
