# Empty compiler generated dependencies file for test_property_topology.
# This may be replaced when dependencies are built.
