// Cross-module integration and property tests: deadlock freedom under
// sustained overload, post-saturation stability, congestion-free patterns,
// and the experiment harness end to end.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/network.hpp"

namespace smart {
namespace {

SimConfig make_config(NetworkSpec net, PatternKind pattern, double load,
                      std::uint64_t warmup = 500,
                      std::uint64_t horizon = 4000) {
  SimConfig config;
  config.net = net;
  config.traffic.pattern = pattern;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = warmup;
  config.timing.horizon_cycles = horizon;
  return config;
}

NetworkSpec small_cube(RoutingKind routing) {
  NetworkSpec spec;
  spec.topology = std::string("cube");
  spec.k = 8;
  spec.n = 2;
  spec.routing = routing;
  spec.vcs = 4;
  return spec;
}

NetworkSpec small_tree(unsigned vcs) {
  NetworkSpec spec;
  spec.topology = std::string("tree");
  spec.k = 4;
  spec.n = 3;
  spec.routing = RoutingKind::kTreeAdaptive;
  spec.vcs = vcs;
  return spec;
}

struct OverloadCase {
  NetworkSpec net;
  PatternKind pattern;
};

class DeadlockFreedomTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Every (routing, pattern) combination must survive sustained overload
// (offered = 100 % of capacity) without deadlock and still make progress.
TEST_P(DeadlockFreedomTest, SurvivesSaturation) {
  const int net_index = std::get<0>(GetParam());
  const int pattern_index = std::get<1>(GetParam());
  const NetworkSpec nets[] = {
      small_cube(RoutingKind::kCubeDeterministic),
      small_cube(RoutingKind::kCubeDuato),
      small_tree(1),
      small_tree(2),
      small_tree(4),
  };
  const PatternKind patterns[] = {
      PatternKind::kUniform,
      PatternKind::kComplement,
      PatternKind::kBitReversal,
      PatternKind::kTranspose,
      PatternKind::kTornado,
  };
  auto config = make_config(nets[net_index], patterns[pattern_index], 1.0);
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 0U);
}

INSTANTIATE_TEST_SUITE_P(AllRoutingsAllPatterns, DeadlockFreedomTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 5)));

TEST(Integration, TreeComplementIsCongestionFree) {
  // Paper §8: complement generates no congestion in the descending phase;
  // the tree accepts ~95 % of capacity even with one virtual channel.
  auto config = make_config(small_tree(1), PatternKind::kComplement, 0.85,
                            1000, 8000);
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.accepted_fraction, 0.78);
}

TEST(Integration, TreeUniformSaturatesLowWithOneVc) {
  // Paper §8: wormhole fat-trees with a single VC do not achieve good
  // throughput under uniform traffic (saturation near ~36 %).
  auto config = make_config(small_tree(1), PatternKind::kUniform, 0.9,
                            1000, 8000);
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_LT(result.accepted_fraction, 0.65);
}

TEST(Integration, TreeVirtualChannelsImproveUniformThroughput) {
  double accepted[3];
  const unsigned vcs[] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    auto config = make_config(small_tree(vcs[i]), PatternKind::kUniform, 1.0,
                              1000, 8000);
    Network network(config);
    accepted[i] = network.run().accepted_fraction;
  }
  EXPECT_GT(accepted[1], accepted[0]);
  EXPECT_GT(accepted[2], accepted[1]);
}

TEST(Integration, CubeDuatoBeatsDeterministicOnTranspose) {
  // Paper §9: the adaptive algorithm more than doubles deterministic
  // throughput under transpose.
  auto det = make_config(small_cube(RoutingKind::kCubeDeterministic),
                         PatternKind::kTranspose, 0.9, 1000, 8000);
  auto ada = make_config(small_cube(RoutingKind::kCubeDuato),
                         PatternKind::kTranspose, 0.9, 1000, 8000);
  Network det_net(det);
  Network ada_net(ada);
  EXPECT_GT(ada_net.run().accepted_fraction,
            det_net.run().accepted_fraction);
}

TEST(Integration, PostSaturationThroughputIsStable) {
  // Paper §6/§8: with source throttling the accepted bandwidth stays stable
  // above saturation.
  double accepted_at[2];
  const double loads[] = {0.8, 1.0};
  for (int i = 0; i < 2; ++i) {
    auto config = make_config(small_cube(RoutingKind::kCubeDuato),
                              PatternKind::kUniform, loads[i], 1000, 8000);
    Network network(config);
    accepted_at[i] = network.run().accepted_fraction;
  }
  EXPECT_NEAR(accepted_at[0], accepted_at[1], 0.12);
}

TEST(Integration, SweepIsMonotoneBeforeSaturation) {
  auto base = make_config(small_cube(RoutingKind::kCubeDuato),
                          PatternKind::kUniform, 0.0, 500, 4000);
  const auto sweep = run_sweep(base, {0.1, 0.2, 0.3, 0.4}, 1);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].accepted_fraction, sweep[i - 1].accepted_fraction);
  }
}

TEST(Integration, SweepParallelMatchesSerial) {
  auto base = make_config(small_tree(2), PatternKind::kTranspose, 0.0,
                          500, 3000);
  const std::vector<double> loads{0.2, 0.5, 0.8};
  const auto serial = run_sweep(base, loads, 1);
  const auto parallel = run_sweep(base, loads, 3);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_EQ(serial[i].delivered_flits, parallel[i].delivered_flits);
    EXPECT_DOUBLE_EQ(serial[i].latency_cycles.mean(),
                     parallel[i].latency_cycles.mean());
  }
}

TEST(Integration, SaturationEstimateFindsKnee) {
  auto base = make_config(small_tree(1), PatternKind::kUniform, 0.0,
                          1000, 6000);
  const auto sweep =
      run_sweep(base, {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, 1);
  const auto est = estimate_saturation(sweep);
  EXPECT_TRUE(est.saturated);
  EXPECT_GT(est.offered_fraction, 0.2);
  EXPECT_LT(est.offered_fraction, 0.9);
}

TEST(Integration, SaturationEstimateUnsaturatedSweep) {
  auto base = make_config(small_tree(4), PatternKind::kComplement, 0.0,
                          500, 4000);
  const auto sweep = run_sweep(base, {0.1, 0.3, 0.5}, 1);
  const auto est = estimate_saturation(sweep);
  EXPECT_FALSE(est.saturated);
}

TEST(Integration, CurveAndTables) {
  auto base = make_config(small_cube(RoutingKind::kCubeDuato),
                          PatternKind::kUniform, 0.0, 500, 3000);
  const std::vector<double> loads{0.2, 0.6};
  std::vector<Curve> curves;
  curves.push_back(run_curve("Duato", base, loads, 1));
  base.net.routing = RoutingKind::kCubeDeterministic;
  curves.push_back(run_curve("deterministic", base, loads, 1));

  const Table accepted = cnf_accepted_table(curves);
  EXPECT_EQ(accepted.row_count(), loads.size());
  EXPECT_EQ(accepted.column_count(), 3U);

  const Table latency = cnf_latency_table(curves);
  EXPECT_EQ(latency.row_count(), loads.size());

  const Table absolute = absolute_table(curves);
  EXPECT_EQ(absolute.row_count(), loads.size() * curves.size());

  const Table summary = saturation_summary_table(curves);
  EXPECT_EQ(summary.row_count(), curves.size());
}

TEST(Integration, LoadGridCoversRange) {
  const auto grid = default_load_grid(1.0);
  EXPECT_GE(grid.size(), 6U);
  EXPECT_GT(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(Integration, PaperNetworksShortSmoke) {
  // Full 256-node instances, abbreviated horizon: both paper networks run
  // without deadlock and with sensible throughput at moderate load.
  {
    auto config = make_config(paper_cube_spec(RoutingKind::kCubeDuato),
                              PatternKind::kUniform, 0.4, 1000, 5000);
    Network network(config);
    const auto& result = network.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_NEAR(result.accepted_fraction, 0.4, 0.08);
  }
  {
    auto config = make_config(paper_tree_spec(4), PatternKind::kUniform, 0.4,
                              1000, 5000);
    Network network(config);
    const auto& result = network.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_NEAR(result.accepted_fraction, 0.4, 0.08);
  }
}

}  // namespace
}  // namespace smart
