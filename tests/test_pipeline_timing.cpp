// Golden-trace tests of the pipeline timing model.
//
// One packet in an otherwise empty network must advance exactly one stage
// per cycle (DESIGN.md §6): stream into the injection channel, terminal
// link, routing decision (T_routing), crossbar (T_crossbar), link (T_link),
// then one body flit per cycle behind the header. These tests pin the exact
// delivery cycles so that any accidental change to the stage ordering or
// the arrival-stamp rules shows up immediately.
#include <gtest/gtest.h>

#include "core/network.hpp"

namespace smart {
namespace {

std::uint64_t cycles_until_delivered_ret(Network& network,
                                         std::uint64_t flits) {
  std::uint64_t guard = 0;
  while (network.consumed_flits() < flits && guard < 10000) {
    network.step();
    ++guard;
  }
  return network.cycle();
}

TEST(PipelineTiming, CubeAdjacentNodesGoldenTrace) {
  // 16-flit packet (64 B / 4 B flits) from node 0 to its +x neighbor:
  //   cycle 1  header enters the injection channel   (latency clock starts)
  //   cycle 2  header crosses the processor->router link
  //   cycle 3  routing decision at switch 0
  //   cycle 4  crossbar at switch 0
  //   cycle 5  link to switch 1
  //   cycle 6  routing decision at switch 1 (ejection)
  //   cycle 7  crossbar at switch 1
  //   cycle 8  consumed by node 1; body flit i follows at cycle 8 + i
  SimConfig config;
  config.net = paper_cube_spec(RoutingKind::kCubeDeterministic);
  config.traffic.offered_fraction = 0.0;
  config.timing.warmup_cycles = 0;  // measure from the first cycle
  Network network(config);
  network.enqueue_packet(0, 1);

  // Header flit.
  const std::uint64_t header_cycle = cycles_until_delivered_ret(network, 1);
  EXPECT_EQ(header_cycle, 8U);
  // Tail flit: 15 more cycles of pipelined body flits.
  const std::uint64_t tail_cycle = cycles_until_delivered_ret(network, 16);
  EXPECT_EQ(tail_cycle, 23U);
}

TEST(PipelineTiming, CubeLatencyExcludesSourceQueueing) {
  SimConfig config;
  config.net = paper_cube_spec(RoutingKind::kCubeDeterministic);
  config.traffic.offered_fraction = 0.0;
  config.timing.warmup_cycles = 0;
  config.timing.horizon_cycles = 100;
  config.trace.collect_packet_log = true;
  Network network(config);
  network.enqueue_packet(0, 1);
  network.run();
  ASSERT_EQ(network.result().packet_log.size(), 1U);
  const PacketRecord& record = network.result().packet_log.front();
  EXPECT_EQ(record.inject_cycle, 1U);     // header entered the channel
  EXPECT_EQ(record.deliver_cycle, 23U);   // tail consumed
  EXPECT_EQ(record.network_latency(), 22U);
  EXPECT_EQ(record.hops, 3U);             // inject + 1 network link + eject
}

TEST(PipelineTiming, EachExtraCubeHopCostsThreeCycles) {
  // route + crossbar + link per intermediate switch.
  for (unsigned distance : {1U, 2U, 3U, 5U}) {
    SimConfig config;
    config.net = paper_cube_spec(RoutingKind::kCubeDeterministic);
    config.traffic.offered_fraction = 0.0;
    config.timing.warmup_cycles = 0;
    Network network(config);
    network.enqueue_packet(0, distance);  // +x direction, same row
    const std::uint64_t tail = cycles_until_delivered_ret(network, 16);
    EXPECT_EQ(tail, 23U + 3U * (distance - 1)) << "distance " << distance;
  }
}

TEST(PipelineTiming, TreeSameLeafGoldenTrace) {
  // 32-flit packet (2 B flits) between nodes on the same leaf switch:
  // inject(1) + nic link(2) + route(3) + xbar(4) + terminal link(5),
  // then 31 body flits: tail at cycle 36, latency 35, hops 2.
  SimConfig config;
  config.net = paper_tree_spec(1);
  config.traffic.offered_fraction = 0.0;
  config.timing.warmup_cycles = 0;
  config.timing.horizon_cycles = 200;
  config.trace.collect_packet_log = true;
  Network network(config);
  network.enqueue_packet(0, 1);
  network.run();
  ASSERT_EQ(network.result().packet_log.size(), 1U);
  const PacketRecord& record = network.result().packet_log.front();
  EXPECT_EQ(record.deliver_cycle, 36U);
  EXPECT_EQ(record.network_latency(), 35U);
  EXPECT_EQ(record.hops, 2U);
}

TEST(PipelineTiming, TreeDiameterPath) {
  // Distance 8 (through a root): 2 terminal links + 6 switch links, each
  // switch adding route+xbar+link = 3 cycles; the terminal-link hop at the
  // source adds 2 (stream + link) and each switch 3, consumption included
  // in the last link. Empirically locked: tail of a 32-flit worm.
  SimConfig config;
  config.net = paper_tree_spec(1);
  config.traffic.offered_fraction = 0.0;
  config.timing.warmup_cycles = 0;
  config.timing.horizon_cycles = 300;
  config.trace.collect_packet_log = true;
  Network network(config);
  network.enqueue_packet(0, 255);
  network.run();
  ASSERT_EQ(network.result().packet_log.size(), 1U);
  const PacketRecord& record = network.result().packet_log.front();
  EXPECT_EQ(record.hops, 8U);
  // Header: inject at 1, NIC link at 2, then 7 switches (4 up to the root,
  // 3 down) at 3 cycles each -> consumed at cycle 23; tail 31 flits later
  // at cycle 54; latency 54 - 1 = 53.
  EXPECT_EQ(record.network_latency(), 53U);
}

TEST(PipelineTiming, OneFlitPerLinkPerCycle) {
  // Two packets to the same destination from the same source serialize on
  // the shared links: 16 flit cycles plus one routing bubble — the second
  // header becomes the lane head during the crossbar phase (when the first
  // tail tears its path down), one phase AFTER this cycle's routing ran,
  // so it is routed in the next cycle.
  SimConfig config;
  config.net = paper_cube_spec(RoutingKind::kCubeDeterministic);
  config.traffic.offered_fraction = 0.0;
  config.timing.warmup_cycles = 0;
  config.timing.horizon_cycles = 200;
  config.trace.collect_packet_log = true;
  Network network(config);
  network.enqueue_packet(0, 1);
  network.enqueue_packet(0, 1);
  network.run();
  ASSERT_EQ(network.result().packet_log.size(), 2U);
  const auto& log = network.result().packet_log;
  EXPECT_EQ(log[1].deliver_cycle - log[0].deliver_cycle, 17U);
}

}  // namespace
}  // namespace smart
