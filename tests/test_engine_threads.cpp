// Thread-count determinism matrix (PR 5).
//
// The sharded parallel pipeline (src/engine/phase_parallel.cpp) promises
// bit-identical results for every value of SimConfig::engine_threads.
// This file pins that promise: every engine-equivalence scenario from
// test_engine_refactor.cpp plus two 256-node configs (large enough to
// actually shard — the parallel path needs > 64 switches) run at
// threads ∈ {1, 2, 4, 7} and must produce registries that match the
// serial run bit for bit. 7 is deliberately odd: 4-word index spaces
// split 7 ways produce uneven shards, catching any partition-dependent
// ordering. The time/ namespace (wall clock) is the only excluded slice;
// profile/ is excluded implicitly by not enabling the profiler here,
// because its shard/merge counters legitimately depend on the pipeline
// that ran (see register_profile_metrics).
#include <gtest/gtest.h>

#include <string_view>

#include "core/network.hpp"
#include "obs/registry.hpp"

namespace smart {
namespace {

constexpr unsigned kThreadMatrix[] = {2, 4, 7};

SimulationResult run_with_threads(SimConfig config, unsigned threads) {
  config.engine_threads = threads;
  Network network(config);
  return network.run();
}

MetricsRegistry registry_of(const SimulationResult& result) {
  MetricsRegistry registry;
  register_run_metrics(registry, result);
  return registry;
}

// Bit-identity, not tolerance: EXPECT_EQ on the double payloads demands
// the exact same bits the serial pipeline produced.
void expect_identical_registries(const MetricsRegistry& serial,
                                 const MetricsRegistry& threaded,
                                 unsigned threads) {
  ASSERT_EQ(serial.size(), threaded.size()) << "threads=" << threads;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const Metric& a = serial.metrics()[i];
    const Metric& b = threaded.metrics()[i];
    ASSERT_EQ(a.name, b.name) << "threads=" << threads;
    if (std::string_view(a.name).starts_with("time/")) continue;
    EXPECT_EQ(a.kind, b.kind) << a.name << " threads=" << threads;
    EXPECT_EQ(a.value, b.value) << a.name << " threads=" << threads;
    EXPECT_EQ(a.hist.count, b.hist.count) << a.name << " threads=" << threads;
    EXPECT_EQ(a.hist.p50, b.hist.p50) << a.name << " threads=" << threads;
    EXPECT_EQ(a.hist.p95, b.hist.p95) << a.name << " threads=" << threads;
    EXPECT_EQ(a.hist.p99, b.hist.p99) << a.name << " threads=" << threads;
  }
}

void expect_thread_invariant(const SimConfig& config) {
  const SimulationResult serial = run_with_threads(config, 1);
  const MetricsRegistry serial_registry = registry_of(serial);
  for (const unsigned threads : kThreadMatrix) {
    const SimulationResult threaded = run_with_threads(config, threads);
    // Spot-check the raw result first so a mismatch reads directly...
    EXPECT_EQ(serial.generated_packets, threaded.generated_packets)
        << "threads=" << threads;
    EXPECT_EQ(serial.delivered_packets, threaded.delivered_packets)
        << "threads=" << threads;
    EXPECT_EQ(serial.delivered_flits, threaded.delivered_flits)
        << "threads=" << threads;
    EXPECT_EQ(serial.accepted_fraction, threaded.accepted_fraction)
        << "threads=" << threads;
    EXPECT_EQ(serial.latency_cycles.mean(), threaded.latency_cycles.mean())
        << "threads=" << threads;
    EXPECT_EQ(serial.hops.mean(), threaded.hops.mean())
        << "threads=" << threads;
    EXPECT_EQ(serial.deadlocked, threaded.deadlocked)
        << "threads=" << threads;
    // ...then the registry sweep covers every exported number at once.
    expect_identical_registries(serial_registry, registry_of(threaded),
                                threads);
  }
}

// ---- 256-node configs: large enough for the sharded pipeline ----------
//
// 16-ary 2-cube: 256 switches = 4 ActiveSet words, so --threads 4 shards
// one word each and --threads 7 clamps to 4 shards; the 4-ary 4-tree has
// 256 NICs and 256 switches with a different attachment pattern (every
// NIC on a leaf switch), exercising the staged NIC→switch hand-off.

SimConfig cube256_config() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 16;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  return config;
}

SimConfig tree256_config() {
  SimConfig config;
  config.net.topology = std::string("tree");
  config.net.k = 4;
  config.net.n = 4;
  config.net.vcs = 2;
  config.net.routing = RoutingKind::kTreeAdaptive;
  config.traffic.pattern = PatternKind::kTranspose;
  config.traffic.offered_fraction = 0.4;
  config.traffic.seed = 21;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  return config;
}

TEST(EngineThreads, Cube256DuatoShardedMatrix) {
  expect_thread_invariant(cube256_config());
}

TEST(EngineThreads, Tree256AdaptiveShardedMatrix) {
  expect_thread_invariant(tree256_config());
}

// The profiler proves the parallel pipeline actually ran (the matrix
// above would pass vacuously if setup_parallel always fell back to
// serial). profile/ metrics are pipeline-dependent by design, so this
// lives outside the bit-identity sweep.
TEST(EngineThreads, Cube256ActuallyShards) {
  SimConfig config = cube256_config();
  config.prof.enabled = true;
  config.engine_threads = 4;
  Network network(config);
  const SimulationResult result = network.run();
  MetricsRegistry registry;
  register_run_metrics(registry, result);
  const Metric* shards = registry.find("profile/shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->value, 4.0);  // 256 switches = 4 words, one per shard
  const Metric* cycles = registry.find("profile/parallel_cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_GT(cycles->value, 0.0);
  const Metric* staged = registry.find("profile/merge_staged_flits");
  ASSERT_NE(staged, nullptr);
  EXPECT_GT(staged->value, 0.0);  // uniform traffic must cross shards
}

TEST(EngineThreads, SmallFabricFallsBackToSerial) {
  SimConfig config = cube256_config();
  config.net.k = 4;  // 16 switches: one ActiveSet word, nothing to shard
  config.prof.enabled = true;
  config.engine_threads = 4;
  Network network(config);
  const SimulationResult result = network.run();
  MetricsRegistry registry;
  register_run_metrics(registry, result);
  const Metric* shards = registry.find("profile/shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->value, 0.0);
  const Metric* cycles = registry.find("profile/parallel_cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->value, 0.0);
}

// ---- engine-equivalence scenarios from test_engine_refactor.cpp -------
//
// These fabrics are below the sharding threshold (16 switches) or force
// the serial fallback (faults, Valiant's shared RNG); the matrix pins
// that a thread *budget* never changes their results either — the
// fallback decision is part of the determinism contract.

TEST(EngineThreads, GoldenCubeDuatoUniformMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenTreeTransposeMatrix) {
  SimConfig config;
  config.net.topology = std::string("tree");
  config.net.k = 4;
  config.net.n = 2;
  config.net.vcs = 2;
  config.net.routing = RoutingKind::kTreeAdaptive;
  config.traffic.pattern = PatternKind::kTranspose;
  config.traffic.offered_fraction = 0.6;
  config.traffic.seed = 21;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenMeshDorTornadoMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.wraparound = false;
  config.net.routing = RoutingKind::kCubeDeterministic;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.35;
  config.traffic.seed = 3;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenFaultedCubeWithDrainMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.5;
  config.traffic.seed = 11;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  config.timing.drain_after_horizon = true;
  config.faults.add_link(0, 0, 500, 2500);
  config.faults.add_switch(5, 800, 2000);
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenBurstyInjectionMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.injection = InjectionKind::kBursty;
  config.traffic.burst_factor = 6.0;
  config.traffic.mean_burst_cycles = 120.0;
  config.traffic.offered_fraction = 0.4;
  config.traffic.seed = 17;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenValiantMultiChannelMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeValiant;
  config.net.injection_channels = 4;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.3;
  config.traffic.seed = 5;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

// Bursty arrivals on the sharded 256-node cube: the burst state machine
// advances inside the parallel gen region, so this catches any draw-order
// slip the Bernoulli fast path would hide.
TEST(EngineThreads, Cube256BurstyShardedMatrix) {
  SimConfig config = cube256_config();
  config.traffic.injection = InjectionKind::kBursty;
  config.traffic.burst_factor = 6.0;
  config.traffic.offered_fraction = 0.3;
  expect_thread_invariant(config);
}

}  // namespace
}  // namespace smart
