// Thread-count determinism matrix (PR 5; widened when the fallback list
// shrank to "small fabric or custom non-concurrent-safe routing").
//
// The sharded parallel pipeline (src/engine/phase_parallel.cpp) promises
// bit-identical results for every value of SimConfig::engine_threads.
// This file pins that promise: every engine-equivalence scenario from
// test_engine_refactor.cpp plus 256-node configs (large enough to
// actually shard — the parallel path needs > 64 switches) run at
// threads ∈ {1, 2, 4, 7} and must produce registries that match the
// serial run bit for bit. The 256-node matrices cover the scenarios
// that used to force the serial fallback — Valiant's randomized draws
// (now per-switch streams), fault plans with drain (staged drops) and
// trace capture (staged hop events, byte-identical JSON). 7 is
// deliberately odd: 4-word index spaces split 7 ways produce uneven
// shards, catching any partition-dependent ordering. The time/ namespace
// (wall clock) is the only excluded slice; profile/ is excluded
// implicitly by not enabling the profiler here, because its shard/merge
// counters legitimately depend on the pipeline that ran (see
// register_profile_metrics).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "core/network.hpp"
#include "obs/registry.hpp"
#include "routing/cube_dor.hpp"

namespace smart {
namespace {

constexpr unsigned kThreadMatrix[] = {2, 4, 7};

SimulationResult run_with_threads(SimConfig config, unsigned threads) {
  config.engine_threads = threads;
  Network network(config);
  return network.run();
}

MetricsRegistry registry_of(const SimulationResult& result) {
  MetricsRegistry registry;
  register_run_metrics(registry, result);
  return registry;
}

// Bit-identity, not tolerance: EXPECT_EQ on the double payloads demands
// the exact same bits the serial pipeline produced.
void expect_identical_registries(const MetricsRegistry& serial,
                                 const MetricsRegistry& threaded,
                                 unsigned threads) {
  ASSERT_EQ(serial.size(), threaded.size()) << "threads=" << threads;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const Metric& a = serial.metrics()[i];
    const Metric& b = threaded.metrics()[i];
    ASSERT_EQ(a.name, b.name) << "threads=" << threads;
    if (std::string_view(a.name).starts_with("time/")) continue;
    EXPECT_EQ(a.kind, b.kind) << a.name << " threads=" << threads;
    EXPECT_EQ(a.value, b.value) << a.name << " threads=" << threads;
    EXPECT_EQ(a.hist.count, b.hist.count) << a.name << " threads=" << threads;
    EXPECT_EQ(a.hist.p50, b.hist.p50) << a.name << " threads=" << threads;
    EXPECT_EQ(a.hist.p95, b.hist.p95) << a.name << " threads=" << threads;
    EXPECT_EQ(a.hist.p99, b.hist.p99) << a.name << " threads=" << threads;
  }
}

/// Runs `config` at 1/2/4/7 threads and demands bit-identical results.
/// `expect_sharded` additionally pins the non-vacuity of the matrix: the
/// threaded runs must actually take the sharded pipeline (a silent
/// fallback to serial would pass every bit-identity check by definition).
void expect_thread_invariant(const SimConfig& config,
                             bool expect_sharded = false) {
  const SimulationResult serial = run_with_threads(config, 1);
  EXPECT_FALSE(serial.engine_parallel);
  const MetricsRegistry serial_registry = registry_of(serial);
  for (const unsigned threads : kThreadMatrix) {
    const SimulationResult threaded = run_with_threads(config, threads);
    if (expect_sharded) {
      EXPECT_TRUE(threaded.engine_parallel)
          << "threads=" << threads
          << " fell back: " << threaded.engine_path_reason;
    }
    // Spot-check the raw result first so a mismatch reads directly...
    EXPECT_EQ(serial.generated_packets, threaded.generated_packets)
        << "threads=" << threads;
    EXPECT_EQ(serial.delivered_packets, threaded.delivered_packets)
        << "threads=" << threads;
    EXPECT_EQ(serial.delivered_flits, threaded.delivered_flits)
        << "threads=" << threads;
    EXPECT_EQ(serial.accepted_fraction, threaded.accepted_fraction)
        << "threads=" << threads;
    EXPECT_EQ(serial.latency_cycles.mean(), threaded.latency_cycles.mean())
        << "threads=" << threads;
    EXPECT_EQ(serial.hops.mean(), threaded.hops.mean())
        << "threads=" << threads;
    EXPECT_EQ(serial.deadlocked, threaded.deadlocked)
        << "threads=" << threads;
    // ...then the registry sweep covers every exported number at once.
    expect_identical_registries(serial_registry, registry_of(threaded),
                                threads);
  }
}

// ---- 256-node configs: large enough for the sharded pipeline ----------
//
// 16-ary 2-cube: 256 switches = 4 ActiveSet words, so --threads 4 shards
// one word each and --threads 7 clamps to 4 shards; the 4-ary 4-tree has
// 256 NICs and 256 switches with a different attachment pattern (every
// NIC on a leaf switch), exercising the staged NIC→switch hand-off.

SimConfig cube256_config() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 16;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  return config;
}

SimConfig tree256_config() {
  SimConfig config;
  config.net.topology = std::string("tree");
  config.net.k = 4;
  config.net.n = 4;
  config.net.vcs = 2;
  config.net.routing = RoutingKind::kTreeAdaptive;
  config.traffic.pattern = PatternKind::kTranspose;
  config.traffic.offered_fraction = 0.4;
  config.traffic.seed = 21;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  return config;
}

TEST(EngineThreads, Cube256DuatoShardedMatrix) {
  expect_thread_invariant(cube256_config(), /*expect_sharded=*/true);
}

TEST(EngineThreads, Tree256AdaptiveShardedMatrix) {
  expect_thread_invariant(tree256_config(), /*expect_sharded=*/true);
}

// The profiler proves the parallel pipeline actually ran (the matrix
// above would pass vacuously if setup_parallel always fell back to
// serial). profile/ metrics are pipeline-dependent by design, so this
// lives outside the bit-identity sweep.
TEST(EngineThreads, Cube256ActuallyShards) {
  SimConfig config = cube256_config();
  config.prof.enabled = true;
  config.engine_threads = 4;
  Network network(config);
  const SimulationResult result = network.run();
  MetricsRegistry registry;
  register_run_metrics(registry, result);
  const Metric* shards = registry.find("profile/shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->value, 4.0);  // 256 switches = 4 words, one per shard
  const Metric* cycles = registry.find("profile/parallel_cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_GT(cycles->value, 0.0);
  const Metric* staged = registry.find("profile/merge_staged_flits");
  ASSERT_NE(staged, nullptr);
  EXPECT_GT(staged->value, 0.0);  // uniform traffic must cross shards
}

TEST(EngineThreads, SmallFabricFallsBackToSerial) {
  SimConfig config = cube256_config();
  config.net.k = 4;  // 16 switches: one ActiveSet word, nothing to shard
  config.prof.enabled = true;
  config.engine_threads = 4;
  Network network(config);
  const SimulationResult result = network.run();
  MetricsRegistry registry;
  register_run_metrics(registry, result);
  const Metric* shards = registry.find("profile/shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->value, 0.0);
  const Metric* cycles = registry.find("profile/parallel_cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->value, 0.0);
}

// ---- engine-equivalence scenarios from test_engine_refactor.cpp -------
//
// These fabrics are all below the sharding threshold (16 switches), so
// every run here takes the serial pipeline regardless of the thread
// budget; the matrix pins that the budget never changes their results —
// the fallback decision is part of the determinism contract. (Faults,
// trace capture and Valiant no longer force a fallback on their own;
// the 256-node matrices below cover their sharded runs.)

TEST(EngineThreads, GoldenCubeDuatoUniformMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenTreeTransposeMatrix) {
  SimConfig config;
  config.net.topology = std::string("tree");
  config.net.k = 4;
  config.net.n = 2;
  config.net.vcs = 2;
  config.net.routing = RoutingKind::kTreeAdaptive;
  config.traffic.pattern = PatternKind::kTranspose;
  config.traffic.offered_fraction = 0.6;
  config.traffic.seed = 21;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenMeshDorTornadoMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.wraparound = false;
  config.net.routing = RoutingKind::kCubeDeterministic;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.35;
  config.traffic.seed = 3;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenFaultedCubeWithDrainMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.5;
  config.traffic.seed = 11;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  config.timing.drain_after_horizon = true;
  config.faults.add_link(0, 0, 500, 2500);
  config.faults.add_switch(5, 800, 2000);
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenBurstyInjectionMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.injection = InjectionKind::kBursty;
  config.traffic.burst_factor = 6.0;
  config.traffic.mean_burst_cycles = 120.0;
  config.traffic.offered_fraction = 0.4;
  config.traffic.seed = 17;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

TEST(EngineThreads, GoldenValiantMultiChannelMatrix) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeValiant;
  config.net.injection_channels = 4;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.3;
  config.traffic.seed = 5;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config);
}

// Bursty arrivals on the sharded 256-node cube: the burst state machine
// advances inside the parallel gen region, so this catches any draw-order
// slip the Bernoulli fast path would hide.
TEST(EngineThreads, Cube256BurstyShardedMatrix) {
  SimConfig config = cube256_config();
  config.traffic.injection = InjectionKind::kBursty;
  config.traffic.burst_factor = 6.0;
  config.traffic.offered_fraction = 0.3;
  expect_thread_invariant(config, /*expect_sharded=*/true);
}

// ---- formerly-serial scenarios, now sharded -----------------------------
//
// Fault plans, trace capture and randomized routing used to force the
// serial fallback; these matrices pin that their sharded runs are
// bit-identical to serial.

// Valiant's intermediate-node draws come from per-switch RNG streams, so
// the draw a switch makes no longer depends on the global route() call
// order — the property that lets it shard at all.
TEST(EngineThreads, Cube256ValiantShardedMatrix) {
  SimConfig config = cube256_config();
  config.net.routing = RoutingKind::kCubeValiant;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.3;
  expect_thread_invariant(config, /*expect_sharded=*/true);
}

// Transient link + switch faults across three shards, with unroutable
// drops and a post-horizon drain: the staged drop bookkeeping (pool
// releases, drop counters, fault-epoch accounting) must merge back into
// the serial pipeline's exact order.
TEST(EngineThreads, Cube256FaultedDrainShardedMatrix) {
  SimConfig config = cube256_config();
  config.traffic.offered_fraction = 0.5;
  config.timing.drain_after_horizon = true;
  config.faults.add_link(0, 0, 500, 2500);      // shard 0
  config.faults.add_switch(5, 800, 2000);       // shard 0
  config.faults.add_switch(200, 600, 3000);     // shard 3
  config.faults.add_link(137, 2, 1000, 3500);   // shard 2
  // Non-vacuity: the schedule must actually exercise the drop path, or
  // the matrix would pass without ever staging a drop.
  const SimulationResult serial = run_with_threads(config, 1);
  ASSERT_GT(serial.dropped_packets, 0U);
  ASSERT_GT(serial.unroutable_packets, 0U);
  expect_thread_invariant(config, /*expect_sharded=*/true);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Trace capture on the sharded pipeline: hop events are staged per shard
// in region B and replayed in ascending shard order at the merge, so the
// uid assignment sequence and both trace streams must match the serial
// run byte for byte — EXPECT_EQ on the whole JSON file. A fault plan
// rides along so the dropped-packet trace records (emitted at the merge
// via finish_drop) are covered too.
TEST(EngineThreads, Cube256TraceByteIdenticalMatrix) {
  SimConfig config = cube256_config();
  config.timing.drain_after_horizon = true;
  config.faults.add_link(0, 0, 500, 2500);
  config.faults.add_switch(200, 600, 3000);
  config.obs.enabled = true;
  config.obs.trace_hops = true;

  const std::string serial_path =
      ::testing::TempDir() + "threads_trace_serial.json";
  config.obs.trace_out = serial_path;
  const SimulationResult serial = run_with_threads(config, 1);
  ASSERT_TRUE(serial.obs.trace_written);
  ASSERT_GT(serial.dropped_packets, 0U);  // drop trace records covered
  const std::string serial_bytes = slurp(serial_path);
  ASSERT_FALSE(serial_bytes.empty());
  const MetricsRegistry serial_registry = registry_of(serial);

  for (const unsigned threads : kThreadMatrix) {
    const std::string path = ::testing::TempDir() + "threads_trace_" +
                             std::to_string(threads) + ".json";
    config.obs.trace_out = path;
    const SimulationResult threaded = run_with_threads(config, threads);
    EXPECT_TRUE(threaded.engine_parallel)
        << "threads=" << threads
        << " fell back: " << threaded.engine_path_reason;
    ASSERT_TRUE(threaded.obs.trace_written) << "threads=" << threads;
    EXPECT_EQ(serial_bytes, slurp(path)) << "threads=" << threads;
    expect_identical_registries(serial_registry, registry_of(threaded),
                                threads);
    std::remove(path.c_str());
  }
  std::remove(serial_path.c_str());
}

// The escape-adaptive core with the stall-history selection policy on a
// 256-switch torus: the EWMA refresh runs serially between cycles from
// shard-owned stall counters, so the sharded runs must stay bit-identical
// (the stall feed itself is covered by the obs counters in the registry —
// kStallEwma auto-enables them).
TEST(EngineThreads, Torus256EscapeStallShardedMatrix) {
  SimConfig config;
  config.net.topology = std::string("torus");
  config.net.topo_params = {{"nodes", "256"}};
  config.net.routing = RoutingKind::kEscapeAdaptive;
  config.net.selection = SelectionKind::kStallEwma;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  expect_thread_invariant(config, /*expect_sharded=*/true);
}

// Throttling feeds back into generation, so its hold sweep must also be
// pipeline-invariant: it runs serially at the top of the cycle in both.
TEST(EngineThreads, Torus256EscapeThrottledShardedMatrix) {
  SimConfig config;
  config.net.topology = std::string("torus");
  config.net.topo_params = {{"nodes", "256"}};
  config.net.routing = RoutingKind::kEscapeAdaptive;
  config.net.misroute = true;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.85;
  config.traffic.throttle = 0.25;
  config.traffic.seed = 13;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 3000;
  // Non-vacuity: the hold sweep must actually throttle at this load.
  const SimulationResult serial = run_with_threads(config, 1);
  ASSERT_GT(serial.nic_throttled_cycles, 0U);
  expect_thread_invariant(config, /*expect_sharded=*/true);
}

// A custom algorithm that keeps the default concurrent_safe() == false:
// delegates to DOR but, as far as the engine knows, may share state
// across switches. Forces the serial pipeline even on a shardable fabric.
class SerialOnlyRouting final : public RoutingAlgorithm {
 public:
  SerialOnlyRouting(const KaryNCube& cube, unsigned vcs) : dor_(cube, vcs) {}
  [[nodiscard]] std::string name() const override { return "serial-only"; }
  [[nodiscard]] std::optional<OutputChoice> route(
      Switch& sw, PortId in_port, unsigned in_lane, Packet& pkt,
      std::uint64_t cycle) override {
    return dor_.route(sw, in_port, in_lane, pkt, cycle);
  }
  [[nodiscard]] unsigned virtual_channels() const override {
    return dor_.virtual_channels();
  }

 private:
  CubeDorRouting dor_;
};

// Satellite: setup_parallel reports EVERY applicable fallback cause, not
// just the first — a small fabric with non-concurrent-safe custom
// routing must name both in engine_path_reason.
TEST(EngineThreads, MultipleFallbackReasonsReported) {
  SimConfig config = cube256_config();
  config.net.k = 4;  // 16 switches: below the serial-fabric threshold
  config.engine_threads = 4;
  config.custom_routing =
      [](const Topology& topo) -> std::unique_ptr<RoutingAlgorithm> {
    return std::make_unique<SerialOnlyRouting>(
        dynamic_cast<const KaryNCube&>(topo), /*vcs=*/4);
  };
  Network network(config);
  const SimulationResult result = network.run();
  EXPECT_FALSE(result.engine_parallel);
  EXPECT_NE(result.engine_path_reason.find("not concurrent-safe"),
            std::string::npos)
      << result.engine_path_reason;
  EXPECT_NE(result.engine_path_reason.find("serial-fallback threshold"),
            std::string::npos)
      << result.engine_path_reason;
}

// Satellite fix check: the built-in adaptive algorithms are concurrent-
// safe, so on a sub-threshold fabric with faults riding along the joined
// reason must name every applicable size cause (threshold AND single
// shard) and must NOT claim the routing is unsafe. Asserting substrings,
// not one pinned string, keeps the test robust as causes evolve.
void expect_sub_threshold_reasons(SimConfig config) {
  config.engine_threads = 4;
  config.faults.add_link(0, 0, 500, 2500);
  Network network(config);
  const SimulationResult result = network.run();
  EXPECT_FALSE(result.engine_parallel);
  EXPECT_NE(result.engine_path_reason.find("serial-fallback threshold"),
            std::string::npos)
      << result.engine_path_reason;
  EXPECT_NE(result.engine_path_reason.find("single word-aligned shard"),
            std::string::npos)
      << result.engine_path_reason;
  EXPECT_EQ(result.engine_path_reason.find("not concurrent-safe"),
            std::string::npos)
      << result.engine_path_reason;
}

TEST(EngineThreads, TreeAdaptiveFaultedSubThresholdJoinedReasons) {
  SimConfig config = tree256_config();
  config.net.n = 2;  // 4-ary 2-tree: 8 switches, far below the threshold
  expect_sub_threshold_reasons(config);
}

TEST(EngineThreads, EscapeAdaptiveFaultedSubThresholdJoinedReasons) {
  SimConfig config = cube256_config();
  config.net.k = 4;  // 16 switches
  config.net.routing = RoutingKind::kEscapeAdaptive;
  expect_sub_threshold_reasons(config);
}

}  // namespace
}  // namespace smart
