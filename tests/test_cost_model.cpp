#include "cost/chien.hpp"

#include <gtest/gtest.h>

namespace smart {
namespace {

constexpr double kTol = 0.01;  // the paper rounds to two decimals

TEST(ChienModel, RoutingDelayEquation) {
  EXPECT_DOUBLE_EQ(t_routing_ns(1), 4.7);
  EXPECT_DOUBLE_EQ(t_routing_ns(2), 5.9);
  EXPECT_NEAR(t_routing_ns(6), 7.8, kTol);
  EXPECT_NEAR(t_routing_ns(7), 8.06, kTol);
}

TEST(ChienModel, CrossbarDelayEquation) {
  EXPECT_DOUBLE_EQ(t_crossbar_ns(1), 3.4);
  EXPECT_NEAR(t_crossbar_ns(17), 5.85, kTol);
  EXPECT_NEAR(t_crossbar_ns(8), 5.2, kTol);
}

TEST(ChienModel, LinkDelayEquations) {
  EXPECT_DOUBLE_EQ(t_link_short_ns(1), 5.14);
  EXPECT_NEAR(t_link_short_ns(4), 6.34, kTol);
  EXPECT_DOUBLE_EQ(t_link_medium_ns(1), 9.64);
  EXPECT_NEAR(t_link_medium_ns(2), 10.24, kTol);
  EXPECT_NEAR(t_link_medium_ns(4), 10.84, kTol);
}

TEST(ChienModel, Table1DeterministicRow) {
  // Paper Table 1: T_routing 5.9, T_crossbar 5.85, T_link 6.34, clock 6.34.
  const RouterDelays delays = cube_deterministic_delays(2, 4);
  EXPECT_NEAR(delays.routing_ns, 5.9, kTol);
  EXPECT_NEAR(delays.crossbar_ns, 5.85, kTol);
  EXPECT_NEAR(delays.link_ns, 6.34, kTol);
  EXPECT_NEAR(delays.clock_ns(), 6.34, kTol);
  EXPECT_EQ(delays.limiting_phase(), LimitingPhase::kLink);
}

TEST(ChienModel, Table1DuatoRow) {
  // Paper Table 1: T_routing 7.8, T_crossbar 5.85, T_link 6.34, clock 7.8.
  const RouterDelays delays = cube_duato_delays(2, 4);
  EXPECT_NEAR(delays.routing_ns, 7.8, kTol);
  EXPECT_NEAR(delays.crossbar_ns, 5.85, kTol);
  EXPECT_NEAR(delays.link_ns, 6.34, kTol);
  EXPECT_NEAR(delays.clock_ns(), 7.8, kTol);
  EXPECT_EQ(delays.limiting_phase(), LimitingPhase::kRouting);
}

TEST(ChienModel, Table2OneVirtualChannel) {
  // Paper Table 2: 8.06 / 5.2 / 9.64 -> clock 9.64.
  const RouterDelays delays = tree_adaptive_delays(4, 1);
  EXPECT_NEAR(delays.routing_ns, 8.06, kTol);
  EXPECT_NEAR(delays.crossbar_ns, 5.2, kTol);
  EXPECT_NEAR(delays.link_ns, 9.64, kTol);
  EXPECT_NEAR(delays.clock_ns(), 9.64, kTol);
  EXPECT_EQ(delays.limiting_phase(), LimitingPhase::kLink);
}

TEST(ChienModel, Table2TwoVirtualChannels) {
  // Paper Table 2: 9.26 / 5.8 / 10.24 -> clock 10.24.
  const RouterDelays delays = tree_adaptive_delays(4, 2);
  EXPECT_NEAR(delays.routing_ns, 9.26, kTol);
  EXPECT_NEAR(delays.crossbar_ns, 5.8, kTol);
  EXPECT_NEAR(delays.link_ns, 10.24, kTol);
  EXPECT_NEAR(delays.clock_ns(), 10.24, kTol);
}

TEST(ChienModel, Table2FourVirtualChannels) {
  // Paper Table 2: 10.46 / 6.4 / 10.84 -> clock 10.84; the gap between the
  // routing and link delay is narrow (wire-limited design).
  const RouterDelays delays = tree_adaptive_delays(4, 4);
  EXPECT_NEAR(delays.routing_ns, 10.46, kTol);
  EXPECT_NEAR(delays.crossbar_ns, 6.4, kTol);
  EXPECT_NEAR(delays.link_ns, 10.84, kTol);
  EXPECT_NEAR(delays.clock_ns(), 10.84, kTol);
  EXPECT_EQ(delays.limiting_phase(), LimitingPhase::kLink);
}

TEST(ChienModel, MoreVirtualChannelsWouldBeRoutingLimited) {
  // Paper §11: with more than four VCs the routing delay overtakes the
  // wire delay on the fat-tree (diminishing returns).
  const RouterDelays delays = tree_adaptive_delays(4, 8);
  EXPECT_EQ(delays.limiting_phase(), LimitingPhase::kRouting);
}

TEST(ChienModel, FreedomGrowsWithAdaptivity) {
  EXPECT_LT(cube_deterministic_delays(2, 4).routing_ns,
            cube_duato_delays(2, 4).routing_ns);
}

TEST(ChienModel, GenericRouterDelays) {
  const RouterDelays delays =
      router_delays(2, 17, 4, WireLength::kShort);
  EXPECT_NEAR(delays.routing_ns, 5.9, kTol);
  EXPECT_NEAR(delays.crossbar_ns, 5.85, kTol);
  EXPECT_NEAR(delays.link_ns, 6.34, kTol);
}

TEST(ChienModel, LimitingPhaseNames) {
  EXPECT_EQ(to_string(LimitingPhase::kRouting), "routing");
  EXPECT_EQ(to_string(LimitingPhase::kCrossbar), "crossbar");
  EXPECT_EQ(to_string(LimitingPhase::kLink), "link");
}

}  // namespace
}  // namespace smart
