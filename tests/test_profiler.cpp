// Self-profiler, metrics registry, run manifest and regression report.
//
// The profiler obeys the repo's instrumentation contract: disabled it is
// one null check per hook site, enabled it only *reads* engine state — so
// simulation results must be bit-identical either way. The golden values
// here repeat tests/test_engine_refactor.cpp (pinned on the pre-profiler
// engine); any drift with --profile on is a profiler bug. The registry,
// manifest and report tests cover the rest of the observability tentpole:
// JSON round-trips, manifest shape, and the report tool's verdict policy
// (deterministic namespaces fail on drift, time/ only warns).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "core/network.hpp"
#include "obs/manifest.hpp"
#include "obs/report.hpp"

namespace smart {
namespace {

SimConfig golden_cube_config() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  return config;
}

SimConfig golden_faulted_config() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.5;
  config.traffic.seed = 11;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  config.timing.drain_after_horizon = true;
  config.faults.add_link(0, 0, 500, 2500);
  config.faults.add_switch(5, 800, 2000);
  return config;
}

double share_sum(const ProfileReport& prof) {
  double sum = 0.0;
  for (const PhaseProfile& phase : prof.phases) sum += phase.share;
  return sum;
}

TEST(Profiler, DisabledByDefault) {
  Network network(golden_cube_config());
  const SimulationResult& r = network.run();
  EXPECT_EQ(network.profiler(), nullptr);
  EXPECT_FALSE(r.profile.enabled);
  EXPECT_EQ(r.profile.cycles, 0U);
}

// The full golden pin from test_engine_refactor.cpp with the profiler on:
// enabling instrumentation must not change a single RNG draw.
TEST(Profiler, BitIdenticalWithProfilerEnabled) {
  SimConfig config = golden_cube_config();
  config.prof.enabled = true;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.46166666666666667);
  EXPECT_EQ(r.generated_packets, 1650U);
  EXPECT_EQ(r.delivered_packets, 1662U);
  EXPECT_EQ(r.delivered_flits, 26592U);
  EXPECT_EQ(r.measured_cycles, 3600U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 42.521660649819474);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.0992779783393649);
  EXPECT_DOUBLE_EQ(r.link_utilization.mean(), 0.31429976851851849);
}

TEST(Profiler, FaultFreeRunReportsFusedPath) {
  SimConfig config = golden_cube_config();
  config.prof.enabled = true;
  Network network(config);
  const SimulationResult& r = network.run();
  const ProfileReport& prof = r.profile;

  ASSERT_TRUE(prof.enabled);
  EXPECT_EQ(prof.cycles, 4000U);
  // Fault-free: every cycle takes the fused link+routing+crossbar pass.
  EXPECT_EQ(prof.fused_cycles, prof.cycles);
  EXPECT_DOUBLE_EQ(prof.fused_hit_rate(), 1.0);
  EXPECT_EQ(prof.phase(ProfPhase::kLink).ns, 0U);
  EXPECT_EQ(prof.phase(ProfPhase::kRouting).ns, 0U);
  EXPECT_EQ(prof.phase(ProfPhase::kCrossbar).ns, 0U);
  EXPECT_GT(prof.phase(ProfPhase::kFused).ns, 0U);
  EXPECT_GT(prof.phase_ns_total, 0U);
  EXPECT_NEAR(share_sum(prof), 1.0, 1e-9);

  // Scheduler occupancy: fractions in [0, 1], maxima within the fabric.
  EXPECT_GT(prof.active_switch_fraction_mean, 0.0);
  EXPECT_LE(prof.active_switch_fraction_mean, 1.0);
  EXPECT_LE(prof.active_switches_max, 16U);  // 4-ary 2-cube: 16 switches
  EXPECT_GT(prof.active_nic_fraction_mean, 0.0);
  EXPECT_LE(prof.active_nic_fraction_mean, 1.0);
  EXPECT_LE(prof.active_nics_max, 16U);

  // Arena fill: high water within capacity.
  EXPECT_GT(prof.lane_capacity_flits, 0U);
  EXPECT_GT(prof.lane_flits_high_water, 0U);
  EXPECT_LE(prof.lane_flits_high_water, prof.lane_capacity_flits);

  // Work counters: whole-run totals, so generation exceeds the window's.
  EXPECT_GE(prof.generated_packets, r.generated_packets);
  EXPECT_GT(prof.link_flits, 0U);
  EXPECT_GT(prof.routed_headers, 0U);
  EXPECT_GT(prof.crossbar_flits, 0U);
  EXPECT_EQ(prof.credit_acks, prof.crossbar_flits);  // fault-free: no drains
}

TEST(Profiler, FaultedRunTakesPhasePerPassPipeline) {
  SimConfig config = golden_faulted_config();
  config.prof.enabled = true;
  Network network(config);
  const SimulationResult& r = network.run();

  // Golden pins from test_engine_refactor.cpp — unchanged under --profile.
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.47444444444444445);
  EXPECT_EQ(r.unroutable_packets, 50U);
  EXPECT_EQ(r.dropped_flits, 800U);
  EXPECT_EQ(r.drain_cycles, 100U);

  const ProfileReport& prof = r.profile;
  ASSERT_TRUE(prof.enabled);
  // A fault plan forces phase-per-pass every cycle: no fused hits at all.
  EXPECT_LT(prof.fused_hit_rate(), 1.0);
  EXPECT_EQ(prof.fused_cycles, 0U);
  EXPECT_EQ(prof.phase(ProfPhase::kFused).ns, 0U);
  EXPECT_GT(prof.phase(ProfPhase::kLink).ns, 0U);
  EXPECT_GT(prof.phase(ProfPhase::kRouting).ns, 0U);
  EXPECT_GT(prof.phase(ProfPhase::kCrossbar).ns, 0U);
  EXPECT_NEAR(share_sum(prof), 1.0, 1e-9);
}

TEST(Registry, RoundTripsThroughJson) {
  SimConfig config = golden_cube_config();
  config.prof.enabled = true;
  Network network(config);
  const SimulationResult& r = network.run();

  MetricsRegistry reg;
  register_run_metrics(reg, r);
  ASSERT_FALSE(reg.empty());
  ASSERT_NE(reg.find("engine/accepted_fraction"), nullptr);
  ASSERT_NE(reg.find("latency/cycles"), nullptr);
  ASSERT_NE(reg.find("profile/fused_hit_rate"), nullptr);
  ASSERT_NE(reg.find("time/sim_wall_seconds"), nullptr);

  std::string error;
  const auto parsed = json::parse(reg.to_json_text(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto back = MetricsRegistry::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), reg.size());
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const Metric& a = reg.metrics()[i];
    const Metric& b = back->metrics()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.unit, b.unit);
    if (a.kind == MetricKind::kHistogram) {
      EXPECT_EQ(a.hist.count, b.hist.count);
      EXPECT_DOUBLE_EQ(a.hist.p50, b.hist.p50);
      EXPECT_DOUBLE_EQ(a.hist.p95, b.hist.p95);
      EXPECT_DOUBLE_EQ(a.hist.p99, b.hist.p99);
    } else {
      EXPECT_DOUBLE_EQ(a.value, b.value);
    }
  }
}

TEST(Registry, UpsertsByName) {
  MetricsRegistry reg;
  reg.counter("a/one", 1);
  reg.counter("a/one", 2);
  reg.gauge("a/two", 0.5);
  EXPECT_EQ(reg.size(), 2U);
  EXPECT_DOUBLE_EQ(reg.find("a/one")->value, 2.0);
}

TEST(Manifest, WritesAndParsesBack) {
  SimConfig config = golden_cube_config();
  config.prof.enabled = true;
  Network network(config);
  const SimulationResult& r = network.run();

  MetricsRegistry reg;
  register_run_metrics(reg, r);

  ManifestInfo info;
  info.producer = "test_profiler";
  info.command_line = "test_profiler --golden";
  info.config = echo_config(config, /*clock_ns=*/5.0);
  info.wall_seconds = r.sim_wall_seconds;
  info.registry = &reg;

  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "run.manifest.json")
          .string();
  std::string error;
  ASSERT_TRUE(write_manifest(path, info, &error)) << error;

  const auto doc = json::parse_file(path, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->string_at("schema").value_or(""), "smartsim-manifest-v1");
  EXPECT_EQ(doc->string_at("producer").value_or(""), "test_profiler");
  const json::Value* build = doc->find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->string_at("git_describe").value_or("").empty());
  EXPECT_FALSE(build->string_at("compiler").value_or("").empty());
  const json::Value* echo = doc->find("config");
  ASSERT_NE(echo, nullptr);
  const json::Value* net = echo->find("network");
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->string_at("topology").value_or(""), "cube");
  EXPECT_DOUBLE_EQ(net->number_at("clock_ns").value_or(0.0), 5.0);
  EXPECT_TRUE(echo->bool_at("profile_enabled").value_or(false));

  const json::Value* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const auto back = MetricsRegistry::from_json(*metrics);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), reg.size());
}

TEST(Report, IdenticalRegistriesPass) {
  MetricsRegistry reg;
  reg.gauge("engine/accepted_fraction", 0.45);
  reg.counter("engine/delivered_packets", 1000);
  const ReportResult result =
      compare_registries("cli", reg, reg, ReportOptions{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.warnings, 0);
  for (const MetricVerdict& row : result.rows) {
    EXPECT_EQ(row.verdict, Verdict::kPass) << row.metric;
  }
}

TEST(Report, DeterministicDriftFails) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.gauge("engine/accepted_fraction", 0.45);
  b.gauge("engine/accepted_fraction", 0.40);  // 11 % drop: regression
  const ReportResult result = compare_registries("cli", a, b, ReportOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.failures, 1);
  EXPECT_EQ(result.rows[0].verdict, Verdict::kFail);
}

TEST(Report, TimeNamespaceOnlyWarns) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.gauge("time/sim_wall_seconds", 1.0);
  b.gauge("time/sim_wall_seconds", 2.0);  // 2x slower: advisory only
  a.gauge("load=0.300/time/sim_wall_seconds", 1.0);
  b.gauge("load=0.300/time/sim_wall_seconds", 2.0);  // sweep-prefixed too
  const ReportResult result = compare_registries("cli", a, b, ReportOptions{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.warnings, 2);
  EXPECT_EQ(result.rows[0].verdict, Verdict::kWarn);
  EXPECT_EQ(result.rows[1].verdict, Verdict::kWarn);
}

TEST(Report, MissingMetricFailsNewMetricPasses) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.gauge("engine/accepted_fraction", 0.45);
  a.gauge("engine/latency_mean", 40.0);
  b.gauge("engine/accepted_fraction", 0.45);
  b.gauge("engine/hops_mean", 4.0);  // new in B
  const ReportResult result = compare_registries("cli", a, b, ReportOptions{});
  EXPECT_FALSE(result.ok());  // latency_mean vanished: shape break
  EXPECT_EQ(result.failures, 1);
  bool saw_missing = false;
  bool saw_new = false;
  for (const MetricVerdict& row : result.rows) {
    if (row.metric == "engine/latency_mean") {
      EXPECT_EQ(row.verdict, Verdict::kMissing);
      saw_missing = true;
    }
    if (row.metric == "engine/hops_mean") {
      EXPECT_EQ(row.verdict, Verdict::kNew);
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_new);
}

TEST(Report, HistogramsCompareByPercentile) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.histogram("latency/cycles", HistogramSummary{100, 40.0, 70.0, 90.0});
  b.histogram("latency/cycles", HistogramSummary{100, 40.0, 70.0, 140.0});
  const ReportResult result = compare_registries("cli", a, b, ReportOptions{});
  EXPECT_FALSE(result.ok());  // p99 blew up by > 5 %
  bool p99_failed = false;
  for (const MetricVerdict& row : result.rows) {
    if (row.metric == "latency/cycles/p99") {
      EXPECT_EQ(row.verdict, Verdict::kFail);
      p99_failed = true;
    } else {
      EXPECT_EQ(row.verdict, Verdict::kPass) << row.metric;
    }
  }
  EXPECT_TRUE(p99_failed);
}

TEST(Report, ComparesManifestDirectories) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "report_dirs";
  fs::remove_all(root);
  fs::create_directories(root / "a");
  fs::create_directories(root / "b");

  MetricsRegistry base;
  base.gauge("engine/accepted_fraction", 0.45);
  base.gauge("time/sim_wall_seconds", 1.0);
  MetricsRegistry drifted;
  drifted.gauge("engine/accepted_fraction", 0.30);  // regression
  drifted.gauge("time/sim_wall_seconds", 1.1);

  ManifestInfo info;
  info.producer = "smartsim_cli";
  info.command_line = "test";
  info.registry = &base;
  std::string error;
  ASSERT_TRUE(
      write_manifest((root / "a" / "run.manifest.json").string(), info,
                     &error))
      << error;
  ASSERT_TRUE(
      write_manifest((root / "b" / "run.manifest.json").string(), info,
                     &error))
      << error;

  ReportResult same = compare_manifest_dirs((root / "a").string(),
                                            (root / "b").string(),
                                            ReportOptions{}, &error);
  EXPECT_TRUE(same.ok()) << error << "\n" << render_report(same);

  info.registry = &drifted;
  ASSERT_TRUE(
      write_manifest((root / "b" / "run.manifest.json").string(), info,
                     &error))
      << error;
  ReportResult diff = compare_manifest_dirs((root / "a").string(),
                                            (root / "b").string(),
                                            ReportOptions{}, &error);
  EXPECT_FALSE(diff.ok());
  const std::string rendered = render_report(diff);
  EXPECT_NE(rendered.find("FAIL"), std::string::npos);
  EXPECT_NE(rendered.find("summary:"), std::string::npos);
}

TEST(Report, UnpairedProducerFails) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "report_unpaired";
  fs::remove_all(root);
  fs::create_directories(root / "a");
  fs::create_directories(root / "b");

  MetricsRegistry reg;
  reg.gauge("engine/accepted_fraction", 0.45);
  ManifestInfo info;
  info.producer = "smartsim_cli";
  info.registry = &reg;
  std::string error;
  ASSERT_TRUE(write_manifest((root / "a" / "run.manifest.json").string(),
                             info, &error))
      << error;
  // b stays empty of this producer.
  info.producer = "something_else";
  ASSERT_TRUE(write_manifest((root / "b" / "other.manifest.json").string(),
                             info, &error))
      << error;

  const ReportResult result = compare_manifest_dirs(
      (root / "a").string(), (root / "b").string(), ReportOptions{}, &error);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.notes.empty());
}

TEST(Json, ParsesAndDumpsRoundTrip) {
  const std::string text =
      R"({"s": "a\"b\\c\nd", "n": -12.5, "i": 42, "b": true, "z": null,)"
      R"( "arr": [1, 2, {"k": "v"}], "obj": {"nested": false}})";
  std::string error;
  const auto value = json::parse(text, &error);
  ASSERT_TRUE(value.has_value()) << error;
  EXPECT_EQ(value->string_at("s").value_or(""), "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(value->number_at("n").value_or(0.0), -12.5);
  EXPECT_DOUBLE_EQ(value->number_at("i").value_or(0.0), 42.0);
  EXPECT_TRUE(value->bool_at("b").value_or(false));
  ASSERT_NE(value->find("z"), nullptr);
  EXPECT_TRUE(value->find("z")->is_null());
  ASSERT_NE(value->find("arr"), nullptr);
  EXPECT_EQ(value->find("arr")->items().size(), 3U);

  // Dump and re-parse: structurally identical.
  const auto again = json::parse(value->dump(2), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->dump(), value->dump());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("{\"a\": }").has_value());
  EXPECT_FALSE(json::parse("[1, 2,]").has_value());
  EXPECT_FALSE(json::parse("nope").has_value());
  EXPECT_FALSE(json::parse("{\"a\": 1} trailing").has_value());
  std::string error;
  EXPECT_FALSE(json::parse("{\"a\": tru}", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace smart
