// Engine edge cases: degenerate timing windows, odd packet sizes, single
// flits, disabled stats windows, tiny buffers and link-utilization
// accounting.
#include <gtest/gtest.h>

#include "core/network.hpp"

namespace smart {
namespace {

SimConfig tiny_cube(double load = 0.3) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = 300;
  config.timing.horizon_cycles = 2500;
  return config;
}

TEST(EngineEdge, WarmupEqualToHorizonYieldsEmptyWindow) {
  SimConfig config = tiny_cube();
  config.timing.warmup_cycles = config.timing.horizon_cycles;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_EQ(result.measured_cycles, 0U);
  EXPECT_EQ(result.delivered_packets, 0U);
  EXPECT_DOUBLE_EQ(result.accepted_fraction, 0.0);
}

TEST(EngineEdge, SingleFlitPackets) {
  SimConfig config = tiny_cube(0.4);
  config.net.packet_bytes = 4;  // one 4-byte flit
  Network network(config);
  EXPECT_EQ(network.flits_per_packet(), 1U);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_GE(result.latency_cycles.min(), 1.0);
}

TEST(EngineEdge, OddPacketSizeRoundsUp) {
  SimConfig config = tiny_cube();
  config.net.packet_bytes = 65;
  Network network(config);
  EXPECT_EQ(network.flits_per_packet(), 17U);
  EXPECT_FALSE(network.run().deadlocked);
}

TEST(EngineEdge, BufferDepthOne) {
  SimConfig config = tiny_cube(0.2);
  config.net.buffer_depth = 1;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 0U);
}

TEST(EngineEdge, StatsWindowDisabled) {
  SimConfig config = tiny_cube();
  config.timing.stats_window_cycles = 0;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_TRUE(result.window_accepted.empty());
  EXPECT_GT(result.delivered_packets, 0U);
}

TEST(EngineEdge, StatsWindowsCoverMeasurement) {
  SimConfig config = tiny_cube();
  config.timing.stats_window_cycles = 500;
  Network network(config);
  const SimulationResult& result = network.run();
  // (2500 - 300) / 500 full windows.
  EXPECT_EQ(result.window_accepted.size(), 4U);
  for (double w : result.window_accepted) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(EngineEdge, LinkUtilizationAccounted) {
  Network network(tiny_cube(0.5));
  const SimulationResult& result = network.run();
  // 16 switches x (4 network + 1 terminal) ports + 16 NIC links.
  EXPECT_EQ(result.link_utilization.count(), 16U * 5U + 16U);
  EXPECT_GT(result.link_utilization.mean(), 0.0);
  EXPECT_LE(result.link_utilization.max(), 1.0 + 1e-9);
}

TEST(EngineEdge, LinkUtilizationScalesWithLoad) {
  Network low(tiny_cube(0.2));
  Network high(tiny_cube(0.6));
  const double low_mean = low.run().link_utilization.mean();
  const double high_mean = high.run().link_utilization.mean();
  EXPECT_GT(high_mean, 2.0 * low_mean);
}

TEST(EngineEdge, TreeRootLinksIdleUnderLocalTraffic) {
  // Neighbor traffic between sibling leaves never climbs past level n-1's
  // parents; overall utilization must be far below the terminal links'.
  SimConfig config;
  config.net = paper_tree_spec(2);
  config.traffic.pattern = PatternKind::kNeighbor;
  config.traffic.offered_fraction = 0.5;
  config.timing.warmup_cycles = 500;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.link_utilization.max(), 0.4);   // terminal links busy
  EXPECT_LT(result.link_utilization.mean(), 0.25); // upper tree mostly idle
}

TEST(EngineEdge, ZeroLoadPermutationPattern) {
  SimConfig config = tiny_cube(0.0);
  config.traffic.pattern = PatternKind::kTranspose;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_EQ(result.delivered_packets, 0U);
  EXPECT_FALSE(result.deadlocked);
}

TEST(EngineEdge, VeryShortHorizon) {
  SimConfig config = tiny_cube(0.5);
  config.timing.warmup_cycles = 0;
  config.timing.horizon_cycles = 5;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_EQ(network.cycle(), 5U);
  EXPECT_EQ(result.delivered_packets, 0U);  // nothing can arrive in 5 cycles
}

TEST(EngineEdge, EightVirtualChannelsTree) {
  SimConfig config;
  config.net = paper_tree_spec(4);
  config.net.vcs = 8;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.5;
  config.timing.warmup_cycles = 500;
  config.timing.horizon_cycles = 3000;
  Network network(config);
  EXPECT_FALSE(network.run().deadlocked);
}

}  // namespace
}  // namespace smart
