#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace smart {
namespace {

TEST(Bits, PowerOfTwo) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(256));
  EXPECT_FALSE(is_power_of_two(255));
  EXPECT_TRUE(is_power_of_two(1ULL << 63));
}

TEST(Bits, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0U);
  EXPECT_EQ(log2_exact(2), 1U);
  EXPECT_EQ(log2_exact(256), 8U);
  EXPECT_EQ(log2_exact(1ULL << 40), 40U);
}

TEST(Bits, Log2FloorCeil) {
  EXPECT_EQ(log2_floor(1), 0U);
  EXPECT_EQ(log2_floor(5), 2U);
  EXPECT_EQ(log2_ceil(5), 3U);
  EXPECT_EQ(log2_ceil(8), 3U);
  EXPECT_EQ(log2_ceil(9), 4U);
}

TEST(Bits, IPow) {
  EXPECT_EQ(ipow(2, 10), 1024U);
  EXPECT_EQ(ipow(4, 4), 256U);
  EXPECT_EQ(ipow(16, 2), 256U);
  EXPECT_EQ(ipow(7, 0), 1U);
  EXPECT_EQ(ipow(1, 100), 1U);
}

TEST(Bits, LabelBitMsbFirst) {
  // Label 0b1010 with B = 4: a0 = 1, a1 = 0, a2 = 1, a3 = 0.
  EXPECT_EQ(label_bit(0b1010, 0, 4), 1U);
  EXPECT_EQ(label_bit(0b1010, 1, 4), 0U);
  EXPECT_EQ(label_bit(0b1010, 2, 4), 1U);
  EXPECT_EQ(label_bit(0b1010, 3, 4), 0U);
}

TEST(Bits, WithLabelBit) {
  EXPECT_EQ(with_label_bit(0b0000, 0, 4, 1), 0b1000U);
  EXPECT_EQ(with_label_bit(0b1111, 3, 4, 0), 0b1110U);
  EXPECT_EQ(with_label_bit(0b1010, 1, 4, 1), 0b1110U);
}

TEST(Bits, ComplementPattern) {
  // Paper §7: destination = !a0 !a1 ... !a(B-1).
  EXPECT_EQ(complement_bits(0, 8), 255U);
  EXPECT_EQ(complement_bits(0b10101010, 8), 0b01010101U);
  EXPECT_EQ(complement_bits(complement_bits(0xAB, 8), 8), 0xABU);
}

TEST(Bits, ComplementIsInvolution) {
  for (std::uint64_t label = 0; label < 256; ++label) {
    EXPECT_EQ(complement_bits(complement_bits(label, 8), 8), label);
  }
}

TEST(Bits, ReversePattern) {
  EXPECT_EQ(reverse_bits(0b10000000, 8), 0b00000001U);
  EXPECT_EQ(reverse_bits(0b11000000, 8), 0b00000011U);
  EXPECT_EQ(reverse_bits(0b10110010, 8), 0b01001101U);
}

TEST(Bits, ReverseIsInvolution) {
  for (std::uint64_t label = 0; label < 256; ++label) {
    EXPECT_EQ(reverse_bits(reverse_bits(label, 8), 8), label);
  }
}

TEST(Bits, TransposePattern) {
  // Swap halves: a4..a7 a0..a3.
  EXPECT_EQ(transpose_bits(0b11110000, 8), 0b00001111U);
  EXPECT_EQ(transpose_bits(0b10100101, 8), 0b01011010U);
}

TEST(Bits, TransposeIsInvolution) {
  for (std::uint64_t label = 0; label < 256; ++label) {
    EXPECT_EQ(transpose_bits(transpose_bits(label, 8), 8), label);
  }
}

TEST(Bits, PalindromeCount256) {
  // Paper §9: 16 nodes of the 256 have a palindromic bit string and inject
  // nothing under bit reversal.
  unsigned palindromes = 0;
  for (std::uint64_t label = 0; label < 256; ++label) {
    if (is_bit_palindrome(label, 8)) ++palindromes;
  }
  EXPECT_EQ(palindromes, 16U);
}

TEST(Bits, DigitBaseK) {
  // 256 = 4^4 in base 4 with 5 digits: 1 0 0 0 0 -> p0=1, the rest 0.
  EXPECT_EQ(digit(256, 0, 5, 4), 1U);
  EXPECT_EQ(digit(256, 1, 5, 4), 0U);
  EXPECT_EQ(digit(27, 0, 3, 4), 1U);  // 27 = 123 base 4
  EXPECT_EQ(digit(27, 1, 3, 4), 2U);
  EXPECT_EQ(digit(27, 2, 3, 4), 3U);
}

TEST(Bits, DigitsRoundTrip) {
  for (std::uint64_t label : {0ULL, 1ULL, 27ULL, 255ULL, 256ULL, 999ULL}) {
    const auto digits = to_digits(label, 5, 4);
    EXPECT_EQ(digits.size(), 5U);
    EXPECT_EQ(from_digits(digits, 4), label % ipow(4, 5));
  }
}

TEST(Bits, DigitConsistentWithToDigits) {
  const auto digits = to_digits(200, 4, 4);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(digit(200, i, 4, 4), digits[i]);
  }
}

}  // namespace
}  // namespace smart
