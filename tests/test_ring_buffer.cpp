#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace smart {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> buf(4);
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.full());
  EXPECT_EQ(buf.size(), 0U);
  EXPECT_EQ(buf.capacity(), 4U);
  EXPECT_EQ(buf.free_slots(), 4U);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> buf(4);
  buf.push(1);
  buf.push(2);
  buf.push(3);
  EXPECT_EQ(buf.pop(), 1);
  EXPECT_EQ(buf.pop(), 2);
  EXPECT_EQ(buf.pop(), 3);
  EXPECT_TRUE(buf.empty());
}

TEST(RingBuffer, FullDetection) {
  RingBuffer<int> buf(2);
  buf.push(1);
  EXPECT_FALSE(buf.full());
  buf.push(2);
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.free_slots(), 0U);
}

TEST(RingBuffer, WrapsAround) {
  RingBuffer<int> buf(3);
  for (int round = 0; round < 10; ++round) {
    buf.push(round);
    buf.push(round + 100);
    EXPECT_EQ(buf.pop(), round);
    EXPECT_EQ(buf.pop(), round + 100);
  }
  EXPECT_TRUE(buf.empty());
}

TEST(RingBuffer, FrontDoesNotPop) {
  RingBuffer<int> buf(2);
  buf.push(42);
  EXPECT_EQ(buf.front(), 42);
  EXPECT_EQ(buf.size(), 1U);
  EXPECT_EQ(buf.pop(), 42);
}

TEST(RingBuffer, AtIndexesFromFront) {
  RingBuffer<int> buf(4);
  buf.push(10);
  buf.push(20);
  buf.push(30);
  buf.pop();
  buf.push(40);  // exercise wrap
  EXPECT_EQ(buf.at(0), 20);
  EXPECT_EQ(buf.at(1), 30);
  EXPECT_EQ(buf.at(2), 40);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> buf(3);
  buf.push(1);
  buf.push(2);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  buf.push(9);
  EXPECT_EQ(buf.front(), 9);
}

TEST(RingBuffer, HoldsNonTrivialTypes) {
  RingBuffer<std::string> buf(2);
  buf.push("head");
  buf.push("tail");
  EXPECT_EQ(buf.pop(), "head");
  EXPECT_EQ(buf.pop(), "tail");
}

TEST(RingBuffer, CapacityOnePingPong) {
  RingBuffer<int> buf(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(buf.empty());
    buf.push(i);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.pop(), i);
  }
}

}  // namespace
}  // namespace smart
