// SMART_CHECK failure behavior (death tests): invariant violations must
// abort loudly with the failing expression, never continue silently.
#include "util/check.hpp"

#include <gtest/gtest.h>

namespace smart {
namespace {

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ SMART_CHECK(1 == 2); }, "SMART_CHECK failed: 1 == 2");
}

TEST(CheckDeathTest, MessageIsIncluded) {
  EXPECT_DEATH({ SMART_CHECK_MSG(false, "the reason"); }, "the reason");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  SMART_CHECK(2 + 2 == 4);
  SMART_CHECK_MSG(true, "never printed");
  SUCCEED();
}

TEST(CheckDeathTest, DcheckActiveInDebugOnly) {
#ifdef NDEBUG
  SMART_DCHECK(false);  // compiled out in release builds
  SUCCEED();
#else
  EXPECT_DEATH({ SMART_DCHECK(false); }, "SMART_CHECK failed");
#endif
}

}  // namespace
}  // namespace smart
