// Fault-aware routing: the tree routes around failed uplinks, Duato keeps
// its escape network deadlock-free, DOR declares unroutable packets instead
// of wedging, and the watchdog tells fault-stall apart from deadlock.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "topology/kary_ntree.hpp"

namespace smart {
namespace {

SimConfig tree_config(unsigned k, unsigned n, double load) {
  SimConfig config;
  config.net.topology = std::string("tree");
  config.net.k = k;
  config.net.n = n;
  config.net.routing = RoutingKind::kTreeAdaptive;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = 1000;
  config.timing.horizon_cycles = 8000;
  return config;
}

SimConfig cube_config(unsigned k, unsigned n, RoutingKind routing,
                      double load, bool wraparound = true) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = k;
  config.net.n = n;
  config.net.wraparound = wraparound;
  config.net.routing = routing;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = 1000;
  config.timing.horizon_cycles = 8000;
  return config;
}

TEST(FaultRouting, TreeRoutesAroundFaultedUplinkWithoutDrops) {
  // In a 4-ary 2-tree every leaf switch reaches every root; with one up
  // link dead the ascent lookahead steers around the root whose down path
  // would be severed. Nothing becomes unroutable.
  SimConfig config = tree_config(4, 2, 0.4);
  const KaryNTree tree(4, 2);
  const SwitchId leaf = tree.switch_id(1, 0);
  config.faults.add_link(leaf, /*port=*/4, /*start=*/0);
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.stall_verdict, StallVerdict::kNone);
  EXPECT_EQ(result.unroutable_packets, 0U);
  EXPECT_GT(result.delivered_packets, 1000U);
  // Still a healthy fraction of the offered load despite the lost link.
  EXPECT_GT(result.accepted_fraction, 0.3);
}

TEST(FaultRouting, TreeDropsWhenDescentIsSevered) {
  // In a 4-ary 3-tree the ascent lookahead sees one level ahead only:
  // a dead link between a leaf switch and one of its parents is invisible
  // from the top of the tree, so some descending packets hit it and must
  // be dropped — but the run terminates cleanly, without a deadlock.
  SimConfig config = tree_config(4, 3, 0.4);
  const KaryNTree tree(4, 3);
  const SwitchId leaf = tree.switch_id(2, 0);
  config.faults.add_link(leaf, /*port=*/4, /*start=*/0);
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.stall_verdict, StallVerdict::kNone);
  EXPECT_GT(result.unroutable_packets, 0U);
  // Drops are a small fraction of the delivered traffic.
  EXPECT_GT(result.delivered_packets, 10 * result.unroutable_packets);
  EXPECT_EQ(network.cycle(), 8000U);  // ran to the horizon, no wedge
}

TEST(FaultRouting, DuatoSurvivesFaultedLinkDeadlockFree) {
  // Duato's protocol with a dead link: adaptive lanes steer around it and
  // the escape network stays deadlock-free. Packets whose only minimal
  // path crosses the dead channel are dropped, everything else flows.
  SimConfig config = cube_config(8, 2, RoutingKind::kCubeDuato, 0.4);
  config.faults.add_link(0, /*port=*/0, /*start=*/0);
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.stall_verdict, StallVerdict::kNone);
  EXPECT_GT(result.delivered_packets, 1000U);
  EXPECT_GT(result.delivered_packets, 10 * result.unroutable_packets);
  EXPECT_EQ(network.cycle(), 8000U);
}

TEST(FaultRouting, DorReportsPartitionInsteadOfHanging) {
  // A 1-D mesh (a line) split in the middle: deterministic routing has no
  // alternative path, so all cross-partition packets are unroutable. The
  // run must keep making progress (drops count) and reach the horizon.
  SimConfig config =
      cube_config(4, 1, RoutingKind::kCubeDeterministic, 0.3,
                  /*wraparound=*/false);
  config.faults.add_link(1, /*port=*/0, /*start=*/0);  // link 1<->2
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.unroutable_packets, 0U);
  EXPECT_GT(result.delivered_packets, 0U);  // intra-partition traffic flows
  EXPECT_EQ(network.cycle(), 8000U);
}

TEST(FaultRouting, InactiveFaultPlanIsBitIdenticalToNoPlan) {
  // A schedule whose faults never activate must not perturb the simulation
  // in any way: the fault machinery only observes until an event fires.
  SimConfig base = cube_config(4, 2, RoutingKind::kCubeDuato, 0.5);
  SimConfig faulted = base;
  faulted.faults.add_link(0, /*port=*/0, /*start=*/1000000);  // > horizon
  Network a(base);
  Network b(faulted);
  const SimulationResult& ra = a.run();
  const SimulationResult& rb = b.run();
  EXPECT_EQ(ra.delivered_packets, rb.delivered_packets);
  EXPECT_EQ(ra.delivered_flits, rb.delivered_flits);
  EXPECT_EQ(ra.generated_packets, rb.generated_packets);
  EXPECT_DOUBLE_EQ(ra.accepted_fraction, rb.accepted_fraction);
  EXPECT_DOUBLE_EQ(ra.latency_cycles.mean(), rb.latency_cycles.mean());
  EXPECT_DOUBLE_EQ(ra.hops.mean(), rb.hops.mean());
  EXPECT_EQ(a.injected_flits(), b.injected_flits());
  EXPECT_EQ(rb.unroutable_packets, 0U);
  EXPECT_EQ(rb.dropped_flits, 0U);
}

TEST(FaultRouting, RepairRestoresFullThroughput) {
  // A transient fault: after repair the tree is whole again and the final
  // epoch's accepted bandwidth recovers to the healthy level.
  SimConfig config = tree_config(4, 2, 0.4);
  const KaryNTree tree(4, 2);
  config.faults.add_link(tree.switch_id(1, 0), /*port=*/4,
                         /*start=*/2000, /*repair=*/5000);
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.active_faults_end, 0U);
  ASSERT_EQ(result.fault_epochs.size(), 3U);
  EXPECT_EQ(result.fault_epochs[0].active_faults, 0U);
  EXPECT_EQ(result.fault_epochs[1].active_faults, 1U);
  EXPECT_EQ(result.fault_epochs[2].active_faults, 0U);
  EXPECT_EQ(result.fault_epochs[1].start_cycle, 2000U);
  EXPECT_EQ(result.fault_epochs[1].end_cycle, 4999U);
  // Healthy epochs deliver at least as much as the degraded one.
  EXPECT_GE(result.fault_epochs[2].accepted_flits_per_node_cycle,
            0.9 * result.fault_epochs[1].accepted_flits_per_node_cycle);
}

TEST(FaultWatchdog, WedgedWormYieldsFaultStallNotDeadlock) {
  // A single packet crosses a link that dies mid-worm: the tail freezes
  // upstream, the packet can never finish, and the watchdog must call it
  // a fault-stall — NOT a deadlock (there is no cyclic dependency).
  SimConfig config = cube_config(4, 1, RoutingKind::kCubeDeterministic, 0.0,
                                 /*wraparound=*/false);
  config.net.flit_bytes = 8;  // 8 flits per 64-byte packet: a long worm
  config.timing.warmup_cycles = 100;
  config.timing.horizon_cycles = 20000;
  config.timing.deadlock_threshold = 500;
  // The worm from node 0 to node 3 starts crossing link 0<->1 around cycle
  // 4 and needs 8 cycles on it; killing the link at cycle 8 splits it.
  config.faults.add_link(0, /*port=*/0, /*start=*/8);
  Network network(config);
  network.enqueue_packet(/*src=*/0, /*dst=*/3);
  const SimulationResult& result = network.run();
  EXPECT_EQ(result.stall_verdict, StallVerdict::kFaultStall);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_LT(network.cycle(), 20000U);  // watchdog stopped the run early
  EXPECT_GT(result.packets_in_flight_end, 0U);
}

TEST(FaultWatchdog, QuiescentFaultedNetworkIsNotStalled) {
  // Faults with nothing in flight: the watchdog must stay silent.
  SimConfig config = cube_config(4, 2, RoutingKind::kCubeDuato, 0.0);
  config.timing.deadlock_threshold = 500;
  config.faults.add_switch(3, /*start=*/1);
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_EQ(result.stall_verdict, StallVerdict::kNone);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(network.cycle(), 8000U);
}

TEST(FaultWatchdog, PartitionedTreeTerminatesWithDropsNotSpin) {
  // Satellite check from the issue: a fault set that partitions the
  // network must terminate with an unroutable/stall verdict rather than
  // spinning to the horizon making no progress. Killing every up link of
  // one leaf switch in a 4-ary 2-tree cuts its 4 terminals off.
  SimConfig config = tree_config(4, 2, 0.5);
  const KaryNTree tree(4, 2);
  const SwitchId leaf = tree.switch_id(1, 0);
  for (PortId up = 4; up < 8; ++up) {
    config.faults.add_link(leaf, up, /*start=*/0);
  }
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  // Cross-partition packets are dropped at their source switch.
  EXPECT_GT(result.unroutable_packets, 0U);
  // Intra-partition and far-side traffic still flows.
  EXPECT_GT(result.delivered_packets, 1000U);
}

}  // namespace
}  // namespace smart
