#include "cost/normalization.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/experiment.hpp"

namespace smart {
namespace {

TEST(Normalization, CubeFlitWidthFromPinCount) {
  // Paper §5: tree switch arity 8 vs cube arity 4 -> double data paths.
  EXPECT_EQ(normalized_cube_flit_bytes(4, 2), 4U);
  // A 3-cube would get 8/6 of the tree width, truncated to 2 bytes.
  EXPECT_EQ(normalized_cube_flit_bytes(4, 3), 2U);
}

TEST(Normalization, PacketFlits) {
  // 64-byte packets: 32 flits on the tree, 16 on the cube.
  EXPECT_EQ(packet_flits(64, 2), 32U);
  EXPECT_EQ(packet_flits(64, 4), 16U);
  EXPECT_EQ(packet_flits(65, 4), 17U);  // rounds up
  EXPECT_EQ(packet_flits(1, 4), 1U);
}

TEST(Normalization, BitsPerNsConversion) {
  // 256 nodes at 0.5 flits/node/cycle of 4-byte flits, 6.34 ns clock:
  // 256 * 0.5 * 32 bits / 6.34 ns = 646 bits/ns (the cube's capacity).
  EXPECT_NEAR(to_bits_per_ns(0.5, 256, 4, 6.34), 646.0, 1.0);
  // Tree at 1 flit/node/cycle of 2-byte flits, 9.64 ns clock: 425 bits/ns.
  EXPECT_NEAR(to_bits_per_ns(1.0, 256, 2, 9.64), 424.9, 1.0);
}

TEST(Normalization, LatencyConversion) {
  EXPECT_DOUBLE_EQ(to_ns(100.0, 7.8), 780.0);
}

TEST(Normalization, PaperCapacitiesInBits) {
  // Headline sanity from §10: the best cube throughput (Duato, ~80 % of
  // capacity at clock 7.8 ns) lands near 440 bits/ns; the best tree
  // throughput (4 VCs, ~72 %) near 280 bits/ns.
  const NormalizedScale duato = scale_for(paper_cube_spec(RoutingKind::kCubeDuato));
  EXPECT_NEAR(0.8 * duato.capacity_bits_per_ns(), 440.0, 25.0);
  const NormalizedScale tree4 = scale_for(paper_tree_spec(4));
  EXPECT_NEAR(0.72 * tree4.capacity_bits_per_ns(), 280.0, 15.0);
  const NormalizedScale det =
      scale_for(paper_cube_spec(RoutingKind::kCubeDeterministic));
  EXPECT_NEAR(0.6 * det.capacity_bits_per_ns(), 350.0, 40.0);
  const NormalizedScale tree1 = scale_for(paper_tree_spec(1));
  EXPECT_NEAR(0.36 * tree1.capacity_bits_per_ns(), 150.0, 10.0);
}

TEST(Normalization, EqualBytesPerCycleCapacity) {
  // The normalization equalizes capacity in bytes/node/cycle: the cube's
  // 0.5 flits of 4 bytes match the tree's 1 flit of 2 bytes.
  const NormalizedScale cube =
      scale_for(paper_cube_spec(RoutingKind::kCubeDeterministic));
  const NormalizedScale tree = scale_for(paper_tree_spec(1));
  EXPECT_DOUBLE_EQ(
      cube.capacity_flits_per_node_cycle * cube.flit_bytes,
      tree.capacity_flits_per_node_cycle * tree.flit_bytes);
}

TEST(NetworkSpec, ResolvedFlitBytes) {
  EXPECT_EQ(paper_cube_spec(RoutingKind::kCubeDuato).resolved_flit_bytes(), 4U);
  EXPECT_EQ(paper_tree_spec(2).resolved_flit_bytes(), 2U);
  NetworkSpec custom = paper_cube_spec(RoutingKind::kCubeDuato);
  custom.flit_bytes = 8;
  EXPECT_EQ(custom.resolved_flit_bytes(), 8U);
}

TEST(NetworkSpec, FlitsPerPacket) {
  EXPECT_EQ(paper_cube_spec(RoutingKind::kCubeDuato).flits_per_packet(), 16U);
  EXPECT_EQ(paper_tree_spec(1).flits_per_packet(), 32U);
}

TEST(NetworkSpec, Descriptions) {
  EXPECT_EQ(paper_cube_spec(RoutingKind::kCubeDeterministic).description(),
            "16-ary 2-cube, deterministic, 4 vc");
  EXPECT_EQ(paper_tree_spec(2).description(), "4-ary 4-tree, tree adaptive, 2 vc");
}

}  // namespace
}  // namespace smart
