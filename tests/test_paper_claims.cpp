// The paper's qualitative conclusions (§8-§11), asserted at full 256-node
// scale with an abbreviated horizon. These are the statements EXPERIMENTS.md
// tracks quantitatively; here they gate the build.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/network.hpp"

namespace smart {
namespace {

SimulationResult run_paper(NetworkSpec net, PatternKind pattern, double load) {
  SimConfig config;
  config.net = net;
  config.traffic.pattern = pattern;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = 1500;
  config.timing.horizon_cycles = 8000;
  Network network(config);
  return network.run();
}

TEST(PaperClaims, CubeOutperformsTreeOnUniformAbsoluteThroughput) {
  // §11: highest saturation throughput Duato ~440 bits/ns vs tree 4 vc
  // ~280 bits/ns.
  const auto cube =
      run_paper(paper_cube_spec(RoutingKind::kCubeDuato), PatternKind::kUniform, 1.0);
  const auto tree = run_paper(paper_tree_spec(4), PatternKind::kUniform, 1.0);
  const NormalizedScale cube_scale = scale_for(paper_cube_spec(RoutingKind::kCubeDuato));
  const NormalizedScale tree_scale = scale_for(paper_tree_spec(4));
  const double cube_bits =
      to_bits_per_ns(cube.accepted_flits_per_node_cycle, cube_scale.nodes,
                     cube_scale.flit_bytes, cube_scale.clock_ns);
  const double tree_bits =
      to_bits_per_ns(tree.accepted_flits_per_node_cycle, tree_scale.nodes,
                     tree_scale.flit_bytes, tree_scale.clock_ns);
  EXPECT_GT(cube_bits, 1.3 * tree_bits);
  EXPECT_NEAR(cube_bits, 440.0, 60.0);  // paper's headline number
}

TEST(PaperClaims, CubeLatencyRoughlyHalfTheTreesBelowSaturation) {
  // §10: cube ~0.5 us, tree ~1 us under normal traffic conditions.
  const auto cube = run_paper(paper_cube_spec(RoutingKind::kCubeDuato),
                              PatternKind::kUniform, 0.4);
  const auto tree = run_paper(paper_tree_spec(4), PatternKind::kUniform, 0.4);
  const double cube_ns =
      to_ns(cube.latency_cycles.mean(),
            scale_for(paper_cube_spec(RoutingKind::kCubeDuato)).clock_ns);
  const double tree_ns =
      to_ns(tree.latency_cycles.mean(), scale_for(paper_tree_spec(4)).clock_ns);
  EXPECT_NEAR(cube_ns, 500.0, 150.0);
  EXPECT_NEAR(tree_ns, 1000.0, 300.0);
  EXPECT_GT(tree_ns, 1.6 * cube_ns);
}

TEST(PaperClaims, TreeWinsComplementTraffic) {
  // §10: complement stresses the cube's bisection (best ~250-280 bits/ns)
  // while the tree routes it congestion-free (~400 bits/ns).
  const auto tree = run_paper(paper_tree_spec(1), PatternKind::kComplement, 1.0);
  const auto cube = run_paper(paper_cube_spec(RoutingKind::kCubeDeterministic),
                              PatternKind::kComplement, 0.5);
  const double tree_bits =
      to_bits_per_ns(tree.accepted_flits_per_node_cycle, 256, 2,
                     scale_for(paper_tree_spec(1)).clock_ns);
  const double cube_bits = to_bits_per_ns(
      cube.accepted_flits_per_node_cycle, 256, 4,
      scale_for(paper_cube_spec(RoutingKind::kCubeDeterministic)).clock_ns);
  EXPECT_GT(tree_bits, 1.25 * cube_bits);
  EXPECT_NEAR(tree_bits, 400.0, 50.0);
}

TEST(PaperClaims, DeterministicBeatsAdaptiveOnComplementOnly) {
  // §9: complement is unusual — dimension order prevents conflicts; on
  // transpose the adaptive algorithm is >2x better.
  const auto det_complement =
      run_paper(paper_cube_spec(RoutingKind::kCubeDeterministic),
                PatternKind::kComplement, 0.5);
  const auto ada_complement = run_paper(
      paper_cube_spec(RoutingKind::kCubeDuato), PatternKind::kComplement, 0.5);
  EXPECT_GT(det_complement.accepted_fraction,
            ada_complement.accepted_fraction);

  const auto det_transpose =
      run_paper(paper_cube_spec(RoutingKind::kCubeDeterministic),
                PatternKind::kTranspose, 0.9);
  const auto ada_transpose = run_paper(
      paper_cube_spec(RoutingKind::kCubeDuato), PatternKind::kTranspose, 0.9);
  EXPECT_GT(ada_transpose.accepted_fraction,
            1.8 * det_transpose.accepted_fraction);
}

TEST(PaperClaims, TreePerformanceInsensitiveToPermutationWithFlowControl) {
  // §11: the fat-tree's performance depends on the flow control, not the
  // permutation — at 4 VCs uniform/transpose/bit reversal all land in a
  // band, while complement runs at capacity.
  const double uniform =
      run_paper(paper_tree_spec(4), PatternKind::kUniform, 1.0).accepted_fraction;
  const double transpose =
      run_paper(paper_tree_spec(4), PatternKind::kTranspose, 1.0).accepted_fraction;
  const double reversal =
      run_paper(paper_tree_spec(4), PatternKind::kBitReversal, 1.0).accepted_fraction;
  EXPECT_NEAR(transpose, reversal, 0.08);
  EXPECT_NEAR(uniform, transpose, 0.20);
}

TEST(PaperClaims, TreeVirtualChannelsDoubleCongestedThroughput) {
  // §8.1: switching from 1 to 4 virtual channels roughly doubles the
  // accepted bandwidth of the congesting patterns.
  const double one_vc =
      run_paper(paper_tree_spec(1), PatternKind::kUniform, 1.0).accepted_fraction;
  const double four_vc =
      run_paper(paper_tree_spec(4), PatternKind::kUniform, 1.0).accepted_fraction;
  EXPECT_GT(four_vc, 1.6 * one_vc);
}

TEST(PaperClaims, CubeAdaptiveKeepsAdvantageDespiteSlowerClock) {
  // §11: Duato's algorithm wins uniform traffic even after paying the
  // routing-complexity clock penalty (7.8 ns vs 6.34 ns).
  const auto det = run_paper(paper_cube_spec(RoutingKind::kCubeDeterministic),
                             PatternKind::kUniform, 1.0);
  const auto ada =
      run_paper(paper_cube_spec(RoutingKind::kCubeDuato), PatternKind::kUniform, 1.0);
  const double det_bits = to_bits_per_ns(
      det.accepted_flits_per_node_cycle, 256, 4,
      scale_for(paper_cube_spec(RoutingKind::kCubeDeterministic)).clock_ns);
  const double ada_bits =
      to_bits_per_ns(ada.accepted_flits_per_node_cycle, 256, 4,
                     scale_for(paper_cube_spec(RoutingKind::kCubeDuato)).clock_ns);
  EXPECT_GT(ada_bits, det_bits);
}

}  // namespace
}  // namespace smart
