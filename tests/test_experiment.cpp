// Unit tests of the experiment harness pieces that do not need long
// simulations: saturation estimation on synthetic sweeps, scale/delay
// lookup, grid construction and table assembly.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace smart {
namespace {

SimulationResult point(double offered, double accepted,
                       double injecting = 1.0) {
  SimulationResult result;
  result.offered_fraction = offered;
  result.accepted_fraction = accepted;
  result.injecting_fraction = injecting;
  return result;
}

TEST(Saturation, DetectsFirstDeficit) {
  const std::vector<SimulationResult> sweep{
      point(0.2, 0.2), point(0.4, 0.4), point(0.6, 0.45), point(0.8, 0.46)};
  const auto est = estimate_saturation(sweep);
  EXPECT_TRUE(est.saturated);
  EXPECT_DOUBLE_EQ(est.offered_fraction, 0.6);
  EXPECT_DOUBLE_EQ(est.accepted_fraction, 0.45);
}

TEST(Saturation, UnsaturatedReportsLastPoint) {
  const std::vector<SimulationResult> sweep{point(0.3, 0.3), point(0.6, 0.59)};
  const auto est = estimate_saturation(sweep);
  EXPECT_FALSE(est.saturated);
  EXPECT_DOUBLE_EQ(est.offered_fraction, 0.6);
}

TEST(Saturation, ToleranceAvoidsFalsePositives) {
  const std::vector<SimulationResult> sweep{point(0.5, 0.48)};
  EXPECT_FALSE(estimate_saturation(sweep, 0.05).saturated);
  EXPECT_TRUE(estimate_saturation(sweep, 0.01).saturated);
}

TEST(Saturation, UsesEffectiveOfferedForFixedPoints) {
  // 93.75 % injecting (bit reversal): accepted == offered * injecting is
  // NOT saturation.
  const std::vector<SimulationResult> sweep{
      point(0.4, 0.375, 240.0 / 256.0), point(0.8, 0.74, 240.0 / 256.0)};
  EXPECT_FALSE(estimate_saturation(sweep).saturated);
}

TEST(Saturation, PostSaturationStabilityRange) {
  const std::vector<SimulationResult> sweep{
      point(0.5, 0.5), point(0.7, 0.5), point(0.9, 0.3), point(1.0, 0.55)};
  const auto est = estimate_saturation(sweep);
  ASSERT_TRUE(est.saturated);
  EXPECT_DOUBLE_EQ(est.post_saturation_min, 0.3);
  EXPECT_DOUBLE_EQ(est.post_saturation_max, 0.55);
}

TEST(Scales, PaperConfigurations) {
  const NormalizedScale det =
      scale_for(paper_cube_spec(RoutingKind::kCubeDeterministic));
  EXPECT_EQ(det.flit_bytes, 4U);
  EXPECT_EQ(det.nodes, 256U);
  EXPECT_NEAR(det.clock_ns, 6.34, 0.01);
  EXPECT_DOUBLE_EQ(det.capacity_flits_per_node_cycle, 0.5);
  EXPECT_NEAR(det.capacity_bits_per_ns(), 646.0, 1.0);

  const NormalizedScale tree = scale_for(paper_tree_spec(2));
  EXPECT_EQ(tree.flit_bytes, 2U);
  EXPECT_NEAR(tree.clock_ns, 10.24, 0.01);
  EXPECT_DOUBLE_EQ(tree.capacity_flits_per_node_cycle, 1.0);
}

TEST(Delays, MatchRoutingKind) {
  EXPECT_NEAR(delays_for(paper_cube_spec(RoutingKind::kCubeDuato)).clock_ns(),
              7.8, 0.01);
  EXPECT_NEAR(delays_for(paper_tree_spec(1)).clock_ns(), 9.64, 0.01);
}

TEST(LoadGrid, RespectsMaxFraction) {
  const auto grid = default_load_grid(0.5);
  EXPECT_DOUBLE_EQ(grid.back(), 0.5);
  for (double load : grid) {
    EXPECT_GT(load, 0.0);
    EXPECT_LE(load, 0.5);
  }
}

TEST(Tables, LatencyDashWhenNoPackets) {
  Curve curve;
  curve.label = "x";
  curve.spec = paper_cube_spec(RoutingKind::kCubeDuato);
  SimulationResult empty = point(0.5, 0.0);
  curve.points.push_back(empty);
  const Table table = cnf_latency_table({curve});
  EXPECT_EQ(table.cell(0, 1), "-");
}

TEST(Tables, AbsoluteTableScalesByClock) {
  Curve curve;
  curve.label = "cube";
  curve.spec = paper_cube_spec(RoutingKind::kCubeDeterministic);
  SimulationResult result = point(0.5, 0.5);
  result.offered_flits_per_node_cycle = 0.25;  // 0.5 of capacity 0.5
  result.accepted_flits_per_node_cycle = 0.25;
  result.latency_cycles.add(100.0);
  curve.points.push_back(result);
  const Table table = absolute_table({curve});
  // 0.25 * 256 * 32 bits / 6.34 ns = 323 bits/ns.
  EXPECT_NEAR(std::stod(table.cell(0, 2)), 323.0, 1.0);
  EXPECT_NEAR(std::stod(table.cell(0, 3)), 323.0, 1.0);
  EXPECT_NEAR(std::stod(table.cell(0, 4)), 634.0, 0.5);
}

TEST(Tables, SaturationSummaryOneRowPerCurve) {
  Curve a;
  a.label = "a";
  a.spec = paper_tree_spec(1);
  a.points = {point(0.5, 0.5), point(1.0, 0.6)};
  Curve b = a;
  b.label = "b";
  const Table table = saturation_summary_table({a, b});
  EXPECT_EQ(table.row_count(), 2U);
  EXPECT_EQ(table.cell(0, 0), "a");
  EXPECT_EQ(table.cell(1, 0), "b");
}

}  // namespace
}  // namespace smart
