// Failure injection: verify the deadlock watchdog actually fires.
//
// A deliberately faulty routing algorithm routes minimally on a ring but
// ignores the dateline rule — all virtual channels form one class, so the
// wrap-around link closes a cyclic channel dependency (exactly the deadlock
// the paper's two virtual networks exist to prevent, §3). Under tornado
// traffic every node pushes the same direction and the ring wedges; the
// engine must report it instead of hanging or delivering garbage.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "topology/kary_ncube.hpp"

namespace smart {
namespace {

/// Dimension-order routing WITHOUT virtual networks: deadlock-prone on any
/// ring with wrap-around. Test-only.
class FaultyRingRouting final : public RoutingAlgorithm {
 public:
  FaultyRingRouting(const KaryNCube& cube, unsigned vcs)
      : cube_(cube), vcs_(vcs) {}

  [[nodiscard]] std::string name() const override { return "faulty"; }
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }

  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId, unsigned,
                                                  Packet& pkt,
                                                  std::uint64_t) override {
    const SwitchId s = sw.id();
    for (unsigned d = 0; d < cube_.dimensions(); ++d) {
      if (cube_.coord(s, d) == cube_.coord(pkt.dst, d)) continue;
      const bool plus = cube_.dor_direction(s, pkt.dst, d);
      const PortId port = KaryNCube::port_of(d, plus);
      const auto lane = best_bindable_lane(sw.port(port), 0, vcs_);
      if (!lane) return std::nullopt;
      return OutputChoice{port, *lane};  // no dateline: cyclic dependency
    }
    const PortId local = cube_.local_port();
    const auto lane = best_bindable_lane(
        sw.port(local), 0, static_cast<unsigned>(sw.port(local).out.size()));
    if (!lane) return std::nullopt;
    return OutputChoice{local, *lane};
  }

 private:
  const KaryNCube& cube_;
  unsigned vcs_;
};

SimConfig faulty_ring_config(unsigned vcs) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 8;
  config.net.n = 1;  // a plain ring
  config.net.vcs = vcs;
  config.net.buffer_depth = 2;
  config.traffic.pattern = PatternKind::kTornado;  // everyone pushes +
  config.traffic.offered_fraction = 1.0;
  config.timing.warmup_cycles = 500;
  config.timing.horizon_cycles = 20000;
  config.timing.deadlock_threshold = 2000;
  config.custom_routing = [vcs](const Topology& topo)
      -> std::unique_ptr<RoutingAlgorithm> {
    return std::make_unique<FaultyRingRouting>(
        dynamic_cast<const KaryNCube&>(topo), vcs);
  };
  return config;
}

TEST(DeadlockWatchdog, FlagsFaultyRingRouting) {
  Network network(faulty_ring_config(1));
  const SimulationResult& result = network.run();
  EXPECT_TRUE(result.deadlocked);
  // The run must have stopped early rather than spinning to the horizon.
  EXPECT_LT(network.cycle(), 20000U);
  EXPECT_GT(result.packets_in_flight_end, 0U);
}

TEST(DeadlockWatchdog, MoreLanesOnlyDelayTheWedge) {
  // Extra virtual channels without a dateline are more buffering, not a
  // deadlock-avoidance scheme.
  Network network(faulty_ring_config(2));
  const SimulationResult& result = network.run();
  EXPECT_TRUE(result.deadlocked);
}

TEST(DeadlockWatchdog, CorrectRoutingOnSameWorkloadSurvives) {
  // Identical topology/load with the proper two-virtual-network algorithm:
  // no deadlock, sustained delivery.
  SimConfig config = faulty_ring_config(4);
  config.custom_routing = nullptr;
  config.net.routing = RoutingKind::kCubeDeterministic;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 100U);
}

TEST(DeadlockWatchdog, QuiescentNetworkIsNotDeadlocked) {
  // No packets in flight: the watchdog must never fire on an idle network.
  SimConfig config = faulty_ring_config(1);
  config.traffic.offered_fraction = 0.0;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(network.cycle(), 20000U);
}

TEST(CustomRouting, FactoryReceivesBuiltTopology) {
  bool called = false;
  SimConfig config = faulty_ring_config(1);
  config.traffic.offered_fraction = 0.0;
  config.custom_routing = [&called](const Topology& topo) {
    called = true;
    EXPECT_EQ(topo.node_count(), 8U);
    return std::make_unique<FaultyRingRouting>(
        dynamic_cast<const KaryNCube&>(topo), 1);
  };
  Network network(config);
  EXPECT_TRUE(called);
  EXPECT_EQ(network.routing().name(), "faulty");
}

}  // namespace
}  // namespace smart
