// Property tests for the topology-synthesis subsystem (src/synth/):
// spec parsing and registry errors, design solvers, derived clocks, and —
// for every generated family at three sizes including >= 4K nodes —
// node-count exactness, radix bounds, single-component connectivity,
// port-wiring bijectivity, and a deadlock-freedom smoke run with a tight
// watchdog.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/network.hpp"
#include "synth/design.hpp"
#include "synth/families.hpp"
#include "topology/registry.hpp"
#include "topology/two_level_fattree.hpp"

namespace smart {
namespace {

std::unique_ptr<Topology> build_spec(const std::string& text) {
  ensure_builtin_families();
  TopoSpec spec;
  std::string error;
  EXPECT_TRUE(parse_topology_spec(text, &spec, &error)) << error;
  auto topo = TopologyRegistry::instance().build(spec, &error);
  EXPECT_NE(topo, nullptr) << text << ": " << error;
  return topo;
}

// Every connected switch-to-switch port pairs with exactly one reverse
// port (peer of peer is self), and every terminal attachment round-trips.
void expect_wiring_bijective(const Topology& topo) {
  for (SwitchId s = 0; s < topo.switch_count(); ++s) {
    std::set<std::pair<SwitchId, PortId>> seen;
    for (PortId p = 0; p < topo.ports_per_switch(); ++p) {
      const PortPeer peer = topo.port_peer(s, p);
      if (peer.kind == PeerKind::kUnconnected) continue;
      if (peer.kind == PeerKind::kTerminal) {
        const Attachment at = topo.terminal_attachment(peer.id);
        ASSERT_EQ(at.sw, s);
        ASSERT_EQ(at.port, p);
        continue;
      }
      // No two ports of s may land on the same remote (switch, port).
      ASSERT_TRUE(seen.emplace(peer.id, peer.port).second)
          << "switch " << s << " wires two ports to the same lane";
      const PortPeer back = topo.port_peer(peer.id, peer.port);
      ASSERT_EQ(back.kind, PeerKind::kSwitch);
      ASSERT_EQ(back.id, s) << "peer-of-peer switch mismatch at " << s;
      ASSERT_EQ(back.port, p) << "peer-of-peer port mismatch at " << s;
    }
  }
  for (NodeId node = 0; node < topo.node_count(); ++node) {
    const Attachment at = topo.terminal_attachment(node);
    const PortPeer peer = topo.port_peer(at.sw, at.port);
    ASSERT_EQ(peer.kind, PeerKind::kTerminal);
    ASSERT_EQ(peer.id, node);
  }
}

// BFS over switch-to-switch links reaches every switch.
void expect_single_component(const Topology& topo) {
  std::vector<char> visited(topo.switch_count(), 0);
  std::queue<SwitchId> frontier;
  frontier.push(0);
  visited[0] = 1;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const SwitchId s = frontier.front();
    frontier.pop();
    for (PortId p = 0; p < topo.ports_per_switch(); ++p) {
      const PortPeer peer = topo.port_peer(s, p);
      if (peer.kind != PeerKind::kSwitch || visited[peer.id]) continue;
      visited[peer.id] = 1;
      ++count;
      frontier.push(peer.id);
    }
  }
  EXPECT_EQ(count, topo.switch_count()) << "fabric is disconnected";
}

unsigned connected_ports(const Topology& topo, SwitchId s) {
  unsigned ports = 0;
  for (PortId p = 0; p < topo.ports_per_switch(); ++p) {
    if (topo.port_peer(s, p).kind != PeerKind::kUnconnected) ++ports;
  }
  return ports;
}

struct FamilyCase {
  const char* spec;
  std::size_t nodes;
  unsigned max_radix;  ///< 0 = don't check
};

// Three sizes per generated family, the largest >= 4K nodes.
const FamilyCase kCases[] = {
    {"fattree2:nodes=64,radix=16", 64, 16},
    {"fattree2:nodes=1024,radix=36", 1024, 0 /* spines exceed the leaves */},
    {"fattree2:nodes=4096,radix=36", 4096, 0 /* spines exceed the leaves */},
    {"clos:m=4,n=4,r=8", 32, 8},
    {"clos:m=8,n=8,r=64", 512, 64},
    {"clos:m=16,n=16,r=256", 4096, 256},
    {"torus:nodes=64,dims=3", 64, 7},
    {"torus:nodes=1000,dims=3", 1000, 7},
    {"torus:nodes=4096,dims=3", 4096, 7},
    {"tehcube:k=2,dims=4", 64, 13},
    {"tehcube:k=4,dims=6", 1024, 17},
    {"tehcube:k=4,dims=8", 4096, 21},
};

TEST(SynthTopology, NodeCountExactness) {
  for (const FamilyCase& c : kCases) {
    const auto topo = build_spec(c.spec);
    EXPECT_EQ(topo->node_count(), c.nodes) << c.spec;
  }
}

TEST(SynthTopology, RadixBounds) {
  for (const FamilyCase& c : kCases) {
    if (c.max_radix == 0) continue;
    const auto topo = build_spec(c.spec);
    for (SwitchId s = 0; s < topo->switch_count(); ++s) {
      ASSERT_LE(connected_ports(*topo, s), c.max_radix) << c.spec;
    }
  }
}

TEST(SynthTopology, FatTreeDirectorSpinesBounded) {
  // nodes=4096,radix=36 designs n=16, L=256, S=20: the leaves keep the
  // radix budget, the spines are director-class 256-port crossbars.
  const auto topo = build_spec("fattree2:nodes=4096,radix=36");
  const auto* ft = dynamic_cast<const TwoLevelFatTree*>(topo.get());
  ASSERT_NE(ft, nullptr);
  EXPECT_EQ(ft->leaves(), 256u);
  EXPECT_EQ(ft->spines(), 20u);
  EXPECT_EQ(ft->terminals_per_leaf(), 16u);
  for (SwitchId s = 0; s < ft->leaves(); ++s) {
    ASSERT_LE(connected_ports(*topo, s), 36u);
  }
  for (SwitchId s = ft->leaves(); s < topo->switch_count(); ++s) {
    ASSERT_EQ(connected_ports(*topo, s), 256u);
  }
}

TEST(SynthTopology, Connectivity) {
  for (const FamilyCase& c : kCases) {
    const auto topo = build_spec(c.spec);
    expect_single_component(*topo);
  }
}

TEST(SynthTopology, PortWiringBijective) {
  for (const FamilyCase& c : kCases) {
    const auto topo = build_spec(c.spec);
    expect_wiring_bijective(*topo);
  }
}

// One loaded run per family and size with a watchdog tight enough to fire
// within the horizon: a routing deadlock (or a hop-count/credit
// accounting bug, which the engine asserts on) cannot hide.
TEST(SynthTopology, DeadlockFreedomSmoke) {
  struct SmokeCase {
    const char* spec;
    RoutingKind routing;
    double load;
    std::uint64_t horizon;
  };
  const SmokeCase smokes[] = {
      {"fattree2:nodes=64,radix=16", RoutingKind::kUpDown, 0.6, 3000},
      {"fattree2:nodes=1024,radix=36", RoutingKind::kUpDown, 0.5, 1500},
      {"fattree2:nodes=4096,radix=36", RoutingKind::kUpDown, 0.25, 800},
      {"clos:m=4,n=4,r=8", RoutingKind::kUpDown, 0.6, 3000},
      {"clos:m=8,n=8,r=64", RoutingKind::kUpDown, 0.5, 1500},
      {"clos:m=16,n=16,r=256", RoutingKind::kUpDown, 0.25, 800},
      {"torus:nodes=64,dims=3", RoutingKind::kTorusDor, 0.6, 3000},
      {"torus:nodes=1000,dims=3", RoutingKind::kTorusDor, 0.5, 1500},
      {"torus:nodes=4096,dims=3", RoutingKind::kTorusDor, 0.25, 800},
      {"tehcube:k=2,dims=4", RoutingKind::kTorusDor, 0.6, 3000},
      {"tehcube:k=4,dims=6", RoutingKind::kTorusDor, 0.5, 1500},
      {"tehcube:k=4,dims=8", RoutingKind::kTorusDor, 0.25, 800},
  };
  for (const SmokeCase& smoke : smokes) {
    TopoSpec spec;
    std::string error;
    ASSERT_TRUE(parse_topology_spec(smoke.spec, &spec, &error)) << error;
    SimConfig config;
    config.net.topology = spec.family;
    config.net.topo_params = spec.params;
    config.net.routing = smoke.routing;
    config.traffic.offered_fraction = smoke.load;
    config.timing.warmup_cycles = 100;
    config.timing.horizon_cycles = smoke.horizon;
    config.timing.deadlock_threshold = 400;
    Network network(config);
    const SimulationResult& result = network.run();
    EXPECT_FALSE(result.deadlocked) << smoke.spec;
    EXPECT_GT(result.delivered_packets, 0u) << smoke.spec;
  }
}

// ---- Spec parsing and registry errors ----------------------------------

TEST(SynthSpec, ParseFamilyAndParams) {
  TopoSpec spec;
  std::string error;
  ASSERT_TRUE(parse_topology_spec("clos:m=8,n=8,r=16", &spec, &error));
  EXPECT_EQ(spec.family, "clos");
  ASSERT_EQ(spec.params.size(), 3u);
  EXPECT_EQ(spec.params[0].first, "m");
  EXPECT_EQ(spec.params[0].second, "8");
  unsigned value = 0;
  EXPECT_TRUE(spec.get_unsigned("r", &value, &error));
  EXPECT_EQ(value, 16u);
}

TEST(SynthSpec, ParseRejectsMalformed) {
  TopoSpec spec;
  std::string error;
  EXPECT_FALSE(parse_topology_spec("", &spec, &error));
  EXPECT_FALSE(parse_topology_spec(":k=4", &spec, &error));
  EXPECT_FALSE(parse_topology_spec("torus:nodes", &spec, &error));
  EXPECT_FALSE(parse_topology_spec("torus:=4", &spec, &error));
  EXPECT_FALSE(parse_topology_spec("torus:nodes=4,nodes=8", &spec, &error));
  EXPECT_FALSE(parse_topology_spec("torus:nodes=4,", &spec, &error));
}

TEST(SynthSpec, UnknownFamilyListsUsage) {
  ensure_builtin_families();
  TopoSpec spec;
  spec.family = "dragonfly";
  std::string error;
  EXPECT_EQ(TopologyRegistry::instance().build(spec, &error), nullptr);
  EXPECT_NE(error.find("dragonfly"), std::string::npos);
  EXPECT_NE(error.find("fattree2"), std::string::npos) << error;
  EXPECT_NE(error.find("clos"), std::string::npos) << error;
}

TEST(SynthSpec, UnknownParamErrors) {
  ensure_builtin_families();
  TopoSpec spec;
  std::string error;
  ASSERT_TRUE(parse_topology_spec("clos:m=8,q=7", &spec, &error));
  EXPECT_EQ(TopologyRegistry::instance().build(spec, &error), nullptr);
  EXPECT_NE(error.find("'q'"), std::string::npos) << error;
}

TEST(SynthSpec, MalformedValueErrors) {
  ensure_builtin_families();
  TopoSpec spec;
  std::string error;
  ASSERT_TRUE(parse_topology_spec("torus:nodes=abc", &spec, &error));
  EXPECT_EQ(TopologyRegistry::instance().build(spec, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(SynthSpec, FifthFamilyIsOneRegistration) {
  // The acceptance bar for the plugin design: registering a family makes
  // it buildable through every registry path with no other changes.
  ensure_builtin_families();
  TopologyFamily fam;
  fam.name = "testring";
  fam.grammar = "testring:k=K";
  fam.summary = "unit-test ring";
  fam.default_routing = "dor";
  fam.build = [](const TopoSpec& spec,
                 std::string* error) -> std::unique_ptr<Topology> {
    unsigned k = 8;
    if (!spec.get_unsigned("k", &k, error)) return nullptr;
    return TopologyRegistry::instance().build(
        [&] {
          TopoSpec ring;
          ring.family = "torus";
          ring.params = {{"radices", std::to_string(k)}};
          return ring;
        }(),
        error);
  };
  TopologyRegistry::instance().add(fam);
  const auto topo = build_spec("testring:k=12");
  EXPECT_EQ(topo->node_count(), 12u);
  EXPECT_NE(TopologyRegistry::instance().usage().find("testring"),
            std::string::npos);
}

// ---- Design solvers and derived clocks ---------------------------------

TEST(SynthDesign, BalancedRadices) {
  std::vector<unsigned> radices;
  std::string error;
  ASSERT_TRUE(balanced_radices(4096, 3, &radices, &error));
  EXPECT_EQ(radices, (std::vector<unsigned>{16, 16, 16}));
  ASSERT_TRUE(balanced_radices(1000, 3, &radices, &error));
  EXPECT_EQ(radices, (std::vector<unsigned>{10, 10, 10}));
  ASSERT_TRUE(balanced_radices(2048, 3, &radices, &error));
  std::uint64_t product = 1;
  for (unsigned r : radices) {
    EXPECT_GE(r, 2u);
    product *= r;
  }
  EXPECT_EQ(product, 2048u);
  EXPECT_FALSE(balanced_radices(4097, 3, &radices, &error));  // 17*241
  EXPECT_FALSE(balanced_radices(8, 4, &radices, &error));     // < 2^dims
}

TEST(SynthDesign, LargestDivisor) {
  EXPECT_EQ(largest_divisor_at_most(4096, 18), 16u);
  EXPECT_EQ(largest_divisor_at_most(1000, 18), 10u);
  EXPECT_EQ(largest_divisor_at_most(17, 8), 1u);
}

TEST(SynthDesign, TorusClockIsWireLimited) {
  // 16x16x16: every dimension gets its own physical axis, so wires stay
  // at the first-fold length 2 * 0.3 m; the clock still exceeds the
  // paper's short-wire 2-cube clock because of the flight time.
  const DerivedClock clock = torus_derived_clock({16, 16, 16}, 4);
  EXPECT_NEAR(clock.wire_m, 0.6, 1e-9);
  EXPECT_GT(clock.link_ns, clock.routing_ns);
  EXPECT_GT(clock.link_ns, clock.crossbar_ns);
  EXPECT_NEAR(clock.clock_ns(), 6.34 + 0.5 * 5.0, 1e-6);
  // A fourth dimension folds over the first axis and stretches by the
  // first radix: 2 * 16 * 0.3 m.
  const DerivedClock clock4 = torus_derived_clock({16, 16, 16, 16}, 4);
  EXPECT_NEAR(clock4.wire_m, 9.6, 1e-9);
  EXPECT_GT(clock4.clock_ns(), clock.clock_ns());
}

TEST(SynthDesign, FatTreeClockScalesWithFloorPlan) {
  // 4096 nodes: 64 cabinets in an 8x8 grid; the central-spine cable run
  // dominates all three phase delays.
  const DerivedClock clock = fattree_derived_clock(256, 20, 16, 1, 4);
  EXPECT_NEAR(clock.wire_m, 0.707 * 8 * 1.2 + 2.0, 1e-9);
  EXPECT_GT(clock.link_ns, clock.routing_ns);
  EXPECT_GT(clock.clock_ns(), 40.0);
  // A 64-node machine fits one cabinet: near-short wires.
  const DerivedClock small = fattree_derived_clock(8, 8, 8, 1, 4);
  EXPECT_LT(small.wire_m, 3.0);
  EXPECT_LT(small.clock_ns(), clock.clock_ns());
}

TEST(SynthDesign, DerivedClockFlowsIntoScale) {
  NetworkSpec spec;
  spec.topology = "torus";
  spec.topo_params = {{"nodes", "4096"}, {"dims", "3"}};
  spec.routing = RoutingKind::kTorusDor;
  const NormalizedScale scale = scale_for(spec);
  EXPECT_EQ(scale.nodes, 4096u);
  EXPECT_NEAR(scale.clock_ns, 6.34 + 0.5 * 5.0, 1e-6);
  const RouterDelays delays = delays_for(spec);
  EXPECT_NEAR(delays.clock_ns(), scale.clock_ns, 1e-9);
}

}  // namespace
}  // namespace smart
