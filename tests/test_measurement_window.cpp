// Measurement-window accounting: the post-horizon drain must not dilute
// the measured window, the summary tables read the paper's normal-traffic
// point, and replication seeds never reuse a neighbouring stream.
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "core/network.hpp"

namespace smart {
namespace {

SimConfig base_config(double load) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = load;
  config.traffic.seed = 42;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 3000;
  return config;
}

// The headline regression: draining after the horizon used to keep the
// window counters live, so every drained delivery inflated the accepted
// fraction while the elapsed drain cycles deflated the per-cycle rates.
// The measured window must be identical with and without the drain; the
// drain contributes only its own drain_* fields.
TEST(MeasurementWindow, DrainDoesNotContaminateWindow) {
  SimConfig plain = base_config(0.6);
  SimConfig drained = plain;
  drained.timing.drain_after_horizon = true;
  Network net_plain(plain);
  Network net_drained(drained);
  const SimulationResult& a = net_plain.run();
  const SimulationResult& b = net_drained.run();

  EXPECT_DOUBLE_EQ(a.accepted_fraction, b.accepted_fraction);
  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.delivered_flits, b.delivered_flits);
  EXPECT_EQ(a.measured_cycles, b.measured_cycles);
  EXPECT_EQ(a.latency_cycles.count(), b.latency_cycles.count());
  EXPECT_DOUBLE_EQ(a.latency_cycles.mean(), b.latency_cycles.mean());
  EXPECT_DOUBLE_EQ(a.link_utilization.mean(), b.link_utilization.mean());

  // The drain itself ran and is reported separately.
  EXPECT_EQ(a.drain_cycles, 0U);
  EXPECT_EQ(a.drain_delivered_packets, 0U);
  EXPECT_GT(b.drain_cycles, 0U);
  EXPECT_GT(b.drain_delivered_packets, 0U);  // 0.6 load has packets in flight
  EXPECT_GT(b.drain_delivered_flits, b.drain_delivered_packets);
  EXPECT_TRUE(b.drained_clean);
}

TEST(MeasurementWindow, MeasuredCyclesStopAtHorizon) {
  SimConfig config = base_config(0.5);
  config.timing.drain_after_horizon = true;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_EQ(r.measured_cycles,
            config.timing.horizon_cycles - config.timing.warmup_cycles);
}

SimulationResult synthetic_point(double offered, bool delivered) {
  SimulationResult r;
  r.offered_fraction = offered;
  r.accepted_fraction = delivered ? offered : 0.0;
  if (delivered) r.latency_cycles.add(30.0);
  return r;
}

TEST(MeasurementWindow, NormalTrafficIndexPicksLastPointUnderOneThird) {
  std::vector<SimulationResult> sweep;
  for (double load : {0.1, 0.2, 0.3, 0.5, 0.8}) {
    sweep.push_back(synthetic_point(load, true));
  }
  // 0.3 <= 1/3 < 0.5: the normal-traffic point is index 2.
  EXPECT_EQ(normal_traffic_index(sweep), 2U);
}

TEST(MeasurementWindow, NormalTrafficIndexSkipsEmptyPoints) {
  std::vector<SimulationResult> sweep;
  sweep.push_back(synthetic_point(0.1, true));
  sweep.push_back(synthetic_point(0.3, false));  // no deliveries: unusable
  sweep.push_back(synthetic_point(0.6, true));
  EXPECT_EQ(normal_traffic_index(sweep), 0U);
}

TEST(MeasurementWindow, NormalTrafficIndexEmptyWhenNothingQualifies) {
  std::vector<SimulationResult> sweep;
  sweep.push_back(synthetic_point(0.5, true));
  sweep.push_back(synthetic_point(0.9, true));
  EXPECT_EQ(normal_traffic_index(sweep), sweep.size());
}

TEST(MeasurementWindow, SummaryTableLabelsNormalTrafficColumn) {
  Curve curve;
  curve.label = "cube";
  for (double load : {0.2, 0.3, 0.6, 0.9}) {
    curve.points.push_back(synthetic_point(load, true));
  }
  const Table table = saturation_summary_table({curve});
  EXPECT_NE(table.to_text().find("latency@norm (ns)"), std::string::npos);
}

// The old seed derivation was base.seed + rep: replication r of seed s
// collided with replication r-1 of seed s+1. The mixed derivation keeps
// every (seed, rep) pair on its own stream.
TEST(ReplicationSeeds, PairwiseDisjointAcrossSeedsAndReps) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    for (std::uint64_t rep = 0; rep < 5; ++rep) {
      EXPECT_TRUE(seen.insert(replication_seed(seed, rep)).second)
          << "collision at seed " << seed << " rep " << rep;
    }
  }
}

TEST(ReplicationSeeds, ReplicationZeroIsTheBaseSeed) {
  EXPECT_EQ(replication_seed(7, 0), 7U);
  EXPECT_EQ(replication_seed(12345, 0), 12345U);
}

TEST(ReplicationSeeds, NoDiagonalCollisions) {
  // The exact structural failure of seed + rep.
  for (std::uint64_t seed = 1; seed < 20; ++seed) {
    for (std::uint64_t rep = 1; rep < 20; ++rep) {
      EXPECT_NE(replication_seed(seed, rep), replication_seed(seed + 1, rep - 1));
      EXPECT_NE(replication_seed(seed, rep), seed + rep);
    }
  }
}

TEST(ReplicationSeeds, SingleReplicationMatchesPlainRun) {
  SimConfig config = base_config(0.4);
  Network network(config);
  const SimulationResult& plain = network.run();
  const auto replicated = run_replicated(config, {0.4}, 1, 1);
  ASSERT_EQ(replicated.size(), 1U);
  EXPECT_DOUBLE_EQ(replicated[0].accepted_fraction.mean(),
                   plain.accepted_fraction);
  EXPECT_DOUBLE_EQ(replicated[0].latency_mean_cycles.mean(),
                   plain.latency_cycles.mean());
}

}  // namespace
}  // namespace smart
