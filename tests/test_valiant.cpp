// Valiant randomized two-phase routing: correctness, deadlock freedom and
// the oblivious load-balancing behavior it exists for.
#include <gtest/gtest.h>

#include "core/network.hpp"

namespace smart {
namespace {

SimConfig valiant_config(PatternKind pattern, double load, unsigned k = 8) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = k;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeValiant;
  config.net.vcs = 4;
  config.traffic.pattern = pattern;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = 1000;
  config.timing.horizon_cycles = 8000;
  return config;
}

TEST(Valiant, DeliversSinglePacket) {
  SimConfig config = valiant_config(PatternKind::kUniform, 0.0);
  Network network(config);
  network.enqueue_packet(0, 37);
  for (int i = 0; i < 2000 && network.packets().in_flight() > 0; ++i) {
    network.step();
  }
  EXPECT_EQ(network.consumed_flits(), 16U);
}

TEST(Valiant, AllPairsDeliver) {
  SimConfig config = valiant_config(PatternKind::kUniform, 0.0, 4);
  Network network(config);
  unsigned packets = 0;
  for (NodeId src = 0; src < 16; ++src) {
    for (NodeId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      network.enqueue_packet(src, dst);
      ++packets;
    }
  }
  for (int i = 0; i < 30000 && network.packets().in_flight() > 0; ++i) {
    network.step();
  }
  EXPECT_EQ(network.consumed_flits(), packets * 16U);
  EXPECT_FALSE(network.deadlocked());
}

TEST(Valiant, HopsExceedMinimalOnAverage) {
  SimConfig config = valiant_config(PatternKind::kUniform, 0.2);
  Network network(config);
  const SimulationResult& result = network.run();
  ASSERT_GT(result.hops.count(), 100U);
  // Two uniform phases roughly double the average distance (+2 interface
  // crossings); it must clearly exceed the minimal average.
  const double minimal_avg = network.topology().average_distance() + 2.0;
  EXPECT_GT(result.hops.mean(), minimal_avg * 1.4);
}

TEST(Valiant, NoDeadlockUnderOverload) {
  for (PatternKind pattern :
       {PatternKind::kUniform, PatternKind::kTornado,
        PatternKind::kTranspose, PatternKind::kComplement}) {
    Network network(valiant_config(pattern, 1.0));
    const SimulationResult& result = network.run();
    EXPECT_FALSE(result.deadlocked) << to_string(pattern);
    EXPECT_GT(result.delivered_packets, 0U) << to_string(pattern);
  }
}

TEST(Valiant, ObliviousToAdversarialStructure) {
  // Valiant's throughput must be nearly pattern-independent: tornado and
  // uniform land within a small factor of each other.
  Network uniform(valiant_config(PatternKind::kUniform, 1.0));
  Network tornado(valiant_config(PatternKind::kTornado, 1.0));
  const double uniform_accepted = uniform.run().accepted_fraction;
  const double tornado_accepted = tornado.run().accepted_fraction;
  EXPECT_GT(uniform_accepted, 0.15);
  EXPECT_GT(tornado_accepted, 0.7 * uniform_accepted);
  EXPECT_LT(tornado_accepted, 1.4 * uniform_accepted);
}

TEST(Valiant, CostsHalfTheUniformCapacity) {
  // On uniform traffic Valiant pays ~2x path length, so it saturates well
  // below the minimal-adaptive algorithm.
  SimConfig config = valiant_config(PatternKind::kUniform, 1.0);
  Network valiant(config);
  config.net.routing = RoutingKind::kCubeDuato;
  Network duato(config);
  EXPECT_LT(valiant.run().accepted_fraction,
            0.75 * duato.run().accepted_fraction);
}

TEST(Valiant, RequiresFourVcs) {
  EXPECT_EQ(to_string(RoutingKind::kCubeValiant), "Valiant");
  SimConfig config = valiant_config(PatternKind::kUniform, 0.2);
  config.net.vcs = 8;  // 2 lanes per (phase, VN): also legal
  Network network(config);
  EXPECT_FALSE(network.run().deadlocked);
}

}  // namespace
}  // namespace smart
