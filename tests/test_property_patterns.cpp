// Property suite over traffic patterns and node counts: permutation
// patterns must be bijections (with fixed points mapped to "no injection"),
// the paper's three bit patterns are involutions, and random patterns stay
// in range and deterministic per seed.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "traffic/pattern.hpp"
#include "util/bits.hpp"

namespace smart {
namespace {

struct Case {
  PatternKind kind;
  std::size_t nodes;
  unsigned k;  // tornado geometry
  unsigned n;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = to_string(info.param.kind);
  for (char& c : name) {
    if (c == ' ') c = '_';
  }
  return name + "_" + std::to_string(info.param.nodes);
}

class PermutationProperty : public ::testing::TestWithParam<Case> {};

TEST_P(PermutationProperty, IsBijective) {
  const Case& param = GetParam();
  const auto pattern =
      make_pattern(param.kind, param.nodes, param.k, param.n, 7);
  ASSERT_TRUE(pattern->is_permutation());
  const auto table = pattern->destination_table();
  std::set<NodeId> images(table.begin(), table.end());
  EXPECT_EQ(images.size(), param.nodes);
  for (NodeId dst : table) EXPECT_LT(dst, param.nodes);
}

TEST_P(PermutationProperty, FixedPointsNeverInject) {
  const Case& param = GetParam();
  const auto pattern =
      make_pattern(param.kind, param.nodes, param.k, param.n, 7);
  Rng rng(1);
  const auto table = pattern->destination_table();
  for (NodeId src = 0; src < param.nodes; ++src) {
    const auto dst = pattern->destination(src, rng);
    if (table[src] == src) {
      EXPECT_FALSE(dst.has_value());
    } else {
      ASSERT_TRUE(dst.has_value());
      EXPECT_EQ(*dst, table[src]);
      EXPECT_NE(*dst, src);
    }
  }
}

TEST_P(PermutationProperty, StableAcrossCalls) {
  const Case& param = GetParam();
  const auto pattern =
      make_pattern(param.kind, param.nodes, param.k, param.n, 7);
  EXPECT_EQ(pattern->destination_table(), pattern->destination_table());
}

INSTANTIATE_TEST_SUITE_P(
    Permutations, PermutationProperty,
    ::testing::Values(Case{PatternKind::kComplement, 16, 0, 0},
                      Case{PatternKind::kComplement, 256, 0, 0},
                      Case{PatternKind::kComplement, 1024, 0, 0},
                      Case{PatternKind::kBitReversal, 16, 0, 0},
                      Case{PatternKind::kBitReversal, 256, 0, 0},
                      Case{PatternKind::kBitReversal, 1024, 0, 0},
                      Case{PatternKind::kTranspose, 16, 0, 0},
                      Case{PatternKind::kTranspose, 256, 0, 0},
                      Case{PatternKind::kTranspose, 4096, 0, 0},
                      Case{PatternKind::kShuffle, 64, 0, 0},
                      Case{PatternKind::kShuffle, 256, 0, 0},
                      Case{PatternKind::kNeighbor, 100, 0, 0},
                      Case{PatternKind::kNeighbor, 256, 0, 0},
                      Case{PatternKind::kTornado, 256, 16, 2},
                      Case{PatternKind::kTornado, 64, 4, 3},
                      Case{PatternKind::kBitRotation, 64, 0, 0},
                      Case{PatternKind::kBitRotation, 256, 0, 0},
                      Case{PatternKind::kDigitReversal, 256, 16, 2},
                      Case{PatternKind::kDigitReversal, 64, 4, 3},
                      Case{PatternKind::kRandomPermutation, 256, 0, 0},
                      Case{PatternKind::kRandomPermutation, 333, 0, 0}),
    case_name);

class InvolutionProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InvolutionProperty, PaperPatternsAreInvolutions) {
  const std::size_t nodes = GetParam();
  for (PatternKind kind : {PatternKind::kComplement, PatternKind::kBitReversal,
                           PatternKind::kTranspose}) {
    const auto pattern = make_pattern(kind, nodes);
    const auto table = pattern->destination_table();
    for (NodeId src = 0; src < nodes; ++src) {
      EXPECT_EQ(table[table[src]], src) << to_string(kind) << " at " << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, InvolutionProperty,
                         ::testing::Values(4, 16, 64, 256, 1024, 4096));

class UniformProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UniformProperty, InRangeAndNeverSelf) {
  const std::size_t nodes = GetParam();
  UniformPattern pattern(nodes);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const NodeId src = static_cast<NodeId>(rng.below(nodes));
    const auto dst = pattern.destination(src, rng);
    ASSERT_TRUE(dst.has_value());
    EXPECT_LT(*dst, nodes);
    EXPECT_NE(*dst, src);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UniformProperty,
                         ::testing::Values(2, 3, 16, 255, 256, 1000));

TEST(PatternGeometry, TransposeDistanceClassesScale) {
  // The §8 distance-class law holds for every even-n quaternary tree:
  // k^(n/2) fixed points, (k-1) k^(n/2+i-1) nodes at distance n+2i.
  for (unsigned n : {2U, 4U}) {
    const std::size_t nodes = ipow(4, n);
    const auto pattern = make_pattern(PatternKind::kTranspose, nodes);
    Rng rng(1);
    std::size_t fixed = 0;
    for (NodeId src = 0; src < nodes; ++src) {
      if (!pattern->destination(src, rng)) ++fixed;
    }
    EXPECT_EQ(fixed, ipow(4, n / 2)) << "n=" << n;
  }
}

}  // namespace
}  // namespace smart
