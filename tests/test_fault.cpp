// FaultPlan / FaultState unit tests: deterministic schedules, parsing, and
// the health masks the engine queries every cycle (docs/MODEL.md §8).
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"

namespace smart {
namespace {

TEST(SwitchLinks, CanonicalEnumerationIsMutualAndUnique) {
  const KaryNTree tree(4, 2);
  const auto links = switch_links(tree);
  // A 4-ary 2-tree is a complete bipartite graph between 4 roots and 4
  // leaf switches: 16 bidirectional channels.
  EXPECT_EQ(links.size(), 16U);
  std::set<std::pair<SwitchId, PortId>> seen;
  for (const auto& [s, p] : links) {
    EXPECT_TRUE(seen.insert({s, p}).second) << "duplicate link endpoint";
    const PortPeer peer = tree.port_peer(s, p);
    ASSERT_EQ(peer.kind, PeerKind::kSwitch);
    // Listed from the lexicographically smaller endpoint, and the far
    // endpoint must not be listed again.
    EXPECT_LT(std::make_pair(s, p), std::make_pair(peer.id, peer.port));
    EXPECT_EQ(seen.count({peer.id, peer.port}), 0U);
  }
}

TEST(FaultPlan, SameSeedSameFaults) {
  const KaryNCube cube(8, 2);
  FaultPlan a;
  a.add_random_links(8, /*seed=*/42, /*start=*/0);
  FaultPlan b;
  b.add_random_links(8, /*seed=*/42, /*start=*/0);
  EXPECT_EQ(a.materialize(cube), b.materialize(cube));
}

TEST(FaultPlan, DifferentSeedDifferentFaults) {
  const KaryNCube cube(8, 2);
  FaultPlan a;
  a.add_random_links(8, /*seed=*/42, /*start=*/0);
  FaultPlan b;
  b.add_random_links(8, /*seed=*/43, /*start=*/0);
  EXPECT_NE(a.materialize(cube), b.materialize(cube));
}

TEST(FaultPlan, IncreasingCountsAreNestedSets) {
  const KaryNTree tree(4, 4);
  std::vector<FaultSpec> previous;
  for (unsigned count : {1U, 2U, 4U, 8U, 16U}) {
    FaultPlan plan;
    plan.add_random_links(count, /*seed=*/7, /*start=*/0);
    const auto faults = plan.materialize(tree);
    ASSERT_EQ(faults.size(), count);
    // The first |previous| entries are exactly the previous set.
    for (std::size_t i = 0; i < previous.size(); ++i) {
      EXPECT_EQ(faults[i], previous[i]);
    }
    previous = faults;
  }
}

TEST(FaultPlan, FractionRoundsToWholeLinks) {
  const KaryNTree tree(4, 2);  // 16 switch-to-switch links
  FaultPlan plan;
  plan.add_random_fraction(0.5, /*seed=*/1, /*start=*/0);
  EXPECT_EQ(plan.materialize(tree).size(), 8U);
}

TEST(FaultPlan, RandomFaultsAreDistinctLinks) {
  const KaryNCube cube(4, 2);
  FaultPlan plan;
  plan.add_random_links(1000, /*seed=*/5, /*start=*/0);  // clamps to all
  const auto faults = plan.materialize(cube);
  EXPECT_EQ(faults.size(), switch_links(cube).size());
  std::set<std::pair<SwitchId, PortId>> seen;
  for (const FaultSpec& f : faults) {
    EXPECT_TRUE(seen.insert({f.sw, f.port}).second);
  }
}

TEST(FaultPlan, ParseRoundTrip) {
  const std::string spec = "link:5:2@3000,switch:7@100:900,link:0:1@0";
  const auto plan = FaultPlan::parse(spec);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->to_string(), spec);
  ASSERT_EQ(plan->explicit_faults().size(), 3U);
  const FaultSpec& link = plan->explicit_faults()[0];
  EXPECT_EQ(link.kind, FaultKind::kLink);
  EXPECT_EQ(link.sw, 5U);
  EXPECT_EQ(link.port, 2U);
  EXPECT_EQ(link.start_cycle, 3000U);
  EXPECT_TRUE(link.permanent());
  const FaultSpec& sw = plan->explicit_faults()[1];
  EXPECT_EQ(sw.kind, FaultKind::kSwitch);
  EXPECT_EQ(sw.start_cycle, 100U);
  EXPECT_EQ(sw.repair_cycle, 900U);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  for (const char* bad :
       {"link:5@3000",       // missing port
        "link:5:2",          // missing activation window
        "switch:1@5:3",      // repair before activation
        "bogus:1@2",         // unknown kind
        "link:a:b@1",        // not numbers
        "link:1:2@x",        // window not a number
        "switch:@1"}) {      // missing switch id
    EXPECT_FALSE(FaultPlan::parse(bad).has_value()) << bad;
  }
}

TEST(FaultPlan, ParseEmptyIsEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlan, MaterializeValidatesAgainstTopology) {
  const KaryNTree tree(4, 2);
  FaultPlan bad_switch;
  bad_switch.add_switch(999, 0);
  EXPECT_DEATH((void)bad_switch.materialize(tree), "outside the topology");
  FaultPlan bad_port;
  bad_port.add_link(0, 99, 0);
  EXPECT_DEATH((void)bad_port.materialize(tree), "outside the switch radix");
  // Port 0 of a root switch in a 2-level tree is a down link to a leaf
  // switch; ports k..2k-1 of a root are unconnected.
  FaultPlan unconnected;
  unconnected.add_link(0, 4, 0);
  EXPECT_DEATH((void)unconnected.materialize(tree), "unconnected port");
}

TEST(FaultState, TransientFaultActivatesAndRepairsOnSchedule) {
  const KaryNTree tree(4, 2);
  FaultPlan plan;
  plan.add_link(4, 4, /*start=*/5, /*repair=*/9);
  FaultState state(tree, plan);
  const PortPeer peer = tree.port_peer(4, 4);
  ASSERT_EQ(peer.kind, PeerKind::kSwitch);
  for (std::uint64_t cycle = 1; cycle <= 12; ++cycle) {
    const auto events = state.advance(cycle);
    const bool should_be_faulted = cycle >= 5 && cycle < 9;
    EXPECT_EQ(state.link_ok(4, 4), !should_be_faulted) << "cycle " << cycle;
    // The peer-side view of the same physical channel agrees.
    EXPECT_EQ(state.link_ok(peer.id, peer.port), !should_be_faulted);
    EXPECT_EQ(state.any_active(), should_be_faulted);
    if (cycle == 5 || cycle == 9) {
      ASSERT_EQ(events.size(), 1U);
      EXPECT_EQ(events[0].activated, cycle == 5);
    } else {
      EXPECT_TRUE(events.empty());
    }
  }
}

TEST(FaultState, ActivationCycleZeroClampsToFirstCycle) {
  const KaryNTree tree(4, 2);
  FaultPlan plan;
  plan.add_link(4, 4, /*start=*/0);
  FaultState state(tree, plan);
  EXPECT_TRUE(state.link_ok(4, 4));  // before any advance
  state.advance(1);
  EXPECT_FALSE(state.link_ok(4, 4));
  EXPECT_EQ(state.active_faults(), 1U);
}

TEST(FaultState, SwitchFaultMasksEveryPortAndItsPeers) {
  const KaryNTree tree(4, 2);
  const SwitchId victim = 4;  // a leaf switch: 4 terminals + 4 up links
  FaultPlan plan;
  plan.add_switch(victim, /*start=*/1);
  FaultState state(tree, plan);
  state.advance(1);
  EXPECT_FALSE(state.switch_ok(victim));
  for (PortId p = 0; p < tree.ports_per_switch(); ++p) {
    EXPECT_FALSE(state.link_ok(victim, p));
    const PortPeer peer = tree.port_peer(victim, p);
    if (peer.kind == PeerKind::kSwitch) {
      // The neighbour cannot transmit towards the dead switch...
      EXPECT_FALSE(state.link_ok(peer.id, peer.port));
      EXPECT_TRUE(state.switch_ok(peer.id));
      // ...but its other links stay healthy.
      for (PortId q = 0; q < tree.ports_per_switch(); ++q) {
        if (q == peer.port) continue;
        const PortPeer other = tree.port_peer(peer.id, q);
        if (other.kind == PeerKind::kSwitch && other.id != victim) {
          EXPECT_TRUE(state.link_ok(peer.id, q));
        }
      }
    }
  }
}

TEST(FaultState, RepairRestoresExactlyTheFaultedChannel) {
  const KaryNCube cube(4, 2);
  FaultPlan plan;
  plan.add_link(0, 0, /*start=*/2, /*repair=*/5);
  plan.add_link(5, 1, /*start=*/3);  // permanent
  FaultState state(cube, plan);
  state.advance(4);
  EXPECT_FALSE(state.link_ok(0, 0));
  EXPECT_FALSE(state.link_ok(5, 1));
  EXPECT_EQ(state.active_faults(), 2U);
  state.advance(5);
  EXPECT_TRUE(state.link_ok(0, 0));   // repaired
  EXPECT_FALSE(state.link_ok(5, 1));  // still down
  EXPECT_EQ(state.active_faults(), 1U);
}

TEST(FaultState, AdvanceSkippingCyclesAppliesEverythingDue) {
  const KaryNCube cube(4, 2);
  FaultPlan plan;
  plan.add_link(0, 0, /*start=*/2, /*repair=*/5);
  FaultState state(cube, plan);
  // Jumping straight past both events: activation and repair both fire.
  const auto events = state.advance(100);
  ASSERT_EQ(events.size(), 2U);
  EXPECT_TRUE(events[0].activated);
  EXPECT_FALSE(events[1].activated);
  EXPECT_TRUE(state.link_ok(0, 0));
  EXPECT_FALSE(state.any_active());
}

}  // namespace
}  // namespace smart
