#include "topology/kary_ntree.hpp"

#include <gtest/gtest.h>

#include <map>

#include "traffic/pattern.hpp"

namespace smart {
namespace {

TEST(KaryNTree, PaperNetworkCounts) {
  const KaryNTree tree(4, 4);
  EXPECT_EQ(tree.node_count(), 256U);
  // n levels of k^(n-1) switches: same router count as the 16-ary 2-cube.
  EXPECT_EQ(tree.switch_count(), 256U);
  EXPECT_EQ(tree.switches_per_level(), 64U);
  EXPECT_EQ(tree.ports_per_switch(), 8U);  // 2k
  EXPECT_FALSE(tree.is_direct());
  EXPECT_EQ(tree.name(), "4-ary 4-tree");
}

TEST(KaryNTree, Figure2QuaternaryTwoTree) {
  // Figure 2 of the paper: a 4-ary 2-tree has 16 leaves and two levels of
  // 4 switches; the two levels form a complete bipartite graph.
  const KaryNTree tree(4, 2);
  EXPECT_EQ(tree.node_count(), 16U);
  EXPECT_EQ(tree.switch_count(), 8U);
  for (std::uint64_t word = 0; word < 4; ++word) {
    const SwitchId leaf = tree.switch_id(1, word);
    for (PortId up = 4; up < 8; ++up) {
      const PortPeer peer = tree.port_peer(leaf, up);
      ASSERT_EQ(peer.kind, PeerKind::kSwitch);
      EXPECT_EQ(tree.level_of(peer.id), 0U);
      EXPECT_EQ(tree.word_of(peer.id), up - 4U);  // reaches every root
    }
  }
}

TEST(KaryNTree, LevelWordRoundTrip) {
  const KaryNTree tree(4, 4);
  for (SwitchId s = 0; s < tree.switch_count(); ++s) {
    EXPECT_EQ(tree.switch_id(tree.level_of(s), tree.word_of(s)), s);
  }
}

TEST(KaryNTree, PortPeerIsMutual) {
  const KaryNTree tree(4, 3);
  for (SwitchId s = 0; s < tree.switch_count(); ++s) {
    for (PortId p = 0; p < tree.ports_per_switch(); ++p) {
      const PortPeer peer = tree.port_peer(s, p);
      if (peer.kind != PeerKind::kSwitch) continue;
      const PortPeer back = tree.port_peer(peer.id, peer.port);
      ASSERT_EQ(back.kind, PeerKind::kSwitch) << "switch " << s << " port " << p;
      EXPECT_EQ(back.id, s);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST(KaryNTree, RootUpPortsUnconnected) {
  const KaryNTree tree(4, 4);
  for (std::uint64_t word = 0; word < tree.switches_per_level(); ++word) {
    const SwitchId root = tree.switch_id(0, word);
    for (PortId up = 4; up < 8; ++up) {
      EXPECT_EQ(tree.port_peer(root, up).kind, PeerKind::kUnconnected);
    }
    for (PortId down = 0; down < 4; ++down) {
      EXPECT_EQ(tree.port_peer(root, down).kind, PeerKind::kSwitch);
    }
  }
}

TEST(KaryNTree, TerminalAttachmentConsistent) {
  const KaryNTree tree(4, 4);
  for (NodeId node = 0; node < tree.node_count(); ++node) {
    const Attachment at = tree.terminal_attachment(node);
    EXPECT_EQ(tree.level_of(at.sw), 3U);
    const PortPeer peer = tree.port_peer(at.sw, at.port);
    ASSERT_EQ(peer.kind, PeerKind::kTerminal);
    EXPECT_EQ(peer.id, node);
  }
}

TEST(KaryNTree, LeafSwitchIsAncestorOfItsNodes) {
  const KaryNTree tree(4, 4);
  for (NodeId node = 0; node < tree.node_count(); ++node) {
    const Attachment at = tree.terminal_attachment(node);
    EXPECT_TRUE(tree.is_ancestor(at.sw, node));
    EXPECT_EQ(tree.down_port_towards(at.sw, node), at.port);
  }
}

TEST(KaryNTree, RootIsAncestorOfEverything) {
  const KaryNTree tree(4, 3);
  for (std::uint64_t word = 0; word < tree.switches_per_level(); ++word) {
    const SwitchId root = tree.switch_id(0, word);
    for (NodeId node = 0; node < tree.node_count(); ++node) {
      EXPECT_TRUE(tree.is_ancestor(root, node));
    }
  }
}

TEST(KaryNTree, AncestorRequiresPrefixMatch) {
  const KaryNTree tree(4, 4);
  // Leaf switch <0 0 0, 3> covers nodes 0..3 only.
  const SwitchId leaf = tree.switch_id(3, 0);
  EXPECT_TRUE(tree.is_ancestor(leaf, 2));
  EXPECT_FALSE(tree.is_ancestor(leaf, 4));
  // Level-1 switch <0 w1 w2, 1> covers nodes 0..63.
  const SwitchId mid = tree.switch_id(1, 5);
  EXPECT_TRUE(tree.is_ancestor(mid, 63));
  EXPECT_FALSE(tree.is_ancestor(mid, 64));
}

TEST(KaryNTree, NcaLevelIsCommonPrefixLength) {
  const KaryNTree tree(4, 4);
  // Nodes 0 (0000) and 3 (0003): share 3 digits -> NCA level 3.
  EXPECT_EQ(tree.nca_level(0, 3), 3U);
  // Nodes 0 (0000) and 16 (0100): share 1 digit -> NCA level 1.
  EXPECT_EQ(tree.nca_level(0, 16), 1U);
  // Nodes 0 and 255 (3333): no common digit -> NCA at the root level 0.
  EXPECT_EQ(tree.nca_level(0, 255), 0U);
}

TEST(KaryNTree, MinHopsFromNcaLevel) {
  const KaryNTree tree(4, 4);
  EXPECT_EQ(tree.min_hops(0, 0), 0U);
  EXPECT_EQ(tree.min_hops(0, 3), 2U);    // same leaf switch
  EXPECT_EQ(tree.min_hops(0, 16), 6U);   // NCA level 1 -> 2*(4-1)
  EXPECT_EQ(tree.min_hops(0, 255), 8U);  // root -> 2*4 = diameter
  EXPECT_EQ(tree.diameter(), 8U);
}

TEST(KaryNTree, MinHopsSymmetric) {
  const KaryNTree tree(4, 3);
  for (NodeId a = 0; a < tree.node_count(); ++a) {
    for (NodeId b = 0; b < tree.node_count(); ++b) {
      EXPECT_EQ(tree.min_hops(a, b), tree.min_hops(b, a));
    }
  }
}

TEST(KaryNTree, Equation5AverageDistanceTranspose) {
  // Paper eq. (5): for a 4-ary 4-tree under transpose (and bit reversal)
  // the average distance d_m is 7.125, very close to the diameter.
  const KaryNTree tree(4, 4);
  const TransposePattern transpose(tree.node_count());
  EXPECT_DOUBLE_EQ(
      tree.average_distance_under_permutation(transpose.destination_table()),
      7.125);
}

TEST(KaryNTree, Equation5AverageDistanceBitReversal) {
  const KaryNTree tree(4, 4);
  const BitReversalPattern reversal(tree.node_count());
  EXPECT_DOUBLE_EQ(
      tree.average_distance_under_permutation(reversal.destination_table()),
      7.125);
}

TEST(KaryNTree, DistanceClassCountsForTranspose) {
  // Paper §8: k^(n/2) nodes at distance 0 and (k-1) k^(n/2+i-1) nodes at
  // distance n+2i for i in {1, ..., n/2}.
  const KaryNTree tree(4, 4);
  const TransposePattern transpose(tree.node_count());
  const auto table = transpose.destination_table();
  std::map<unsigned, unsigned> histogram;
  for (NodeId p = 0; p < tree.node_count(); ++p) {
    ++histogram[tree.min_hops(p, table[p])];
  }
  EXPECT_EQ(histogram[0], 16U);   // k^(n/2)
  EXPECT_EQ(histogram[6], 48U);   // (k-1) k^(n/2)
  EXPECT_EQ(histogram[8], 192U);  // (k-1) k^(n/2+1)
}

TEST(KaryNTree, UniformCapacityIsTerminalLink) {
  const KaryNTree tree(4, 4);
  EXPECT_DOUBLE_EQ(tree.uniform_capacity_flits_per_node_cycle(), 1.0);
  EXPECT_EQ(tree.bisection_channels(), 128U);
}

TEST(KaryNTree, SingleLevelTree) {
  // k-ary 1-tree: one switch, k terminals, no up connectivity needed.
  const KaryNTree tree(4, 1);
  EXPECT_EQ(tree.node_count(), 4U);
  EXPECT_EQ(tree.switch_count(), 1U);
  EXPECT_EQ(tree.min_hops(0, 3), 2U);
  for (PortId down = 0; down < 4; ++down) {
    EXPECT_EQ(tree.port_peer(0, down).kind, PeerKind::kTerminal);
  }
}

TEST(KaryNTree, NodeDigits) {
  const KaryNTree tree(4, 4);
  // Node 27 = 0 1 2 3 in base 4.
  EXPECT_EQ(tree.node_digit(27, 0), 0U);
  EXPECT_EQ(tree.node_digit(27, 1), 1U);
  EXPECT_EQ(tree.node_digit(27, 2), 2U);
  EXPECT_EQ(tree.node_digit(27, 3), 3U);
}

}  // namespace
}  // namespace smart
