// Observability layer: disabled-path bit-identity, stall attribution,
// utilization series, and the Chrome trace exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/network.hpp"

namespace smart {
namespace {

SimConfig congested_config() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.8;  // past saturation: plenty of stalls
  config.traffic.seed = 11;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 3000;
  return config;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.delivered_flits, b.delivered_flits);
  EXPECT_EQ(a.measured_cycles, b.measured_cycles);
  EXPECT_DOUBLE_EQ(a.accepted_fraction, b.accepted_fraction);
  EXPECT_EQ(a.latency_cycles.count(), b.latency_cycles.count());
  EXPECT_DOUBLE_EQ(a.latency_cycles.mean(), b.latency_cycles.mean());
  EXPECT_DOUBLE_EQ(a.hops.mean(), b.hops.mean());
  EXPECT_DOUBLE_EQ(a.link_utilization.mean(), b.link_utilization.mean());
}

TEST(Obs, DisabledPathBitIdenticalToEnabled) {
  SimConfig off = congested_config();
  SimConfig on = off;
  on.obs.enabled = true;
  on.obs.sample_interval_cycles = 500;
  Network net_off(off);
  Network net_on(on);
  const SimulationResult& a = net_off.run();
  const SimulationResult& b = net_on.run();
  expect_identical(a, b);
  EXPECT_FALSE(a.obs.enabled);
  EXPECT_TRUE(b.obs.enabled);
}

// Golden regression pinned against the pre-observability build: the default
// (obs disabled) engine must reproduce these values bit-for-bit.
TEST(Obs, GoldenCubeDuatoUniform) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.46166666666666667);
  EXPECT_EQ(r.generated_packets, 1650U);
  EXPECT_EQ(r.delivered_packets, 1662U);
  EXPECT_EQ(r.delivered_flits, 26592U);
  EXPECT_EQ(r.measured_cycles, 3600U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 42.521660649819474);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.0992779783393649);
  EXPECT_DOUBLE_EQ(r.link_utilization.mean(), 0.31429976851851849);
}

TEST(Obs, GoldenTreeTranspose) {
  SimConfig config;
  config.net.topology = std::string("tree");
  config.net.k = 4;
  config.net.n = 2;
  config.net.vcs = 2;
  config.net.routing = RoutingKind::kTreeAdaptive;
  config.traffic.pattern = PatternKind::kTranspose;
  config.traffic.offered_fraction = 0.6;
  config.traffic.seed = 21;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.47666666666666668);
  EXPECT_EQ(r.delivered_packets, 858U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 66.015151515151402);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.0);
}

TEST(Obs, GoldenMeshDorTornado) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.wraparound = false;
  config.net.routing = RoutingKind::kCubeDeterministic;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.35;
  config.traffic.seed = 3;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.32555555555555554);
  EXPECT_EQ(r.delivered_packets, 1172U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 28.680034129692832);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.9795221843003477);
}

TEST(Obs, StallTotalsMatchPerPortRecords) {
  SimConfig config = congested_config();
  config.obs.enabled = true;
  Network network(config);
  const SimulationResult& r = network.run();
  // Past saturation the fabric must stall somewhere.
  EXPECT_GT(r.obs.stalls.total(), 0U);
  // Fabric totals are exactly the sum of the per-port records.
  StallBreakdown from_ports;
  for (const PortStallRecord& record : r.obs.port_stalls) {
    EXPECT_GT(record.stalls.total(), 0U);  // nonzero_ports means nonzero
    for (std::size_t c = 0; c < kStallCauseCount; ++c) {
      from_ports.by_cause[c] += record.stalls.by_cause[c];
    }
  }
  for (std::size_t c = 0; c < kStallCauseCount; ++c) {
    EXPECT_EQ(r.obs.stalls.by_cause[c], from_ports.by_cause[c]);
  }
  // A healthy fabric never freezes on faults.
  EXPECT_EQ(r.obs.stalls[StallCause::kFaultFrozen], 0U);
  EXPECT_EQ(r.obs.switch_frozen_cycles, 0U);
}

TEST(Obs, FaultFrozenAttributedOnFaultedLink) {
  SimConfig config = congested_config();
  config.obs.enabled = true;
  config.faults.add_link(0, /*port=*/0, /*start=*/500);
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_GT(r.obs.stalls[StallCause::kFaultFrozen], 0U);
}

TEST(Obs, SeriesSamplesUtilizationAndOccupancy) {
  SimConfig config = congested_config();
  config.obs.enabled = true;
  config.obs.sample_interval_cycles = 500;
  Network network(config);
  const SimulationResult& r = network.run();
  const ObsSeries& series = r.obs.series;
  ASSERT_GT(series.tick_count(), 0U);
  ASSERT_FALSE(series.links.empty());
  EXPECT_EQ(series.interval, 500U);
  // Samples land on interval boundaries, strictly increasing.
  for (std::size_t t = 0; t < series.tick_count(); ++t) {
    EXPECT_EQ(series.sample_cycles[t] % 500, 0U);
    if (t > 0) {
      EXPECT_GT(series.sample_cycles[t], series.sample_cycles[t - 1]);
    }
  }
  // Utilization is flits per cycle on a one-flit-per-cycle wire: in [0, 1].
  double peak = 0.0;
  for (std::size_t t = 0; t < series.tick_count(); ++t) {
    for (std::size_t l = 0; l < series.links.size(); ++l) {
      const float u = series.utilization(t, l);
      EXPECT_GE(u, 0.0F);
      EXPECT_LE(u, 1.0F);
      peak = std::max(peak, static_cast<double>(u));
    }
  }
  EXPECT_GT(peak, 0.0);  // traffic flowed during sampling
  // top_utilized orders by descending mean utilization.
  const auto top = series.top_utilized(4);
  ASSERT_GE(top.size(), 2U);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(series.mean_utilization(top[i - 1]),
              series.mean_utilization(top[i]));
  }
}

TEST(Obs, TraceFileWrittenAndWellFormed) {
  const std::string path = ::testing::TempDir() + "smartsim_trace.json";
  SimConfig config = congested_config();
  config.traffic.offered_fraction = 0.3;
  config.obs.trace_out = path;
  config.obs.enabled = true;
  config.obs.trace_hops = true;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_TRUE(r.obs.trace_written);
  EXPECT_GT(r.obs.trace_events, 0U);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);  // packet begin
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // hop slice
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(Obs, HopTracingAddsEvents) {
  const std::string flat = ::testing::TempDir() + "smartsim_trace_flat.json";
  const std::string hops = ::testing::TempDir() + "smartsim_trace_hops.json";
  SimConfig config = congested_config();
  config.traffic.offered_fraction = 0.3;
  config.obs.enabled = true;
  config.obs.trace_out = flat;
  Network without(config);
  const std::uint64_t flat_events = without.run().obs.trace_events;
  config.obs.trace_out = hops;
  config.obs.trace_hops = true;
  Network with(config);
  const std::uint64_t hop_events = with.run().obs.trace_events;
  EXPECT_GT(hop_events, flat_events);
  std::remove(flat.c_str());
  std::remove(hops.c_str());
}

TEST(Obs, SelfMetricsReported) {
  SimConfig config = congested_config();
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_GT(r.sim_wall_seconds, 0.0);
  EXPECT_GT(r.sim_cycles_per_second, 0.0);
  EXPECT_GT(r.sim_mflits_per_second, 0.0);
}

}  // namespace
}  // namespace smart
