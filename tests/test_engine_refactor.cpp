// Engine-refactor equivalence: the CycleEngine (src/engine/) must
// reproduce the former Network-monolith pipeline bit-for-bit.
//
// Every value below was pinned by running the pre-refactor engine; the
// refactored phase pipeline (active sets, the LaneStore arena, static
// fabric wiring, the fused fault-free pass) must not change a single
// RNG draw, round-robin decision or PacketPool recycling step. Three
// configs repeat the goldens of test_obs.cpp; the faulted run covers the
// drain/drop paths and the phase-per-pass pipeline that faulted runs keep;
// the bursty and multi-channel runs cover the injection-side state
// machines (burst modulation, fixed-lane NIC mapping, Valiant's
// per-switch RNG streams).
#include <gtest/gtest.h>

#include "core/network.hpp"

namespace smart {
namespace {

TEST(EngineRefactor, GoldenCubeDuatoUniform) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.46166666666666667);
  EXPECT_EQ(r.generated_packets, 1650U);
  EXPECT_EQ(r.delivered_packets, 1662U);
  EXPECT_EQ(r.delivered_flits, 26592U);
  EXPECT_EQ(r.measured_cycles, 3600U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 42.521660649819474);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.0992779783393649);
  EXPECT_DOUBLE_EQ(r.link_utilization.mean(), 0.31429976851851849);
}

TEST(EngineRefactor, GoldenTreeTranspose) {
  SimConfig config;
  config.net.topology = std::string("tree");
  config.net.k = 4;
  config.net.n = 2;
  config.net.vcs = 2;
  config.net.routing = RoutingKind::kTreeAdaptive;
  config.traffic.pattern = PatternKind::kTranspose;
  config.traffic.offered_fraction = 0.6;
  config.traffic.seed = 21;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.47666666666666668);
  EXPECT_EQ(r.delivered_packets, 858U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 66.015151515151402);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.0);
}

TEST(EngineRefactor, GoldenMeshDorTornado) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.wraparound = false;
  config.net.routing = RoutingKind::kCubeDeterministic;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.35;
  config.traffic.seed = 3;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.32555555555555554);
  EXPECT_EQ(r.delivered_packets, 1172U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 28.680034129692832);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.9795221843003477);
}

// Transient link + switch fault on the congested cube, draining after the
// horizon. Faulted runs take the phase-per-pass pipeline (not the fused
// fast path) and exercise unroutable detection, worm drains, and the
// fault-epoch accounting.
TEST(EngineRefactor, GoldenFaultedCubeWithDrain) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.5;
  config.traffic.seed = 11;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  config.timing.drain_after_horizon = true;
  config.faults.add_link(0, 0, 500, 2500);
  config.faults.add_switch(5, 800, 2000);
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.47444444444444445);
  EXPECT_EQ(r.generated_packets, 1770U);
  EXPECT_EQ(r.delivered_packets, 1708U);
  EXPECT_EQ(r.delivered_flits, 27328U);
  EXPECT_EQ(r.measured_cycles, 3600U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 50.723067915690834);
  EXPECT_EQ(r.latency_cycles.count(), 1708U);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.0872365339578467);
  EXPECT_DOUBLE_EQ(r.link_utilization.mean(), 0.32956597222222211);
  EXPECT_EQ(r.unroutable_packets, 50U);
  EXPECT_EQ(r.dropped_packets, 50U);
  EXPECT_EQ(r.dropped_flits, 800U);
  EXPECT_EQ(r.packets_in_flight_end, 0U);
  EXPECT_EQ(r.source_queue_backlog_end, 0U);
  EXPECT_EQ(r.drain_cycles, 100U);
  EXPECT_EQ(r.drain_delivered_packets, 38U);
  EXPECT_EQ(r.fault_epochs.size(), 5U);
  EXPECT_DOUBLE_EQ(r.latency_percentile(0.99), 98.266666666666737);
}

// Bursty arrivals modulate the per-NIC injection RNG differently from the
// Bernoulli fast path; the worm backlog at the end of the run pins the
// source-queue state machine too.
TEST(EngineRefactor, GoldenBurstyInjection) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.injection = InjectionKind::kBursty;
  config.traffic.burst_factor = 6.0;
  config.traffic.mean_burst_cycles = 120.0;
  config.traffic.offered_fraction = 0.4;
  config.traffic.seed = 17;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.36527777777777776);
  EXPECT_EQ(r.generated_packets, 1319U);
  EXPECT_EQ(r.delivered_packets, 1315U);
  EXPECT_EQ(r.delivered_flits, 21040U);
  EXPECT_EQ(r.measured_cycles, 3600U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 39.816730038022889);
  EXPECT_EQ(r.latency_cycles.count(), 1315U);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 4.1346007604562782);
  EXPECT_DOUBLE_EQ(r.link_utilization.mean(), 0.25051215277777789);
  EXPECT_EQ(r.packets_in_flight_end, 106U);
  EXPECT_EQ(r.source_queue_backlog_end, 99U);
  EXPECT_DOUBLE_EQ(r.latency_percentile(0.99), 83.166666666666558);
}

// Valiant routing draws its intermediate nodes from per-switch RNG
// streams (re-pinned once when the shared RNG became per-switch streams
// for the sharded engine), and four injection channels use the NIC's
// fixed-lane mapping; both are order-sensitive to any change in the
// phase pipeline.
TEST(EngineRefactor, GoldenValiantMultiChannel) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeValiant;
  config.net.injection_channels = 4;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.3;
  config.traffic.seed = 5;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  Network network(config);
  const SimulationResult& r = network.run();
  EXPECT_DOUBLE_EQ(r.accepted_fraction, 0.30138888888888887);
  EXPECT_EQ(r.generated_packets, 1091U);
  EXPECT_EQ(r.delivered_packets, 1085U);
  EXPECT_EQ(r.delivered_flits, 17360U);
  EXPECT_EQ(r.measured_cycles, 3600U);
  EXPECT_DOUBLE_EQ(r.latency_cycles.mean(), 81.863594470046024);
  EXPECT_EQ(r.latency_cycles.count(), 1085U);
  EXPECT_DOUBLE_EQ(r.hops.mean(), 5.9797235023041404);
  EXPECT_DOUBLE_EQ(r.link_utilization.mean(), 0.30020833333333313);
  EXPECT_EQ(r.packets_in_flight_end, 21U);
  EXPECT_EQ(r.source_queue_backlog_end, 1U);
  EXPECT_DOUBLE_EQ(r.latency_percentile(0.99), 437.16666666666697);
}

}  // namespace
}  // namespace smart
