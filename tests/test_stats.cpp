#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smart {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0U);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1U);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, SampleVariance) {
  OnlineStats stats;
  for (double x : {1.0, 2.0, 3.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 1.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1U);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Histogram, BinsValues) {
  Histogram hist(10.0, 5);
  hist.add(0.0);
  hist.add(9.99);
  hist.add(10.0);
  hist.add(49.0);
  hist.add(50.0);   // overflow
  hist.add(1000.0); // overflow
  EXPECT_EQ(hist.total(), 6U);
  EXPECT_EQ(hist.bin(0), 2U);
  EXPECT_EQ(hist.bin(1), 1U);
  EXPECT_EQ(hist.bin(4), 1U);
  EXPECT_EQ(hist.overflow(), 2U);
}

TEST(Histogram, NegativeClampsToFirstBin) {
  Histogram hist(1.0, 4);
  hist.add(-5.0);
  EXPECT_EQ(hist.bin(0), 1U);
}

TEST(Histogram, QuantileLinearInterpolation) {
  Histogram hist(1.0, 10);
  for (int i = 0; i < 100; ++i) hist.add(i / 10.0);  // uniform on [0, 10)
  EXPECT_NEAR(hist.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(hist.quantile(0.9), 9.0, 0.2);
  EXPECT_NEAR(hist.quantile(0.0), 0.0, 0.2);
}

TEST(Histogram, ResetClears) {
  Histogram hist(1.0, 2);
  hist.add(0.5);
  hist.add(5.0);
  hist.reset();
  EXPECT_EQ(hist.total(), 0U);
  EXPECT_EQ(hist.bin(0), 0U);
  EXPECT_EQ(hist.overflow(), 0U);
}

}  // namespace
}  // namespace smart
