// Flight recorder + anomaly watchdogs (observability generation 3).
//
// Three layers of coverage: (1) unit tests of the FlightRing wraparound
// arithmetic, the recorder's delta bookkeeping, and each AnomalyMonitor
// detector's threshold logic; (2) the bit-identity contract — flight and
// anomaly instrumentation on or off, serial or sharded at threads
// {1, 2, 4, 7}, the simulation results never move; (3) failure-injection
// integration — a dead switch under load must produce livelock/starvation
// verdicts, an anomaly-annotated flight series with a dense hottest-switch
// capture, and a wedged ring must route the engine's deadlock watchdog
// verdict through the same obs/anomaly/* namespace.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>

#include "core/network.hpp"
#include "obs/anomaly.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "topology/kary_ncube.hpp"

namespace smart {
namespace {

FlightSnapshot snap_at(std::uint64_t cycle) {
  FlightSnapshot snap;
  snap.cycle = cycle;
  snap.injected_flits = cycle * 10;
  snap.consumed_flits = cycle * 9;
  snap.buffered_flits = cycle;
  return snap;
}

TEST(FlightRing, KeepsEverythingBelowCapacity) {
  FlightRing ring(8);
  for (std::uint64_t c = 1; c <= 5; ++c) ring.record(snap_at(c));
  EXPECT_EQ(ring.size(), 5U);
  EXPECT_EQ(ring.total_recorded(), 5U);
  const auto ordered = ring.ordered();
  ASSERT_EQ(ordered.size(), 5U);
  for (std::uint64_t c = 1; c <= 5; ++c) {
    EXPECT_EQ(ordered[c - 1].cycle, c);
  }
}

TEST(FlightRing, WrapsAroundKeepingTheNewest) {
  FlightRing ring(4);
  for (std::uint64_t c = 1; c <= 10; ++c) ring.record(snap_at(c));
  EXPECT_EQ(ring.size(), 4U);
  EXPECT_EQ(ring.capacity(), 4U);
  EXPECT_EQ(ring.total_recorded(), 10U);
  const auto ordered = ring.ordered();
  ASSERT_EQ(ordered.size(), 4U);
  // Oldest-first: cycles 7, 8, 9, 10 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ordered[i].cycle, 7 + i);
  }
}

TEST(FlightRing, ZeroCapacityClampsToOne) {
  FlightRing ring(0);
  for (std::uint64_t c = 1; c <= 3; ++c) ring.record(snap_at(c));
  EXPECT_EQ(ring.capacity(), 1U);
  EXPECT_EQ(ring.size(), 1U);
  EXPECT_EQ(ring.total_recorded(), 3U);
  EXPECT_EQ(ring.ordered().front().cycle, 3U);
}

TEST(FlightRecorder, ComputesIntervalDeltasAndHighWater) {
  FlightSpec spec;
  spec.interval_cycles = 100;
  spec.capacity = 16;
  FlightRecorder recorder(spec);
  FlightSnapshot first = snap_at(100);
  first.injected_flits = 500;
  first.consumed_flits = 400;
  first.buffered_flits = 60;
  recorder.record(first);
  FlightSnapshot second = snap_at(200);
  second.injected_flits = 900;
  second.consumed_flits = 850;
  second.buffered_flits = 40;
  recorder.record(second);

  const FlightSeries series = recorder.series();
  ASSERT_EQ(series.snapshots.size(), 2U);
  EXPECT_EQ(series.snapshots[0].delta_injected, 500U);
  EXPECT_EQ(series.snapshots[0].delta_consumed, 400U);
  EXPECT_EQ(series.snapshots[1].delta_injected, 400U);
  EXPECT_EQ(series.snapshots[1].delta_consumed, 450U);
  // The high water is a running max over buffered_flits.
  EXPECT_EQ(series.snapshots[0].lane_high_water, 60U);
  EXPECT_EQ(series.snapshots[1].lane_high_water, 60U);
  EXPECT_TRUE(series.enabled);
  EXPECT_EQ(series.interval_cycles, 100U);
}

TEST(FlightRecorder, FirstAnomalyWins) {
  FlightSpec spec;
  FlightRecorder recorder(spec);
  EXPECT_FALSE(recorder.anomaly_noted());
  recorder.note_anomaly("livelock", 4000);
  recorder.note_anomaly("starvation", 5000);
  EXPECT_TRUE(recorder.anomaly_noted());
  const FlightSeries series = recorder.series();
  EXPECT_EQ(series.anomaly_kind, "livelock");
  EXPECT_EQ(series.anomaly_cycle, 4000U);
}

TEST(FlightJson, RoundTripsThroughDumpAndParse) {
  FlightSpec spec;
  spec.interval_cycles = 64;
  spec.capacity = 8;
  FlightRecorder recorder(spec);
  for (std::uint64_t c = 64; c <= 640; c += 64) recorder.record(snap_at(c));
  recorder.note_anomaly("throughput_collapse", 512);
  recorder.set_hot_switches({HotSwitchSnapshot{3, 42, 2, 0.5}});

  const FlightSeries series = recorder.series();
  const std::string path = "flight_roundtrip_test.json";
  std::string error;
  ASSERT_TRUE(write_flight(path, series, &error)) << error;

  FlightSeries parsed;
  ASSERT_TRUE(parse_flight(path, &parsed, &error)) << error;
  std::remove(path.c_str());

  EXPECT_EQ(parsed.interval_cycles, series.interval_cycles);
  EXPECT_EQ(parsed.capacity, series.capacity);
  EXPECT_EQ(parsed.total_recorded, series.total_recorded);
  EXPECT_EQ(parsed.anomaly_kind, "throughput_collapse");
  EXPECT_EQ(parsed.anomaly_cycle, 512U);
  ASSERT_EQ(parsed.hot_switches.size(), 1U);
  EXPECT_EQ(parsed.hot_switches[0].sw, 3U);
  EXPECT_EQ(parsed.hot_switches[0].buffered, 42U);
  ASSERT_EQ(parsed.snapshots.size(), series.snapshots.size());
  for (std::size_t i = 0; i < parsed.snapshots.size(); ++i) {
    EXPECT_EQ(parsed.snapshots[i].cycle, series.snapshots[i].cycle);
    EXPECT_EQ(parsed.snapshots[i].injected_flits,
              series.snapshots[i].injected_flits);
    EXPECT_EQ(parsed.snapshots[i].delta_injected,
              series.snapshots[i].delta_injected);
  }
  // The renderers accept a parsed series (output content is free-form).
  EXPECT_FALSE(render_timeline(parsed).empty());
  EXPECT_FALSE(render_timeline_diff(series, parsed).empty());
}

// ---- AnomalyMonitor detector logic -------------------------------------

AnomalySpec default_spec() { return AnomalySpec{}; }

TEST(AnomalyMonitor, CollapseNeedsConsecutiveWindowsBelowPeak) {
  AnomalyMonitor monitor(default_spec(), 3000);
  monitor.check_window(0.50, 1000);  // arms the peak
  EXPECT_FALSE(monitor.any());
  monitor.check_window(0.10, 2000);  // below 0.35 * 0.50 = 0.175, streak 1
  EXPECT_FALSE(monitor.any());
  monitor.check_window(0.10, 3000);  // streak 2 -> trigger
  ASSERT_TRUE(monitor.any());
  const AnomalyVerdict& v = monitor.verdicts()[static_cast<std::size_t>(
      AnomalyKind::kThroughputCollapse)];
  EXPECT_TRUE(v.triggered);
  EXPECT_EQ(v.cycle, 3000U);
  EXPECT_DOUBLE_EQ(v.value, 0.10);
}

TEST(AnomalyMonitor, CollapseRecoveryResetsTheStreak) {
  AnomalyMonitor monitor(default_spec(), 3000);
  monitor.check_window(0.50, 1000);
  monitor.check_window(0.10, 2000);
  monitor.check_window(0.40, 3000);  // recovered: streak resets
  monitor.check_window(0.10, 4000);  // streak 1 again, not 2
  EXPECT_FALSE(monitor.any());
}

TEST(AnomalyMonitor, CollapseNeverArmsOnAnIdleRun) {
  AnomalySpec spec = default_spec();
  AnomalyMonitor monitor(spec, 3000);
  for (int i = 0; i < 10; ++i) {
    monitor.check_window(0.0, 1000 * (i + 1));  // peak stays below min_peak
  }
  EXPECT_FALSE(monitor.any());
}

TEST(AnomalyMonitor, LivelockBoundDerivesFromDeadlockThreshold) {
  AnomalyMonitor monitor(default_spec(), 500);  // bound = 4 * 500
  EXPECT_EQ(monitor.livelock_age_bound(), 2000U);
  monitor.check_ages(2000, 5000);  // at the bound: not over it
  EXPECT_FALSE(monitor.any());
  monitor.check_ages(2001, 6000);
  ASSERT_TRUE(monitor.any());
  EXPECT_EQ(monitor.first_kind(), AnomalyKind::kLivelock);
  EXPECT_EQ(monitor.first_cycle(), 6000U);
}

TEST(AnomalyMonitor, ExplicitLivelockBoundOverridesTheDerivation) {
  AnomalySpec spec = default_spec();
  spec.livelock_age_cycles = 123;
  AnomalyMonitor monitor(spec, 3000);
  EXPECT_EQ(monitor.livelock_age_bound(), 123U);
}

TEST(AnomalyMonitor, StarvationNeedsDepthAndSkew) {
  AnomalyMonitor monitor(default_spec(), 3000);
  monitor.check_queues(50, 2, 1000);  // deep-ish but below starvation_queue
  EXPECT_FALSE(monitor.any());
  monitor.check_queues(100, 20, 2000);  // deep but skew bound 168 > 100
  EXPECT_FALSE(monitor.any());
  monitor.check_queues(100, 2, 3000);  // 100 >= 64 and >= 8 * 3 = 24
  ASSERT_TRUE(monitor.any());
  const AnomalyVerdict& v = monitor.verdicts()[static_cast<std::size_t>(
      AnomalyKind::kStarvation)];
  EXPECT_TRUE(v.triggered);
  EXPECT_EQ(v.cycle, 3000U);
}

TEST(AnomalyMonitor, FirstTriggerLatchesAndNewFlagIsOneShot) {
  AnomalyMonitor monitor(default_spec(), 3000);
  monitor.check_ages(1000000, 4000);
  EXPECT_TRUE(monitor.take_newly_triggered());
  EXPECT_FALSE(monitor.take_newly_triggered());  // one-shot
  monitor.check_queues(100, 0, 5000);
  EXPECT_TRUE(monitor.take_newly_triggered());  // a new kind re-arms it
  monitor.check_queues(200, 0, 6000);           // same kind: first wins
  EXPECT_FALSE(monitor.take_newly_triggered());
  EXPECT_EQ(monitor.first_kind(), AnomalyKind::kLivelock);
  EXPECT_EQ(monitor.first_cycle(), 4000U);
  const AnomalyVerdict& starve = monitor.verdicts()[static_cast<std::size_t>(
      AnomalyKind::kStarvation)];
  EXPECT_EQ(starve.cycle, 5000U);
}

// ---- Engine integration ------------------------------------------------

SimConfig cube64_config() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 3;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  return config;
}

TEST(FlightEngine, RecorderAndWatchdogsNeverPerturbResults) {
  SimConfig on = cube64_config();
  on.flight.enabled = true;
  on.anomaly.enabled = true;
  SimConfig off = cube64_config();
  off.flight.enabled = false;
  off.anomaly.enabled = false;

  Network net_on(on);
  const SimulationResult a = net_on.run();
  Network net_off(off);
  const SimulationResult b = net_off.run();

  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.delivered_flits, b.delivered_flits);
  EXPECT_EQ(a.accepted_fraction, b.accepted_fraction);
  EXPECT_EQ(a.latency_cycles.mean(), b.latency_cycles.mean());
  EXPECT_EQ(a.hops.mean(), b.hops.mean());

  EXPECT_TRUE(a.flight.enabled);
  EXPECT_GT(a.flight.total_recorded, 0U);
  EXPECT_TRUE(a.anomaly_enabled);
  EXPECT_FALSE(a.anomaly_triggered());  // healthy run stays quiet
  EXPECT_FALSE(b.flight.enabled);
  EXPECT_FALSE(b.anomaly_enabled);
}

TEST(FlightEngine, RingWrapsInsideTheEngine) {
  SimConfig config = cube64_config();
  config.flight.interval_cycles = 64;
  config.flight.capacity = 4;
  Network network(config);
  const SimulationResult& result = network.run();
  const FlightSeries& series = result.flight;
  EXPECT_GT(series.total_recorded, 4U);
  ASSERT_EQ(series.snapshots.size(), 4U);
  // Oldest-first, contiguous at the configured cadence.
  for (std::size_t i = 1; i < series.snapshots.size(); ++i) {
    EXPECT_EQ(series.snapshots[i].cycle,
              series.snapshots[i - 1].cycle + 64);
  }
  // The ring holds the run's last snapshots, not its first.
  EXPECT_GT(series.snapshots.front().cycle,
            series.total_recorded * 64 / 2);
}

// The sharded pipeline must not move a single bit with flight + anomaly
// active: the full registry (engine/, latency/, obs/flight/, obs/anomaly/
// — everything except wall-clock time/) is compared bit for bit between
// the serial run and threads {2, 4, 7}. The profiler stays off here: its
// shard counters legitimately differ between pipelines.
TEST(FlightEngine, ShardedRunsAreBitIdenticalWithFlightOn) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 16;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.45;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 300;
  config.timing.horizon_cycles = 2500;
  config.flight.interval_cycles = 128;

  config.engine_threads = 1;
  Network serial_net(config);
  const SimulationResult serial = serial_net.run();
  EXPECT_FALSE(serial.engine_parallel);
  MetricsRegistry serial_reg;
  register_run_metrics(serial_reg, serial);

  for (const unsigned threads : {2U, 4U, 7U}) {
    config.engine_threads = threads;
    Network net(config);
    const SimulationResult threaded = net.run();
    EXPECT_TRUE(threaded.engine_parallel) << "threads=" << threads;
    MetricsRegistry reg;
    register_run_metrics(reg, threaded);
    ASSERT_EQ(serial_reg.size(), reg.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial_reg.size(); ++i) {
      const Metric& a = serial_reg.metrics()[i];
      const Metric& b = reg.metrics()[i];
      ASSERT_EQ(a.name, b.name) << "threads=" << threads;
      if (std::string_view(a.name).starts_with("time/")) continue;
      EXPECT_EQ(a.value, b.value) << a.name << " threads=" << threads;
      EXPECT_EQ(a.hist.count, b.hist.count)
          << a.name << " threads=" << threads;
      EXPECT_EQ(a.hist.p50, b.hist.p50) << a.name << " threads=" << threads;
      EXPECT_EQ(a.hist.p99, b.hist.p99) << a.name << " threads=" << threads;
    }
    // The flight series itself is thread-invariant too.
    ASSERT_EQ(serial.flight.snapshots.size(),
              threaded.flight.snapshots.size());
    for (std::size_t i = 0; i < serial.flight.snapshots.size(); ++i) {
      EXPECT_EQ(serial.flight.snapshots[i].injected_flits,
                threaded.flight.snapshots[i].injected_flits);
      EXPECT_EQ(serial.flight.snapshots[i].consumed_flits,
                threaded.flight.snapshots[i].consumed_flits);
      EXPECT_EQ(serial.flight.snapshots[i].buffered_flits,
                threaded.flight.snapshots[i].buffered_flits);
      EXPECT_EQ(serial.flight.snapshots[i].max_packet_age,
                threaded.flight.snapshots[i].max_packet_age);
    }
  }
}

TEST(AnomalyEngine, DeadSwitchUnderLoadTripsTheWatchdogs) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.6;
  config.traffic.seed = 11;
  config.timing.warmup_cycles = 0;
  config.timing.horizon_cycles = 8000;
  config.anomaly.livelock_age_cycles = 2000;
  auto plan = FaultPlan::parse("switch:0@500");
  ASSERT_TRUE(plan.has_value());
  config.faults = *plan;

  Network network(config);
  const SimulationResult& result = network.run();

  ASSERT_TRUE(result.anomaly_enabled);
  EXPECT_TRUE(result.anomaly_triggered());
  const AnomalyVerdict& livelock = result.anomaly_verdicts[
      static_cast<std::size_t>(AnomalyKind::kLivelock)];
  const AnomalyVerdict& starvation = result.anomaly_verdicts[
      static_cast<std::size_t>(AnomalyKind::kStarvation)];
  EXPECT_TRUE(livelock.triggered || starvation.triggered)
      << "dead switch produced neither livelock nor starvation";

  // The flight series carries the anomaly context plus the dense
  // hottest-switch capture taken at the trigger.
  EXPECT_TRUE(result.flight.enabled);
  EXPECT_FALSE(result.flight.anomaly_kind.empty());
  EXPECT_GT(result.flight.anomaly_cycle, 0U);
  EXPECT_FALSE(result.flight.hot_switches.empty());
}

/// Dimension-order ring routing WITHOUT the dateline: deadlock-prone by
/// construction (same device as test_deadlock_watchdog.cpp). Used here to
/// drive the unified watchdog path: the engine's progress verdict must
/// land in obs/anomaly/deadlock, and the throughput collapse of the
/// wedging ring must trip the collapse detector.
class FaultyRingRouting final : public RoutingAlgorithm {
 public:
  FaultyRingRouting(const KaryNCube& cube, unsigned vcs)
      : cube_(cube), vcs_(vcs) {}

  [[nodiscard]] std::string name() const override { return "faulty"; }
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }

  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId, unsigned,
                                                  Packet& pkt,
                                                  std::uint64_t) override {
    const SwitchId s = sw.id();
    for (unsigned d = 0; d < cube_.dimensions(); ++d) {
      if (cube_.coord(s, d) == cube_.coord(pkt.dst, d)) continue;
      const bool plus = cube_.dor_direction(s, pkt.dst, d);
      const PortId port = KaryNCube::port_of(d, plus);
      const auto lane = best_bindable_lane(sw.port(port), 0, vcs_);
      if (!lane) return std::nullopt;
      return OutputChoice{port, *lane};  // no dateline: cyclic dependency
    }
    const PortId local = cube_.local_port();
    const auto lane = best_bindable_lane(
        sw.port(local), 0, static_cast<unsigned>(sw.port(local).out.size()));
    if (!lane) return std::nullopt;
    return OutputChoice{local, *lane};
  }

 private:
  const KaryNCube& cube_;
  unsigned vcs_;
};

TEST(AnomalyEngine, WedgedRingRoutesDeadlockThroughTheUnifiedWatchdog) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 8;
  config.net.n = 1;  // a plain ring
  config.net.vcs = 1;
  config.net.buffer_depth = 2;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 1.0;
  config.timing.warmup_cycles = 500;
  config.timing.horizon_cycles = 20000;
  config.timing.deadlock_threshold = 2000;
  config.timing.stats_window_cycles = 250;  // fine-grained collapse windows
  config.custom_routing = [](const Topology& topo)
      -> std::unique_ptr<RoutingAlgorithm> {
    return std::make_unique<FaultyRingRouting>(
        dynamic_cast<const KaryNCube&>(topo), 1);
  };

  Network network(config);
  const SimulationResult& result = network.run();
  ASSERT_TRUE(result.deadlocked);
  ASSERT_TRUE(result.anomaly_enabled);
  const AnomalyVerdict& deadlock = result.anomaly_verdicts[
      static_cast<std::size_t>(AnomalyKind::kDeadlock)];
  EXPECT_TRUE(deadlock.triggered);
  EXPECT_GT(deadlock.cycle, 0U);
  // The flight dump records the first anomaly's scene.
  EXPECT_FALSE(result.flight.anomaly_kind.empty());
}

TEST(AnomalyEngine, MidRunDeadSwitchesCollapseThroughput) {
  // A healthy tornado ring demonstrates its peak for 3000 cycles, then
  // two opposed switches die. Tornado traffic all flows one direction
  // over a 3-hop span, so with switches 2 and 6 dead every source's span
  // crosses a dead switch: accepted throughput falls off a cliff and the
  // collapse detector must notice the consecutive far-below-peak windows.
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 8;
  config.net.n = 1;  // a ring
  config.net.routing = RoutingKind::kCubeDeterministic;
  config.traffic.pattern = PatternKind::kTornado;
  config.traffic.offered_fraction = 0.5;
  config.traffic.seed = 5;
  config.timing.warmup_cycles = 500;
  config.timing.horizon_cycles = 10000;
  auto plan = FaultPlan::parse("switch:2@3000,switch:6@3000");
  ASSERT_TRUE(plan.has_value());
  config.faults = *plan;

  Network network(config);
  const SimulationResult& result = network.run();
  ASSERT_TRUE(result.anomaly_enabled);
  const AnomalyVerdict& collapse = result.anomaly_verdicts[
      static_cast<std::size_t>(AnomalyKind::kThroughputCollapse)];
  EXPECT_TRUE(collapse.triggered) << "accepted " << result.accepted_fraction;
  EXPECT_GT(collapse.cycle, 3000U);
}

TEST(AnomalyEngine, VerdictsLandInTheMetricNamespace) {
  SimConfig config = cube64_config();
  Network network(config);
  const SimulationResult& result = network.run();
  MetricsRegistry reg;
  register_run_metrics(reg, result);
  // Shape: all five kinds plus the rollup, plus the flight slice.
  for (const char* slug :
       {"deadlock", "fault_stall", "throughput_collapse", "livelock",
        "starvation"}) {
    const Metric* flag = reg.find(std::string("obs/anomaly/") + slug);
    ASSERT_NE(flag, nullptr) << slug;
    EXPECT_EQ(flag->value, 0.0) << slug;  // healthy run
    EXPECT_NE(reg.find(std::string("obs/anomaly/") + slug + "_cycle"),
              nullptr);
  }
  ASSERT_NE(reg.find("obs/anomaly/any"), nullptr);
  EXPECT_EQ(reg.find("obs/anomaly/any")->value, 0.0);
  ASSERT_NE(reg.find("obs/flight/snapshots"), nullptr);
  EXPECT_GT(reg.find("obs/flight/snapshots")->value, 0.0);
  EXPECT_EQ(reg.find("obs/flight/interval_cycles")->value, 256.0);
}

}  // namespace
}  // namespace smart
