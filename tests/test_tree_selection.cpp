// The fat-tree ascending tie-break policies: all deliver correctly and
// deadlock-free; the stream-stable default keeps complement conflict-free
// with several virtual channels (see DESIGN.md §6).
#include <gtest/gtest.h>

#include "core/network.hpp"

namespace smart {
namespace {

SimConfig tree_config(TreeSelection selection, PatternKind pattern,
                      double load, unsigned vcs = 4) {
  SimConfig config;
  config.net.topology = std::string("tree");
  config.net.k = 4;
  config.net.n = 3;
  config.net.routing = RoutingKind::kTreeAdaptive;
  config.net.vcs = vcs;
  config.net.selection = selection;
  config.traffic.pattern = pattern;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = 1000;
  config.timing.horizon_cycles = 8000;
  return config;
}

class TreeSelectionTest : public ::testing::TestWithParam<TreeSelection> {};

TEST_P(TreeSelectionTest, DeliversUniformTraffic) {
  Network network(tree_config(GetParam(), PatternKind::kUniform, 0.3));
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_NEAR(result.accepted_fraction, 0.3, 0.06);
}

TEST_P(TreeSelectionTest, SurvivesOverload) {
  for (PatternKind pattern : {PatternKind::kComplement,
                              PatternKind::kTranspose}) {
    Network network(tree_config(GetParam(), pattern, 1.0));
    const SimulationResult& result = network.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.delivered_packets, 0U);
  }
}

TEST_P(TreeSelectionTest, SingleVcStillWorks) {
  Network network(tree_config(GetParam(), PatternKind::kUniform, 0.8, 1));
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.accepted_fraction, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, TreeSelectionTest,
    ::testing::Values(TreeSelection::kSaltedAffine, TreeSelection::kRotating,
                      TreeSelection::kRandom, TreeSelection::kMostCredits),
    [](const ::testing::TestParamInfo<TreeSelection>& named) {
      switch (named.param) {
        case TreeSelection::kSaltedAffine: return "SaltedAffine";
        case TreeSelection::kRotating: return "Rotating";
        case TreeSelection::kRandom: return "Random";
        case TreeSelection::kMostCredits: return "MostCredits";
        case TreeSelection::kStallEwma: break;  // escape-adaptive only
      }
      return "Unknown";
    });

TEST(TreeSelectionPolicy, AffineKeepsComplementConflictFree) {
  // At 90 % offered complement load with 4 VCs, the stream-stable policy
  // must deliver essentially everything; the memoryless rotating policy
  // falls measurably short (the effect the selection ablation quantifies).
  Network affine(tree_config(TreeSelection::kSaltedAffine,
                             PatternKind::kComplement, 0.9));
  Network rotating(tree_config(TreeSelection::kRotating,
                               PatternKind::kComplement, 0.9));
  const double affine_accepted = affine.run().accepted_fraction;
  const double rotating_accepted = rotating.run().accepted_fraction;
  EXPECT_GT(affine_accepted, 0.85);
  EXPECT_GT(affine_accepted, rotating_accepted);
}

TEST(TreeSelectionPolicy, Names) {
  EXPECT_EQ(to_string(TreeSelection::kSaltedAffine), "salted affine");
  EXPECT_EQ(to_string(TreeSelection::kRotating), "rotating");
  EXPECT_EQ(to_string(TreeSelection::kRandom), "random");
  EXPECT_EQ(to_string(TreeSelection::kMostCredits), "most credits");
  EXPECT_EQ(to_string(SelectionKind::kStallEwma), "stall EWMA");
}

TEST(TreeSelectionPolicy, RejectsStallHistory) {
  // The stall-history policy needs the escape-adaptive core's serial
  // refresh hook; the plain tree algorithm rejects it at construction.
  EXPECT_DEATH(
      Network(tree_config(SelectionKind::kStallEwma, PatternKind::kUniform,
                          0.3)),
      "stall-history");
}

}  // namespace
}  // namespace smart
