// Property suite over a grid of topology shapes: structural invariants
// that must hold for every k-ary n-cube, k-ary n-mesh and k-ary n-tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"

namespace smart {
namespace {

struct Shape {
  char family;  // 'c' cube, 'm' mesh, 't' tree
  unsigned k;
  unsigned n;
};

std::unique_ptr<Topology> build(const Shape& shape) {
  switch (shape.family) {
    case 'c': return std::make_unique<KaryNCube>(shape.k, shape.n, true);
    case 'm': return std::make_unique<KaryNCube>(shape.k, shape.n, false);
    default: return std::make_unique<KaryNTree>(shape.k, shape.n);
  }
}

std::string shape_name(const ::testing::TestParamInfo<Shape>& info) {
  const char* family = info.param.family == 'c'   ? "Cube"
                       : info.param.family == 'm' ? "Mesh"
                                                  : "Tree";
  return std::string(family) + std::to_string(info.param.k) + "x" +
         std::to_string(info.param.n);
}

class TopologyProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(TopologyProperty, PortPeersAreMutual) {
  const auto topo = build(GetParam());
  for (SwitchId s = 0; s < topo->switch_count(); ++s) {
    for (PortId p = 0; p < topo->ports_per_switch(); ++p) {
      const PortPeer peer = topo->port_peer(s, p);
      if (peer.kind != PeerKind::kSwitch) continue;
      ASSERT_LT(peer.id, topo->switch_count());
      const PortPeer back = topo->port_peer(peer.id, peer.port);
      ASSERT_EQ(back.kind, PeerKind::kSwitch);
      EXPECT_EQ(back.id, s);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST_P(TopologyProperty, EveryTerminalHasAValidAttachment) {
  const auto topo = build(GetParam());
  for (NodeId node = 0; node < topo->node_count(); ++node) {
    const Attachment at = topo->terminal_attachment(node);
    ASSERT_LT(at.sw, topo->switch_count());
    const PortPeer peer = topo->port_peer(at.sw, at.port);
    EXPECT_EQ(peer.kind, PeerKind::kTerminal);
    EXPECT_EQ(peer.id, node);
  }
}

TEST_P(TopologyProperty, EachTerminalPortHasUniqueNode) {
  const auto topo = build(GetParam());
  std::vector<unsigned> seen(topo->node_count(), 0);
  for (SwitchId s = 0; s < topo->switch_count(); ++s) {
    for (PortId p = 0; p < topo->ports_per_switch(); ++p) {
      const PortPeer peer = topo->port_peer(s, p);
      if (peer.kind != PeerKind::kTerminal) continue;
      ASSERT_LT(peer.id, topo->node_count());
      ++seen[peer.id];
    }
  }
  for (NodeId node = 0; node < topo->node_count(); ++node) {
    EXPECT_EQ(seen[node], 1U) << "node " << node;
  }
}

TEST_P(TopologyProperty, MinHopsIsAMetric) {
  const auto topo = build(GetParam());
  const auto nodes = static_cast<NodeId>(topo->node_count());
  for (NodeId a = 0; a < nodes; ++a) {
    EXPECT_EQ(topo->min_hops(a, a), 0U);
    for (NodeId b = 0; b < nodes; ++b) {
      const unsigned ab = topo->min_hops(a, b);
      EXPECT_EQ(ab, topo->min_hops(b, a));
      if (a != b) {
        EXPECT_GT(ab, 0U);
      }
    }
  }
  // Triangle inequality on a sample (full O(N^3) is too slow for 256).
  const NodeId step = std::max<NodeId>(1, nodes / 7);
  for (NodeId a = 0; a < nodes; a += step) {
    for (NodeId b = 0; b < nodes; b += step) {
      for (NodeId c = 0; c < nodes; c += step) {
        EXPECT_LE(topo->min_hops(a, c),
                  topo->min_hops(a, b) + topo->min_hops(b, c));
      }
    }
  }
}

TEST_P(TopologyProperty, DiameterIsMaxDistance) {
  const auto topo = build(GetParam());
  unsigned max_distance = 0;
  for (NodeId a = 0; a < topo->node_count(); ++a) {
    for (NodeId b = 0; b < topo->node_count(); ++b) {
      max_distance = std::max(max_distance, topo->min_hops(a, b));
    }
  }
  EXPECT_EQ(topo->diameter(), max_distance);
}

TEST_P(TopologyProperty, AverageDistanceBounds) {
  const auto topo = build(GetParam());
  const double avg = topo->average_distance();
  EXPECT_GT(avg, 0.0);
  EXPECT_LE(avg, static_cast<double>(topo->diameter()));
}

TEST_P(TopologyProperty, CapacityIsPositiveAndAtMostLinkRate) {
  const auto topo = build(GetParam());
  const double capacity = topo->uniform_capacity_flits_per_node_cycle();
  EXPECT_GT(capacity, 0.0);
  EXPECT_LE(capacity, 1.0);
  EXPECT_GT(topo->bisection_channels(), 0U);
}

TEST_P(TopologyProperty, SwitchGraphIsConnectedThroughTerminals) {
  // BFS over switches from node 0's switch must reach every switch that
  // has a terminal attached (all of them for cubes, leaf level for trees
  // plus everything above through up links).
  const auto topo = build(GetParam());
  std::vector<char> visited(topo->switch_count(), 0);
  std::vector<SwitchId> frontier{topo->terminal_attachment(0).sw};
  visited[frontier[0]] = 1;
  while (!frontier.empty()) {
    const SwitchId s = frontier.back();
    frontier.pop_back();
    for (PortId p = 0; p < topo->ports_per_switch(); ++p) {
      const PortPeer peer = topo->port_peer(s, p);
      if (peer.kind != PeerKind::kSwitch || visited[peer.id]) continue;
      visited[peer.id] = 1;
      frontier.push_back(peer.id);
    }
  }
  for (NodeId node = 0; node < topo->node_count(); ++node) {
    EXPECT_TRUE(visited[topo->terminal_attachment(node).sw])
        << "node " << node << " unreachable";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyProperty,
    ::testing::Values(Shape{'c', 2, 2}, Shape{'c', 2, 4}, Shape{'c', 3, 2},
                      Shape{'c', 4, 2}, Shape{'c', 4, 3}, Shape{'c', 5, 2},
                      Shape{'c', 16, 2}, Shape{'c', 8, 2}, Shape{'c', 2, 8},
                      Shape{'m', 2, 2}, Shape{'m', 3, 2}, Shape{'m', 4, 2},
                      Shape{'m', 16, 2}, Shape{'m', 4, 3},
                      Shape{'t', 2, 1}, Shape{'t', 2, 2}, Shape{'t', 2, 4},
                      Shape{'t', 3, 2}, Shape{'t', 4, 2}, Shape{'t', 4, 3},
                      Shape{'t', 4, 4}, Shape{'t', 8, 2}),
    shape_name);

}  // namespace
}  // namespace smart
