#include "traffic/pattern.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/bits.hpp"

namespace smart {
namespace {

TEST(UniformPattern, NeverSendsToSelf) {
  UniformPattern pattern(256);
  Rng rng(1);
  for (NodeId src = 0; src < 256; ++src) {
    for (int i = 0; i < 50; ++i) {
      const auto dst = pattern.destination(src, rng);
      ASSERT_TRUE(dst.has_value());
      EXPECT_NE(*dst, src);
      EXPECT_LT(*dst, 256U);
    }
  }
}

TEST(UniformPattern, CoversAllDestinations) {
  UniformPattern pattern(16);
  Rng rng(2);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(*pattern.destination(3, rng));
  EXPECT_EQ(seen.size(), 15U);
  EXPECT_EQ(seen.count(3), 0U);
}

TEST(UniformPattern, RoughlyUniformOverDestinations) {
  UniformPattern pattern(8);
  Rng rng(3);
  std::map<NodeId, int> counts;
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[*pattern.destination(0, rng)];
  for (const auto& [dst, count] : counts) {
    EXPECT_NEAR(count, draws / 7, draws / 70) << "dst " << dst;
  }
}

TEST(ComplementPattern, MatchesDefinition) {
  ComplementPattern pattern(256);
  Rng rng(1);
  EXPECT_EQ(*pattern.destination(0, rng), 255U);
  EXPECT_EQ(*pattern.destination(0b10101010, rng), 0b01010101U);
}

TEST(ComplementPattern, EveryNodeInjects) {
  ComplementPattern pattern(256);
  EXPECT_DOUBLE_EQ(pattern.injecting_fraction(), 1.0);
  EXPECT_TRUE(pattern.is_permutation());
}

TEST(ComplementPattern, IsInvolutionAndDerangement) {
  ComplementPattern pattern(64);
  const auto table = pattern.destination_table();
  for (NodeId src = 0; src < 64; ++src) {
    EXPECT_NE(table[src], src);
    EXPECT_EQ(table[table[src]], src);
  }
}

TEST(BitReversalPattern, PalindromesDoNotInject) {
  // Paper §9: 16 of the 256 nodes have palindromic labels.
  BitReversalPattern pattern(256);
  Rng rng(1);
  unsigned fixed_points = 0;
  for (NodeId src = 0; src < 256; ++src) {
    if (!pattern.destination(src, rng).has_value()) ++fixed_points;
  }
  EXPECT_EQ(fixed_points, 16U);
  EXPECT_DOUBLE_EQ(pattern.injecting_fraction(), 240.0 / 256.0);
}

TEST(BitReversalPattern, MatchesDefinition) {
  BitReversalPattern pattern(256);
  Rng rng(1);
  EXPECT_EQ(*pattern.destination(0b10000000, rng), 0b00000001U);
  EXPECT_EQ(*pattern.destination(0b11100000, rng), 0b00000111U);
}

TEST(TransposePattern, MatchesDefinition) {
  TransposePattern pattern(256);
  Rng rng(1);
  EXPECT_EQ(*pattern.destination(0b11110000, rng), 0b00001111U);
  // Fixed points: equal halves.
  EXPECT_FALSE(pattern.destination(0b10101010, rng).has_value());
}

TEST(TransposePattern, FixedPointCount) {
  // Labels whose two halves are equal: 2^(B/2) = 16 for 256 nodes.
  TransposePattern pattern(256);
  Rng rng(1);
  unsigned fixed_points = 0;
  for (NodeId src = 0; src < 256; ++src) {
    if (!pattern.destination(src, rng).has_value()) ++fixed_points;
  }
  EXPECT_EQ(fixed_points, 16U);
}

TEST(TransposePattern, SwapsBaseKDigitsOfTheCube) {
  // On the 16-ary 2-cube the transpose swaps the two base-16 coordinates:
  // a reflection along the main diagonal (paper §9).
  TransposePattern pattern(256);
  Rng rng(1);
  for (NodeId src = 0; src < 256; ++src) {
    const unsigned x = src % 16;
    const unsigned y = src / 16;
    if (x == y) {
      EXPECT_FALSE(pattern.destination(src, rng).has_value());
    } else {
      EXPECT_EQ(*pattern.destination(src, rng), x * 16 + y);
    }
  }
}

TEST(ShufflePattern, RotatesLeft) {
  ShufflePattern pattern(16);
  Rng rng(1);
  EXPECT_EQ(*pattern.destination(0b0001, rng), 0b0010U);
  EXPECT_EQ(*pattern.destination(0b1000, rng), 0b0001U);
  EXPECT_FALSE(pattern.destination(0b0000, rng).has_value());
  EXPECT_FALSE(pattern.destination(0b1111, rng).has_value());
}

TEST(BitRotationPattern, IsInverseOfShuffle) {
  ShufflePattern shuffle(256);
  BitRotationPattern rotation(256);
  const auto forward = shuffle.destination_table();
  const auto backward = rotation.destination_table();
  for (NodeId src = 0; src < 256; ++src) {
    EXPECT_EQ(backward[forward[src]], src);
  }
}

TEST(DigitReversalPattern, ReversesBaseKDigits) {
  DigitReversalPattern pattern(4, 3);  // 64 nodes, digits p0 p1 p2
  Rng rng(1);
  // 27 = 1 2 3 base 4 -> 3 2 1 = 57.
  EXPECT_EQ(*pattern.destination(27, rng), 57U);
  // Palindromic digits are fixed points: 1 0 1 = 17.
  EXPECT_FALSE(pattern.destination(17, rng).has_value());
}

TEST(DigitReversalPattern, DiffersFromBitReversalForK4) {
  DigitReversalPattern digits(4, 4);
  BitReversalPattern bits(256);
  Rng rng(1);
  bool differs = false;
  for (NodeId src = 0; src < 256; ++src) {
    const auto a = digits.destination(src, rng);
    const auto b = bits.destination(src, rng);
    if (a.has_value() != b.has_value() || (a && b && *a != *b)) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(DigitReversalPattern, MatchesBitReversalForK2) {
  DigitReversalPattern digits(2, 8);
  BitReversalPattern bits(256);
  EXPECT_EQ(digits.destination_table(), bits.destination_table());
}

TEST(TornadoPattern, ShiftsEveryDigit) {
  TornadoPattern pattern(4, 2);  // 16 nodes, shift (4+1)/2-1 = 1
  Rng rng(1);
  // src (0,0) -> (1,1): 1*4 + 1 = 5 with digit order (low, high).
  EXPECT_EQ(*pattern.destination(0, rng), 5U);
  // Wrap: (3,3) -> (0,0).
  EXPECT_EQ(*pattern.destination(15, rng), 0U);
}

TEST(TornadoPattern, IsPermutation) {
  TornadoPattern pattern(8, 2);
  Rng rng(1);
  std::set<NodeId> dests;
  for (NodeId src = 0; src < 64; ++src) {
    dests.insert(*pattern.destination(src, rng));
  }
  EXPECT_EQ(dests.size(), 64U);
}

TEST(NeighborPattern, WrapsAtEnd) {
  NeighborPattern pattern(8);
  Rng rng(1);
  EXPECT_EQ(*pattern.destination(0, rng), 1U);
  EXPECT_EQ(*pattern.destination(7, rng), 0U);
}

TEST(RandomPermutationPattern, IsBijective) {
  RandomPermutationPattern pattern(128, 99);
  Rng rng(1);
  std::set<NodeId> dests;
  unsigned injecting = 0;
  for (NodeId src = 0; src < 128; ++src) {
    const auto dst = pattern.destination(src, rng);
    if (dst) {
      ++injecting;
      dests.insert(*dst);
    } else {
      dests.insert(src);  // fixed point occupies its own slot
    }
  }
  EXPECT_EQ(dests.size(), 128U);
  EXPECT_GT(injecting, 100U);  // fixed points are rare
}

TEST(RandomPermutationPattern, SeedDeterminesTable) {
  RandomPermutationPattern a(64, 7);
  RandomPermutationPattern b(64, 7);
  RandomPermutationPattern c(64, 8);
  EXPECT_EQ(a.destination_table(), b.destination_table());
  EXPECT_NE(a.destination_table(), c.destination_table());
}

TEST(HotspotPattern, ConcentratesOnHotspot) {
  HotspotPattern pattern(64, 5, 0.5);
  Rng rng(1);
  int to_hotspot = 0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    if (*pattern.destination(0, rng) == 5U) ++to_hotspot;
  }
  // 50 % direct + ~1/63 of the uniform remainder.
  EXPECT_NEAR(static_cast<double>(to_hotspot) / draws, 0.508, 0.03);
}

TEST(PatternFactory, CreatesEveryKind) {
  for (PatternKind kind :
       {PatternKind::kUniform, PatternKind::kComplement,
        PatternKind::kBitReversal, PatternKind::kTranspose,
        PatternKind::kShuffle, PatternKind::kNeighbor,
        PatternKind::kRandomPermutation, PatternKind::kHotspot}) {
    const auto pattern = make_pattern(kind, 256, 16, 2);
    ASSERT_NE(pattern, nullptr) << to_string(kind);
    EXPECT_EQ(pattern->node_count(), 256U);
  }
  const auto tornado = make_pattern(PatternKind::kTornado, 256, 16, 2);
  ASSERT_NE(tornado, nullptr);
}

TEST(PatternNames, AreStable) {
  EXPECT_EQ(to_string(PatternKind::kUniform), "uniform");
  EXPECT_EQ(to_string(PatternKind::kBitReversal), "bit reversal");
  EXPECT_EQ(make_pattern(PatternKind::kTranspose, 256)->name(), "transpose");
}

}  // namespace
}  // namespace smart
