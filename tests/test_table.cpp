#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace smart {
namespace {

TEST(Table, BuildsRows) {
  Table table({"a", "b"});
  table.begin_row().add_cell(std::string{"x"}).add_cell(1.5, 1);
  table.begin_row().add_cell(std::string{"y"}).add_cell(std::uint64_t{7});
  EXPECT_EQ(table.row_count(), 2U);
  EXPECT_EQ(table.column_count(), 2U);
  EXPECT_EQ(table.cell(0, 0), "x");
  EXPECT_EQ(table.cell(0, 1), "1.5");
  EXPECT_EQ(table.cell(1, 1), "7");
}

TEST(Table, TextContainsHeadersAndValues) {
  Table table({"name", "value"});
  table.begin_row().add_cell(std::string{"alpha"}).add_cell(3.14159, 2);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table table({"a", "b"});
  table.begin_row().add_cell(std::string{"1"}).add_cell(std::string{"2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"field"});
  table.begin_row().add_cell(std::string{"has,comma"});
  table.begin_row().add_cell(std::string{"has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(2.0, 1), "2.0");
  EXPECT_EQ(format_double(-0.5, 2), "-0.50");
}

TEST(Table, IntCells) {
  Table table({"i"});
  table.begin_row().add_cell(-42);
  EXPECT_EQ(table.cell(0, 0), "-42");
}

TEST(Table, WriteCsvRoundTrip) {
  Table table({"x"});
  table.begin_row().add_cell(std::string{"v"});
  const std::string path = testing::TempDir() + "/smartsim_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
}

}  // namespace
}  // namespace smart
