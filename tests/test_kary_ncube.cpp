#include "topology/kary_ncube.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace smart {
namespace {

TEST(KaryNCube, PaperNetworkCounts) {
  const KaryNCube cube(16, 2);
  EXPECT_EQ(cube.node_count(), 256U);
  EXPECT_EQ(cube.switch_count(), 256U);
  EXPECT_EQ(cube.ports_per_switch(), 5U);  // 2n network + local
  EXPECT_EQ(cube.local_port(), 4U);
  EXPECT_TRUE(cube.is_direct());
  EXPECT_EQ(cube.name(), "16-ary 2-cube");
}

TEST(KaryNCube, CoordinateRoundTrip) {
  const KaryNCube cube(5, 3);
  for (SwitchId s = 0; s < cube.switch_count(); ++s) {
    std::vector<unsigned> coords;
    for (unsigned d = 0; d < 3; ++d) coords.push_back(cube.coord(s, d));
    EXPECT_EQ(cube.switch_at(coords), s);
  }
}

TEST(KaryNCube, NeighborWrapsAround) {
  const KaryNCube cube(4, 2);
  const SwitchId origin = cube.switch_at({0, 0});
  EXPECT_EQ(cube.coord(cube.neighbor(origin, 0, true), 0), 1U);
  EXPECT_EQ(cube.coord(cube.neighbor(origin, 0, false), 0), 3U);  // wrap
  const SwitchId edge = cube.switch_at({3, 2});
  EXPECT_EQ(cube.coord(cube.neighbor(edge, 0, true), 0), 0U);  // wrap
}

TEST(KaryNCube, NeighborInverse) {
  const KaryNCube cube(7, 2);
  for (SwitchId s = 0; s < cube.switch_count(); ++s) {
    for (unsigned d = 0; d < 2; ++d) {
      EXPECT_EQ(cube.neighbor(cube.neighbor(s, d, true), d, false), s);
    }
  }
}

TEST(KaryNCube, PortPeerIsMutual) {
  const KaryNCube cube(4, 3);
  for (SwitchId s = 0; s < cube.switch_count(); ++s) {
    for (PortId p = 0; p < 2 * 3; ++p) {
      const PortPeer peer = cube.port_peer(s, p);
      ASSERT_EQ(peer.kind, PeerKind::kSwitch);
      const PortPeer back = cube.port_peer(peer.id, peer.port);
      EXPECT_EQ(back.kind, PeerKind::kSwitch);
      EXPECT_EQ(back.id, s);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST(KaryNCube, LocalPortReachesTerminal) {
  const KaryNCube cube(16, 2);
  for (NodeId node : {0U, 17U, 255U}) {
    const PortPeer peer = cube.port_peer(node, cube.local_port());
    EXPECT_EQ(peer.kind, PeerKind::kTerminal);
    EXPECT_EQ(peer.id, node);
    const Attachment at = cube.terminal_attachment(node);
    EXPECT_EQ(at.sw, node);
    EXPECT_EQ(at.port, cube.local_port());
  }
}

TEST(KaryNCube, MinHopsRingDistance) {
  const KaryNCube cube(16, 2);
  // Same row, forward distance 3.
  EXPECT_EQ(cube.min_hops(cube.switch_at({0, 0}), cube.switch_at({3, 0})), 3U);
  // Wrap is shorter: 16 - 13 = 3.
  EXPECT_EQ(cube.min_hops(cube.switch_at({0, 0}), cube.switch_at({13, 0})), 3U);
  // Two dimensions add up.
  EXPECT_EQ(cube.min_hops(cube.switch_at({0, 0}), cube.switch_at({8, 8})),
            16U);
}

TEST(KaryNCube, MinHopsSymmetric) {
  const KaryNCube cube(6, 2);
  for (NodeId a = 0; a < cube.node_count(); ++a) {
    for (NodeId b = 0; b < cube.node_count(); ++b) {
      EXPECT_EQ(cube.min_hops(a, b), cube.min_hops(b, a));
    }
  }
}

TEST(KaryNCube, Diameter) {
  EXPECT_EQ(KaryNCube(16, 2).diameter(), 16U);
  EXPECT_EQ(KaryNCube(4, 4).diameter(), 8U);
  EXPECT_EQ(KaryNCube(2, 10).diameter(), 10U);  // binary hypercube
}

TEST(KaryNCube, BisectionAndCapacity) {
  const KaryNCube cube(16, 2);
  EXPECT_EQ(cube.bisection_channels(), 32U);
  // Paper §5: capacity corresponds to twice the bisection bandwidth, i.e.
  // 0.5 flits/node/cycle for the 16-ary 2-cube.
  EXPECT_DOUBLE_EQ(cube.uniform_capacity_flits_per_node_cycle(), 0.5);
}

TEST(KaryNCube, WraparoundDetection) {
  const KaryNCube cube(4, 2);
  EXPECT_TRUE(cube.crosses_wraparound(cube.switch_at({3, 0}), 0, true));
  EXPECT_FALSE(cube.crosses_wraparound(cube.switch_at({2, 0}), 0, true));
  EXPECT_TRUE(cube.crosses_wraparound(cube.switch_at({0, 1}), 0, false));
  EXPECT_FALSE(cube.crosses_wraparound(cube.switch_at({1, 1}), 0, false));
}

TEST(KaryNCube, DistPlus) {
  const KaryNCube cube(16, 2);
  EXPECT_EQ(cube.dist_plus(cube.switch_at({2, 0}), cube.switch_at({5, 0}), 0),
            3U);
  EXPECT_EQ(cube.dist_plus(cube.switch_at({5, 0}), cube.switch_at({2, 0}), 0),
            13U);
  EXPECT_EQ(cube.ring_distance(cube.switch_at({5, 0}),
                               cube.switch_at({2, 0}), 0),
            3U);
}

TEST(KaryNCube, MeanRingDistance) {
  EXPECT_DOUBLE_EQ(KaryNCube::mean_ring_distance(16), 4.0);
  EXPECT_DOUBLE_EQ(KaryNCube::mean_ring_distance(4), 1.0);
  EXPECT_DOUBLE_EQ(KaryNCube::mean_ring_distance(5), 24.0 / 20.0);
}

TEST(KaryNCube, AverageDistanceMatchesAnalytic) {
  // Average over ordered pairs with src != dst:
  // n * mean_ring_distance * N / (N - 1).
  const KaryNCube cube(8, 2);
  const double analytic = 2.0 * KaryNCube::mean_ring_distance(8) * 64.0 / 63.0;
  EXPECT_NEAR(cube.average_distance(), analytic, 1e-9);
}

TEST(KaryNCube, HypercubeSpecialCase) {
  const KaryNCube cube(2, 4);
  EXPECT_EQ(cube.node_count(), 16U);
  // Hamming distance between 0b0000 and 0b1111.
  EXPECT_EQ(cube.min_hops(0, 15), 4U);
}

TEST(KaryNCube, PortDirectionHelpers) {
  EXPECT_EQ(KaryNCube::port_of(0, true), 0U);
  EXPECT_EQ(KaryNCube::port_of(0, false), 1U);
  EXPECT_EQ(KaryNCube::port_of(3, true), 6U);
  EXPECT_EQ(KaryNCube::dim_of_port(6), 3U);
  EXPECT_TRUE(KaryNCube::is_plus_port(6));
  EXPECT_FALSE(KaryNCube::is_plus_port(7));
}

}  // namespace
}  // namespace smart
