// Multi-seed replication and the per-packet delivery log.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/network.hpp"

namespace smart {
namespace {

SimConfig base_config() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 3000;
  return config;
}

TEST(Replication, AggregatesAcrossSeeds) {
  const auto points = run_replicated(base_config(), {0.3}, 5, 1);
  ASSERT_EQ(points.size(), 1U);
  EXPECT_EQ(points[0].accepted_fraction.count(), 5U);
  EXPECT_NEAR(points[0].accepted_fraction.mean(), 0.3, 0.05);
  EXPECT_GT(points[0].latency_mean_cycles.mean(), 16.0);
  // Independent seeds genuinely differ.
  EXPECT_GT(points[0].accepted_fraction.max(),
            points[0].accepted_fraction.min());
}

TEST(Replication, ConfidenceIntervalShrinksWithSamples) {
  const auto few = run_replicated(base_config(), {0.4}, 3, 1);
  const auto many = run_replicated(base_config(), {0.4}, 12, 1);
  EXPECT_GT(few[0].accepted_ci95(), 0.0);
  EXPECT_LT(many[0].accepted_ci95(), few[0].accepted_ci95() * 1.2);
}

TEST(Replication, SingleSeedHasZeroCi) {
  const auto points = run_replicated(base_config(), {0.3}, 1, 1);
  EXPECT_DOUBLE_EQ(points[0].accepted_ci95(), 0.0);
}

TEST(Replication, ParallelMatchesSerial) {
  const auto serial = run_replicated(base_config(), {0.2, 0.5}, 4, 1);
  const auto parallel = run_replicated(base_config(), {0.2, 0.5}, 4, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].accepted_fraction.mean(),
                     parallel[i].accepted_fraction.mean());
    EXPECT_DOUBLE_EQ(serial[i].latency_mean_cycles.mean(),
                     parallel[i].latency_mean_cycles.mean());
  }
}

TEST(Replication, TableHasOneRowPerLoad) {
  const auto points = run_replicated(base_config(), {0.2, 0.4, 0.6}, 2, 1);
  const Table table = replicated_table(points);
  EXPECT_EQ(table.row_count(), 3U);
}

TEST(PacketLog, CollectsEveryMeasuredDelivery) {
  SimConfig config = base_config();
  config.trace.collect_packet_log = true;
  config.traffic.offered_fraction = 0.3;
  Network network(config);
  const SimulationResult& result = network.run();
  ASSERT_GT(result.delivered_packets, 0U);
  EXPECT_EQ(result.packet_log.size(), result.delivered_packets);
  for (const PacketRecord& record : result.packet_log) {
    EXPECT_NE(record.src, record.dst);
    EXPECT_GE(record.inject_cycle, record.gen_cycle);
    EXPECT_GT(record.deliver_cycle, record.inject_cycle);
    EXPECT_GE(record.hops, 2U);  // at least inject + eject on the cube
  }
}

TEST(PacketLog, LatenciesMatchOnlineStats) {
  SimConfig config = base_config();
  config.trace.collect_packet_log = true;
  config.traffic.offered_fraction = 0.4;
  Network network(config);
  const SimulationResult& result = network.run();
  OnlineStats from_log;
  for (const PacketRecord& record : result.packet_log) {
    from_log.add(static_cast<double>(record.network_latency()));
  }
  EXPECT_EQ(from_log.count(), result.latency_cycles.count());
  EXPECT_NEAR(from_log.mean(), result.latency_cycles.mean(), 1e-9);
}

TEST(PacketLog, OffByDefault) {
  SimConfig config = base_config();
  config.traffic.offered_fraction = 0.3;
  Network network(config);
  EXPECT_TRUE(network.run().packet_log.empty());
}

TEST(PacketLog, TableRendering) {
  std::vector<PacketRecord> log{{1, 2, 10, 12, 60, 8}};
  const Table table = packet_log_table(log);
  EXPECT_EQ(table.row_count(), 1U);
  EXPECT_EQ(table.cell(0, 5), "48");  // network latency
  EXPECT_EQ(table.cell(0, 6), "2");   // source queueing
}

}  // namespace
}  // namespace smart
