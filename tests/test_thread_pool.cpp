#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace smart {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> touched(257, 0);
  pool.parallel_for(touched.size(),
                    [&touched](std::size_t i) { touched[i] = 1; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0),
            static_cast<int>(touched.size()));
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1U);
}

}  // namespace
}  // namespace smart
