#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace smart {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> touched(257, 0);
  pool.parallel_for(touched.size(),
                    [&touched](std::size_t i) { touched[i] = 1; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0),
            static_cast<int>(touched.size()));
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1U);
}

// ---- WorkerTeam: the engine's barrier-synchronized fork/join team ------

TEST(WorkerTeam, RunCoversEveryWorkerIndexExactlyOnce) {
  WorkerTeam team(4);
  ASSERT_EQ(team.size(), 4U);
  std::vector<std::atomic<int>> hits(team.size());
  team.run([&hits](std::size_t worker) { hits[worker].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(WorkerTeam, CallerParticipatesAsWorkerZero) {
  WorkerTeam team(3);
  std::thread::id id_of_zero;
  team.run([&id_of_zero](std::size_t worker) {
    if (worker == 0) id_of_zero = std::this_thread::get_id();
  });
  EXPECT_EQ(id_of_zero, std::this_thread::get_id());
}

TEST(WorkerTeam, RunIsABarrier) {
  // Every run() must complete all workers before returning: accumulate a
  // per-round sum with plain (non-atomic) slots — only the barrier makes
  // the cross-round reads safe, so TSan guards this test too.
  WorkerTeam team(4);
  std::vector<std::uint64_t> slot(team.size(), 0);
  std::uint64_t total = 0;
  for (int round = 0; round < 1000; ++round) {
    team.run([&slot](std::size_t worker) { slot[worker] += worker + 1; });
    total = slot[0] + slot[1] + slot[2] + slot[3];
  }
  EXPECT_EQ(total, 1000U * (1 + 2 + 3 + 4));
}

TEST(WorkerTeam, SizeOneRunsInline) {
  WorkerTeam team(1);
  EXPECT_EQ(team.size(), 1U);
  std::size_t seen = 99;
  std::thread::id id;
  team.run([&](std::size_t worker) {
    seen = worker;
    id = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, 0U);
  EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(WorkerTeam, DefaultSizeMatchesHardware) {
  WorkerTeam team(0);
  EXPECT_GE(team.size(), 1U);
}

TEST(WorkerTeam, ReusableAfterIdlePark) {
  // Let the workers fall into the parked state (they spin ~16k iterations
  // first), then make sure a fresh run() wakes every one of them.
  WorkerTeam team(3);
  std::atomic<int> counter{0};
  team.run([&counter](std::size_t) { counter.fetch_add(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  team.run([&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 6);
}

}  // namespace
}  // namespace smart
