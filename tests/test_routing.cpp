#include <gtest/gtest.h>

#include "core/network.hpp"
#include "routing/cube_dor.hpp"
#include "topology/kary_ncube.hpp"

namespace smart {
namespace {

SimConfig zero_traffic_config(NetworkSpec net) {
  SimConfig config;
  config.net = net;
  config.traffic.offered_fraction = 0.0;
  config.traffic.pattern = PatternKind::kUniform;
  return config;
}

/// Drives the network until the given packet count is delivered or the
/// cycle budget runs out; returns delivered count.
std::uint64_t drive(Network& network, std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) network.step();
  return network.consumed_flits();
}

TEST(CubeDor, DorHopFollowsDimensionOrder) {
  const KaryNCube cube(16, 2);
  CubeDorRouting routing(cube, 4);
  // From (0,0) to (3,5): dimension 0 first, + direction.
  const auto hop = routing.dor_hop(cube.switch_at({0, 0}),
                                   static_cast<NodeId>(cube.switch_at({3, 5})));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->first, 0U);
  EXPECT_TRUE(hop->second);
  // Dimension 0 resolved: move in dimension 1.
  const auto hop2 = routing.dor_hop(cube.switch_at({3, 0}),
                                    static_cast<NodeId>(cube.switch_at({3, 5})));
  ASSERT_TRUE(hop2.has_value());
  EXPECT_EQ(hop2->first, 1U);
}

TEST(CubeDor, DorHopTakesShortestWayAround) {
  const KaryNCube cube(16, 2);
  CubeDorRouting routing(cube, 4);
  // (0,0) -> (13,0): 13 forward vs 3 backward: go minus.
  const auto hop = routing.dor_hop(cube.switch_at({0, 0}),
                                   static_cast<NodeId>(cube.switch_at({13, 0})));
  ASSERT_TRUE(hop.has_value());
  EXPECT_FALSE(hop->second);
  // Tie at distance 8 resolves to plus.
  const auto tie = routing.dor_hop(cube.switch_at({0, 0}),
                                   static_cast<NodeId>(cube.switch_at({8, 0})));
  ASSERT_TRUE(tie.has_value());
  EXPECT_TRUE(tie->second);
}

TEST(CubeDor, DorHopAtDestinationIsEmpty) {
  const KaryNCube cube(8, 2);
  CubeDorRouting routing(cube, 4);
  EXPECT_FALSE(routing.dor_hop(12, 12).has_value());
}

TEST(CubeDor, DeliversSinglePacketMinimally) {
  auto config = zero_traffic_config(paper_cube_spec(RoutingKind::kCubeDeterministic));
  Network network(config);
  network.enqueue_packet(0, 37);
  drive(network, 500);
  EXPECT_EQ(network.consumed_flits(), 16U);  // one 16-flit packet
  EXPECT_EQ(network.packets().in_flight(), 0U);
}

TEST(CubeDor, DeliversWraparoundPacket) {
  auto config = zero_traffic_config(paper_cube_spec(RoutingKind::kCubeDeterministic));
  Network network(config);
  const KaryNCube cube(16, 2);
  // (1,1) -> (15,15): crosses the wrap in both dimensions.
  network.enqueue_packet(cube.switch_at({1, 1}),
                         static_cast<NodeId>(cube.switch_at({15, 15})));
  drive(network, 500);
  EXPECT_EQ(network.consumed_flits(), 16U);
}

TEST(CubeDuato, DeliversSinglePacketMinimally) {
  auto config = zero_traffic_config(paper_cube_spec(RoutingKind::kCubeDuato));
  Network network(config);
  network.enqueue_packet(3, 250);
  drive(network, 500);
  EXPECT_EQ(network.consumed_flits(), 16U);
  EXPECT_EQ(network.packets().in_flight(), 0U);
}

TEST(CubeDuato, AllPairsDeliverOnSmallCube) {
  NetworkSpec spec;
  spec.topology = std::string("cube");
  spec.k = 4;
  spec.n = 2;
  spec.routing = RoutingKind::kCubeDuato;
  spec.vcs = 4;
  for (NodeId src = 0; src < 16; ++src) {
    auto config = zero_traffic_config(spec);
    Network network(config);
    unsigned packets = 0;
    for (NodeId dst = 0; dst < 16; ++dst) {
      if (dst == src) continue;
      network.enqueue_packet(src, dst);
      ++packets;
    }
    drive(network, 3000);
    EXPECT_EQ(network.consumed_flits(), packets * 16U) << "src " << src;
  }
}

TEST(CubeDor, AllPairsDeliverOnSmallCube) {
  NetworkSpec spec;
  spec.topology = std::string("cube");
  spec.k = 4;
  spec.n = 2;
  spec.routing = RoutingKind::kCubeDeterministic;
  spec.vcs = 4;
  auto config = zero_traffic_config(spec);
  Network network(config);
  unsigned packets = 0;
  for (NodeId src = 0; src < 16; ++src) {
    for (NodeId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      network.enqueue_packet(src, dst);
      ++packets;
    }
  }
  drive(network, 20000);
  EXPECT_EQ(network.consumed_flits(), packets * 16U);
  EXPECT_FALSE(network.deadlocked());
}

TEST(TreeAdaptive, DeliversSinglePacketMinimally) {
  for (unsigned vcs : {1U, 2U, 4U}) {
    auto config = zero_traffic_config(paper_tree_spec(vcs));
    Network network(config);
    network.enqueue_packet(0, 255);  // diameter-distance pair
    drive(network, 500);
    EXPECT_EQ(network.consumed_flits(), 32U) << vcs << " vcs";
  }
}

TEST(TreeAdaptive, SameLeafPairStaysLocal) {
  auto config = zero_traffic_config(paper_tree_spec(2));
  Network network(config);
  network.enqueue_packet(4, 5);  // same leaf switch
  std::uint64_t cycles = 0;
  while (network.consumed_flits() < 32 && cycles < 500) {
    network.step();
    ++cycles;
  }
  EXPECT_EQ(network.consumed_flits(), 32U);
  // 2 channels + serialization of 32 flits: well under 100 cycles.
  EXPECT_LT(cycles, 100U);
}

TEST(TreeAdaptive, AllPairsDeliverOnSmallTree) {
  NetworkSpec spec;
  spec.topology = std::string("tree");
  spec.k = 4;
  spec.n = 2;
  spec.routing = RoutingKind::kTreeAdaptive;
  spec.vcs = 1;  // hardest flow-control case
  for (NodeId src : {0U, 5U, 15U}) {
    auto config = zero_traffic_config(spec);
    Network network(config);
    unsigned packets = 0;
    for (NodeId dst = 0; dst < 16; ++dst) {
      if (dst == src) continue;
      network.enqueue_packet(src, dst);
      ++packets;
    }
    drive(network, 5000);
    EXPECT_EQ(network.consumed_flits(), packets * 32U) << "src " << src;
  }
}

// The engine itself asserts minimality, destination correctness and
// in-order arrival on every delivered packet (see Network::consume); the
// tests above exercise those invariants across all-pairs workloads.

}  // namespace
}  // namespace smart
