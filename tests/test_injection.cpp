#include "traffic/injection.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/network.hpp"
#include "util/stats.hpp"

namespace smart {
namespace {

double measured_rate(InjectionProcess& process, Rng& rng, int cycles) {
  int fired = 0;
  for (int i = 0; i < cycles; ++i) fired += process.fires(rng) ? 1 : 0;
  return static_cast<double>(fired) / cycles;
}

/// Variance of packet counts over fixed windows (burstiness indicator).
double window_variance(InjectionProcess& process, Rng& rng, int windows,
                       int window_cycles) {
  OnlineStats stats;
  for (int w = 0; w < windows; ++w) {
    int count = 0;
    for (int i = 0; i < window_cycles; ++i) {
      count += process.fires(rng) ? 1 : 0;
    }
    stats.add(count);
  }
  return stats.variance();
}

TEST(BernoulliInjection, MatchesRate) {
  BernoulliInjection process(0.25);
  Rng rng(1);
  EXPECT_NEAR(measured_rate(process, rng, 200000), 0.25, 0.01);
  EXPECT_DOUBLE_EQ(process.average_rate(), 0.25);
}

TEST(BernoulliInjection, ZeroAndOne) {
  Rng rng(1);
  BernoulliInjection zero(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(zero.fires(rng));
  BernoulliInjection one(1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(one.fires(rng));
}

TEST(BurstyInjection, PreservesAverageRate) {
  BurstyInjection process(0.05, 8.0, 200.0);
  Rng rng(2);
  EXPECT_NEAR(measured_rate(process, rng, 2000000), 0.05, 0.005);
}

TEST(BurstyInjection, OnRateIsBurstFactorTimesAverage) {
  BurstyInjection process(0.05, 8.0, 200.0);
  EXPECT_DOUBLE_EQ(process.on_rate(), 0.4);
  BurstyInjection clamped(0.3, 8.0, 200.0);
  EXPECT_DOUBLE_EQ(clamped.on_rate(), 1.0);  // clamped to link rate
}

TEST(BurstyInjection, MoreVariableThanBernoulli) {
  BernoulliInjection smooth(0.05);
  BurstyInjection bursty(0.05, 8.0, 200.0);
  Rng rng_a(3);
  Rng rng_b(3);
  const double var_smooth = window_variance(smooth, rng_a, 2000, 100);
  const double var_bursty = window_variance(bursty, rng_b, 2000, 100);
  EXPECT_GT(var_bursty, 3.0 * var_smooth);
}

TEST(BurstyInjection, BurstFactorOneDegeneratesToBernoulli) {
  BurstyInjection process(0.1, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(process.on_rate(), 0.1);
  Rng rng(4);
  EXPECT_NEAR(measured_rate(process, rng, 500000), 0.1, 0.005);
}

TEST(BurstyInjection, ZeroRateNeverFires) {
  BurstyInjection process(0.0, 8.0, 100.0);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(process.fires(rng));
}

TEST(InjectionFactory, CreatesBothKinds) {
  EXPECT_EQ(make_injection(InjectionKind::kBernoulli, 0.1)->name(),
            "Bernoulli");
  EXPECT_EQ(make_injection(InjectionKind::kBursty, 0.1)->name(), "bursty");
  EXPECT_EQ(to_string(InjectionKind::kBursty), "bursty");
}

TEST(InjectionInNetwork, BurstyRunMatchesAverageRate) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.3;
  config.traffic.injection = InjectionKind::kBursty;
  config.traffic.burst_factor = 4.0;
  config.traffic.mean_burst_cycles = 100.0;
  config.timing.warmup_cycles = 1000;
  config.timing.horizon_cycles = 12000;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_NEAR(result.generated_flits_per_node_cycle,
              result.offered_flits_per_node_cycle, 0.05);
  // Same average load but clustered arrivals: latency must exceed the
  // smooth-arrival latency at this load.
  config.traffic.injection = InjectionKind::kBernoulli;
  Network smooth(config);
  const SimulationResult& smooth_result = smooth.run();
  EXPECT_GT(result.latency_cycles.mean(), smooth_result.latency_cycles.mean());
}

}  // namespace
}  // namespace smart
