// Unit tests of the router building blocks: lanes, credits, the switch
// state helpers, the packet pool and the NIC injection interface.
#include <gtest/gtest.h>

#include "router/flit.hpp"
#include "router/lanes.hpp"
#include "router/nic.hpp"
#include "router/switch.hpp"

namespace smart {
namespace {

TEST(PacketPool, AllocateAndRecycle) {
  PacketPool pool;
  const PacketId a = pool.allocate();
  const PacketId b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.in_flight(), 2U);
  pool.release(a);
  EXPECT_EQ(pool.in_flight(), 1U);
  const PacketId c = pool.allocate();
  EXPECT_EQ(c, a);  // recycled id
  EXPECT_EQ(pool.in_flight(), 2U);
}

TEST(PacketPool, AllocationResetsRecord) {
  PacketPool pool;
  const PacketId id = pool.allocate();
  pool[id].hops = 42;
  pool[id].wrap_mask = 7;
  pool.release(id);
  const PacketId again = pool.allocate();
  ASSERT_EQ(again, id);
  EXPECT_EQ(pool[again].hops, 0U);
  EXPECT_EQ(pool[again].wrap_mask, 0U);
}

TEST(OutputLaneState, BindableRules) {
  OutputLane lane;
  lane.buf = RingBuffer<Flit>(2);
  lane.credits = 2;
  EXPECT_TRUE(lane.bindable());
  lane.bound = true;
  EXPECT_FALSE(lane.bindable());
  lane.bound = false;
  lane.buf.push(Flit{});
  lane.buf.push(Flit{});
  EXPECT_FALSE(lane.bindable());  // full
  (void)lane.buf.pop();
  EXPECT_TRUE(lane.bindable());
}

TEST(InputLaneState, BindLifecycle) {
  InputLane lane;
  lane.buf = RingBuffer<Flit>(4);
  EXPECT_FALSE(lane.bound());
  lane.bind(3, 1, 100);
  EXPECT_TRUE(lane.bound());
  EXPECT_EQ(lane.bound_port, 3);
  EXPECT_EQ(lane.bound_lane, 1);
  EXPECT_EQ(lane.bound_cycle, 100U);
  lane.unbind();
  EXPECT_FALSE(lane.bound());
}

TEST(SwitchState, FreeOutputLaneCount) {
  Switch sw(0, 2);
  sw.port(0).out.resize(3);
  for (OutputLane& lane : sw.port(0).out) {
    lane.buf = RingBuffer<Flit>(2);
    lane.credits = 2;
  }
  EXPECT_EQ(sw.free_output_lanes(0), 3U);
  sw.port(0).out[0].bound = true;
  EXPECT_EQ(sw.free_output_lanes(0), 2U);
  sw.port(0).out[1].buf.push(Flit{});
  sw.port(0).out[1].buf.push(Flit{});
  EXPECT_EQ(sw.free_output_lanes(0), 1U);
}

TEST(SwitchState, InputLaneIndexFlattens) {
  Switch sw(7, 3);
  sw.port(0).in.resize(2);
  sw.port(1).in.resize(0);
  sw.port(2).in.resize(3);
  sw.build_input_lane_index();
  const auto& index = sw.input_lane_index();
  ASSERT_EQ(index.size(), 5U);
  EXPECT_EQ(index[0], (std::pair<std::uint16_t, std::uint16_t>{0, 0}));
  EXPECT_EQ(index[1], (std::pair<std::uint16_t, std::uint16_t>{0, 1}));
  EXPECT_EQ(index[2], (std::pair<std::uint16_t, std::uint16_t>{2, 0}));
  EXPECT_EQ(index[4], (std::pair<std::uint16_t, std::uint16_t>{2, 2}));
}

TEST(NicInjection, StreamsOnePacketFlitByFlit) {
  PacketPool pool;
  Nic nic(0, 4, 1, 1, 1);
  const PacketId id = pool.allocate();
  pool[id].size_flits = 3;
  nic.source_queue().push_back(id);

  nic.stream(10, pool);
  ASSERT_EQ(nic.channels()[0].buf.size(), 1U);
  EXPECT_TRUE(nic.channels()[0].buf.front().head);
  EXPECT_EQ(pool[id].inject_cycle, 10U);  // latency clock starts here

  nic.stream(11, pool);
  nic.stream(12, pool);
  EXPECT_EQ(nic.channels()[0].buf.size(), 3U);
  EXPECT_TRUE(nic.channels()[0].buf.at(2).tail);
  EXPECT_TRUE(nic.source_queue().empty());
}

TEST(NicInjection, RespectsBufferCapacity) {
  PacketPool pool;
  Nic nic(0, 2, 1, 1, 1);
  const PacketId id = pool.allocate();
  pool[id].size_flits = 5;
  nic.source_queue().push_back(id);
  for (std::uint64_t cycle = 0; cycle < 10; ++cycle) nic.stream(cycle, pool);
  EXPECT_EQ(nic.channels()[0].buf.size(), 2U);  // capacity-bound
}

TEST(NicInjection, SourceThrottlingSerializesPackets) {
  PacketPool pool;
  Nic nic(0, 8, 1, 1, 1);
  const PacketId a = pool.allocate();
  const PacketId b = pool.allocate();
  pool[a].size_flits = 2;
  pool[b].size_flits = 2;
  nic.source_queue().push_back(a);
  nic.source_queue().push_back(b);
  for (std::uint64_t cycle = 0; cycle < 4; ++cycle) nic.stream(cycle, pool);
  // Single channel: a0 a1 b0 b1 in FIFO order.
  EXPECT_EQ(nic.channels()[0].buf.at(0).packet, a);
  EXPECT_EQ(nic.channels()[0].buf.at(1).packet, a);
  EXPECT_TRUE(nic.channels()[0].buf.at(1).tail);
  EXPECT_EQ(nic.channels()[0].buf.at(2).packet, b);
  EXPECT_TRUE(nic.channels()[0].buf.at(2).head);
}

TEST(NicInjection, MultiChannelStreamsConcurrently) {
  PacketPool pool;
  Nic nic(0, 4, 2, 2, 1);
  EXPECT_TRUE(nic.fixed_lane_mapping());
  const PacketId a = pool.allocate();
  const PacketId b = pool.allocate();
  pool[a].size_flits = 4;
  pool[b].size_flits = 4;
  nic.source_queue().push_back(a);
  nic.source_queue().push_back(b);
  nic.stream(0, pool);
  // Both channels picked up a packet in the same cycle.
  EXPECT_EQ(nic.channels()[0].buf.size(), 1U);
  EXPECT_EQ(nic.channels()[1].buf.size(), 1U);
  EXPECT_NE(nic.channels()[0].buf.front().packet,
            nic.channels()[1].buf.front().packet);
}

TEST(NicInjection, ChoosesLaneWithMostCredits) {
  Nic nic(0, 4, 4, 1, 1);
  EXPECT_FALSE(nic.fixed_lane_mapping());
  nic.credits() = {1, 3, 2, 3};
  EXPECT_EQ(nic.choose_lane(), 1);  // first of the maxima
  nic.credits() = {0, 0, 0, 0};
  EXPECT_EQ(nic.choose_lane(), -1);
}

TEST(FlitDefaults, AreInert) {
  Flit flit;
  EXPECT_EQ(flit.packet, kInvalidPacket);
  EXPECT_FALSE(flit.head);
  EXPECT_FALSE(flit.tail);
  EXPECT_EQ(flit.seq, 0U);
}

}  // namespace
}  // namespace smart
