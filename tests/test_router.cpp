// Unit tests of the router building blocks: lanes, credits, the switch
// state helpers, the packet pool and the NIC injection interface. Lane
// buffers live in a LaneStore arena (src/engine/lane_store.hpp); each
// test allocates its lanes from a local store.
#include <gtest/gtest.h>

#include "engine/lane_store.hpp"
#include "router/flit.hpp"
#include "router/lanes.hpp"
#include "router/nic.hpp"
#include "router/switch.hpp"

namespace smart {
namespace {

LaneView make_lane(LaneStore& store) { return LaneView(store, store.allocate()); }

TEST(PacketPool, AllocateAndRecycle) {
  PacketPool pool;
  const PacketId a = pool.allocate();
  const PacketId b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.in_flight(), 2U);
  pool.release(a);
  EXPECT_EQ(pool.in_flight(), 1U);
  const PacketId c = pool.allocate();
  EXPECT_EQ(c, a);  // recycled id
  EXPECT_EQ(pool.in_flight(), 2U);
}

TEST(PacketPool, AllocationResetsRecord) {
  PacketPool pool;
  const PacketId id = pool.allocate();
  pool[id].hops = 42;
  pool[id].wrap_mask = 7;
  pool.release(id);
  const PacketId again = pool.allocate();
  ASSERT_EQ(again, id);
  EXPECT_EQ(pool[again].hops, 0U);
  EXPECT_EQ(pool[again].wrap_mask, 0U);
}

TEST(LaneStoreArena, RingSemanticsPerLane) {
  LaneStore store(2);
  LaneView a = make_lane(store);
  LaneView b = make_lane(store);
  EXPECT_EQ(store.lane_count(), 2U);
  EXPECT_TRUE(a.empty());
  Flit flit;
  flit.seq = 1;
  a.push(flit);
  flit.seq = 2;
  a.push(flit);
  EXPECT_TRUE(a.full());
  EXPECT_TRUE(b.empty());  // lanes are independent slices of the arena
  EXPECT_EQ(a.front().seq, 1U);
  EXPECT_EQ(a.at(1).seq, 2U);
  EXPECT_EQ(a.pop().seq, 1U);
  flit.seq = 3;
  a.push(flit);  // wraps around the 2-slot ring
  EXPECT_EQ(a.at(0).seq, 2U);
  EXPECT_EQ(a.at(1).seq, 3U);
  EXPECT_EQ(store.total_flits(), 2U);
}

TEST(OutputLaneState, BindableRules) {
  LaneStore store(2);
  OutputLane lane;
  lane.buf = make_lane(store);
  lane.credits = 2;
  EXPECT_TRUE(lane.bindable());
  lane.bound = true;
  EXPECT_FALSE(lane.bindable());
  lane.bound = false;
  lane.buf.push(Flit{});
  lane.buf.push(Flit{});
  EXPECT_FALSE(lane.bindable());  // full
  (void)lane.buf.pop();
  EXPECT_TRUE(lane.bindable());
}

TEST(InputLaneState, BindLifecycle) {
  LaneStore store(4);
  InputLane lane;
  lane.buf = make_lane(store);
  EXPECT_FALSE(lane.bound());
  lane.bind(3, 1, 100);
  EXPECT_TRUE(lane.bound());
  EXPECT_EQ(lane.bound_port, 3);
  EXPECT_EQ(lane.bound_lane, 1);
  EXPECT_EQ(lane.bound_cycle, 100U);
  lane.unbind();
  EXPECT_FALSE(lane.bound());
}

TEST(SwitchState, FreeOutputLaneCount) {
  LaneStore store(2);
  Switch sw(0, 2);
  sw.port(0).out.resize(3);
  for (OutputLane& lane : sw.port(0).out) {
    lane.buf = make_lane(store);
    lane.credits = 2;
  }
  EXPECT_EQ(sw.free_output_lanes(0), 3U);
  sw.port(0).out[0].bound = true;
  EXPECT_EQ(sw.free_output_lanes(0), 2U);
  sw.port(0).out[1].buf.push(Flit{});
  sw.port(0).out[1].buf.push(Flit{});
  EXPECT_EQ(sw.free_output_lanes(0), 1U);
}

TEST(SwitchState, InputLaneIndexFlattens) {
  Switch sw(7, 3);
  sw.port(0).in.resize(2);
  sw.port(1).in.resize(0);
  sw.port(2).in.resize(3);
  sw.build_input_lane_index();
  const auto& index = sw.input_lane_index();
  ASSERT_EQ(index.size(), 5U);
  EXPECT_EQ(index[0], (std::pair<std::uint16_t, std::uint16_t>{0, 0}));
  EXPECT_EQ(index[1], (std::pair<std::uint16_t, std::uint16_t>{0, 1}));
  EXPECT_EQ(index[2], (std::pair<std::uint16_t, std::uint16_t>{2, 0}));
  EXPECT_EQ(index[4], (std::pair<std::uint16_t, std::uint16_t>{2, 2}));
}

TEST(SwitchState, ActiveInputListStaysSorted) {
  Switch sw(0, 1);
  sw.add_active_input(4);
  sw.add_active_input(1);
  sw.add_active_input(7);
  ASSERT_EQ(sw.active_inputs().size(), 3U);
  EXPECT_EQ(sw.active_inputs()[0], 1U);
  EXPECT_EQ(sw.active_inputs()[1], 4U);
  EXPECT_EQ(sw.active_inputs()[2], 7U);
  sw.remove_active_input(4);
  ASSERT_EQ(sw.active_inputs().size(), 2U);
  EXPECT_EQ(sw.active_inputs()[0], 1U);
  EXPECT_EQ(sw.active_inputs()[1], 7U);
}

TEST(NicInjection, StreamsOnePacketFlitByFlit) {
  PacketPool pool;
  LaneStore store(4);
  Nic nic(0, store, 1, 1, 1);
  const PacketId id = pool.allocate();
  pool[id].size_flits = 3;
  nic.source_queue().push_back(id);
  EXPECT_TRUE(nic.stream_pending());

  EXPECT_EQ(nic.stream(10, pool), 1U);
  ASSERT_EQ(nic.channels()[0].buf.size(), 1U);
  EXPECT_TRUE(nic.channels()[0].buf.front().head);
  EXPECT_EQ(pool[id].inject_cycle, 10U);  // latency clock starts here

  nic.stream(11, pool);
  nic.stream(12, pool);
  EXPECT_EQ(nic.channels()[0].buf.size(), 3U);
  EXPECT_EQ(nic.chan_flits, 3U);
  EXPECT_TRUE(nic.channels()[0].buf.at(2).tail);
  EXPECT_TRUE(nic.source_queue().empty());
  EXPECT_FALSE(nic.stream_pending());  // the whole worm is buffered
}

TEST(NicInjection, RespectsBufferCapacity) {
  PacketPool pool;
  LaneStore store(2);
  Nic nic(0, store, 1, 1, 1);
  const PacketId id = pool.allocate();
  pool[id].size_flits = 5;
  nic.source_queue().push_back(id);
  for (std::uint64_t cycle = 0; cycle < 10; ++cycle) nic.stream(cycle, pool);
  EXPECT_EQ(nic.channels()[0].buf.size(), 2U);  // capacity-bound
  EXPECT_TRUE(nic.stream_pending());  // worm still mid-stream
}

TEST(NicInjection, SourceThrottlingSerializesPackets) {
  PacketPool pool;
  LaneStore store(8);
  Nic nic(0, store, 1, 1, 1);
  const PacketId a = pool.allocate();
  const PacketId b = pool.allocate();
  pool[a].size_flits = 2;
  pool[b].size_flits = 2;
  nic.source_queue().push_back(a);
  nic.source_queue().push_back(b);
  for (std::uint64_t cycle = 0; cycle < 4; ++cycle) nic.stream(cycle, pool);
  // Single channel: a0 a1 b0 b1 in FIFO order.
  EXPECT_EQ(nic.channels()[0].buf.at(0).packet, a);
  EXPECT_EQ(nic.channels()[0].buf.at(1).packet, a);
  EXPECT_TRUE(nic.channels()[0].buf.at(1).tail);
  EXPECT_EQ(nic.channels()[0].buf.at(2).packet, b);
  EXPECT_TRUE(nic.channels()[0].buf.at(2).head);
}

TEST(NicInjection, MultiChannelStreamsConcurrently) {
  PacketPool pool;
  LaneStore store(4);
  Nic nic(0, store, 2, 2, 1);
  EXPECT_TRUE(nic.fixed_lane_mapping());
  const PacketId a = pool.allocate();
  const PacketId b = pool.allocate();
  pool[a].size_flits = 4;
  pool[b].size_flits = 4;
  nic.source_queue().push_back(a);
  nic.source_queue().push_back(b);
  EXPECT_EQ(nic.stream(0, pool), 2U);
  // Both channels picked up a packet in the same cycle.
  EXPECT_EQ(nic.channels()[0].buf.size(), 1U);
  EXPECT_EQ(nic.channels()[1].buf.size(), 1U);
  EXPECT_NE(nic.channels()[0].buf.front().packet,
            nic.channels()[1].buf.front().packet);
}

TEST(NicInjection, ChoosesLaneWithMostCredits) {
  LaneStore store(4);
  Nic nic(0, store, 4, 1, 1);
  EXPECT_FALSE(nic.fixed_lane_mapping());
  nic.credits() = {1, 3, 2, 3};
  EXPECT_EQ(nic.choose_lane(), 1);  // first of the maxima
  nic.credits() = {0, 0, 0, 0};
  EXPECT_EQ(nic.choose_lane(), -1);
}

TEST(FlitDefaults, AreInert) {
  Flit flit;
  EXPECT_EQ(flit.packet, kInvalidPacket);
  EXPECT_FALSE(flit.head);
  EXPECT_FALSE(flit.tail);
  EXPECT_EQ(flit.seq, 0U);
}

}  // namespace
}  // namespace smart
