// Property suite over simulation configurations: conservation, determinism
// and physical bounds that must hold for every (topology, routing, pattern,
// load) combination. The engine itself additionally asserts per-packet
// minimality, in-order delivery and destination correctness on every run.
#include <gtest/gtest.h>

#include <tuple>

#include "core/network.hpp"

namespace smart {
namespace {

struct NetCase {
  const char* name;
  NetworkSpec spec;
};

std::vector<NetCase> network_cases() {
  std::vector<NetCase> cases;
  {
    NetworkSpec spec;
    spec.topology = std::string("cube");
    spec.k = 8;
    spec.n = 2;
    spec.routing = RoutingKind::kCubeDeterministic;
    cases.push_back({"cube8x2_det", spec});
    spec.routing = RoutingKind::kCubeDuato;
    cases.push_back({"cube8x2_duato", spec});
    spec.wraparound = false;
    cases.push_back({"mesh8x2_duato", spec});
    spec.wraparound = true;
    spec.k = 2;
    spec.n = 6;  // 64-node binary hypercube
    cases.push_back({"hypercube64_duato", spec});
  }
  {
    NetworkSpec spec;
    spec.topology = std::string("tree");
    spec.k = 4;
    spec.n = 3;
    spec.routing = RoutingKind::kTreeAdaptive;
    spec.vcs = 1;
    cases.push_back({"tree4x3_1vc", spec});
    spec.vcs = 4;
    cases.push_back({"tree4x3_4vc", spec});
    spec.k = 2;
    spec.n = 4;
    spec.vcs = 2;
    cases.push_back({"tree2x4_2vc", spec});
  }
  return cases;
}

using NetworkParam = std::tuple<int, int, double>;

std::string network_case_name(
    const ::testing::TestParamInfo<NetworkParam>& info) {
  const auto cases = network_cases();
  const char* patterns[] = {"uniform", "transpose", "complement"};
  return std::string(
             cases[static_cast<std::size_t>(std::get<0>(info.param))].name) +
         "_" + patterns[std::get<1>(info.param)] + "_" +
         (std::get<2>(info.param) < 0.5 ? "low" : "high");
}

class NetworkProperty : public ::testing::TestWithParam<NetworkParam> {
 protected:
  SimConfig make_config() const {
    const auto cases = network_cases();
    SimConfig config;
    config.net = cases[static_cast<std::size_t>(std::get<0>(GetParam()))].spec;
    const PatternKind patterns[] = {PatternKind::kUniform,
                                    PatternKind::kTranspose,
                                    PatternKind::kComplement};
    config.traffic.pattern = patterns[std::get<1>(GetParam())];
    config.traffic.offered_fraction = std::get<2>(GetParam());
    config.timing.warmup_cycles = 400;
    config.timing.horizon_cycles = 2500;
    return config;
  }
};

TEST_P(NetworkProperty, FlitConservation) {
  Network network(make_config());
  for (int i = 0; i < 1200; ++i) {
    network.step();
    ASSERT_EQ(network.injected_flits() - network.consumed_flits(),
              network.buffered_flits());
  }
}

TEST_P(NetworkProperty, NoDeadlockAndProgress) {
  Network network(make_config());
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  if (network.packet_rate() > 0.0) {
    EXPECT_GT(result.delivered_packets, 0U);
  }
}

TEST_P(NetworkProperty, AcceptedNeverExceedsEffectiveOfferedOrCapacity) {
  Network network(make_config());
  const SimulationResult& result = network.run();
  EXPECT_LE(result.accepted_fraction,
            result.effective_offered_fraction() + 0.05);
  EXPECT_LE(result.accepted_flits_per_node_cycle,
            result.capacity_flits_per_node_cycle + 1e-9);
}

TEST_P(NetworkProperty, LatencyAboveSerializationFloor) {
  Network network(make_config());
  const SimulationResult& result = network.run();
  if (result.latency_cycles.count() == 0) return;
  // A packet cannot beat its own serialization (size_flits cycles).
  EXPECT_GE(result.latency_cycles.min(),
            static_cast<double>(network.flits_per_packet()));
}

TEST_P(NetworkProperty, DeterministicReplay) {
  Network a(make_config());
  Network b(make_config());
  a.run();
  b.run();
  EXPECT_EQ(a.result().delivered_flits, b.result().delivered_flits);
  EXPECT_EQ(a.result().generated_packets, b.result().generated_packets);
  EXPECT_DOUBLE_EQ(a.result().latency_cycles.mean(),
                   b.result().latency_cycles.mean());
}

TEST_P(NetworkProperty, HistogramConsistentWithStats) {
  Network network(make_config());
  const SimulationResult& result = network.run();
  EXPECT_EQ(result.latency_histogram.total(), result.latency_cycles.count());
  if (result.latency_cycles.count() > 50 &&
      result.latency_histogram.overflow() == 0) {
    EXPECT_LE(result.latency_percentile(0.5),
              result.latency_percentile(0.95));
    // Median from the histogram must sit near the online mean for these
    // unimodal distributions (loose sanity bound).
    EXPECT_LT(result.latency_percentile(0.5),
              result.latency_cycles.mean() * 2.0 + 20.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NetworkProperty,
    ::testing::Combine(::testing::Range(0, 7),       // network cases
                       ::testing::Range(0, 3),       // patterns
                       ::testing::Values(0.2, 0.9)   // below/above saturation
                       ),
    network_case_name);

}  // namespace
}  // namespace smart
