// The open-boundary mesh variant of the k-ary n-cube (Intel Delta/Paragon
// style): wiring, distances and routing without wrap-around links.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "topology/kary_ncube.hpp"

namespace smart {
namespace {

TEST(Mesh, NameAndBasics) {
  const KaryNCube mesh(4, 2, /*wraparound=*/false);
  EXPECT_EQ(mesh.name(), "4-ary 2-mesh");
  EXPECT_FALSE(mesh.wraparound());
  EXPECT_EQ(mesh.node_count(), 16U);
}

TEST(Mesh, BoundaryPortsUnconnected) {
  const KaryNCube mesh(4, 2, false);
  // Corner (0,0): minus ports of both dimensions are open.
  const SwitchId corner = mesh.switch_at({0, 0});
  EXPECT_EQ(mesh.port_peer(corner, KaryNCube::port_of(0, false)).kind,
            PeerKind::kUnconnected);
  EXPECT_EQ(mesh.port_peer(corner, KaryNCube::port_of(1, false)).kind,
            PeerKind::kUnconnected);
  EXPECT_EQ(mesh.port_peer(corner, KaryNCube::port_of(0, true)).kind,
            PeerKind::kSwitch);
  // Opposite corner: plus ports open.
  const SwitchId far = mesh.switch_at({3, 3});
  EXPECT_EQ(mesh.port_peer(far, KaryNCube::port_of(0, true)).kind,
            PeerKind::kUnconnected);
  EXPECT_EQ(mesh.port_peer(far, KaryNCube::port_of(1, true)).kind,
            PeerKind::kUnconnected);
}

TEST(Mesh, InteriorPortsMutual) {
  const KaryNCube mesh(5, 2, false);
  for (SwitchId s = 0; s < mesh.switch_count(); ++s) {
    for (PortId p = 0; p < 4; ++p) {
      const PortPeer peer = mesh.port_peer(s, p);
      if (peer.kind != PeerKind::kSwitch) continue;
      const PortPeer back = mesh.port_peer(peer.id, peer.port);
      EXPECT_EQ(back.kind, PeerKind::kSwitch);
      EXPECT_EQ(back.id, s);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST(Mesh, DistancesWithoutWrap) {
  const KaryNCube mesh(16, 2, false);
  EXPECT_EQ(mesh.min_hops(mesh.switch_at({0, 0}), mesh.switch_at({13, 0})),
            13U);  // no shortcut through the wrap
  EXPECT_EQ(mesh.min_hops(mesh.switch_at({0, 0}), mesh.switch_at({15, 15})),
            30U);
  EXPECT_EQ(mesh.diameter(), 30U);
}

TEST(Mesh, HalvedBisection) {
  const KaryNCube mesh(16, 2, false);
  EXPECT_EQ(mesh.bisection_channels(), 16U);  // torus has 32
  EXPECT_DOUBLE_EQ(mesh.uniform_capacity_flits_per_node_cycle(), 0.25);
}

TEST(Mesh, DirectionHelpers) {
  const KaryNCube mesh(8, 1, false);
  EXPECT_TRUE(mesh.direction_minimal(2, 5, 0, true));
  EXPECT_FALSE(mesh.direction_minimal(2, 5, 0, false));
  EXPECT_FALSE(mesh.direction_minimal(5, 5, 0, true));
  EXPECT_TRUE(mesh.dor_direction(2, 5, 0));
  EXPECT_FALSE(mesh.dor_direction(5, 2, 0));

  const KaryNCube torus(8, 1, true);
  // Distance 4 each way: both directions minimal, DOR tie goes +.
  EXPECT_TRUE(torus.direction_minimal(0, 4, 0, true));
  EXPECT_TRUE(torus.direction_minimal(0, 4, 0, false));
  EXPECT_TRUE(torus.dor_direction(0, 4, 0));
  // Distance 6 forward, 2 backward: only minus is minimal.
  EXPECT_FALSE(torus.direction_minimal(0, 6, 0, true));
  EXPECT_TRUE(torus.direction_minimal(0, 6, 0, false));
}

SimConfig mesh_config(RoutingKind routing, double load) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 8;
  config.net.n = 2;
  config.net.wraparound = false;
  config.net.routing = routing;
  config.net.vcs = 4;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = 500;
  config.timing.horizon_cycles = 4000;
  return config;
}

TEST(Mesh, DorDeliversUniformTraffic) {
  Network network(mesh_config(RoutingKind::kCubeDeterministic, 0.3));
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_NEAR(result.accepted_fraction, 0.3, 0.06);
}

TEST(Mesh, DuatoDeliversUniformTraffic) {
  Network network(mesh_config(RoutingKind::kCubeDuato, 0.3));
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_NEAR(result.accepted_fraction, 0.3, 0.06);
}

TEST(Mesh, SurvivesOverloadWithoutDeadlock) {
  for (RoutingKind routing :
       {RoutingKind::kCubeDeterministic, RoutingKind::kCubeDuato}) {
    Network network(mesh_config(routing, 1.0));
    const SimulationResult& result = network.run();
    EXPECT_FALSE(result.deadlocked) << to_string(routing);
    EXPECT_GT(result.delivered_packets, 0U) << to_string(routing);
  }
}

TEST(Mesh, AllPairsMinimalDelivery) {
  SimConfig config = mesh_config(RoutingKind::kCubeDuato, 0.0);
  config.net.k = 4;
  Network network(config);
  unsigned packets = 0;
  for (NodeId src = 0; src < 16; ++src) {
    for (NodeId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      network.enqueue_packet(src, dst);
      ++packets;
    }
  }
  for (int i = 0; i < 20000 && network.packets().in_flight() > 0; ++i) {
    network.step();
  }
  // The engine asserts per-packet minimality and destination correctness.
  EXPECT_EQ(network.consumed_flits(), packets * 16U);
}

TEST(Mesh, SpecDescription) {
  SimConfig config = mesh_config(RoutingKind::kCubeDeterministic, 0.1);
  EXPECT_EQ(config.net.description(), "8-ary 2-mesh, deterministic, 4 vc");
}

}  // namespace
}  // namespace smart
