// Closed-loop workload layer (src/workload/): spec parsing, family
// validation, request conservation, drain semantics, the dead-server
// self-throttling scenario, and the thread-count bit-identity matrix.
//
// The load-bearing invariants:
//   * conservation — requests_issued == requests_completed +
//     requests_dropped + outstanding_end, for every family, with and
//     without a post-horizon drain;
//   * self-throttling — a closed/partly-open client behind a dead server
//     parks its window and backlogs instead of flooding the fabric: the
//     starvation watchdog fires, the progress watchdog does NOT declare
//     deadlock (idle clients are not a wedged fabric);
//   * determinism — all workload decisions happen at the engine's serial
//     call sites, so runs are bit-identical for threads {1,2,4,7} on a
//     fabric large enough to actually shard.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "core/network.hpp"
#include "obs/registry.hpp"
#include "workload/workload.hpp"

namespace smart {
namespace {

SimConfig base_config(const std::string& workload_spec) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.seed = 11;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  std::string error;
  EXPECT_TRUE(parse_workload_spec(workload_spec, &config.workload, &error))
      << error;
  return config;
}

void expect_conservation(const WorkloadReport& w) {
  EXPECT_EQ(w.requests_issued,
            w.requests_completed + w.requests_dropped + w.outstanding_end);
}

// ---- Spec parsing ------------------------------------------------------

TEST(WorkloadSpec, ParsesFamilyAndParams) {
  WorkloadSpec spec;
  std::string error;
  ASSERT_TRUE(parse_workload_spec("incast:servers=8,window=2,mode=partly",
                                  &spec, &error))
      << error;
  EXPECT_EQ(spec.family, "incast");
  EXPECT_TRUE(spec.enabled());
  ASSERT_NE(spec.find("servers"), nullptr);
  EXPECT_EQ(*spec.find("servers"), "8");
  EXPECT_EQ(spec.spec_string(), "incast:servers=8,window=2,mode=partly");
}

TEST(WorkloadSpec, RejectsMalformedSpecs) {
  WorkloadSpec spec;
  std::string error;
  EXPECT_FALSE(parse_workload_spec("", &spec, &error));
  EXPECT_FALSE(parse_workload_spec(":window=2", &spec, &error));
  EXPECT_FALSE(parse_workload_spec("echo:window", &spec, &error));
  EXPECT_FALSE(parse_workload_spec("echo:window=2,window=3", &spec, &error));
  EXPECT_FALSE(parse_workload_spec("echo:=3", &spec, &error));
}

TEST(WorkloadSpec, DefaultConstructedIsDisabled) {
  const WorkloadSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_EQ(spec.spec_string(), "");
}

// ---- Registry validation ----------------------------------------------

std::unique_ptr<Workload> try_build(const std::string& text,
                                    std::size_t nodes, std::string* error) {
  ensure_builtin_workloads();
  WorkloadSpec spec;
  if (!parse_workload_spec(text, &spec, error)) return nullptr;
  return WorkloadRegistry::instance().build(spec, nodes, 1, error);
}

TEST(WorkloadRegistry, BuildsEveryBuiltinFamily) {
  for (const char* text :
       {"echo", "incast:servers=4", "rpc:servers=6,fanout=3", "alltoall",
        "allreduce"}) {
    std::string error;
    EXPECT_NE(try_build(text, 16, &error), nullptr)
        << text << ": " << error;
  }
}

TEST(WorkloadRegistry, RejectsUnknownFamilyWithUsage) {
  std::string error;
  EXPECT_EQ(try_build("nosuch", 16, &error), nullptr);
  EXPECT_NE(error.find("unknown workload family"), std::string::npos);
  EXPECT_NE(error.find("incast"), std::string::npos);  // usage listing
}

TEST(WorkloadRegistry, RejectsUnknownKeysAndBadValues) {
  std::string error;
  // Typo'd key must error, never silently fall back to a default.
  EXPECT_EQ(try_build("incast:serversz=4", 16, &error), nullptr);
  EXPECT_EQ(try_build("echo:mode=sideways", 16, &error), nullptr);
  EXPECT_EQ(try_build("echo:dist=pareto", 16, &error), nullptr);
  EXPECT_EQ(try_build("incast:assign=middle", 16, &error), nullptr);
  EXPECT_EQ(try_build("echo:rate=1.5", 16, &error), nullptr);
  EXPECT_EQ(try_build("echo:window=0", 16, &error), nullptr);
  // Open/partly-open loops need a positive arrival rate.
  EXPECT_EQ(try_build("echo:mode=open,rate=0", 16, &error), nullptr);
}

TEST(WorkloadRegistry, RejectsCrossParameterContradictions) {
  std::string error;
  // No clients left.
  EXPECT_EQ(try_build("incast:servers=16", 16, &error), nullptr);
  // More muted servers than servers.
  EXPECT_EQ(try_build("incast:servers=4,mute=5", 16, &error), nullptr);
  // Fan-out wider than the leaf set (frontend excluded).
  EXPECT_EQ(try_build("rpc:servers=4,fanout=4", 16, &error), nullptr);
  EXPECT_NE(try_build("rpc:servers=5,fanout=4", 16, &error), nullptr);
}

// ---- Conservation and drain -------------------------------------------

TEST(WorkloadRun, ClosedIncastConservesRequests) {
  Network network(base_config("incast:servers=4,window=2,service=4"));
  const SimulationResult& result = network.run();
  const WorkloadReport& w = result.workload;
  ASSERT_TRUE(w.enabled);
  EXPECT_EQ(w.family, "incast");
  EXPECT_EQ(w.clients, 12u);
  EXPECT_EQ(w.servers, 4u);
  expect_conservation(w);
  EXPECT_GT(w.requests_completed, 0u);
  // A closed loop keeps the windows (nearly) full once primed — a slot
  // whose reply landed on the final cycle re-issues next cycle, so the
  // end-of-run count may sit just below clients x window, never above.
  EXPECT_LE(w.outstanding_end, w.clients * 2);
  EXPECT_GE(w.outstanding_end, w.clients);
  EXPECT_GT(w.goodput, 0.0);
  EXPECT_GT(w.fairness_jain, 0.8);
  EXPECT_LE(w.fairness_jain, 1.0);
  EXPECT_GT(w.completion_latency.total(), 0u);
  // Completion latency includes source queueing plus a service hold, so it
  // strictly dominates the flit-level network latency.
  EXPECT_GT(w.completion_percentile(0.50), result.latency_percentile(0.50));
}

TEST(WorkloadRun, DrainCompletesEveryInFlightRequest) {
  SimConfig config = base_config("echo:window=2,think=3,service=5");
  config.timing.drain_after_horizon = true;
  Network network(config);
  const SimulationResult& result = network.run();
  const WorkloadReport& w = result.workload;
  ASSERT_TRUE(w.enabled);
  expect_conservation(w);
  // The drain must wait out staged replies still in service (the engine's
  // quiescence check), not just an empty fabric.
  EXPECT_TRUE(result.drained_clean);
  EXPECT_EQ(w.outstanding_end, 0u);
  EXPECT_EQ(w.requests_issued, w.requests_completed);
  EXPECT_GT(w.drain_completed, 0u);
}

TEST(WorkloadRun, RpcFanoutConserves) {
  Network network(base_config("rpc:servers=6,fanout=3,service=4"));
  const SimulationResult& result = network.run();
  const WorkloadReport& w = result.workload;
  ASSERT_TRUE(w.enabled);
  expect_conservation(w);
  EXPECT_GT(w.requests_completed, 0u);
  EXPECT_EQ(w.clients, 10u);
  EXPECT_EQ(w.servers, 6u);
}

TEST(WorkloadRun, CollectivesConserveIterations) {
  for (const char* spec : {"alltoall:burst=2", "allreduce"}) {
    Network network(base_config(spec));
    const SimulationResult& result = network.run();
    const WorkloadReport& w = result.workload;
    ASSERT_TRUE(w.enabled) << spec;
    expect_conservation(w);
    EXPECT_GT(w.requests_completed, 0u) << spec;
    // A deterministic symmetric schedule serves every node equally.
    EXPECT_DOUBLE_EQ(w.fairness_jain, 1.0) << spec;
  }
}

TEST(WorkloadRun, OpenModeMatchesConfiguredRate) {
  SimConfig config = base_config("echo:mode=open,rate=0.01,service=1");
  config.timing.horizon_cycles = 6000;
  Network network(config);
  const SimulationResult& result = network.run();
  const WorkloadReport& w = result.workload;
  expect_conservation(w);
  // 16 clients x 6000 cycles x 0.01 = 960 expected arrivals; Bernoulli
  // noise stays well inside +-40%.
  EXPECT_GT(w.requests_issued, 560u);
  EXPECT_LT(w.requests_issued, 1360u);
}

// ---- Dead-server self-throttling --------------------------------------

// Three of twelve clients are pinned to a muted server: their requests
// deliver but are never answered. A correct closed loop parks those
// windows and queues arrivals in the backlog; the starvation watchdog
// must fire (skewed queue growth) while the progress watchdog stays
// quiet — self-throttled idle clients are not a deadlocked fabric.
TEST(WorkloadRun, DeadServerThrottlesWithoutDeadlock) {
  SimConfig config = base_config(
      "incast:servers=4,assign=pin,mute=1,mode=partly,rate=0.02,window=8");
  config.timing.horizon_cycles = 20000;
  Network network(config);
  const SimulationResult& result = network.run();
  const WorkloadReport& w = result.workload;
  ASSERT_TRUE(w.enabled);
  expect_conservation(w);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.stall_verdict, StallVerdict::kNone);
  // The three starved clients' windows are parked at the muted server...
  EXPECT_GE(w.outstanding_end, 3u * 8u);
  // ...and their later arrivals wait above the NIC.
  EXPECT_GT(w.backlog_end, 0u);
  // The live servers kept serving the other nine clients.
  EXPECT_GT(w.requests_completed, 0u);
  ASSERT_TRUE(result.anomaly_enabled);
  bool starvation = false;
  for (const AnomalyVerdict& v : result.anomaly_verdicts) {
    if (v.kind == AnomalyKind::kStarvation && v.triggered) starvation = true;
    if (v.kind == AnomalyKind::kDeadlock) {
      EXPECT_FALSE(v.triggered);
    }
  }
  EXPECT_TRUE(starvation);
}

// ---- Metrics registration ---------------------------------------------

TEST(WorkloadMetrics, RegisteredUnderWorkloadNamespace) {
  Network network(base_config("incast:servers=4,window=2"));
  const SimulationResult& result = network.run();
  MetricsRegistry registry;
  register_run_metrics(registry, result);
  for (const char* name :
       {"workload/requests_issued", "workload/requests_completed",
        "workload/outstanding_end", "workload/goodput",
        "workload/fairness_jain", "workload/completion_latency"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  const Metric* hist = registry.find("workload/completion_latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  EXPECT_GT(hist->hist.count, 0u);
}

TEST(WorkloadMetrics, AbsentWithoutWorkload) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.timing.warmup_cycles = 300;
  config.timing.horizon_cycles = 2000;
  Network network(config);
  MetricsRegistry registry;
  register_run_metrics(registry, network.run());
  for (const Metric& m : registry.metrics()) {
    EXPECT_FALSE(std::string_view(m.name).starts_with("workload/")) << m.name;
  }
}

// ---- Thread-count bit-identity ----------------------------------------

constexpr unsigned kThreadMatrix[] = {2, 4, 7};

SimulationResult run_with_threads(SimConfig config, unsigned threads) {
  config.engine_threads = threads;
  Network network(config);
  return network.run();
}

void expect_thread_invariant(const SimConfig& config) {
  const SimulationResult serial = run_with_threads(config, 1);
  MetricsRegistry serial_registry;
  register_run_metrics(serial_registry, serial);
  for (const unsigned threads : kThreadMatrix) {
    const SimulationResult threaded = run_with_threads(config, threads);
    // Non-vacuity: the 256-node fabric must actually shard.
    EXPECT_TRUE(threaded.engine_parallel)
        << "threads=" << threads
        << " fell back: " << threaded.engine_path_reason;
    MetricsRegistry threaded_registry;
    register_run_metrics(threaded_registry, threaded);
    ASSERT_EQ(serial_registry.size(), threaded_registry.size())
        << "threads=" << threads;
    for (std::size_t i = 0; i < serial_registry.size(); ++i) {
      const Metric& a = serial_registry.metrics()[i];
      const Metric& b = threaded_registry.metrics()[i];
      ASSERT_EQ(a.name, b.name) << "threads=" << threads;
      if (std::string_view(a.name).starts_with("time/")) continue;
      EXPECT_EQ(a.value, b.value) << a.name << " threads=" << threads;
      EXPECT_EQ(a.hist.count, b.hist.count)
          << a.name << " threads=" << threads;
      EXPECT_EQ(a.hist.p50, b.hist.p50) << a.name << " threads=" << threads;
      EXPECT_EQ(a.hist.p95, b.hist.p95) << a.name << " threads=" << threads;
      EXPECT_EQ(a.hist.p99, b.hist.p99) << a.name << " threads=" << threads;
    }
  }
}

SimConfig cube256_workload_config(const std::string& workload_spec) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 16;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.seed = 7;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = 4000;
  std::string error;
  EXPECT_TRUE(parse_workload_spec(workload_spec, &config.workload, &error))
      << error;
  return config;
}

TEST(WorkloadThreads, IncastBitIdenticalAcrossThreadMatrix) {
  // dist=exp exercises the per-node RNG streams; the staged-event heap
  // must replay identically whichever pipeline delivers the packets.
  expect_thread_invariant(cube256_workload_config(
      "incast:servers=16,window=4,service=8,dist=exp"));
}

TEST(WorkloadThreads, RpcFanoutBitIdenticalAcrossThreadMatrix) {
  expect_thread_invariant(
      cube256_workload_config("rpc:servers=16,fanout=4,service=6,dist=exp"));
}

TEST(WorkloadThreads, AllreduceBitIdenticalAcrossThreadMatrix) {
  expect_thread_invariant(
      cube256_workload_config("allreduce:steps=16,think=2"));
}

}  // namespace
}  // namespace smart
