// Escape-adaptive routing across the topology registry (PR 8).
//
// The composable core (src/routing/escape_adaptive.hpp) promises deadlock
// freedom on every family that registers an escape provider: the escape
// subnetwork's channel dependency graph is acyclic and a blocked header
// can always fall back to its escape lane. These smokes drive all four
// synthesized families at 256 and 4K nodes to the horizon and then drain
// the fabric completely — the deadlock watchdog (SimTiming::
// deadlock_threshold) gates every run, so a cyclic wait shows up as a
// verdict, not a hang. Selection-policy coverage, the misroute freedom,
// the routing/ stats and the NIC injection throttle ride along.
#include <gtest/gtest.h>

#include <string>

#include "core/network.hpp"
#include "routing/escape.hpp"
#include "routing/escape_adaptive.hpp"
#include "synth/families.hpp"
#include "topology/registry.hpp"

namespace smart {
namespace {

/// Base config for an escape-adaptive run of `spec` ("family:key=val,...").
SimConfig escape_config(const std::string& spec) {
  TopoSpec parsed;
  std::string error;
  EXPECT_TRUE(parse_topology_spec(spec, &parsed, &error)) << error;
  SimConfig config;
  config.net.topology = parsed.family;
  config.net.topo_params = parsed.params;
  config.net.routing = RoutingKind::kEscapeAdaptive;
  config.traffic.offered_fraction = 0.6;
  config.traffic.seed = 9;
  config.timing.warmup_cycles = 200;
  config.timing.horizon_cycles = 1500;
  config.timing.drain_after_horizon = true;
  return config;
}

/// Runs to the horizon and drains; any deadlock (or wedged drain) fails.
SimulationResult expect_drains_clean(SimConfig config) {
  Network network(config);
  const SimulationResult result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.stall_verdict, StallVerdict::kNone);
  EXPECT_TRUE(result.drained_clean) << result.packets_in_flight_end
                                    << " packet(s) left in flight";
  EXPECT_EQ(result.packets_in_flight_end, 0U);
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_EQ(result.unroutable_packets, 0U);
  return result;
}

// ---- deadlock-freedom smokes: every registry family, 256 nodes ---------

TEST(EscapeRouting, Torus256DrainsClean) {
  const SimulationResult r = expect_drains_clean(escape_config("torus:nodes=256"));
  EXPECT_GT(r.routing_adaptive_headers + r.routing_escape_headers, 0U);
}

TEST(EscapeRouting, Tehcube256DrainsClean) {
  expect_drains_clean(escape_config("tehcube:k=4,dims=4"));
}

TEST(EscapeRouting, Fattree256DrainsClean) {
  expect_drains_clean(escape_config("fattree2:nodes=256"));
}

TEST(EscapeRouting, Clos256DrainsClean) {
  expect_drains_clean(escape_config("clos:m=4,n=8,r=32"));
}

// The paper families route escape-adaptive through the same registry hook.
TEST(EscapeRouting, Cube256DrainsClean) {
  SimConfig config = escape_config("cube");
  config.net.k = 16;
  config.net.n = 2;
  expect_drains_clean(config);
}

TEST(EscapeRouting, Tree256DrainsClean) {
  SimConfig config = escape_config("tree");
  config.net.k = 4;
  config.net.n = 4;
  expect_drains_clean(config);
}

// ---- 4K-node smokes (sharded pipeline; acceptance floor of the PR) -----

SimConfig escape_4k_config(const std::string& spec) {
  SimConfig config = escape_config(spec);
  config.timing.warmup_cycles = 100;
  config.timing.horizon_cycles = 600;
  config.engine_threads = 4;
  return config;
}

TEST(EscapeRouting, Torus4kDrainsClean) {
  const SimulationResult r =
      expect_drains_clean(escape_4k_config("torus:nodes=4096"));
  EXPECT_TRUE(r.engine_parallel) << r.engine_path_reason;
}

TEST(EscapeRouting, Tehcube4kDrainsClean) {
  expect_drains_clean(escape_4k_config("tehcube:k=4,dims=8"));
}

TEST(EscapeRouting, Fattree4kDrainsClean) {
  expect_drains_clean(escape_4k_config("fattree2:nodes=4096,radix=36"));
}

TEST(EscapeRouting, Clos4kDrainsClean) {
  expect_drains_clean(escape_4k_config("clos:m=16,n=16,r=256"));
}

// ---- selection policies -------------------------------------------------

TEST(EscapeRouting, EverySelectionPolicyDeliversOnTorus) {
  for (const SelectionKind kind :
       {SelectionKind::kSaltedAffine, SelectionKind::kRotating,
        SelectionKind::kRandom, SelectionKind::kMostCredits,
        SelectionKind::kStallEwma}) {
    SimConfig config = escape_config("torus:nodes=64");
    config.net.selection = kind;
    const SimulationResult r = expect_drains_clean(config);
    EXPECT_GT(r.routing_adaptive_headers, 0U) << to_string(kind);
  }
}

// kStallEwma needs the obs stall counters; Network auto-enables them
// (series off) when the user did not ask for observability.
TEST(EscapeRouting, StallSelectionAutoEnablesObsCounters) {
  SimConfig config = escape_config("torus:nodes=64");
  config.net.selection = SelectionKind::kStallEwma;
  ASSERT_FALSE(config.obs.enabled);
  const SimulationResult r = expect_drains_clean(config);
  EXPECT_TRUE(r.obs.enabled);
}

// ---- misroute freedom ---------------------------------------------------

// Under heavy congestion the one-misroute option must actually fire (and
// stay deadlock-free: the misroute burns before the escape fallback, never
// instead of it).
TEST(EscapeRouting, MisrouteFiresUnderCongestionAndDrains) {
  SimConfig config = escape_config("torus:nodes=256");
  config.net.misroute = true;
  config.traffic.offered_fraction = 0.9;
  const SimulationResult r = expect_drains_clean(config);
  EXPECT_GT(r.routing_misroute_headers, 0U);
  // Hop counts may exceed minimal, but each packet misroutes at most once.
  EXPECT_LE(r.routing_misroute_headers, r.delivered_packets + r.generated_packets);
}

TEST(EscapeRouting, MisrouteOffKeepsMinimal) {
  SimConfig config = escape_config("torus:nodes=64");
  const SimulationResult r = expect_drains_clean(config);
  EXPECT_EQ(r.routing_misroute_headers, 0U);
}

// ---- injection throttling ----------------------------------------------

TEST(EscapeRouting, ThrottleEngagesUnderLoadAndDrains) {
  SimConfig config = escape_config("torus:nodes=256");
  config.traffic.offered_fraction = 0.9;
  config.traffic.throttle = 0.25;
  const SimulationResult r = expect_drains_clean(config);
  EXPECT_GT(r.nic_throttled_cycles, 0U);
}

TEST(EscapeRouting, ThrottleIdleAtLowLoad) {
  SimConfig config = escape_config("torus:nodes=64");
  config.traffic.offered_fraction = 0.1;
  config.traffic.throttle = 1.0;  // engages only on total escape exhaustion
  const SimulationResult r = expect_drains_clean(config);
  EXPECT_EQ(r.nic_throttled_cycles, 0U);
}

TEST(EscapeRouting, ThrottleRequiresEscapeRouting) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.throttle = 0.5;
  EXPECT_DEATH(Network network(config), "escape-adaptive");
}

TEST(EscapeRouting, ThrottleRangeChecked) {
  SimConfig config = escape_config("torus:nodes=64");
  config.traffic.throttle = 1.5;
  EXPECT_DEATH(Network network(config), "throttle");
}

// ---- provider resolution ------------------------------------------------

TEST(EscapeRouting, UnknownEscapeKeyReturnsError) {
  ensure_builtin_families();
  std::string error;
  auto topo = TopologyRegistry::instance().build(
      SimConfig{}.net.topo_spec(), &error);
  ASSERT_NE(topo, nullptr) << error;
  auto escape = make_escape_routing("no-such-provider", *topo, &error);
  EXPECT_EQ(escape, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(EscapeRouting, ProviderTopologyMismatchReturnsError) {
  ensure_builtin_families();
  std::string error;
  auto topo = TopologyRegistry::instance().build(
      SimConfig{}.net.topo_spec(), &error);  // a cube
  ASSERT_NE(topo, nullptr) << error;
  auto escape = make_escape_routing("updown", *topo, &error);
  EXPECT_EQ(escape, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(EscapeRouting, NameReflectsComposition) {
  ensure_builtin_families();
  std::string error;
  TopoSpec spec;
  EXPECT_TRUE(parse_topology_spec("torus:nodes=64", &spec, &error));
  auto topo = TopologyRegistry::instance().build(spec, &error);
  ASSERT_NE(topo, nullptr) << error;
  auto escape = make_escape_routing("torus-dor", *topo, &error);
  ASSERT_NE(escape, nullptr) << error;
  EscapeAdaptiveRouting::Options options;
  options.misroute = true;
  EscapeAdaptiveRouting routing(*topo, std::move(escape), /*vcs=*/4, options);
  EXPECT_NE(routing.name().find("torus DOR"), std::string::npos)
      << routing.name();
  EXPECT_NE(routing.name().find("misroute"), std::string::npos)
      << routing.name();
  EXPECT_TRUE(routing.concurrent_safe());
  EXPECT_FALSE(routing.is_minimal());
}

}  // namespace
}  // namespace smart
