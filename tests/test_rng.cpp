#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace smart {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next();
  (void)a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> counts{};
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(8)];
  for (int count : counts) {
    EXPECT_NEAR(count, draws / 8, draws / 80);  // within 10 %
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.range(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(23);
  const int draws = 100000;
  int hits = 0;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(29);
  Rng child0 = parent.fork(0);
  Rng child1 = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child0.next() == child1.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(31);
  Rng b(31);
  EXPECT_EQ(a.fork(5).next(), b.fork(5).next());
}

TEST(SplitMix, KnownSequenceAdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0U);
}

}  // namespace
}  // namespace smart
