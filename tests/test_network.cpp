#include "core/network.hpp"

#include <gtest/gtest.h>

namespace smart {
namespace {

SimConfig small_cube_config(double load) {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.net.vcs = 4;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = load;
  config.timing.warmup_cycles = 500;
  config.timing.horizon_cycles = 4000;
  return config;
}

TEST(Network, ConstructionMatchesSpec) {
  Network network(small_cube_config(0.1));
  EXPECT_EQ(network.topology().node_count(), 16U);
  EXPECT_EQ(network.flits_per_packet(), 16U);
  EXPECT_DOUBLE_EQ(network.capacity_flits_per_node_cycle(), 1.0);  // 4-ary
  EXPECT_EQ(network.cycle(), 0U);
}

TEST(Network, ZeroLoadStaysIdle) {
  Network network(small_cube_config(0.0));
  network.run();
  EXPECT_EQ(network.injected_flits(), 0U);
  EXPECT_EQ(network.consumed_flits(), 0U);
  EXPECT_FALSE(network.deadlocked());
  EXPECT_EQ(network.result().delivered_packets, 0U);
}

TEST(Network, FlitConservationHoldsThroughout) {
  Network network(small_cube_config(0.4));
  for (int i = 0; i < 2000; ++i) {
    network.step();
    ASSERT_EQ(network.injected_flits() - network.consumed_flits(),
              network.buffered_flits())
        << "cycle " << network.cycle();
  }
}

TEST(Network, LowLoadAcceptsOffered) {
  Network network(small_cube_config(0.2));
  const SimulationResult& result = network.run();
  EXPECT_FALSE(network.deadlocked());
  EXPECT_GT(result.delivered_packets, 100U);
  EXPECT_NEAR(result.accepted_fraction, 0.2, 0.05);
  EXPECT_NEAR(result.generated_flits_per_node_cycle,
              result.accepted_flits_per_node_cycle,
              0.05 * result.generated_flits_per_node_cycle + 0.01);
}

TEST(Network, LatencyMeasuredAndPlausible) {
  Network network(small_cube_config(0.2));
  const SimulationResult& result = network.run();
  ASSERT_GT(result.latency_cycles.count(), 0U);
  // At least serialization (16 flits) + a couple of pipeline stages.
  EXPECT_GT(result.latency_cycles.mean(), 18.0);
  EXPECT_LT(result.latency_cycles.mean(), 200.0);
  EXPECT_GE(result.latency_cycles.min(), 16.0);
}

TEST(Network, HopsMatchTopologyAverage) {
  Network network(small_cube_config(0.2));
  const SimulationResult& result = network.run();
  // Direct network: hops = min_hops + 2; uniform average distance is 2 for
  // the 4-ary 2-cube (1 per dimension) over all pairs including equals,
  // slightly higher excluding self.
  EXPECT_NEAR(result.hops.mean(), network.topology().average_distance() + 2.0,
              0.2);
}

TEST(Network, DeterministicAcrossRuns) {
  Network a(small_cube_config(0.5));
  Network b(small_cube_config(0.5));
  a.run();
  b.run();
  EXPECT_EQ(a.result().delivered_packets, b.result().delivered_packets);
  EXPECT_EQ(a.result().delivered_flits, b.result().delivered_flits);
  EXPECT_DOUBLE_EQ(a.result().latency_cycles.mean(),
                   b.result().latency_cycles.mean());
}

TEST(Network, SeedChangesTrajectory) {
  auto config = small_cube_config(0.5);
  Network a(config);
  config.traffic.seed = 999;
  Network b(config);
  a.run();
  b.run();
  EXPECT_NE(a.result().delivered_flits, b.result().delivered_flits);
}

TEST(Network, ManualPacketCountsInWindow) {
  auto config = small_cube_config(0.0);
  Network network(config);
  // Before warm-up: not counted in the window.
  network.enqueue_packet(0, 5);
  for (int i = 0; i < 600; ++i) network.step();
  EXPECT_EQ(network.result().generated_packets, 0U);
  network.enqueue_packet(1, 6);
  network.run();
  EXPECT_EQ(network.result().generated_packets, 1U);
  EXPECT_EQ(network.result().delivered_packets, 1U);
}

TEST(Network, BacklogReportedAboveSaturation) {
  Network network(small_cube_config(1.0));
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  // Offered 1.0 of capacity cannot all be delivered on uniform traffic
  // through a single injection channel; queues must build up.
  EXPECT_GT(result.source_queue_backlog_end +
                result.packets_in_flight_end,
            0U);
}

TEST(Network, TreeNetworkRuns) {
  SimConfig config;
  config.net = paper_tree_spec(2);
  config.traffic.pattern = PatternKind::kComplement;
  config.traffic.offered_fraction = 0.3;
  config.timing.warmup_cycles = 500;
  config.timing.horizon_cycles = 3000;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_NEAR(result.accepted_fraction, 0.3, 0.06);
}

TEST(Network, RejectsOverOnePacketPerCycle) {
  SimConfig config = small_cube_config(0.5);
  config.net.packet_bytes = 4;  // 1-flit packets: rate = load * capacity
  config.traffic.offered_fraction = 1.0;
  // capacity of 4-ary 2-cube is 1.0 flits/node/cycle -> rate 1.0: allowed.
  Network ok(config);
  EXPECT_DOUBLE_EQ(ok.packet_rate(), 1.0);
}

TEST(Network, MultipleInjectionChannelsAblation) {
  SimConfig config = small_cube_config(0.6);
  config.net.injection_channels = 4;
  Network network(config);
  const SimulationResult& result = network.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 0U);
}

}  // namespace
}  // namespace smart
