#!/usr/bin/env bash
# Runs every benchmark binary; used to produce bench_output.txt.
# Fails fast: the first bench that exits non-zero aborts the run and its
# status is propagated, so CI and scripts can trust the exit code.
set -euo pipefail

BENCH_DIR="${1:-build/bench}"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: bench directory '$BENCH_DIR' not found (build first)" >&2
  exit 1
fi

found=0
for b in "$BENCH_DIR"/*; do
  # Skip cmake droppings; bench_micro needs its own argv, so it still runs.
  if [ -f "$b" ] && [ -x "$b" ]; then
    found=1
    echo "===== $b ====="
    "$b"
    echo
  fi
done

if [ "$found" -eq 0 ]; then
  echo "error: no benchmark binaries in '$BENCH_DIR'" >&2
  exit 1
fi
