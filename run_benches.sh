#!/usr/bin/env bash
# Runs every benchmark binary; used to produce bench_output.txt.
# Fails fast: the first bench that exits non-zero aborts the run and its
# status is propagated, so CI and scripts can trust the exit code.
#
# Besides the console tables and the CSVs each bench writes itself, every
# bench is passed a JSON sink: the figure/table benches collect all their
# tables into bench_out/BENCH_<name>.json (--json, see bench_common.hpp),
# and bench_micro writes google-benchmark's own JSON report there. Scripts
# can consume the whole run from bench_out/ without scraping stdout.
set -euo pipefail

BENCH_DIR="${1:-build/bench}"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: bench directory '$BENCH_DIR' not found (build first)" >&2
  exit 1
fi

mkdir -p bench_out

found=0
for b in "$BENCH_DIR"/*; do
  # Skip cmake droppings.
  if [ -f "$b" ] && [ -x "$b" ]; then
    found=1
    name="$(basename "$b")"
    short="${name#bench_}"
    echo "===== $b ====="
    case "$name" in
      bench_micro)
        # google-benchmark binary: it owns its argv and JSON format.
        "$b" --benchmark_out="bench_out/BENCH_${short}.json" \
             --benchmark_out_format=json
        ;;
      *)
        "$b" --json "bench_out/BENCH_${short}.json"
        ;;
    esac
    echo
  fi
done

if [ "$found" -eq 0 ]; then
  echo "error: no benchmark binaries in '$BENCH_DIR'" >&2
  exit 1
fi
