#!/bin/sh
# Runs every benchmark binary; used to produce bench_output.txt.
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b"
    echo
  fi
done
