#!/usr/bin/env bash
# Runs every benchmark binary; used to produce bench_output.txt.
# Fails fast: the first bench that exits non-zero aborts the run and its
# status is propagated, so CI and scripts can trust the exit code.
#
# Besides the console tables and the CSVs each bench writes itself, every
# bench is passed a JSON sink named after the full binary: the figure/table
# benches collect all their tables into $OUT_DIR/BENCH_<binary>.json
# (--json, see bench_common.hpp), and bench_micro writes google-benchmark's
# own JSON report there. Each bench also leaves a run manifest
# ($OUT_DIR/MANIFEST_<binary>.json: config echo, build provenance, metric
# registry snapshot) which tools/smartsim_report diffs between two output
# directories. Scripts can consume the whole run from $OUT_DIR without
# scraping stdout.
#
# Environment:
#   SMARTSIM_BENCH_OUT  output directory (default bench_out); also read by
#                       the benches themselves for their CSVs.
#   SMARTSIM_QUICK=1    coarser load grids / shorter horizons.
set -euo pipefail

BENCH_DIR="${1:-build/bench}"
OUT_DIR="${SMARTSIM_BENCH_OUT:-bench_out}"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: bench directory '$BENCH_DIR' not found (build first)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
# Drop reports from previous runs (including the pre-rename BENCH_<short>
# names) so the directory never mixes naming generations and stale files
# cannot shadow a bench that failed to run.
rm -f "$OUT_DIR"/BENCH_*.json "$OUT_DIR"/MANIFEST_*.json

found=0
for b in "$BENCH_DIR"/*; do
  # Skip cmake droppings.
  if [ -f "$b" ] && [ -x "$b" ]; then
    found=1
    name="$(basename "$b")"
    echo "===== $b ====="
    case "$name" in
      bench_micro)
        # google-benchmark binary: it owns its argv and JSON format (its
        # custom main still writes MANIFEST_bench_micro.json itself).
        "$b" --benchmark_out="$OUT_DIR/BENCH_${name}.json" \
             --benchmark_out_format=json
        ;;
      *)
        "$b" --json "$OUT_DIR/BENCH_${name}.json"
        ;;
    esac
    # A bench that exits 0 without leaving its run manifest silently
    # drops out of the smartsim_report A/B diff; fail fast instead.
    if [ ! -s "$OUT_DIR/MANIFEST_${name}.json" ]; then
      echo "error: $name exited 0 but wrote no $OUT_DIR/MANIFEST_${name}.json" >&2
      exit 1
    fi
    echo
  fi
done

if [ "$found" -eq 0 ]; then
  echo "error: no benchmark binaries in '$BENCH_DIR'" >&2
  exit 1
fi
