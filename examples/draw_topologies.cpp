// Example: text renderings of the paper's topology figures.
//
// Figure 2 of the paper shows a 4-ary 2-tree, Figure 3 a 5-ary 2-cube.
// This example prints the same structures from the topology library: the
// fat-tree level by level with every switch's down connectivity, and the
// torus as a coordinate grid with its wrap-around links — a quick way to
// convince yourself (and test visually) that the wiring rules match the
// figures.
#include <cstdio>
#include <string>

#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"

namespace {

using namespace smart;

void draw_tree(unsigned k, unsigned n) {
  const KaryNTree tree(k, n);
  std::printf("%s — %zu nodes, %zu switches (%zu per level), %zu ports each\n\n",
              tree.name().c_str(), tree.node_count(), tree.switch_count(),
              tree.switches_per_level(), tree.ports_per_switch());

  for (unsigned level = 0; level < n; ++level) {
    std::printf("level %u%s:\n", level,
                level == 0             ? " (root; up ports are the external connections)"
                : level == n - 1       ? " (leaf; down ports reach the processing nodes)"
                                       : "");
    for (std::uint64_t word = 0; word < tree.switches_per_level(); ++word) {
      const SwitchId sw = tree.switch_id(level, word);
      std::string digits;
      for (unsigned i = 0; i + 1 < n; ++i) {
        // Formatted into a char buffer: appending std::to_string's
        // temporary trips GCC 12's -Wrestrict false positive (PR 105651).
        char digit[12];
        std::snprintf(digit, sizeof digit, "%u", tree.word_digit(word, i));
        digits += digit;
      }
      if (digits.empty()) digits.assign(1, '-');
      std::printf("  <%s,%u>  down:", digits.c_str(), level);
      for (PortId p = 0; p < k; ++p) {
        const PortPeer peer = tree.port_peer(sw, p);
        if (peer.kind == PeerKind::kTerminal) {
          std::printf(" P%u", peer.id);
        } else {
          std::printf(" s%u", peer.id);
        }
      }
      std::printf("   up:");
      for (PortId p = k; p < 2 * k; ++p) {
        const PortPeer peer = tree.port_peer(sw, p);
        if (peer.kind == PeerKind::kUnconnected) {
          std::printf(" ext");
        } else {
          std::printf(" s%u", peer.id);
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\nAny minimal path climbs to a nearest common ancestor and "
              "descends (paper Figure 2).\n\n");
}

void draw_cube(unsigned k) {
  const KaryNCube cube(k, 2);
  std::printf("%s — %zu nodes, diameter %u, bisection %zu channels/direction\n\n",
              cube.name().c_str(), cube.node_count(), cube.diameter(),
              cube.bisection_channels());

  // Grid with explicit horizontal links; the wrap-around is marked '~'.
  for (unsigned y = k; y-- > 0;) {
    std::printf("  ~");
    for (unsigned x = 0; x < k; ++x) {
      std::printf("%3u%s", cube.switch_at({x, y}), x + 1 < k ? " --" : " ~");
    }
    std::printf("\n");
    if (y > 0) {
      std::printf("   ");
      for (unsigned x = 0; x < k; ++x) std::printf("  |  ");
      std::printf("\n");
    }
  }
  std::printf("\n('~' = wrap-around links closing each row; each column "
              "wraps the same way; paper Figure 3.)\n");
}

}  // namespace

int main() {
  draw_tree(4, 2);   // the paper's Figure 2
  draw_cube(5);      // the paper's Figure 3
  return 0;
}
