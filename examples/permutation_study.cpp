// Example: studying how a parallel algorithm's communication pattern
// interacts with the network — the workload the paper's introduction
// motivates (matrix transposition, FFT-style bit reversal, and global
// exchanges occur in practical computations [Leighton 92]).
//
// For one network configuration this example sweeps every built-in
// permutation pattern at a fixed offered load and reports throughput,
// latency, and the pattern's average distance, showing which permutations
// a fat-tree routes at capacity (congestion-free) and which congest its
// descending phase.
//
// Usage: permutation_study [offered_fraction]   (default 0.6)
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "topology/kary_ntree.hpp"

int main(int argc, char** argv) {
  using namespace smart;

  const double load = argc > 1 ? std::atof(argv[1]) : 0.6;
  if (load <= 0.0 || load > 1.0) {
    std::fprintf(stderr, "offered fraction must be in (0, 1]\n");
    return 1;
  }

  SimConfig config;
  config.net = paper_tree_spec(4);
  config.traffic.offered_fraction = load;

  const KaryNTree tree(config.net.k, config.net.n);

  std::printf("permutation study: %s, offered load %.0f%% of capacity\n\n",
              config.net.description().c_str(), load * 100.0);

  Table table({"pattern", "injecting", "avg distance", "accepted (frac)",
               "latency (cycles)", "p95 flow"});
  const PatternKind kinds[] = {
      PatternKind::kComplement,      PatternKind::kTranspose,
      PatternKind::kBitReversal,     PatternKind::kShuffle,
      PatternKind::kNeighbor,        PatternKind::kTornado,
      PatternKind::kRandomPermutation,
  };
  for (PatternKind kind : kinds) {
    config.traffic.pattern = kind;
    Network network(config);
    const SimulationResult& result = network.run();

    const auto pattern = make_pattern(kind, tree.node_count(), config.net.k,
                                      config.net.n, config.traffic.seed);
    const double distance = tree.average_distance_under_permutation(
        pattern->destination_table());

    table.begin_row()
        .add_cell(pattern->name())
        .add_cell(format_double(result.injecting_fraction * 100.0, 1) + "%")
        .add_cell(distance, 3)
        .add_cell(result.accepted_fraction, 3)
        .add_cell(result.latency_cycles.count() > 0
                      ? format_double(result.latency_cycles.mean(), 1)
                      : std::string{"-"})
        .add_cell(result.accepted_fraction >=
                          load * result.injecting_fraction * 0.95
                      ? std::string{"full"}
                      : std::string{"congested"});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "Patterns that map the tree into itself without descending conflicts\n"
      "(complement) run at full load; transpose-like permutations congest\n"
      "the descending phase and saturate earlier (paper §8.1).\n");
  return 0;
}
