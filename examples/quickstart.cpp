// Quickstart: simulate the paper's two 256-node networks at one operating
// point and print throughput and latency, in both normalized (fraction of
// capacity, cycles) and absolute (bits/nsec, nsec) units.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "core/network.hpp"

int main() {
  using namespace smart;

  // 1. Pick a network: the paper's 16-ary 2-cube with Duato's minimal
  //    adaptive routing, normalized for physical constraints (4-byte
  //    flits, 4 virtual channels, 4-flit lane buffers).
  SimConfig config;
  config.net = paper_cube_spec(RoutingKind::kCubeDuato);

  // 2. Pick the traffic: uniform destinations, 40 % of the theoretical
  //    capacity, 64-byte packets (the defaults follow paper §4-§7).
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.4;

  // 3. Run: 2000 warm-up cycles, measurement until cycle 20000.
  Network cube(config);
  const SimulationResult& cube_result = cube.run();

  // 4. The same experiment on the 4-ary 4-tree with 4 virtual channels.
  config.net = paper_tree_spec(4);
  Network tree(config);
  const SimulationResult& tree_result = tree.run();

  const NormalizedScale cube_scale = scale_for(paper_cube_spec(RoutingKind::kCubeDuato));
  const NormalizedScale tree_scale = scale_for(paper_tree_spec(4));

  std::printf("quickstart: 256-node networks, uniform traffic at 40%% of capacity\n\n");
  const struct {
    const char* label;
    const SimulationResult* result;
    const NormalizedScale* scale;
  } rows[] = {
      {"16-ary 2-cube (Duato)", &cube_result, &cube_scale},
      {"4-ary 4-tree (4 vc)", &tree_result, &tree_scale},
  };
  for (const auto& row : rows) {
    const double accepted_bits =
        to_bits_per_ns(row.result->accepted_flits_per_node_cycle,
                       row.scale->nodes, row.scale->flit_bytes,
                       row.scale->clock_ns);
    std::printf("%-24s accepted %.3f of capacity (%6.1f bits/ns)   "
                "latency %6.1f cycles (%7.1f ns)   delivered %llu packets\n",
                row.label, row.result->accepted_fraction, accepted_bits,
                row.result->latency_cycles.mean(),
                to_ns(row.result->latency_cycles.mean(), row.scale->clock_ns),
                static_cast<unsigned long long>(row.result->delivered_packets));
  }

  std::printf("\nThe cube's wider data paths (4-byte vs 2-byte flits) and faster\n"
              "clock (%.2f ns vs %.2f ns) give it lower absolute latency, as in\n"
              "the paper's Figure 7.\n",
              cube_scale.clock_ns, tree_scale.clock_ns);
  return 0;
}
