// Example: extending the library with a user-defined traffic pattern.
//
// The paper's synthetic benchmarks are bit-string permutations; real
// shared-memory workloads also have locality. This example defines a
// "near-neighbour with hotspots" pattern outside the library — a weighted
// mixture of nearest-neighbour exchange and uniform traffic to a small set
// of hot home nodes (a crude model of directory-based cache coherence) —
// and runs it through the standard harness by driving Network directly
// with manually enqueued packets.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "traffic/pattern.hpp"

namespace {

using namespace smart;

/// 96 % neighbour exchange, 4 % requests to one of four directory homes
/// (each home's ejection link can sustain that request rate at half load).
class CoherencePattern final : public TrafficPattern {
 public:
  explicit CoherencePattern(std::size_t nodes) : TrafficPattern(nodes) {
    for (NodeId home = 0; home < 4; ++home) {
      homes_.push_back(static_cast<NodeId>(home * nodes / 4));
    }
  }

  [[nodiscard]] std::string name() const override { return "coherence mix"; }

  [[nodiscard]] std::optional<NodeId> destination(NodeId src,
                                                  Rng& rng) const override {
    if (rng.bernoulli(0.96)) {
      return static_cast<NodeId>((src + 1) % nodes_);
    }
    const NodeId home = homes_[rng.below(homes_.size())];
    if (home == src) return static_cast<NodeId>((src + 1) % nodes_);
    return home;
  }

  [[nodiscard]] bool is_permutation() const override { return false; }

 private:
  std::vector<NodeId> homes_;
};

}  // namespace

int main() {
  using namespace smart;

  // The library's generator is pattern-driven, so a custom pattern can be
  // exercised by disabling built-in generation (offered 0) and enqueueing
  // packets manually each cycle.
  SimConfig config;
  config.net = paper_cube_spec(RoutingKind::kCubeDuato);
  config.traffic.offered_fraction = 0.0;

  Network network(config);
  const CoherencePattern pattern(network.topology().node_count());
  Rng rng(2026);
  const double packet_rate = 0.5 * network.capacity_flits_per_node_cycle() /
                             network.flits_per_packet();

  std::printf("custom pattern: '%s' on %s at ~50%% of capacity\n\n",
              pattern.name().c_str(), config.net.description().c_str());

  const std::uint64_t horizon = 20000;
  for (std::uint64_t cycle = 0; cycle < horizon; ++cycle) {
    for (NodeId node = 0; node < network.topology().node_count(); ++node) {
      if (rng.bernoulli(packet_rate)) {
        if (const auto dst = pattern.destination(node, rng)) {
          network.enqueue_packet(node, *dst);
        }
      }
    }
    network.step();
  }

  const SimulationResult& result = network.result();
  // finalize happens in run(); compute the essentials directly instead.
  std::printf("delivered packets: %llu\n",
              static_cast<unsigned long long>(network.consumed_flits() /
                                              network.flits_per_packet()));
  std::printf("flits in flight at end: %llu\n",
              static_cast<unsigned long long>(network.buffered_flits()));
  std::printf("deadlocked: %s\n", network.deadlocked() ? "yes" : "no");
  (void)result;

  std::printf("\nLocality pays on the direct network: most packets travel "
              "1 hop, so the\ncoherence mix runs far below the uniform "
              "saturation point.\n");
  return 0;
}
