// Example: a "capacity planner" for an interconnect architect. Given a
// target packet latency budget in nanoseconds, find — for each candidate
// network — the highest uniform-traffic load that stays within budget, and
// report the absolute bandwidth that load represents. This exercises the
// full public API: load sweeps, the Chien cost model, and the absolute
// unit conversions of the paper's final comparison.
//
// Usage: capacity_planner [latency_budget_ns]   (default 1000 ns)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"

int main(int argc, char** argv) {
  using namespace smart;

  const double budget_ns = argc > 1 ? std::atof(argv[1]) : 1000.0;
  if (budget_ns <= 0.0) {
    std::fprintf(stderr, "latency budget must be positive\n");
    return 1;
  }

  std::printf("capacity planner: max uniform load with mean network latency "
              "<= %.0f ns\n\n", budget_ns);

  const struct {
    const char* label;
    NetworkSpec spec;
  } candidates[] = {
      {"16-ary 2-cube, deterministic",
       paper_cube_spec(RoutingKind::kCubeDeterministic)},
      {"16-ary 2-cube, Duato", paper_cube_spec(RoutingKind::kCubeDuato)},
      {"4-ary 4-tree, 1 vc", paper_tree_spec(1)},
      {"4-ary 4-tree, 2 vc", paper_tree_spec(2)},
      {"4-ary 4-tree, 4 vc", paper_tree_spec(4)},
  };

  const std::vector<double> loads{0.1, 0.2, 0.3, 0.4, 0.5,
                                  0.6, 0.7, 0.8, 0.9, 1.0};

  Table table({"network", "clock (ns)", "max load (frac)",
               "bandwidth (bits/ns)", "latency there (ns)"});
  for (const auto& candidate : candidates) {
    SimConfig config;
    config.net = candidate.spec;
    config.traffic.pattern = PatternKind::kUniform;
    const auto sweep = run_sweep(config, loads);
    const NormalizedScale scale = scale_for(candidate.spec);

    double best_load = 0.0;
    double best_bits = 0.0;
    double best_latency = 0.0;
    for (const SimulationResult& point : sweep) {
      if (point.latency_cycles.count() == 0) continue;
      const double latency_ns =
          to_ns(point.latency_cycles.mean(), scale.clock_ns);
      // Within budget AND actually delivering what is offered.
      const bool delivers =
          point.accepted_fraction >=
          point.effective_offered_fraction() * 0.95;
      if (latency_ns <= budget_ns && delivers &&
          point.offered_fraction > best_load) {
        best_load = point.offered_fraction;
        best_bits = to_bits_per_ns(point.accepted_flits_per_node_cycle,
                                   scale.nodes, scale.flit_bytes,
                                   scale.clock_ns);
        best_latency = latency_ns;
      }
    }

    table.begin_row().add_cell(std::string{candidate.label}).add_cell(
        scale.clock_ns, 2);
    if (best_load > 0.0) {
      table.add_cell(best_load, 2)
          .add_cell(best_bits, 1)
          .add_cell(best_latency, 1);
    } else {
      table.add_cell(std::string{"-"})
          .add_cell(std::string{"-"})
          .add_cell(std::string{"over budget"});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("Physical constraints decide the ranking: the cube's 4-byte\n"
              "data paths and short wires buy a faster clock, so it carries\n"
              "more absolute bandwidth within the same latency budget\n"
              "(paper §10).\n");
  return 0;
}
