// Parsed --workload specs.
//
// A workload spec names a family plus key=value parameters, exactly like a
// --topology spec ("incast:servers=16,window=4,mode=closed"). The parse and
// validation helpers mirror TopoSpec (src/topology/registry.hpp): unknown
// keys error instead of silently falling back to defaults, and malformed or
// duplicate pairs are rejected with the offending item named. An empty
// family means "no workload" — the engine then runs the classic open-loop
// synthetic traffic from src/traffic/.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace smart {

struct WorkloadSpec {
  std::string family;  ///< empty = open-loop traffic, no workload layer
  std::vector<std::pair<std::string, std::string>> params;

  /// True when a --workload spec was configured.
  [[nodiscard]] bool enabled() const noexcept { return !family.empty(); }

  /// The canonical "family:key=val,..." form for manifests and logs.
  [[nodiscard]] std::string spec_string() const {
    std::string text = family;
    for (std::size_t i = 0; i < params.size(); ++i) {
      text += i == 0 ? ':' : ',';
      text += params[i].first;
      text += '=';
      text += params[i].second;
    }
    return text;
  }

  /// The value of `key`, or null when absent.
  [[nodiscard]] const std::string* find(const std::string& key) const;

  /// Overwrites *out with params[key] parsed as an integer in
  /// [1, 2^32-1]; leaves *out untouched when the key is absent. Returns
  /// false (message in *error) on a malformed or out-of-range value.
  bool get_unsigned(const std::string& key, unsigned* out,
                    std::string* error) const;

  /// Like get_unsigned but accepts 0.
  bool get_unsigned_or_zero(const std::string& key, unsigned* out,
                            std::string* error) const;

  /// Overwrites *out with params[key] parsed as a double in [0, 1];
  /// leaves *out untouched when the key is absent.
  bool get_fraction(const std::string& key, double* out,
                    std::string* error) const;

  /// Rejects parameters outside `allowed` — typos must error, not
  /// silently fall back to defaults. Returns false with *error listing
  /// the offending key and the allowed set.
  bool check_keys(std::initializer_list<const char*> allowed,
                  std::string* error) const;
};

/// Parses "family" or "family:key=val,key=val" into *spec. Returns false
/// (message in *error) on an empty family name or a malformed/duplicate
/// key=value pair. Does not check that the family exists — callers look
/// it up in the WorkloadRegistry to get a usage listing on miss.
bool parse_workload_spec(const std::string& text, WorkloadSpec* spec,
                         std::string* error);

}  // namespace smart
