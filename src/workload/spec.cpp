#include "workload/spec.hpp"

#include <cstdint>
#include <cstdlib>

namespace smart {

const std::string* WorkloadSpec::find(const std::string& key) const {
  for (const auto& [name, value] : params) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

bool parse_unsigned(const std::string& family, const std::string& key,
                    const std::string& text, std::uint64_t min_value,
                    unsigned* out, std::string* error) {
  std::uint64_t value = 0;
  bool ok = !text.empty();
  for (const char c : text) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xffffffffULL) {
      ok = false;
      break;
    }
  }
  if (!ok || value < min_value) {
    if (error != nullptr) {
      *error = "workload param " + key + "=" + text +
               ": expected an integer in [" + std::to_string(min_value) +
               ", 4294967295] (family '" + family + "')";
    }
    return false;
  }
  *out = static_cast<unsigned>(value);
  return true;
}

}  // namespace

bool WorkloadSpec::get_unsigned(const std::string& key, unsigned* out,
                                std::string* error) const {
  const std::string* text = find(key);
  if (text == nullptr) return true;
  return parse_unsigned(family, key, *text, /*min_value=*/1, out, error);
}

bool WorkloadSpec::get_unsigned_or_zero(const std::string& key, unsigned* out,
                                        std::string* error) const {
  const std::string* text = find(key);
  if (text == nullptr) return true;
  return parse_unsigned(family, key, *text, /*min_value=*/0, out, error);
}

bool WorkloadSpec::get_fraction(const std::string& key, double* out,
                                std::string* error) const {
  const std::string* text = find(key);
  if (text == nullptr) return true;
  char* end = nullptr;
  const double value = std::strtod(text->c_str(), &end);
  if (end == nullptr || *end != '\0' || text->empty() || value < 0.0 ||
      value > 1.0) {
    if (error != nullptr) {
      *error = "workload param " + key + "=" + *text +
               ": expected a number in [0, 1] (family '" + family + "')";
    }
    return false;
  }
  *out = value;
  return true;
}

bool WorkloadSpec::check_keys(std::initializer_list<const char*> allowed,
                              std::string* error) const {
  for (const auto& [name, value] : params) {
    bool known = false;
    for (const char* key : allowed) {
      if (name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      if (error != nullptr) {
        *error = "unknown param '" + name + "' for workload family '" +
                 family + "' (accepted:";
        for (const char* key : allowed) *error += std::string(" ") + key;
        *error += ")";
      }
      return false;
    }
  }
  return true;
}

bool parse_workload_spec(const std::string& text, WorkloadSpec* spec,
                         std::string* error) {
  spec->params.clear();
  const std::size_t colon = text.find(':');
  spec->family = text.substr(0, colon);
  if (spec->family.empty()) {
    if (error != nullptr) {
      *error = "workload spec '" + text + "': empty family name";
    }
    return false;
  }
  if (colon == std::string::npos) return true;

  std::size_t pos = colon + 1;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      if (error != nullptr) {
        *error = "workload spec '" + text + "': malformed param '" + item +
                 "' (expected key=value)";
      }
      return false;
    }
    const std::string key = item.substr(0, eq);
    if (spec->find(key) != nullptr) {
      if (error != nullptr) {
        *error = "workload spec '" + text + "': duplicate param '" + key + "'";
      }
      return false;
    }
    spec->params.emplace_back(key, item.substr(eq + 1));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace smart
