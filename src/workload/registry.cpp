// Workload-family registry and the built-in family builders.
//
// Mirrors the topology registry (src/topology/registry.cpp): one lookup
// path from a "--workload family:key=val" spec to a built Workload, with
// typo-rejecting parameter validation and a usage listing on unknown
// families. Adding a family is a builder function plus one add() call.
#include <cstdint>

#include "workload/collective.hpp"
#include "workload/request_reply.hpp"
#include "workload/workload.hpp"

namespace smart {

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(WorkloadFamily family) {
  for (WorkloadFamily& existing : families_) {
    if (existing.name == family.name) {
      existing = std::move(family);
      return;
    }
  }
  families_.push_back(std::move(family));
}

const WorkloadFamily* WorkloadRegistry::find(const std::string& name) const {
  for (const WorkloadFamily& family : families_) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const WorkloadFamily& family : families_) out.push_back(family.name);
  return out;
}

std::string WorkloadRegistry::usage() const {
  std::string out = "registered workload families:\n";
  for (const WorkloadFamily& family : families_) {
    out += "  " + family.grammar + "\n      " + family.summary + "\n";
  }
  return out;
}

std::unique_ptr<Workload> WorkloadRegistry::build(const WorkloadSpec& spec,
                                                  std::size_t nodes,
                                                  std::uint64_t seed,
                                                  std::string* error) const {
  const WorkloadFamily* family = find(spec.family);
  if (family == nullptr) {
    if (error != nullptr) {
      *error = "unknown workload family '" + spec.family + "'\n" + usage();
    }
    return nullptr;
  }
  return family->build(spec, nodes, seed, error);
}

namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Parses the keys shared by every request/reply family (mode, window,
/// think, rate, service, dist) into *options.
bool parse_request_reply_common(const WorkloadSpec& spec,
                                RequestReplyOptions* options,
                                std::string* error) {
  if (!spec.get_unsigned("window", &options->window, error) ||
      !spec.get_unsigned_or_zero("think", &options->think, error) ||
      !spec.get_fraction("rate", &options->rate, error) ||
      !spec.get_unsigned_or_zero("service", &options->service, error)) {
    return false;
  }
  if (const std::string* mode = spec.find("mode")) {
    if (*mode == "closed") {
      options->mode = RequestReplyOptions::Mode::kClosed;
    } else if (*mode == "partly") {
      options->mode = RequestReplyOptions::Mode::kPartly;
    } else if (*mode == "open") {
      options->mode = RequestReplyOptions::Mode::kOpen;
    } else {
      return fail(error, "workload param mode=" + *mode +
                             ": expected closed, partly or open");
    }
  }
  if (const std::string* dist = spec.find("dist")) {
    if (*dist == "fixed") {
      options->dist = RequestReplyOptions::ServiceDist::kFixed;
    } else if (*dist == "uniform") {
      options->dist = RequestReplyOptions::ServiceDist::kUniform;
    } else if (*dist == "exp") {
      options->dist = RequestReplyOptions::ServiceDist::kExp;
    } else {
      return fail(error, "workload param dist=" + *dist +
                             ": expected fixed, uniform or exp");
    }
  }
  if (options->mode != RequestReplyOptions::Mode::kClosed &&
      options->rate <= 0.0) {
    const char* mode_name =
        options->mode == RequestReplyOptions::Mode::kPartly ? "partly"
                                                            : "open";
    return fail(error, "workload mode=" + std::string(mode_name) +
                           " needs rate > 0");
  }
  return true;
}

std::unique_ptr<Workload> build_echo(const WorkloadSpec& spec,
                                     std::size_t nodes, std::uint64_t seed,
                                     std::string* error) {
  if (!spec.check_keys({"mode", "window", "think", "rate", "service", "dist"},
                       error)) {
    return nullptr;
  }
  RequestReplyOptions options;
  options.family = RequestReplyOptions::Family::kEcho;
  if (!parse_request_reply_common(spec, &options, error)) return nullptr;
  if (nodes < 2) {
    fail(error, "workload echo needs at least two nodes");
    return nullptr;
  }
  return std::make_unique<RequestReplyWorkload>("echo", options, nodes, seed);
}

std::unique_ptr<Workload> build_incast(const WorkloadSpec& spec,
                                       std::size_t nodes, std::uint64_t seed,
                                       std::string* error) {
  if (!spec.check_keys({"servers", "assign", "mute", "mode", "window",
                        "think", "rate", "service", "dist"},
                       error)) {
    return nullptr;
  }
  RequestReplyOptions options;
  options.family = RequestReplyOptions::Family::kIncast;
  options.servers = 4;
  if (!parse_request_reply_common(spec, &options, error) ||
      !spec.get_unsigned("servers", &options.servers, error) ||
      !spec.get_unsigned_or_zero("mute", &options.mute, error)) {
    return nullptr;
  }
  if (const std::string* assign = spec.find("assign")) {
    if (*assign == "random") {
      options.assign = RequestReplyOptions::Assign::kRandom;
    } else if (*assign == "pin") {
      options.assign = RequestReplyOptions::Assign::kPin;
    } else {
      fail(error, "workload param assign=" + *assign +
                      ": expected random or pin");
      return nullptr;
    }
  }
  if (options.servers >= nodes) {
    fail(error, "workload incast: servers=" +
                    std::to_string(options.servers) +
                    " leaves no client on " + std::to_string(nodes) +
                    " nodes");
    return nullptr;
  }
  if (options.mute > options.servers) {
    fail(error, "workload incast: mute=" + std::to_string(options.mute) +
                    " exceeds servers=" + std::to_string(options.servers));
    return nullptr;
  }
  return std::make_unique<RequestReplyWorkload>("incast", options, nodes,
                                                seed);
}

std::unique_ptr<Workload> build_rpc(const WorkloadSpec& spec,
                                    std::size_t nodes, std::uint64_t seed,
                                    std::string* error) {
  if (!spec.check_keys({"servers", "fanout", "mode", "window", "think",
                        "rate", "service", "dist"},
                       error)) {
    return nullptr;
  }
  RequestReplyOptions options;
  options.family = RequestReplyOptions::Family::kRpc;
  options.servers = 8;
  if (!parse_request_reply_common(spec, &options, error) ||
      !spec.get_unsigned("servers", &options.servers, error) ||
      !spec.get_unsigned("fanout", &options.fanout, error)) {
    return nullptr;
  }
  if (options.servers >= nodes) {
    fail(error, "workload rpc: servers=" + std::to_string(options.servers) +
                    " leaves no client on " + std::to_string(nodes) +
                    " nodes");
    return nullptr;
  }
  if (options.fanout + 1 > options.servers) {
    fail(error, "workload rpc: fanout=" + std::to_string(options.fanout) +
                    " needs at least fanout+1 servers (got " +
                    std::to_string(options.servers) + ")");
    return nullptr;
  }
  return std::make_unique<RequestReplyWorkload>("rpc", options, nodes, seed);
}

std::unique_ptr<Workload> build_alltoall(const WorkloadSpec& spec,
                                         std::size_t nodes,
                                         std::uint64_t /*seed*/,
                                         std::string* error) {
  if (!spec.check_keys({"burst", "think"}, error)) return nullptr;
  CollectiveOptions options;
  options.kind = CollectiveOptions::Kind::kAllToAll;
  if (!spec.get_unsigned("burst", &options.burst, error) ||
      !spec.get_unsigned_or_zero("think", &options.think, error)) {
    return nullptr;
  }
  if (nodes < 2) {
    fail(error, "workload alltoall needs at least two nodes");
    return nullptr;
  }
  return std::make_unique<CollectiveWorkload>("alltoall", options, nodes);
}

std::unique_ptr<Workload> build_allreduce(const WorkloadSpec& spec,
                                          std::size_t nodes,
                                          std::uint64_t /*seed*/,
                                          std::string* error) {
  if (!spec.check_keys({"steps", "think"}, error)) return nullptr;
  CollectiveOptions options;
  options.kind = CollectiveOptions::Kind::kAllReduce;
  if (!spec.get_unsigned("steps", &options.steps, error) ||
      !spec.get_unsigned_or_zero("think", &options.think, error)) {
    return nullptr;
  }
  if (nodes < 2) {
    fail(error, "workload allreduce needs at least two nodes");
    return nullptr;
  }
  return std::make_unique<CollectiveWorkload>("allreduce", options, nodes);
}

}  // namespace

void ensure_builtin_workloads() {
  static const bool once = [] {
    WorkloadRegistry& reg = WorkloadRegistry::instance();
    reg.add({"echo",
             "echo[:mode=closed|partly|open,window=W,think=T,rate=R,"
             "service=S,dist=fixed|uniform|exp]",
             "every node echoes requests off a uniform random peer",
             build_echo});
    reg.add({"incast",
             "incast[:servers=S,assign=random|pin,mute=M,mode=...,window=W,"
             "think=T,rate=R,service=S,dist=...]",
             "clients converge on a storage set; mute models dead servers",
             build_incast});
    reg.add({"rpc",
             "rpc[:servers=S,fanout=K,mode=...,window=W,think=T,rate=R,"
             "service=S,dist=...]",
             "frontends fan each request out to K dependent leaf requests",
             build_rpc});
    reg.add({"alltoall",
             "alltoall[:burst=B,think=T]",
             "rounds of personalized all-to-all exchange, B sends per cycle",
             build_alltoall});
    reg.add({"allreduce",
             "allreduce[:steps=S,think=T]",
             "ring allreduce as dependent packet waves (default 2(N-1))",
             build_allreduce});
    return true;
  }();
  (void)once;
}

}  // namespace smart
