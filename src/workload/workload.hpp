// Closed-loop workloads: client/server state machines above the fabric.
//
// Every generator in src/traffic/ is open-loop — packets appear at a
// configured rate regardless of what the network delivers. A Workload
// instead models the *users* of the fabric (ROADMAP north star): terminals
// run request/reply state machines, clients issue requests open-, closed-
// or partly-open-loop, servers reply after a service-time distribution,
// and composite patterns express RPC fan-out, incast toward storage nodes
// and collective dependence chains. The layer reports delivered service the
// way a user sees it — request-completion latency (source queueing
// included), goodput and per-client fairness — rather than flit acceptance.
//
// ## Engine contract and determinism
//
// The CycleEngine consults the workload at exactly three serial points, so
// results stay bit-identical for any thread count (the PR 7 merge-order
// discipline):
//
//   * begin_cycle() runs at the top of step(), after the measuring flip and
//     before any phase — the one place a workload may inject packets (via
//     the SendFn, which wraps CycleEngine::enqueue_packet). It is serial in
//     both pipelines, like RoutingAlgorithm::begin_cycle and the throttle
//     sweep.
//   * on_delivered() fires when a packet's tail is consumed at its
//     destination. consume() is serial by construction: inline in the
//     serial pipeline, replayed from the staged per-shard consume lists in
//     ascending shard order (= the serial visit order) in the sharded one.
//   * on_dropped() fires when a fault-drained worm's tail is dropped —
//     staged and replayed serially exactly like consumes.
//
// Reply generation is therefore *staged*: on_delivered never sends; it
// records a future event (ready cycle drawn from the acting node's own
// RNG stream), and the next begin_cycle at or after that cycle pops the
// event queue in (ready, creation-seq) order and issues the reply. All RNG
// draws happen at these serial points in a deterministic order, so a
// workload run is a pure function of (config, seed) — the thread-matrix
// goldens in tests/test_workload.cpp pin threads {1,2,4,7} bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "router/flit.hpp"
#include "topology/topology.hpp"
#include "util/stats.hpp"
#include "workload/spec.hpp"

namespace smart {

/// User-visible service metrics of one workload run, filled into
/// SimulationResult::workload. Request counters follow one conservation
/// identity the tests pin:
///
///   requests_issued == requests_completed + requests_dropped
///                      + outstanding_end
///
/// where outstanding_end counts requests still waiting on a reply when the
/// run stopped (e.g. requests parked at a muted server).
struct WorkloadReport {
  bool enabled = false;
  std::string family;
  std::uint64_t clients = 0;  ///< nodes acting as request sources
  std::uint64_t servers = 0;  ///< nodes acting as reply sources (0 = peer)

  // Whole-run conservation counters.
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_completed = 0;
  /// Requests that lost a packet to a fault drain (terminal: the client
  /// frees the window slot and moves on).
  std::uint64_t requests_dropped = 0;
  /// Requests still in flight (or parked at a dead server) at end of run.
  std::uint64_t outstanding_end = 0;
  /// Completions during the post-horizon drain (kept out of the window
  /// rates below, like the engine's drain_delivered counters).
  std::uint64_t drain_completed = 0;
  /// Partly-open loop only: arrivals still waiting for a window slot at
  /// end of run (the self-throttling backlog the starvation scan reads).
  std::uint64_t backlog_end = 0;

  // Measurement-window service metrics.
  std::uint64_t window_issued = 0;
  std::uint64_t window_completed = 0;
  /// Completed requests per thousand cycles per client, over the window.
  double goodput = 0.0;
  /// Jain fairness index over per-client window completions: 1 = every
  /// client served equally, 1/clients = one client served. 1 when idle.
  double fairness_jain = 1.0;
  /// Mean in-flight requests per client over the window (occupancy).
  double outstanding_mean = 0.0;
  /// Request-completion latency, creation to reply delivery — source
  /// queueing *included*, unlike the engine's flit latency (20-cycle bins,
  /// overflow above 10000 cycles).
  Histogram completion_latency{20.0, 500};
  [[nodiscard]] double completion_percentile(double q) const {
    return completion_latency.quantile(q);
  }
};

/// Interface the CycleEngine drives (see the header comment for the
/// three serial call sites and the determinism argument).
class Workload {
 public:
  /// Injects one packet at `src` bound for `dst`; returns its pool id
  /// (dense and recycled — workloads key per-packet state off it).
  using SendFn = std::function<PacketId(NodeId src, NodeId dst)>;

  virtual ~Workload() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  /// key=value pairs echoed into the run manifest's config block.
  [[nodiscard]] virtual std::vector<std::pair<std::string, std::string>>
  echo_params() const = 0;

  /// Top-of-cycle serial phase: pop due staged events, issue replies and
  /// new requests. `measuring` mirrors the engine's window flag;
  /// `draining` is true past the horizon — clients must stop issuing new
  /// requests but servers keep replying so in-flight requests finish.
  virtual void begin_cycle(std::uint64_t cycle, bool measuring, bool draining,
                           const SendFn& send) = 0;

  /// A packet's tail was consumed at `dst` (serial, deterministic order).
  /// Must not send — stage instead.
  virtual void on_delivered(PacketId id, NodeId src, NodeId dst,
                            std::uint64_t cycle) = 0;

  /// A packet was dropped by a fault drain (serial, deterministic order).
  virtual void on_dropped(PacketId id, std::uint64_t cycle) = 0;

  /// Requests queued above the NIC at `node` (arrivals waiting for a
  /// window slot). The engine adds this to the NIC source-queue depth in
  /// the starvation scan: a client wedged behind a dead server looks the
  /// same whether its requests wait below or above the injection queue.
  [[nodiscard]] virtual std::uint64_t queued_requests(NodeId node) const = 0;

  /// False while staged events that will still send packets are pending —
  /// the post-horizon drain keeps cycling until the fabric is empty AND
  /// the workload is quiescent, so replies in service still complete.
  [[nodiscard]] virtual bool quiescent() const = 0;

  [[nodiscard]] virtual WorkloadReport report() const = 0;
};

/// A registered workload family: spec grammar, one-line summary, builder.
struct WorkloadFamily {
  std::string name;
  /// Spec grammar shown in usage listings, e.g.
  /// "incast:servers=S,window=W,mode=closed|partly|open".
  std::string grammar;
  std::string summary;
  /// Builds the workload for a parsed spec over `nodes` terminals, or
  /// returns null with a message in *error on an invalid spec.
  std::function<std::unique_ptr<Workload>(
      const WorkloadSpec&, std::size_t nodes, std::uint64_t seed,
      std::string* error)>
      build;
};

/// String-keyed workload-family registry (the --topology registry pattern:
/// one lookup path for the CLI, Network assembly and the benches; adding a
/// family is one source file plus a registration call).
class WorkloadRegistry {
 public:
  static WorkloadRegistry& instance();

  /// Registers (or replaces, by name) a family.
  void add(WorkloadFamily family);

  /// The family registered under `name`, or null.
  [[nodiscard]] const WorkloadFamily* find(const std::string& name) const;

  /// Registered family names, registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Multi-line usage listing for unknown-family error messages.
  [[nodiscard]] std::string usage() const;

  /// Looks up spec.family and builds it; null with a message in *error
  /// (including the usage listing for unknown families).
  [[nodiscard]] std::unique_ptr<Workload> build(const WorkloadSpec& spec,
                                                std::size_t nodes,
                                                std::uint64_t seed,
                                                std::string* error) const;

 private:
  std::vector<WorkloadFamily> families_;
};

/// Registers the built-in families (echo, incast, rpc, alltoall,
/// allreduce); idempotent, called by Network assembly and the CLI.
void ensure_builtin_workloads();

}  // namespace smart
