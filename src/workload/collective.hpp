// Collective workloads: dependent packet waves (alltoall, allreduce).
//
// Unlike request/reply, a collective's "request" is one iteration at one
// node — a round of personalized all-to-all exchange, or one full ring
// allreduce — and the dependence structure is the collective itself:
//
//   * alltoall   per round every node sends one packet to each of the
//                other N-1 peers, paced at `burst` sends per cycle in a
//                node-relative ring order; a node advances to the next
//                round only after sending all N-1 and receiving all N-1.
//                Neighbouring rounds overlap by at most one (a node needs
//                every round-r packet to advance), so two round buckets
//                per receiver suffice.
//   * allreduce  the classic ring schedule: `steps` waves (default
//                2*(N-1), reduce-scatter plus allgather) where node i may
//                send step s to (i+1) mod N only after receiving s packets
//                from (i-1) mod N. Packets carry their operation index, so
//                a fast left neighbour running one operation ahead cannot
//                corrupt the gate.
//
// All sends happen in begin_cycle's ascending-node sweep and all receive
// accounting in the engine's serial on_delivered, so collectives inherit
// the thread-count bit-identity of the workload layer for free — no RNG is
// involved at all; the families are fully deterministic schedules.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace smart {

struct CollectiveOptions {
  enum class Kind : std::uint8_t { kAllToAll, kAllReduce };
  Kind kind = Kind::kAllToAll;
  unsigned burst = 1;  ///< alltoall: sends per node per cycle
  unsigned think = 0;  ///< idle cycles between iterations
  unsigned steps = 0;  ///< allreduce waves; 0 derives 2*(N-1)
};

class CollectiveWorkload final : public Workload {
 public:
  CollectiveWorkload(std::string name, const CollectiveOptions& options,
                     std::size_t nodes);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> echo_params()
      const override;
  void begin_cycle(std::uint64_t cycle, bool measuring, bool draining,
                   const SendFn& send) override;
  void on_delivered(PacketId id, NodeId src, NodeId dst,
                    std::uint64_t cycle) override;
  void on_dropped(PacketId id, std::uint64_t cycle) override;
  [[nodiscard]] std::uint64_t queued_requests(NodeId) const override {
    return 0;
  }
  /// Collectives stage nothing outside the fabric: once the lanes are
  /// empty there is nothing left to wait for.
  [[nodiscard]] bool quiescent() const override { return true; }
  [[nodiscard]] WorkloadReport report() const override;

 private:
  struct PacketMeta {
    std::uint32_t iteration = 0;  ///< sender's round/operation index
    NodeId dst = 0;
    bool live = false;
  };

  struct NodeState {
    std::uint32_t iteration = 0;  ///< current round (alltoall) / op index
    std::uint32_t sent = 0;       ///< packets sent this iteration
    std::uint32_t recv = 0;       ///< packets received for this iteration
    std::uint32_t recv_ahead = 0; ///< alltoall: packets for iteration + 1
    /// Allreduce receive counts for operations iteration .. iteration+3
    /// (ring skew around small rings can run a couple of ops deep).
    std::array<std::uint32_t, 4> recv_ops{};
    std::uint64_t start_cycle = 0;   ///< 0 = iteration not yet started
    std::uint64_t resume_cycle = 0;  ///< think gate for the next iteration
    bool wedged = false;  ///< a packet of this node's stream was dropped
  };

  [[nodiscard]] std::uint32_t per_iteration_sends() const noexcept {
    return options_.kind == CollectiveOptions::Kind::kAllToAll
               ? static_cast<std::uint32_t>(nodes_ - 1)
               : steps_;
  }
  void start_iteration(NodeState& state, std::uint64_t cycle);
  void maybe_complete(NodeId node, std::uint64_t cycle);
  void set_meta(PacketId id, std::uint32_t iteration, NodeId dst);

  std::string name_;
  CollectiveOptions options_;
  std::size_t nodes_ = 0;
  std::uint32_t steps_ = 0;  ///< resolved allreduce wave count

  std::vector<NodeState> states_;
  std::vector<PacketMeta> meta_;
  std::vector<std::uint64_t> window_completions_;  ///< per node

  bool measuring_ = false;
  bool draining_ = false;

  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t drain_completed_ = 0;
  std::uint64_t active_iterations_ = 0;

  std::uint64_t window_issued_ = 0;
  std::uint64_t window_completed_ = 0;
  std::uint64_t occupancy_accum_ = 0;
  std::uint64_t measured_cycles_ = 0;
  Histogram completion_latency_{20.0, 500};
};

}  // namespace smart
