#include "workload/collective.hpp"

#include "util/check.hpp"

namespace smart {

CollectiveWorkload::CollectiveWorkload(std::string name,
                                       const CollectiveOptions& options,
                                       std::size_t nodes)
    : name_(std::move(name)), options_(options), nodes_(nodes) {
  SMART_CHECK_MSG(nodes_ >= 2, "a collective needs at least two nodes");
  steps_ = options_.steps != 0
               ? options_.steps
               : static_cast<std::uint32_t>(2 * (nodes_ - 1));
  states_.resize(nodes_);
  window_completions_.assign(nodes_, 0);
}

std::vector<std::pair<std::string, std::string>>
CollectiveWorkload::echo_params() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("think", std::to_string(options_.think));
  if (options_.kind == CollectiveOptions::Kind::kAllToAll) {
    out.emplace_back("burst", std::to_string(options_.burst));
  } else {
    out.emplace_back("steps", std::to_string(steps_));
  }
  return out;
}

void CollectiveWorkload::set_meta(PacketId id, std::uint32_t iteration,
                                  NodeId dst) {
  if (id >= meta_.size()) meta_.resize(id + 1);
  meta_[id].iteration = iteration;
  meta_[id].dst = dst;
  meta_[id].live = true;
}

void CollectiveWorkload::start_iteration(NodeState& state,
                                         std::uint64_t cycle) {
  state.start_cycle = cycle;
  ++issued_;
  if (measuring_) ++window_issued_;
  ++active_iterations_;
}

void CollectiveWorkload::maybe_complete(NodeId node, std::uint64_t cycle) {
  NodeState& state = states_[node];
  if (state.wedged || state.start_cycle == 0) return;
  const std::uint32_t quota = per_iteration_sends();
  const std::uint32_t received =
      options_.kind == CollectiveOptions::Kind::kAllToAll ? state.recv
                                                          : state.recv_ops[0];
  if (state.sent < quota || received < quota) return;
  --active_iterations_;
  ++completed_;
  if (draining_) {
    ++drain_completed_;
  } else if (measuring_) {
    ++window_completed_;
    completion_latency_.add(static_cast<double>(cycle - state.start_cycle));
    ++window_completions_[node];
  }
  ++state.iteration;
  state.sent = 0;
  state.start_cycle = 0;
  state.resume_cycle = cycle + 1 + options_.think;
  if (options_.kind == CollectiveOptions::Kind::kAllToAll) {
    state.recv = state.recv_ahead;
    state.recv_ahead = 0;
  } else {
    for (std::size_t i = 0; i + 1 < state.recv_ops.size(); ++i) {
      state.recv_ops[i] = state.recv_ops[i + 1];
    }
    state.recv_ops.back() = 0;
  }
}

void CollectiveWorkload::begin_cycle(std::uint64_t cycle, bool measuring,
                                     bool draining, const SendFn& send) {
  measuring_ = measuring;
  draining_ = draining;
  if (!draining) {
    for (NodeId node = 0; node < nodes_; ++node) {
      NodeState& state = states_[node];
      if (state.wedged || cycle < state.resume_cycle) continue;
      if (options_.kind == CollectiveOptions::Kind::kAllToAll) {
        const auto quota = static_cast<std::uint32_t>(nodes_ - 1);
        unsigned budget = options_.burst;
        while (state.sent < quota && budget > 0) {
          if (state.start_cycle == 0) start_iteration(state, cycle);
          // Node-relative ring order: peer k of node i is i + 1 + k, so
          // no two nodes target the same peer in the same position.
          const auto peer = static_cast<NodeId>(
              (node + 1 + state.sent) % nodes_);
          set_meta(send(node, peer), state.iteration, peer);
          ++state.sent;
          --budget;
        }
      } else {
        // Ring allreduce: step s may go once s packets of this operation
        // came in from the left — one send per receive, self-pacing.
        while (state.sent < steps_ && state.recv_ops[0] >= state.sent) {
          if (state.start_cycle == 0) start_iteration(state, cycle);
          const auto right = static_cast<NodeId>((node + 1) % nodes_);
          set_meta(send(node, right), state.iteration, right);
          ++state.sent;
        }
      }
      maybe_complete(node, cycle);
    }
  }
  if (measuring) {
    occupancy_accum_ += active_iterations_;
    ++measured_cycles_;
  }
}

void CollectiveWorkload::on_delivered(PacketId id, NodeId src, NodeId dst,
                                      std::uint64_t cycle) {
  (void)src;
  if (id >= meta_.size() || !meta_[id].live) return;
  const PacketMeta meta = meta_[id];
  meta_[id] = PacketMeta{};
  NodeState& state = states_[dst];
  if (options_.kind == CollectiveOptions::Kind::kAllToAll) {
    if (meta.iteration == state.iteration) {
      ++state.recv;
    } else {
      // A peer one round ahead (it cannot be further: advancing needs
      // every packet of the previous round, including ours).
      SMART_DCHECK(meta.iteration == state.iteration + 1);
      ++state.recv_ahead;
    }
  } else {
    const std::uint32_t ahead = meta.iteration - state.iteration;
    SMART_DCHECK(ahead < state.recv_ops.size());
    ++state.recv_ops[ahead];
  }
  maybe_complete(dst, cycle);
}

void CollectiveWorkload::on_dropped(PacketId id, std::uint64_t cycle) {
  (void)cycle;
  if (id >= meta_.size() || !meta_[id].live) return;
  const PacketMeta meta = meta_[id];
  meta_[id] = PacketMeta{};
  // The receiver will never see this packet, so its stream of iterations
  // is wedged for good: account the iteration as lost and stop the node
  // (its peers already hold every packet it sent for the current round).
  NodeState& state = states_[meta.dst];
  if (state.wedged) return;
  state.wedged = true;
  // Between iterations (start_cycle == 0) nothing is in flight to lose:
  // the node simply never starts again, keeping the conservation identity
  // issued == completed + dropped + outstanding intact.
  if (state.start_cycle != 0) {
    --active_iterations_;
    ++dropped_;
  }
}

WorkloadReport CollectiveWorkload::report() const {
  WorkloadReport r;
  r.enabled = true;
  r.family = name_;
  r.clients = nodes_;
  r.servers = 0;
  r.requests_issued = issued_;
  r.requests_completed = completed_;
  r.requests_dropped = dropped_;
  r.outstanding_end = active_iterations_;
  r.drain_completed = drain_completed_;
  r.window_issued = window_issued_;
  r.window_completed = window_completed_;
  if (measured_cycles_ > 0) {
    const double node_cycles = static_cast<double>(measured_cycles_) *
                               static_cast<double>(nodes_);
    r.goodput = static_cast<double>(window_completed_) * 1000.0 / node_cycles;
    r.outstanding_mean =
        static_cast<double>(occupancy_accum_) / node_cycles;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::uint64_t x : window_completions_) {
    sum += static_cast<double>(x);
    sum_sq += static_cast<double>(x) * static_cast<double>(x);
  }
  if (sum > 0.0) {
    r.fairness_jain =
        sum * sum / (static_cast<double>(nodes_) * sum_sq);
  }
  r.completion_latency = completion_latency_;
  return r;
}

}  // namespace smart
