#include "workload/request_reply.hpp"

#include <cmath>

#include "util/check.hpp"

namespace smart {

namespace {

// Seed salt separating workload streams from the NIC, Valiant, tree and
// escape-selection streams derived from the same --seed.
constexpr std::uint64_t kWorkloadSalt = 0x6c0ad5eedULL;

const char* to_string(RequestReplyOptions::Mode mode) {
  switch (mode) {
    case RequestReplyOptions::Mode::kClosed: return "closed";
    case RequestReplyOptions::Mode::kPartly: return "partly";
    case RequestReplyOptions::Mode::kOpen: return "open";
  }
  return "unknown";
}

const char* to_string(RequestReplyOptions::ServiceDist dist) {
  switch (dist) {
    case RequestReplyOptions::ServiceDist::kFixed: return "fixed";
    case RequestReplyOptions::ServiceDist::kUniform: return "uniform";
    case RequestReplyOptions::ServiceDist::kExp: return "exp";
  }
  return "unknown";
}

const char* to_string(RequestReplyOptions::Assign assign) {
  switch (assign) {
    case RequestReplyOptions::Assign::kRandom: return "random";
    case RequestReplyOptions::Assign::kPin: return "pin";
  }
  return "unknown";
}

}  // namespace

RequestReplyWorkload::RequestReplyWorkload(std::string name,
                                           const RequestReplyOptions& options,
                                           std::size_t nodes,
                                           std::uint64_t seed)
    : name_(std::move(name)), options_(options), nodes_(nodes) {
  first_client_ = options_.family == RequestReplyOptions::Family::kEcho
                      ? 0
                      : static_cast<NodeId>(options_.servers);
  SMART_CHECK_MSG(first_client_ < nodes_,
                  "workload needs at least one client node");
  client_count_ = nodes_ - first_client_;
  rng_.reserve(nodes_);
  for (NodeId node = 0; node < nodes_; ++node) {
    rng_.emplace_back(mix_seed(seed ^ kWorkloadSalt, node));
  }
  clients_.resize(client_count_);
  window_completions_.assign(client_count_, 0);
}

std::vector<std::pair<std::string, std::string>>
RequestReplyWorkload::echo_params() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("mode", to_string(options_.mode));
  out.emplace_back("window", std::to_string(options_.window));
  out.emplace_back("think", std::to_string(options_.think));
  if (options_.mode != RequestReplyOptions::Mode::kClosed) {
    out.emplace_back("rate", std::to_string(options_.rate));
  }
  out.emplace_back("service", std::to_string(options_.service));
  out.emplace_back("dist", to_string(options_.dist));
  if (options_.family != RequestReplyOptions::Family::kEcho) {
    out.emplace_back("servers", std::to_string(options_.servers));
  }
  if (options_.family == RequestReplyOptions::Family::kIncast) {
    out.emplace_back("assign", to_string(options_.assign));
    out.emplace_back("mute", std::to_string(options_.mute));
  }
  if (options_.family == RequestReplyOptions::Family::kRpc) {
    out.emplace_back("fanout", std::to_string(options_.fanout));
  }
  return out;
}

void RequestReplyWorkload::stage(Event::Kind kind, std::uint32_t request,
                                 NodeId node, std::uint64_t ready) {
  Event event;
  event.ready = ready;
  event.seq = next_seq_++;
  event.kind = kind;
  event.request = request;
  event.node = node;
  if (kind != Event::Kind::kIssue) ++pending_service_events_;
  events_.push(event);
}

std::uint64_t RequestReplyWorkload::service_draw(Rng& rng) {
  const auto mean = static_cast<std::uint64_t>(options_.service);
  switch (options_.dist) {
    case RequestReplyOptions::ServiceDist::kFixed:
      return mean;
    case RequestReplyOptions::ServiceDist::kUniform:
      // Uniform in [0, 2*mean] — same mean as the fixed draw.
      return rng.below(2 * mean + 1);
    case RequestReplyOptions::ServiceDist::kExp: {
      // Exponential with the configured mean, rounded down.
      const double u = rng.uniform01();
      const double draw = -static_cast<double>(mean) * std::log1p(-u);
      return static_cast<std::uint64_t>(draw);
    }
  }
  return mean;
}

NodeId RequestReplyWorkload::pick_target(NodeId client) {
  Rng& rng = rng_[client];
  switch (options_.family) {
    case RequestReplyOptions::Family::kEcho: {
      // A uniform peer excluding self (the traffic layer's uniform draw).
      auto dst = static_cast<NodeId>(rng.below(nodes_ - 1));
      if (dst >= client) ++dst;
      return dst;
    }
    case RequestReplyOptions::Family::kIncast:
      if (options_.assign == RequestReplyOptions::Assign::kPin) {
        return static_cast<NodeId>(client_index(client) % options_.servers);
      }
      return static_cast<NodeId>(rng.below(options_.servers));
    case RequestReplyOptions::Family::kRpc:
      return static_cast<NodeId>(rng.below(options_.servers));
  }
  return 0;
}

void RequestReplyWorkload::set_meta(PacketId id, std::uint32_t request,
                                    PacketKind kind) {
  if (id >= meta_.size()) meta_.resize(id + 1);
  meta_[id].request = request;
  meta_[id].kind = kind;
}

RequestReplyWorkload::PacketMeta RequestReplyWorkload::take_meta(PacketId id) {
  if (id >= meta_.size()) return PacketMeta{};
  const PacketMeta meta = meta_[id];
  meta_[id] = PacketMeta{};
  return meta;
}

std::uint32_t RequestReplyWorkload::issue_request(NodeId client,
                                                  std::uint64_t cycle,
                                                  const SendFn& send) {
  const auto id = static_cast<std::uint32_t>(requests_.size());
  RequestState req;
  req.client = client;
  req.issue_cycle = cycle;
  const NodeId target = pick_target(client);
  if (options_.family == RequestReplyOptions::Family::kRpc) {
    req.frontend = target;
  }
  requests_.push_back(req);
  ++issued_;
  if (measuring_) ++window_issued_;
  ++active_requests_;
  ++clients_[client_index(client)].outstanding;
  set_meta(send(client, target), id, PacketKind::kRequest);
  return id;
}

void RequestReplyWorkload::complete_request(std::uint32_t request,
                                            std::uint64_t cycle) {
  RequestState& req = requests_[request];
  req.phase = RequestPhase::kDone;
  --active_requests_;
  --clients_[client_index(req.client)].outstanding;
  ++completed_;
  if (draining_) {
    ++drain_completed_;
  } else if (measuring_) {
    ++window_completed_;
    completion_latency_.add(static_cast<double>(cycle - req.issue_cycle));
    ++window_completions_[client_index(req.client)];
  }
  if (options_.mode == RequestReplyOptions::Mode::kClosed && !draining_) {
    stage(Event::Kind::kIssue, kNoRequest, req.client,
          cycle + 1 + options_.think);
  }
}

void RequestReplyWorkload::dispatch(const Event& event, std::uint64_t cycle,
                                    const SendFn& send) {
  switch (event.kind) {
    case Event::Kind::kIssue:
      // Client slots are frozen past the horizon; the staged issue is
      // simply discarded (the run is over for this client).
      if (!draining_) issue_request(event.node, cycle, send);
      return;
    case Event::Kind::kServe: {
      const RequestState& req = requests_[event.request];
      if (req.phase != RequestPhase::kActive) return;
      set_meta(send(event.node, req.client), event.request,
               PacketKind::kReply);
      return;
    }
    case Event::Kind::kFanout: {
      RequestState& req = requests_[event.request];
      if (req.phase != RequestPhase::kActive) return;
      // Draw `fanout` distinct leaves from the storage set minus the
      // frontend (partial Fisher-Yates over the scratch list, frontend's
      // RNG stream).
      leaf_scratch_.clear();
      for (NodeId s = 0; s < options_.servers; ++s) {
        if (s != event.node) leaf_scratch_.push_back(s);
      }
      Rng& rng = rng_[event.node];
      req.pending_subs = static_cast<std::uint16_t>(options_.fanout);
      for (unsigned i = 0; i < options_.fanout; ++i) {
        const std::size_t pick =
            i + static_cast<std::size_t>(rng.below(leaf_scratch_.size() - i));
        std::swap(leaf_scratch_[i], leaf_scratch_[pick]);
        set_meta(send(event.node, leaf_scratch_[i]), event.request,
                 PacketKind::kSubRequest);
      }
      return;
    }
    case Event::Kind::kSubServe: {
      const RequestState& req = requests_[event.request];
      if (req.phase != RequestPhase::kActive) return;
      set_meta(send(event.node, req.frontend), event.request,
               PacketKind::kSubReply);
      return;
    }
    case Event::Kind::kFrontendReply: {
      const RequestState& req = requests_[event.request];
      if (req.phase != RequestPhase::kActive) return;
      set_meta(send(event.node, req.client), event.request,
               PacketKind::kReply);
      return;
    }
  }
}

void RequestReplyWorkload::begin_cycle(std::uint64_t cycle, bool measuring,
                                       bool draining, const SendFn& send) {
  measuring_ = measuring;
  draining_ = draining;
  if (!started_) {
    started_ = true;
    if (options_.mode == RequestReplyOptions::Mode::kClosed) {
      // Ramp the closed loop one request per client-cycle instead of a
      // window-sized cycle-1 burst; think time applies after completions.
      for (std::size_t c = 0; c < client_count_; ++c) {
        for (unsigned w = 0; w < options_.window; ++w) {
          stage(Event::Kind::kIssue, kNoRequest,
                static_cast<NodeId>(first_client_ + c), cycle + w);
        }
      }
    }
  }
  while (!events_.empty() && events_.top().ready <= cycle) {
    const Event event = events_.top();
    events_.pop();
    if (event.kind != Event::Kind::kIssue) --pending_service_events_;
    dispatch(event, cycle, send);
  }
  if (!draining && options_.mode != RequestReplyOptions::Mode::kClosed) {
    // Arrival draws in ascending node order (a serial, deterministic
    // sweep, like the engine's own NIC generation order).
    for (std::size_t c = 0; c < client_count_; ++c) {
      const auto client = static_cast<NodeId>(first_client_ + c);
      ClientState& state = clients_[c];
      if (options_.mode == RequestReplyOptions::Mode::kPartly) {
        while (state.backlog > 0 && state.outstanding < options_.window) {
          --state.backlog;
          issue_request(client, cycle, send);
        }
      }
      if (rng_[client].bernoulli(options_.rate)) {
        if (options_.mode == RequestReplyOptions::Mode::kOpen ||
            state.outstanding < options_.window) {
          issue_request(client, cycle, send);
        } else {
          ++state.backlog;
        }
      }
    }
  }
  if (measuring) {
    occupancy_accum_ += active_requests_;
    ++measured_cycles_;
  }
}

void RequestReplyWorkload::on_delivered(PacketId id, NodeId src, NodeId dst,
                                        std::uint64_t cycle) {
  (void)src;
  const PacketMeta meta = take_meta(id);
  if (meta.request == kNoRequest) return;
  RequestState& req = requests_[meta.request];
  switch (meta.kind) {
    case PacketKind::kRequest:
      if (req.phase != RequestPhase::kActive) return;
      if (options_.family == RequestReplyOptions::Family::kRpc) {
        stage(Event::Kind::kFanout, meta.request, dst,
              cycle + 1 + service_draw(rng_[dst]));
      } else if (!(options_.family == RequestReplyOptions::Family::kIncast &&
                   muted(dst))) {
        stage(Event::Kind::kServe, meta.request, dst,
              cycle + 1 + service_draw(rng_[dst]));
      }
      // A muted server swallows the request: the window slot stays taken
      // and the request lands in outstanding_end.
      return;
    case PacketKind::kSubRequest:
      if (req.phase != RequestPhase::kActive) return;
      stage(Event::Kind::kSubServe, meta.request, dst,
            cycle + 1 + service_draw(rng_[dst]));
      return;
    case PacketKind::kSubReply:
      if (req.phase != RequestPhase::kActive) return;
      SMART_DCHECK(req.pending_subs > 0);
      if (--req.pending_subs == 0) {
        stage(Event::Kind::kFrontendReply, meta.request, dst, cycle + 1);
      }
      return;
    case PacketKind::kReply:
      if (req.phase != RequestPhase::kActive) return;
      complete_request(meta.request, cycle);
      return;
  }
}

void RequestReplyWorkload::on_dropped(PacketId id, std::uint64_t cycle) {
  const PacketMeta meta = take_meta(id);
  if (meta.request == kNoRequest) return;
  RequestState& req = requests_[meta.request];
  if (req.phase != RequestPhase::kActive) return;
  // Any lost packet is terminal for the whole request (rpc sub-requests
  // included — stragglers of a lost request are ignored on delivery). The
  // client's slot frees so the loop keeps running under faults.
  req.phase = RequestPhase::kLost;
  --active_requests_;
  --clients_[client_index(req.client)].outstanding;
  ++dropped_;
  if (options_.mode == RequestReplyOptions::Mode::kClosed && !draining_) {
    stage(Event::Kind::kIssue, kNoRequest, req.client,
          cycle + 1 + options_.think);
  }
}

std::uint64_t RequestReplyWorkload::queued_requests(NodeId node) const {
  if (!is_client(node)) return 0;
  return clients_[client_index(node)].backlog;
}

WorkloadReport RequestReplyWorkload::report() const {
  WorkloadReport r;
  r.enabled = true;
  r.family = name_;
  r.clients = client_count_;
  r.servers = options_.family == RequestReplyOptions::Family::kEcho
                  ? 0
                  : options_.servers;
  r.requests_issued = issued_;
  r.requests_completed = completed_;
  r.requests_dropped = dropped_;
  r.outstanding_end = active_requests_;
  r.drain_completed = drain_completed_;
  for (const ClientState& c : clients_) r.backlog_end += c.backlog;
  r.window_issued = window_issued_;
  r.window_completed = window_completed_;
  if (measured_cycles_ > 0 && client_count_ > 0) {
    const double client_cycles = static_cast<double>(measured_cycles_) *
                                 static_cast<double>(client_count_);
    r.goodput =
        static_cast<double>(window_completed_) * 1000.0 / client_cycles;
    r.outstanding_mean =
        static_cast<double>(occupancy_accum_) / client_cycles;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::uint64_t x : window_completions_) {
    sum += static_cast<double>(x);
    sum_sq += static_cast<double>(x) * static_cast<double>(x);
  }
  if (sum > 0.0) {
    r.fairness_jain =
        sum * sum / (static_cast<double>(client_count_) * sum_sq);
  }
  r.completion_latency = completion_latency_;
  return r;
}

}  // namespace smart
