// Request/reply workload engine: the echo, incast and rpc families.
//
// One state machine covers all three — they differ only in who serves
// (a random peer, a fixed storage set, a frontend that fans out to leaf
// servers) and in how clients pace themselves:
//
//   * closed loop   each client keeps `window` requests outstanding; a
//                   completion (or a fault drop) frees the slot and the
//                   next request issues after `think` cycles.
//   * partly open   requests arrive Bernoulli(rate) per client-cycle but
//                   at most `window` may be outstanding; excess arrivals
//                   queue in a per-client backlog (what queued_requests()
//                   reports to the starvation scan).
//   * open loop     arrivals issue unconditionally — the classic
//                   generator shape, kept for calibration.
//
// Servers hold each request for a service-time draw (fixed / uniform /
// exponential mean `service`), staged through the deterministic event heap
// (workload.hpp header comment); incast can mute servers — requests
// delivered to a muted node are never answered, modeling an application-
// level dead server the fabric itself cannot see. The rpc family routes a
// request to a random frontend which, after service, issues `fanout`
// dependent sub-requests to distinct leaf servers and replies to the
// client only when every sub-reply is in.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace smart {

struct RequestReplyOptions {
  enum class Family : std::uint8_t { kEcho, kIncast, kRpc };
  enum class Mode : std::uint8_t { kClosed, kPartly, kOpen };
  enum class ServiceDist : std::uint8_t { kFixed, kUniform, kExp };
  /// Incast request targeting: a fresh uniform draw over the storage set
  /// per request, or each client pinned to client_index % servers.
  enum class Assign : std::uint8_t { kRandom, kPin };

  Family family = Family::kEcho;
  Mode mode = Mode::kClosed;
  unsigned window = 4;   ///< outstanding requests per client (closed/partly)
  unsigned think = 0;    ///< cycles between completion and the next issue
  double rate = 0.05;    ///< arrivals per client-cycle (partly/open)
  unsigned service = 8;  ///< mean service cycles at a server
  ServiceDist dist = ServiceDist::kFixed;
  unsigned servers = 0;  ///< incast/rpc: nodes [0, servers) serve
  Assign assign = Assign::kRandom;
  unsigned mute = 0;     ///< incast: servers [0, mute) never reply
  unsigned fanout = 3;   ///< rpc: sub-requests per request
};

class RequestReplyWorkload final : public Workload {
 public:
  RequestReplyWorkload(std::string name, const RequestReplyOptions& options,
                       std::size_t nodes, std::uint64_t seed);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> echo_params()
      const override;
  void begin_cycle(std::uint64_t cycle, bool measuring, bool draining,
                   const SendFn& send) override;
  void on_delivered(PacketId id, NodeId src, NodeId dst,
                    std::uint64_t cycle) override;
  void on_dropped(PacketId id, std::uint64_t cycle) override;
  [[nodiscard]] std::uint64_t queued_requests(NodeId node) const override;
  [[nodiscard]] bool quiescent() const override {
    return pending_service_events_ == 0;
  }
  [[nodiscard]] WorkloadReport report() const override;

 private:
  static constexpr std::uint32_t kNoRequest = ~0U;

  /// Role of a packet within its request's lifecycle (per-packet metadata,
  /// keyed by the recycled pool id and cleared at delivery/drop).
  enum class PacketKind : std::uint8_t {
    kRequest,     ///< client -> server (or rpc frontend)
    kSubRequest,  ///< rpc frontend -> leaf server
    kSubReply,    ///< rpc leaf -> frontend
    kReply,       ///< server/frontend -> client, completes the request
  };
  struct PacketMeta {
    std::uint32_t request = kNoRequest;
    PacketKind kind = PacketKind::kRequest;
  };

  enum class RequestPhase : std::uint8_t { kActive, kDone, kLost };
  struct RequestState {
    NodeId client = 0;
    NodeId frontend = 0;  ///< rpc: the serving frontend
    std::uint64_t issue_cycle = 0;
    std::uint16_t pending_subs = 0;
    RequestPhase phase = RequestPhase::kActive;
  };

  struct ClientState {
    std::uint32_t outstanding = 0;
    std::uint64_t backlog = 0;  ///< partly open: arrivals awaiting a slot
  };

  /// A staged action, executed by begin_cycle when `ready` is due. The
  /// heap pops in (ready, seq) order with seq assigned at staging time —
  /// a deterministic total order because all staging happens at the
  /// engine's serial call sites.
  struct Event {
    std::uint64_t ready = 0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t {
      kIssue,          ///< client issues its next request
      kServe,          ///< server replies (echo/incast)
      kFanout,         ///< rpc frontend issues its sub-requests
      kSubServe,       ///< rpc leaf sub-replies to the frontend
      kFrontendReply,  ///< rpc frontend replies to the client
    } kind = Kind::kIssue;
    std::uint32_t request = kNoRequest;
    NodeId node = 0;  ///< the acting node
    struct After {
      bool operator()(const Event& a, const Event& b) const noexcept {
        if (a.ready != b.ready) return a.ready > b.ready;
        return a.seq > b.seq;
      }
    };
  };

  [[nodiscard]] bool is_client(NodeId node) const noexcept {
    return node >= first_client_;
  }
  [[nodiscard]] std::size_t client_index(NodeId node) const noexcept {
    return node - first_client_;
  }
  [[nodiscard]] bool muted(NodeId node) const noexcept {
    return node < options_.mute;
  }

  void stage(Event::Kind kind, std::uint32_t request, NodeId node,
             std::uint64_t ready);
  void dispatch(const Event& event, std::uint64_t cycle, const SendFn& send);
  std::uint32_t issue_request(NodeId client, std::uint64_t cycle,
                              const SendFn& send);
  void complete_request(std::uint32_t request, std::uint64_t cycle);
  void set_meta(PacketId id, std::uint32_t request, PacketKind kind);
  [[nodiscard]] PacketMeta take_meta(PacketId id);
  [[nodiscard]] std::uint64_t service_draw(Rng& rng);
  [[nodiscard]] NodeId pick_target(NodeId client);

  std::string name_;
  RequestReplyOptions options_;
  std::size_t nodes_ = 0;
  NodeId first_client_ = 0;  ///< 0 for echo, options_.servers otherwise
  std::size_t client_count_ = 0;

  std::vector<Rng> rng_;  ///< one decorrelated stream per node
  std::priority_queue<Event, std::vector<Event>, Event::After> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pending_service_events_ = 0;  ///< non-kIssue events staged

  std::vector<RequestState> requests_;  ///< append-only, indexed by id
  std::vector<PacketMeta> meta_;        ///< indexed by (recycled) PacketId
  std::vector<ClientState> clients_;
  std::vector<std::uint64_t> window_completions_;  ///< per client, window
  std::vector<NodeId> leaf_scratch_;  ///< rpc fan-out draw scratch

  bool started_ = false;
  bool measuring_ = false;
  bool draining_ = false;

  // Conservation counters (see WorkloadReport).
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t drain_completed_ = 0;
  std::uint64_t active_requests_ = 0;

  // Measurement-window accumulators.
  std::uint64_t window_issued_ = 0;
  std::uint64_t window_completed_ = 0;
  std::uint64_t occupancy_accum_ = 0;
  std::uint64_t measured_cycles_ = 0;
  Histogram completion_latency_{20.0, 500};
};

}  // namespace smart
