#include "obs/counters.hpp"

namespace smart {

StallBreakdown StallCounters::totals() const {
  StallBreakdown sum;
  for (const StallBreakdown& port : counters_) {
    for (std::size_t c = 0; c < kStallCauseCount; ++c) {
      sum.by_cause[c] += port.by_cause[c];
    }
  }
  return sum;
}

std::vector<PortStallRecord> StallCounters::nonzero_ports() const {
  std::vector<PortStallRecord> records;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].total() == 0) continue;
    PortStallRecord record;
    record.sw = static_cast<SwitchId>(i / ports_per_switch_);
    record.port = static_cast<PortId>(i % ports_per_switch_);
    record.stalls = counters_[i];
    records.push_back(record);
  }
  return records;
}

}  // namespace smart
