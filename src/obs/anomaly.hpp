// Anomaly watchdog framework (observability generation 3).
//
// One monitor owns every runtime pathology detector:
//
//   deadlock / fault-stall — the engine's existing progress watchdog
//     verdicts, routed through here so they land in the same
//     `obs/anomaly/*` manifest namespace (exit codes are unchanged);
//   throughput-collapse — consecutive stats windows far below the peak
//     window once the run demonstrably carried traffic;
//   livelock — an injected packet's age high-water exceeds a bound while
//     the fabric still reports progress (wedged worms behind a dead
//     switch look exactly like this);
//   starvation — one source queue grows deep while the median stays
//     small, i.e. a few nodes starve behind a hotspot.
//
// Every detector reads only deterministic end-of-cycle engine state at a
// deterministic cadence (the stats-window boundary), so verdicts are
// bit-identical across thread counts and can sit in the strict metric
// namespace. Triggering records a verdict and (in the engine) snapshots
// the hottest switches into the flight recorder; it never alters
// simulation behavior or process exit codes.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace smart {

enum class AnomalyKind : std::uint8_t {
  kDeadlock,            ///< progress watchdog, no active faults
  kFaultStall,          ///< progress watchdog while faults were active
  kThroughputCollapse,  ///< accepted fraction fell off a demonstrated peak
  kLivelock,            ///< packet-age high-water exceeded the bound
  kStarvation,          ///< one source queue deep, median shallow
};
inline constexpr std::size_t kAnomalyKindCount = 5;

/// Metric-name slug (also the flight dump's anomaly kind string).
[[nodiscard]] constexpr const char* to_string(AnomalyKind kind) noexcept {
  switch (kind) {
    case AnomalyKind::kDeadlock: return "deadlock";
    case AnomalyKind::kFaultStall: return "fault_stall";
    case AnomalyKind::kThroughputCollapse: return "throughput_collapse";
    case AnomalyKind::kLivelock: return "livelock";
    case AnomalyKind::kStarvation: return "starvation";
  }
  return "unknown";
}

/// One detector's verdict; all five are always reported (triggered or
/// not) so manifests keep a stable metric shape.
struct AnomalyVerdict {
  AnomalyKind kind = AnomalyKind::kDeadlock;
  bool triggered = false;
  std::uint64_t cycle = 0;   ///< first trigger cycle
  double value = 0.0;        ///< observed value at the trigger
  double threshold = 0.0;    ///< bound it crossed
  std::string detail;        ///< one-line human description
};

class AnomalyMonitor {
 public:
  AnomalyMonitor(const AnomalySpec& spec, std::uint64_t deadlock_threshold);

  /// Progress-watchdog verdicts (engine record_stall unification).
  void trigger(AnomalyKind kind, std::uint64_t cycle, double value,
               double threshold, std::string detail);

  /// Feed one closed stats window's accepted fraction (collapse detector).
  void check_window(double accepted_fraction, std::uint64_t cycle);

  /// Feed the injected-packet age high-water (livelock detector).
  void check_ages(std::uint64_t max_age, std::uint64_t cycle);

  /// Feed source-queue occupancy extremes (starvation detector).
  void check_queues(std::uint64_t max_queue, std::uint64_t median_queue,
                    std::uint64_t cycle);

  [[nodiscard]] bool any() const noexcept { return any_; }

  /// Kind/cycle of the first detector to fire (the flight dump's anomaly
  /// context); meaningful only when any() is true.
  [[nodiscard]] AnomalyKind first_kind() const noexcept { return first_kind_; }
  [[nodiscard]] std::uint64_t first_cycle() const noexcept {
    return first_cycle_;
  }

  /// True exactly once after each new trigger; the engine uses it to gate
  /// the one-shot dense hottest-switch capture.
  [[nodiscard]] bool take_newly_triggered() noexcept {
    const bool fresh = newly_triggered_;
    newly_triggered_ = false;
    return fresh;
  }

  [[nodiscard]] const std::array<AnomalyVerdict, kAnomalyKindCount>&
  verdicts() const noexcept {
    return verdicts_;
  }

  [[nodiscard]] std::uint64_t livelock_age_bound() const noexcept {
    return livelock_age_bound_;
  }

 private:
  AnomalyVerdict& verdict(AnomalyKind kind) noexcept {
    return verdicts_[static_cast<std::size_t>(kind)];
  }

  AnomalySpec spec_;
  std::uint64_t livelock_age_bound_;
  std::array<AnomalyVerdict, kAnomalyKindCount> verdicts_;
  double peak_window_ = 0.0;
  unsigned collapse_streak_ = 0;
  bool any_ = false;
  bool newly_triggered_ = false;
  AnomalyKind first_kind_ = AnomalyKind::kDeadlock;
  std::uint64_t first_cycle_ = 0;
};

}  // namespace smart
