// Metrics registry (observability layer, second generation).
//
// Every number the simulator wants to expose outside a single run — engine
// throughput/latency, fault resilience counters, stall attribution, the
// self-profiler's scheduler statistics, wall-clock self-metrics — is
// registered here under a stable slash-namespaced name and serialized
// uniformly into the run manifest JSON. The same discipline large
// simulators like gem5 apply: one per-component stats registry, dumped in
// one format, so tooling (tools/smartsim_report) can diff any two runs
// per metric without knowing which subsystem produced it.
//
// Naming convention (load-bearing for the regression tool):
//   engine/...   deterministic per-run results (bit-stable per config+seed)
//   latency/...  latency distribution summaries (deterministic)
//   fault/...    resilience counters (deterministic)
//   obs/...      stall attribution totals (deterministic)
//   profile/...  scheduler-effectiveness gauges (deterministic)
//   time/...     wall-clock self-metrics — inherently noisy; the report
//                tool treats the whole namespace as advisory (warn-only).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"
#include "util/stats.hpp"

namespace smart {

struct SimulationResult;
struct ProfileReport;
class Topology;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// Streaming-histogram summary registered for distribution metrics: the
/// sample count plus the saturation-tail percentiles the paper's averages
/// hide (satellite of this PR — the mean alone shows saturation last).
struct HistogramSummary {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kGauge;
  std::string unit;           ///< optional human hint ("cycles", "s", ...)
  double value = 0.0;         ///< counter/gauge payload
  HistogramSummary hist;      ///< histogram payload
};

/// Named typed metrics, insertion-ordered, upserted by name.
class MetricsRegistry {
 public:
  void counter(std::string name, std::uint64_t value, std::string unit = {});
  void gauge(std::string name, double value, std::string unit = {});
  void histogram(std::string name, const Histogram& h, std::string unit = {});
  void histogram(std::string name, HistogramSummary summary,
                 std::string unit = {});

  [[nodiscard]] const std::vector<Metric>& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }
  [[nodiscard]] bool empty() const noexcept { return metrics_.empty(); }
  [[nodiscard]] const Metric* find(std::string_view name) const noexcept;

  /// One JSON object keyed by metric name (insertion order preserved).
  [[nodiscard]] json::Value to_json() const;
  /// Serialized to_json(); `indent` as in json::Value::dump.
  [[nodiscard]] std::string to_json_text(int indent = 2) const;

  /// Rebuilds a registry from a to_json() object; nullopt on shape errors.
  [[nodiscard]] static std::optional<MetricsRegistry> from_json(
      const json::Value& value);

 private:
  Metric& upsert(std::string name);

  std::vector<Metric> metrics_;
};

// ---- Subsystem registration --------------------------------------------
//
// Each subsystem contributes its slice of a run's registry; register_run
// is the umbrella the CLI and manifest writers call.

void register_engine_metrics(MetricsRegistry& reg, const SimulationResult& r);
/// Routing-layer counters (routing/ namespace): adaptive/escape/misroute
/// header splits and throttled NIC-cycles. Deterministic.
void register_routing_metrics(MetricsRegistry& reg, const SimulationResult& r);
void register_fault_metrics(MetricsRegistry& reg, const SimulationResult& r);
void register_obs_metrics(MetricsRegistry& reg, const SimulationResult& r);
/// Anomaly-watchdog verdicts (obs/anomaly/ namespace). All five detector
/// kinds are always registered (0/1 trigger flag plus trigger cycle) so
/// the manifest shape is stable whenever the monitor ran; the verdicts
/// are pure functions of simulated state, hence deterministic.
void register_anomaly_metrics(MetricsRegistry& reg, const SimulationResult& r);
/// Flight-recorder ring provenance (obs/flight/ namespace): snapshot
/// cadence, ring capacity, and total snapshots taken. Deterministic.
void register_flight_metrics(MetricsRegistry& reg, const SimulationResult& r);
/// Closed-loop workload service metrics (workload/ namespace): request
/// conservation counters, completion-latency histogram, goodput and Jain
/// fairness. Deterministic and thread-count invariant (the workload runs
/// entirely at the engine's serial call sites).
void register_workload_metrics(MetricsRegistry& reg,
                               const SimulationResult& r);
void register_profile_metrics(MetricsRegistry& reg, const ProfileReport& p);
/// Wall-clock self-metrics; everything lands in the advisory time/ space.
void register_time_metrics(MetricsRegistry& reg, const SimulationResult& r);

/// Registers every slice that applies to `r` (fault/obs/profile slices
/// only when the corresponding subsystem ran).
void register_run_metrics(MetricsRegistry& reg, const SimulationResult& r);

/// Fabric provenance for generated topologies (topo/ namespace): node,
/// switch and link counts, the connected-radix distribution, and the
/// derived clock. Everything here is a pure function of the topology, so
/// the whole namespace is deterministic and strict-diffed by the report
/// tool. `wire_m` <= 0 (the paper families' fixed normalization) skips
/// the wire-length gauge.
void register_topology_metrics(MetricsRegistry& reg, const Topology& topo,
                               double clock_ns, double wire_m);

}  // namespace smart
