#include "obs/sampler.hpp"

#include <algorithm>
#include <limits>

namespace smart {

namespace {
constexpr std::uint32_t kNoLink = std::numeric_limits<std::uint32_t>::max();

std::uint8_t clamp_fill(std::size_t fill) noexcept {
  return fill > 255 ? std::uint8_t{255} : static_cast<std::uint8_t>(fill);
}
}  // namespace

double ObsSeries::mean_utilization(std::size_t link) const {
  if (sample_cycles.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t tick = 0; tick < sample_cycles.size(); ++tick) {
    sum += static_cast<double>(utilization(tick, link));
  }
  return sum / static_cast<double>(sample_cycles.size());
}

std::vector<std::size_t> ObsSeries::top_utilized(std::size_t n) const {
  std::vector<std::size_t> order(links.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return mean_utilization(a) > mean_utilization(b);
  });
  if (order.size() > n) order.resize(n);
  return order;
}

ObsSampler::ObsSampler(const Topology& topo, std::uint64_t interval,
                       unsigned lane_stride)
    : ports_per_switch_(topo.ports_per_switch()),
      port_to_link_(topo.switch_count() * topo.ports_per_switch(), kNoLink),
      node_to_link_(topo.node_count(), kNoLink) {
  series_.interval = interval;
  series_.lane_stride = lane_stride;
  for (SwitchId s = 0; s < topo.switch_count(); ++s) {
    for (PortId p = 0; p < topo.ports_per_switch(); ++p) {
      const PortPeer peer = topo.port_peer(s, p);
      if (peer.kind == PeerKind::kUnconnected) continue;
      ObsLink link;
      link.kind = peer.kind == PeerKind::kTerminal ? ObsLinkKind::kEjection
                                                   : ObsLinkKind::kSwitchLink;
      link.sw = s;
      link.port = p;
      port_to_link_[s * ports_per_switch_ + p] =
          static_cast<std::uint32_t>(series_.links.size());
      series_.links.push_back(link);
    }
  }
  for (NodeId node = 0; node < topo.node_count(); ++node) {
    ObsLink link;
    link.kind = ObsLinkKind::kInjection;
    const Attachment at = topo.terminal_attachment(node);
    link.sw = at.sw;
    link.port = at.port;
    link.node = node;
    node_to_link_[node] = static_cast<std::uint32_t>(series_.links.size());
    series_.links.push_back(link);
  }
  flits_.assign(series_.links.size(), 0);
  flits_at_last_tick_.assign(series_.links.size(), 0);
}

void ObsSampler::sample(std::uint64_t cycle,
                        const std::vector<Switch>& switches,
                        const std::vector<Nic>& nics) {
  const std::size_t link_count = series_.links.size();
  const unsigned stride = series_.lane_stride;
  series_.sample_cycles.push_back(cycle);
  series_.link_utilization.resize(series_.link_utilization.size() + link_count,
                                  0.0F);
  series_.in_occupancy.resize(series_.in_occupancy.size() +
                              link_count * stride);
  series_.out_occupancy.resize(series_.out_occupancy.size() +
                               link_count * stride);
  const std::size_t tick = series_.sample_cycles.size() - 1;
  const auto interval = static_cast<double>(series_.interval);

  for (std::size_t i = 0; i < link_count; ++i) {
    series_.link_utilization[tick * link_count + i] = static_cast<float>(
        static_cast<double>(flits_[i] - flits_at_last_tick_[i]) / interval);
    flits_at_last_tick_[i] = flits_[i];

    const ObsLink& link = series_.links[i];
    const std::size_t base = (tick * link_count + i) * stride;
    if (link.kind == ObsLinkKind::kInjection) {
      const auto& channels = nics[link.node].channels();
      for (unsigned c = 0; c < channels.size() && c < stride; ++c) {
        series_.in_occupancy[base + c] = clamp_fill(channels[c].buf.size());
      }
      continue;
    }
    const SwitchPort& port = switches[link.sw].port(link.port);
    for (unsigned v = 0; v < port.in.size() && v < stride; ++v) {
      series_.in_occupancy[base + v] = clamp_fill(port.in[v].buf.size());
    }
    for (unsigned v = 0; v < port.out.size() && v < stride; ++v) {
      series_.out_occupancy[base + v] = clamp_fill(port.out[v].buf.size());
    }
  }
}

}  // namespace smart
