// Utilization and buffer-occupancy time series (observability layer).
//
// The sampler snapshots the whole fabric every `interval` cycles: for each
// directed link it records the flits transmitted during the interval
// (utilization = flits / interval, 1.0 = wire fully busy), and for each
// virtual-channel lane of that link the buffer fill at the sample instant.
// This is the per-lane occupancy/utilization lens of Stergiou's multistage
// wormhole studies: saturation shows up as specific lanes pinned at full
// occupancy, not as a fabric-wide average.
//
// Storage is flat and compact (one float per link-tick, one byte per
// lane-tick); a paper-sized run (256 nodes, 20 000 cycles, interval 1000)
// samples ~1500 links x 20 ticks — well under a megabyte.
#pragma once

#include <cstdint>
#include <vector>

#include "router/nic.hpp"
#include "router/switch.hpp"
#include "topology/topology.hpp"

namespace smart {

enum class ObsLinkKind : std::uint8_t {
  kSwitchLink,  ///< switch-to-switch channel (outgoing direction)
  kEjection,    ///< switch-to-terminal channel
  kInjection,   ///< terminal-to-switch channel (the NIC's injection side)
};

[[nodiscard]] constexpr const char* to_string(ObsLinkKind kind) noexcept {
  switch (kind) {
    case ObsLinkKind::kSwitchLink: return "link";
    case ObsLinkKind::kEjection: return "eject";
    case ObsLinkKind::kInjection: return "inject";
  }
  return "unknown";
}

/// One directed link in the sample directory. Switch-side links are
/// identified by (sw, port); injection links by the node.
struct ObsLink {
  ObsLinkKind kind = ObsLinkKind::kSwitchLink;
  SwitchId sw = 0;
  PortId port = 0;
  NodeId node = 0;
};

/// The collected time series, shipped inside SimulationResult::obs.
/// All per-tick arrays are flattened [tick][link] (and [tick][link][lane]
/// for occupancy, stride `lane_stride`; lanes a link does not have read 0).
struct ObsSeries {
  std::uint64_t interval = 0;   ///< cycles between samples (0 = no series)
  unsigned lane_stride = 0;     ///< occupancy slots reserved per link
  std::vector<ObsLink> links;   ///< directory, parallel to the inner axis
  std::vector<std::uint64_t> sample_cycles;
  std::vector<float> link_utilization;    ///< flits/cycle over the interval
  std::vector<std::uint8_t> in_occupancy;   ///< input-lane fill at the tick
  std::vector<std::uint8_t> out_occupancy;  ///< output-lane fill at the tick

  [[nodiscard]] std::size_t tick_count() const noexcept {
    return sample_cycles.size();
  }
  [[nodiscard]] float utilization(std::size_t tick, std::size_t link) const {
    return link_utilization[tick * links.size() + link];
  }
  [[nodiscard]] std::uint8_t in_fill(std::size_t tick, std::size_t link,
                                     unsigned lane) const {
    return in_occupancy[(tick * links.size() + link) * lane_stride + lane];
  }
  [[nodiscard]] std::uint8_t out_fill(std::size_t tick, std::size_t link,
                                      unsigned lane) const {
    return out_occupancy[(tick * links.size() + link) * lane_stride + lane];
  }

  /// Mean utilization of one link over all ticks (0 with no ticks).
  [[nodiscard]] double mean_utilization(std::size_t link) const;
  /// Indices of the `n` highest-mean-utilization links, ordered descending.
  [[nodiscard]] std::vector<std::size_t> top_utilized(std::size_t n) const;
};

/// Collects the series: the engine reports every transmitted flit through
/// on_flit()/on_injection_flit(); sample() closes the current interval.
class ObsSampler {
 public:
  ObsSampler(const Topology& topo, std::uint64_t interval,
             unsigned lane_stride);

  /// Dense link-index lookup for the engine's hot path.
  [[nodiscard]] std::uint32_t link_index(SwitchId sw, PortId port) const {
    return port_to_link_[sw * ports_per_switch_ + port];
  }
  [[nodiscard]] std::uint32_t injection_index(NodeId node) const {
    return node_to_link_[node];
  }

  void on_flit(std::uint32_t link) noexcept { ++flits_[link]; }

  /// Appends one tick: per-link interval flit counts and lane occupancy.
  void sample(std::uint64_t cycle, const std::vector<Switch>& switches,
              const std::vector<Nic>& nics);

  [[nodiscard]] const ObsSeries& series() const noexcept { return series_; }
  [[nodiscard]] ObsSeries&& take_series() noexcept {
    return static_cast<ObsSeries&&>(series_);
  }

 private:
  std::size_t ports_per_switch_;
  std::vector<std::uint32_t> port_to_link_;  ///< (sw, port) -> link index
  std::vector<std::uint32_t> node_to_link_;  ///< node -> injection link
  std::vector<std::uint64_t> flits_;         ///< cumulative per link
  std::vector<std::uint64_t> flits_at_last_tick_;
  ObsSeries series_;
};

}  // namespace smart
