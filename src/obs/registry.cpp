#include "obs/registry.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "obs/profiler.hpp"
#include "topology/topology.hpp"

namespace smart {

Metric& MetricsRegistry::upsert(std::string name) {
  for (Metric& m : metrics_) {
    if (m.name == name) return m;
  }
  metrics_.push_back(Metric{});
  metrics_.back().name = std::move(name);
  return metrics_.back();
}

void MetricsRegistry::counter(std::string name, std::uint64_t value,
                              std::string unit) {
  Metric& m = upsert(std::move(name));
  m.kind = MetricKind::kCounter;
  m.unit = std::move(unit);
  m.value = static_cast<double>(value);
}

void MetricsRegistry::gauge(std::string name, double value, std::string unit) {
  Metric& m = upsert(std::move(name));
  m.kind = MetricKind::kGauge;
  m.unit = std::move(unit);
  m.value = value;
}

void MetricsRegistry::histogram(std::string name, const Histogram& h,
                                std::string unit) {
  HistogramSummary summary;
  summary.count = h.total();
  summary.p50 = h.quantile(0.50);
  summary.p95 = h.quantile(0.95);
  summary.p99 = h.quantile(0.99);
  histogram(std::move(name), summary, std::move(unit));
}

void MetricsRegistry::histogram(std::string name, HistogramSummary summary,
                                std::string unit) {
  Metric& m = upsert(std::move(name));
  m.kind = MetricKind::kHistogram;
  m.unit = std::move(unit);
  m.hist = summary;
}

const Metric* MetricsRegistry::find(std::string_view name) const noexcept {
  for (const Metric& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

json::Value MetricsRegistry::to_json() const {
  json::Value out = json::Value::object();
  for (const Metric& m : metrics_) {
    json::Value entry = json::Value::object();
    entry.set("kind", json::Value(std::string(to_string(m.kind))));
    if (!m.unit.empty()) entry.set("unit", json::Value(m.unit));
    if (m.kind == MetricKind::kHistogram) {
      entry.set("count", json::Value(static_cast<double>(m.hist.count)));
      entry.set("p50", json::Value(m.hist.p50));
      entry.set("p95", json::Value(m.hist.p95));
      entry.set("p99", json::Value(m.hist.p99));
    } else {
      entry.set("value", json::Value(m.value));
    }
    out.set(m.name, std::move(entry));
  }
  return out;
}

std::string MetricsRegistry::to_json_text(int indent) const {
  return to_json().dump(indent);
}

std::optional<MetricsRegistry> MetricsRegistry::from_json(
    const json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  MetricsRegistry reg;
  for (const auto& [name, entry] : value.members()) {
    if (!entry.is_object()) return std::nullopt;
    const auto kind = entry.string_at("kind");
    if (!kind) return std::nullopt;
    const std::string unit = entry.string_at("unit").value_or("");
    if (*kind == "histogram") {
      HistogramSummary summary;
      const auto count = entry.number_at("count");
      const auto p50 = entry.number_at("p50");
      const auto p95 = entry.number_at("p95");
      const auto p99 = entry.number_at("p99");
      if (!count || !p50 || !p95 || !p99) return std::nullopt;
      summary.count = static_cast<std::uint64_t>(*count);
      summary.p50 = *p50;
      summary.p95 = *p95;
      summary.p99 = *p99;
      reg.histogram(name, summary, unit);
    } else if (*kind == "counter" || *kind == "gauge") {
      const auto v = entry.number_at("value");
      if (!v) return std::nullopt;
      if (*kind == "counter") {
        reg.counter(name, static_cast<std::uint64_t>(*v), unit);
      } else {
        reg.gauge(name, *v, unit);
      }
    } else {
      return std::nullopt;
    }
  }
  return reg;
}

// ---- Subsystem registration --------------------------------------------

void register_engine_metrics(MetricsRegistry& reg, const SimulationResult& r) {
  reg.gauge("engine/offered_fraction", r.offered_fraction);
  reg.gauge("engine/accepted_fraction", r.accepted_fraction);
  reg.gauge("engine/accepted_flits_per_node_cycle",
            r.accepted_flits_per_node_cycle, "flits/node/cycle");
  reg.counter("engine/generated_packets", r.generated_packets);
  reg.counter("engine/delivered_packets", r.delivered_packets);
  reg.counter("engine/delivered_flits", r.delivered_flits);
  reg.counter("engine/measured_cycles", r.measured_cycles);
  reg.gauge("engine/latency_mean", r.latency_cycles.mean(), "cycles");
  reg.gauge("engine/hops_mean", r.hops.mean());
  reg.gauge("engine/link_utilization_mean", r.link_utilization.mean());
  reg.gauge("engine/throughput_swing", r.throughput_swing());
  reg.counter("engine/deadlocked", r.deadlocked ? 1 : 0);
  // The saturation tail the paper's averages hide: p50/p95/p99 from the
  // streaming latency histogram, registered as one histogram metric.
  reg.histogram("latency/cycles", r.latency_histogram, "cycles");
}

void register_routing_metrics(MetricsRegistry& reg,
                              const SimulationResult& r) {
  reg.counter("routing/adaptive_headers", r.routing_adaptive_headers);
  reg.counter("routing/escape_headers", r.routing_escape_headers);
  reg.counter("routing/misroute_headers", r.routing_misroute_headers);
  reg.counter("routing/nic_throttled_cycles", r.nic_throttled_cycles);
}

void register_fault_metrics(MetricsRegistry& reg, const SimulationResult& r) {
  reg.counter("fault/unroutable_packets", r.unroutable_packets);
  reg.counter("fault/dropped_packets", r.dropped_packets);
  reg.counter("fault/dropped_flits", r.dropped_flits);
  reg.counter("fault/epochs", r.fault_epochs.size());
  reg.counter("fault/active_at_end", r.active_faults_end);
  reg.gauge("fault/stall_verdict",
            static_cast<double>(static_cast<unsigned>(r.stall_verdict)));
  reg.counter("fault/drain_cycles", r.drain_cycles);
  reg.counter("fault/drain_delivered_packets", r.drain_delivered_packets);
}

void register_obs_metrics(MetricsRegistry& reg, const SimulationResult& r) {
  reg.counter("obs/stall_events", r.obs.stalls.total());
  for (std::size_t c = 0; c < kStallCauseCount; ++c) {
    reg.counter(std::string("obs/stall_") +
                    to_string(static_cast<StallCause>(c)),
                r.obs.stalls.by_cause[c]);
  }
  reg.counter("obs/switch_frozen_cycles", r.obs.switch_frozen_cycles);
}

void register_anomaly_metrics(MetricsRegistry& reg, const SimulationResult& r) {
  std::uint64_t any = 0;
  for (const AnomalyVerdict& v : r.anomaly_verdicts) {
    const std::string base = std::string("obs/anomaly/") + to_string(v.kind);
    reg.counter(base, v.triggered ? 1 : 0);
    reg.counter(base + "_cycle", v.triggered ? v.cycle : 0, "cycle");
    if (v.triggered) any = 1;
  }
  reg.counter("obs/anomaly/any", any);
}

void register_flight_metrics(MetricsRegistry& reg, const SimulationResult& r) {
  reg.counter("obs/flight/snapshots", r.flight.total_recorded);
  reg.counter("obs/flight/interval_cycles", r.flight.interval_cycles, "cycles");
  reg.counter("obs/flight/capacity", r.flight.capacity);
}

void register_workload_metrics(MetricsRegistry& reg,
                               const SimulationResult& r) {
  const WorkloadReport& w = r.workload;
  // Deterministic request-level service metrics (see workload/workload.hpp
  // for the conservation identity the whole-run counters satisfy).
  reg.counter("workload/clients", w.clients);
  reg.counter("workload/servers", w.servers);
  reg.counter("workload/requests_issued", w.requests_issued);
  reg.counter("workload/requests_completed", w.requests_completed);
  reg.counter("workload/requests_dropped", w.requests_dropped);
  reg.counter("workload/outstanding_end", w.outstanding_end);
  reg.counter("workload/backlog_end", w.backlog_end);
  reg.counter("workload/drain_completed", w.drain_completed);
  reg.counter("workload/window_issued", w.window_issued);
  reg.counter("workload/window_completed", w.window_completed);
  reg.gauge("workload/goodput", w.goodput, "req/kcycle/client");
  reg.gauge("workload/fairness_jain", w.fairness_jain);
  reg.gauge("workload/outstanding_mean", w.outstanding_mean, "req/client");
  reg.histogram("workload/completion_latency", w.completion_latency, "cycles");
}

void register_profile_metrics(MetricsRegistry& reg, const ProfileReport& p) {
  // Deterministic scheduler-effectiveness gauges.
  reg.gauge("profile/fused_hit_rate", p.fused_hit_rate());
  reg.counter("profile/cycles", p.cycles);
  reg.counter("profile/fused_cycles", p.fused_cycles);
  reg.gauge("profile/active_switch_fraction_mean",
            p.active_switch_fraction_mean);
  reg.counter("profile/active_switches_max", p.active_switches_max);
  reg.gauge("profile/active_nic_fraction_mean", p.active_nic_fraction_mean);
  reg.counter("profile/active_nics_max", p.active_nics_max);
  reg.counter("profile/lane_flits_high_water", p.lane_flits_high_water);
  reg.counter("profile/lane_capacity_flits", p.lane_capacity_flits);
  reg.counter("profile/generated_packets", p.generated_packets);
  reg.counter("profile/link_flits", p.link_flits);
  reg.counter("profile/routed_headers", p.routed_headers);
  reg.counter("profile/crossbar_flits", p.crossbar_flits);
  reg.counter("profile/credit_acks", p.credit_acks);
  // Sharded-engine counters: deterministic for a fixed thread count, but
  // they differ between serial and sharded runs of the same configuration
  // (a merge only exists when shards do) — thread-count bit-identity is
  // asserted on engine/ and latency/, never on these.
  reg.counter("profile/shards", p.shards);
  reg.counter("profile/parallel_cycles", p.parallel_cycles);
  reg.counter("profile/merge_staged_flits", p.merge_staged_flits);
  reg.counter("profile/merge_staged_credits", p.merge_staged_credits);
  reg.counter("profile/merge_staged_trace_events", p.merge_staged_trace_events);
  reg.counter("profile/merge_staged_drops", p.merge_staged_drops);
  reg.counter("profile/shard_switch_visits_max", p.shard_switch_visits_max);
  reg.counter("profile/shard_switch_visits_min", p.shard_switch_visits_min);
  // Per-shard contention telemetry (sharded runs only). The imbalance
  // gauges count switch visits, so they are deterministic for a fixed
  // thread count; the wall times live under profile/shard/time/ — the
  // report tool treats any /time/ segment as advisory (warn-only).
  if (p.shards > 0) {
    reg.gauge("profile/shard/imbalance_mean", p.shard_imbalance_mean,
              "visits");
    reg.counter("profile/shard/imbalance_max", p.shard_imbalance_max,
                "visits");
    reg.counter("profile/shard/time/region_a_ns", p.shard_region_a_ns, "ns");
    reg.counter("profile/shard/time/region_b_ns", p.shard_region_b_ns, "ns");
    reg.counter("profile/shard/time/barrier_wait_ns", p.shard_barrier_wait_ns,
                "ns");
    reg.counter("profile/shard/time/merge_ns", p.shard_merge_ns, "ns");
  }
  // Wall-time shares are noisy: the whole slice lives in the advisory
  // time/ namespace so an A/B report never fails on scheduler jitter.
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    const auto phase = static_cast<ProfPhase>(i);
    reg.gauge(std::string("time/profile_share_") + to_string(phase),
              p.phase(phase).share);
  }
  reg.gauge("time/profile_phase_ns_total",
            static_cast<double>(p.phase_ns_total), "ns");
}

void register_time_metrics(MetricsRegistry& reg, const SimulationResult& r) {
  reg.gauge("time/sim_wall_seconds", r.sim_wall_seconds, "s");
  reg.gauge("time/sim_cycles_per_second", r.sim_cycles_per_second, "1/s");
  reg.gauge("time/sim_mflits_per_second", r.sim_mflits_per_second, "M/s");
}

void register_run_metrics(MetricsRegistry& reg, const SimulationResult& r) {
  register_engine_metrics(reg, r);
  // Routing stats only appear when the algorithm reports them (the
  // escape-adaptive core); other algorithms keep the registry unchanged
  // so historical manifests diff clean.
  if (r.routing_adaptive_headers > 0 || r.routing_escape_headers > 0 ||
      r.routing_misroute_headers > 0 || r.nic_throttled_cycles > 0) {
    register_routing_metrics(reg, r);
  }
  if (!r.fault_epochs.empty() || r.unroutable_packets > 0 ||
      r.active_faults_end > 0) {
    register_fault_metrics(reg, r);
  }
  if (r.workload.enabled) register_workload_metrics(reg, r);
  if (r.obs.enabled) register_obs_metrics(reg, r);
  if (r.anomaly_enabled) register_anomaly_metrics(reg, r);
  if (r.flight.enabled) register_flight_metrics(reg, r);
  if (r.profile.enabled) register_profile_metrics(reg, r.profile);
  register_time_metrics(reg, r);
}

void register_topology_metrics(MetricsRegistry& reg, const Topology& topo,
                               double clock_ns, double wire_m) {
  const std::size_t switches = topo.switch_count();
  const std::size_t ports = topo.ports_per_switch();
  std::uint64_t switch_links = 0;  // directed switch-to-switch channels
  std::uint64_t terminal_links = 0;
  std::vector<unsigned> radixes(switches, 0);
  for (SwitchId s = 0; s < switches; ++s) {
    for (PortId p = 0; p < ports; ++p) {
      const PortPeer peer = topo.port_peer(s, p);
      if (peer.kind == PeerKind::kUnconnected) continue;
      ++radixes[s];
      if (peer.kind == PeerKind::kSwitch) ++switch_links;
      else ++terminal_links;
    }
  }
  reg.counter("topo/nodes", topo.node_count());
  reg.counter("topo/switches", switches);
  reg.counter("topo/switch_links", switch_links);
  reg.counter("topo/terminal_links", terminal_links);
  reg.counter("topo/diameter", topo.diameter(), "hops");
  reg.gauge("topo/avg_distance", topo.average_distance(), "hops");
  reg.counter("topo/bisection_channels", topo.bisection_channels());
  std::sort(radixes.begin(), radixes.end());
  const auto pct = [&](double q) {
    return static_cast<double>(
        radixes[static_cast<std::size_t>(q * static_cast<double>(
                                                 radixes.size() - 1))]);
  };
  HistogramSummary radix_summary;
  radix_summary.count = radixes.size();
  radix_summary.p50 = pct(0.50);
  radix_summary.p95 = pct(0.95);
  radix_summary.p99 = pct(0.99);
  reg.histogram("topo/radix", radix_summary, "ports");
  reg.gauge("topo/clock_ns", clock_ns, "ns");
  if (wire_m > 0.0) reg.gauge("topo/wire_m", wire_m, "m");
}

}  // namespace smart
