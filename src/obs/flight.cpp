#include "obs/flight.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "core/config.hpp"

namespace smart {
namespace {

constexpr const char* kFlightSchema = "smartsim-flight-v1";

json::Value snapshot_json(const FlightSnapshot& s) {
  json::Value v = json::Value::object();
  v.set("cycle", json::Value(static_cast<double>(s.cycle)));
  v.set("injected", json::Value(static_cast<double>(s.injected_flits)));
  v.set("consumed", json::Value(static_cast<double>(s.consumed_flits)));
  v.set("d_injected", json::Value(static_cast<double>(s.delta_injected)));
  v.set("d_consumed", json::Value(static_cast<double>(s.delta_consumed)));
  json::Value stalls = json::Value::object();
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    stalls.set(to_string(static_cast<StallCause>(i)),
               json::Value(static_cast<double>(s.stalls[i])));
  }
  v.set("stalls", std::move(stalls));
  v.set("switch_frozen_cycles",
        json::Value(static_cast<double>(s.switch_frozen_cycles)));
  v.set("active_switches",
        json::Value(static_cast<double>(s.active_switches)));
  v.set("active_nics", json::Value(static_cast<double>(s.active_nics)));
  v.set("buffered_flits", json::Value(static_cast<double>(s.buffered_flits)));
  v.set("lane_high_water",
        json::Value(static_cast<double>(s.lane_high_water)));
  v.set("in_flight_packets",
        json::Value(static_cast<double>(s.in_flight_packets)));
  v.set("max_packet_age", json::Value(static_cast<double>(s.max_packet_age)));
  v.set("throttled_nic_cycles",
        json::Value(static_cast<double>(s.throttled_nic_cycles)));
  v.set("escape_pressure_mean", json::Value(s.escape_pressure_mean));
  return v;
}

std::uint64_t u64_at(const json::Value& v, std::string_view key) {
  return static_cast<std::uint64_t>(v.number_at(key).value_or(0.0));
}

FlightSnapshot snapshot_from_json(const json::Value& v) {
  FlightSnapshot s;
  s.cycle = u64_at(v, "cycle");
  s.injected_flits = u64_at(v, "injected");
  s.consumed_flits = u64_at(v, "consumed");
  s.delta_injected = u64_at(v, "d_injected");
  s.delta_consumed = u64_at(v, "d_consumed");
  if (const json::Value* stalls = v.find("stalls");
      stalls != nullptr && stalls->is_object()) {
    for (std::size_t i = 0; i < kStallCauseCount; ++i) {
      s.stalls[i] = u64_at(*stalls, to_string(static_cast<StallCause>(i)));
    }
  }
  s.switch_frozen_cycles = u64_at(v, "switch_frozen_cycles");
  s.active_switches = u64_at(v, "active_switches");
  s.active_nics = u64_at(v, "active_nics");
  s.buffered_flits = u64_at(v, "buffered_flits");
  s.lane_high_water = u64_at(v, "lane_high_water");
  s.in_flight_packets = u64_at(v, "in_flight_packets");
  s.max_packet_age = u64_at(v, "max_packet_age");
  s.throttled_nic_cycles = u64_at(v, "throttled_nic_cycles");
  s.escape_pressure_mean = v.number_at("escape_pressure_mean").value_or(0.0);
  return s;
}

void append_row(std::string& out, const FlightSnapshot& s) {
  char buf[256];
  std::uint64_t stall_total = s.switch_frozen_cycles;
  for (std::uint64_t c : s.stalls) stall_total += c;
  std::snprintf(buf, sizeof(buf),
                "  %10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %9" PRIu64
                " %9" PRIu64 " %8" PRIu64 " %8" PRIu64 " %12" PRIu64
                " %9" PRIu64 "   %.3f\n",
                s.cycle, s.delta_injected, s.delta_consumed,
                s.buffered_flits, s.in_flight_packets, s.active_switches,
                s.active_nics, stall_total, s.max_packet_age,
                s.escape_pressure_mean);
  out += buf;
}

constexpr const char* kTimelineHeader =
    "       cycle  d_injected  d_consumed  buffered  in_flight  act_sws"
    "  act_nics  stall_total   max_age  pressure\n";

}  // namespace

std::vector<FlightSnapshot> FlightRing::ordered() const {
  std::vector<FlightSnapshot> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    const std::size_t head = total_ % capacity_;  // oldest entry
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

FlightRecorder::FlightRecorder(const FlightSpec& spec)
    : ring_(static_cast<std::size_t>(spec.capacity == 0 ? 1 : spec.capacity)),
      interval_(spec.interval_cycles == 0 ? 1 : spec.interval_cycles) {}

void FlightRecorder::record(FlightSnapshot snap) {
  snap.delta_injected = snap.injected_flits - prev_injected_;
  snap.delta_consumed = snap.consumed_flits - prev_consumed_;
  prev_injected_ = snap.injected_flits;
  prev_consumed_ = snap.consumed_flits;
  high_water_ = std::max(high_water_, snap.buffered_flits);
  snap.lane_high_water = high_water_;
  ring_.record(snap);
}

void FlightRecorder::note_anomaly(const std::string& kind,
                                  std::uint64_t cycle) {
  if (!anomaly_kind_.empty()) return;  // keep the first trigger's scene
  anomaly_kind_ = kind;
  anomaly_cycle_ = cycle;
}

void FlightRecorder::set_hot_switches(std::vector<HotSwitchSnapshot> hot) {
  if (!hot_switches_.empty()) return;
  hot_switches_ = std::move(hot);
}

FlightSeries FlightRecorder::series() const {
  FlightSeries out;
  out.enabled = true;
  out.interval_cycles = interval_;
  out.capacity = ring_.capacity();
  out.total_recorded = ring_.total_recorded();
  out.snapshots = ring_.ordered();
  out.anomaly_kind = anomaly_kind_;
  out.anomaly_cycle = anomaly_cycle_;
  out.hot_switches = hot_switches_;
  return out;
}

json::Value flight_json(const FlightSeries& series) {
  json::Value doc = json::Value::object();
  doc.set("schema", json::Value(std::string(kFlightSchema)));
  doc.set("interval_cycles",
          json::Value(static_cast<double>(series.interval_cycles)));
  doc.set("capacity", json::Value(static_cast<double>(series.capacity)));
  doc.set("total_recorded",
          json::Value(static_cast<double>(series.total_recorded)));
  if (!series.anomaly_kind.empty()) {
    json::Value anomaly = json::Value::object();
    anomaly.set("kind", json::Value(series.anomaly_kind));
    anomaly.set("cycle",
                json::Value(static_cast<double>(series.anomaly_cycle)));
    doc.set("anomaly", std::move(anomaly));
  }
  if (!series.hot_switches.empty()) {
    json::Value hot = json::Value::array();
    for (const HotSwitchSnapshot& h : series.hot_switches) {
      json::Value row = json::Value::object();
      row.set("switch", json::Value(static_cast<double>(h.sw)));
      row.set("buffered", json::Value(static_cast<double>(h.buffered)));
      row.set("bound_inputs",
              json::Value(static_cast<double>(h.bound_inputs)));
      row.set("escape_pressure", json::Value(h.escape_pressure));
      hot.push_back(std::move(row));
    }
    doc.set("hot_switches", std::move(hot));
  }
  json::Value snaps = json::Value::array();
  for (const FlightSnapshot& s : series.snapshots) {
    snaps.push_back(snapshot_json(s));
  }
  doc.set("snapshots", std::move(snaps));
  return doc;
}

bool parse_flight(const std::string& path, FlightSeries* out,
                  std::string* error) {
  std::optional<json::Value> doc = json::parse_file(path, error);
  if (!doc) return false;
  const std::optional<std::string> schema = doc->string_at("schema");
  if (!schema || *schema != kFlightSchema) {
    if (error != nullptr) {
      *error = path + ": not a " + kFlightSchema + " document";
    }
    return false;
  }
  FlightSeries series;
  series.enabled = true;
  series.interval_cycles =
      static_cast<std::uint64_t>(doc->number_at("interval_cycles").value_or(0));
  series.capacity =
      static_cast<std::uint64_t>(doc->number_at("capacity").value_or(0));
  series.total_recorded =
      static_cast<std::uint64_t>(doc->number_at("total_recorded").value_or(0));
  if (const json::Value* anomaly = doc->find("anomaly");
      anomaly != nullptr && anomaly->is_object()) {
    series.anomaly_kind = anomaly->string_at("kind").value_or("");
    series.anomaly_cycle =
        static_cast<std::uint64_t>(anomaly->number_at("cycle").value_or(0));
  }
  if (const json::Value* hot = doc->find("hot_switches");
      hot != nullptr && hot->is_array()) {
    for (const json::Value& row : hot->items()) {
      HotSwitchSnapshot h;
      h.sw = static_cast<SwitchId>(row.number_at("switch").value_or(0));
      h.buffered =
          static_cast<std::uint64_t>(row.number_at("buffered").value_or(0));
      h.bound_inputs = static_cast<std::uint32_t>(
          row.number_at("bound_inputs").value_or(0));
      h.escape_pressure = row.number_at("escape_pressure").value_or(0.0);
      series.hot_switches.push_back(h);
    }
  }
  if (const json::Value* snaps = doc->find("snapshots");
      snaps != nullptr && snaps->is_array()) {
    series.snapshots.reserve(snaps->items().size());
    for (const json::Value& row : snaps->items()) {
      series.snapshots.push_back(snapshot_from_json(row));
    }
  }
  *out = std::move(series);
  return true;
}

bool write_flight(const std::string& path, const FlightSeries& series,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << flight_json(series).dump(2) << '\n';
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

std::string render_timeline(const FlightSeries& series) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "flight timeline: %zu snapshot(s), interval %" PRIu64
                " cycles, %" PRIu64 " recorded (capacity %" PRIu64 ")\n",
                series.snapshots.size(), series.interval_cycles,
                series.total_recorded, series.capacity);
  out += buf;
  if (!series.anomaly_kind.empty()) {
    std::snprintf(buf, sizeof(buf), "anomaly: %s at cycle %" PRIu64 "\n",
                  series.anomaly_kind.c_str(), series.anomaly_cycle);
    out += buf;
  }
  out += kTimelineHeader;
  for (const FlightSnapshot& s : series.snapshots) append_row(out, s);
  if (!series.hot_switches.empty()) {
    out += "hot switches at trigger:\n";
    for (const HotSwitchSnapshot& h : series.hot_switches) {
      std::snprintf(buf, sizeof(buf),
                    "  switch %5u  buffered %6" PRIu64
                    "  bound_inputs %3u  pressure %.3f\n",
                    h.sw, h.buffered, h.bound_inputs, h.escape_pressure);
      out += buf;
    }
  }
  return out;
}

std::string render_timeline_diff(const FlightSeries& a,
                                 const FlightSeries& b) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "flight diff: %zu vs %zu snapshot(s), interval %" PRIu64
                " vs %" PRIu64 " cycles\n",
                a.snapshots.size(), b.snapshots.size(), a.interval_cycles,
                b.interval_cycles);
  out += buf;
  out +=
      "       cycle    d_injected(A->B)    d_consumed(A->B)"
      "      buffered(A->B)     in_flight(A->B)\n";
  // Align by snapshot cycle; series are cycle-sorted by construction.
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.snapshots.size() || ib < b.snapshots.size()) {
    const FlightSnapshot* sa =
        ia < a.snapshots.size() ? &a.snapshots[ia] : nullptr;
    const FlightSnapshot* sb =
        ib < b.snapshots.size() ? &b.snapshots[ib] : nullptr;
    if (sa != nullptr && sb != nullptr && sa->cycle == sb->cycle) {
      std::snprintf(buf, sizeof(buf),
                    "  %10" PRIu64 "  %8" PRIu64 " -> %-8" PRIu64
                    "  %8" PRIu64 " -> %-8" PRIu64 "  %8" PRIu64
                    " -> %-8" PRIu64 "  %8" PRIu64 " -> %-8" PRIu64 "\n",
                    sa->cycle, sa->delta_injected, sb->delta_injected,
                    sa->delta_consumed, sb->delta_consumed,
                    sa->buffered_flits, sb->buffered_flits,
                    sa->in_flight_packets, sb->in_flight_packets);
      out += buf;
      ++ia;
      ++ib;
    } else if (sb == nullptr || (sa != nullptr && sa->cycle < sb->cycle)) {
      std::snprintf(buf, sizeof(buf),
                    "  %10" PRIu64 "  only in A (d_injected %" PRIu64
                    ", d_consumed %" PRIu64 ")\n",
                    sa->cycle, sa->delta_injected, sa->delta_consumed);
      out += buf;
      ++ia;
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  %10" PRIu64 "  only in B (d_injected %" PRIu64
                    ", d_consumed %" PRIu64 ")\n",
                    sb->cycle, sb->delta_injected, sb->delta_consumed);
      out += buf;
      ++ib;
    }
  }
  const std::string aa =
      a.anomaly_kind.empty() ? std::string("none") : a.anomaly_kind;
  const std::string ab =
      b.anomaly_kind.empty() ? std::string("none") : b.anomaly_kind;
  if (aa != ab) {
    out += "anomaly: " + aa + " -> " + ab + "\n";
  }
  return out;
}

}  // namespace smart
