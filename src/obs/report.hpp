// Perf-regression comparison between two manifest directories.
//
// tools/smartsim_report is a thin CLI over this library: load every
// manifest in directories A (baseline) and B (candidate), pair them by
// producer, diff the metric registries metric by metric, and render a
// verdict table. The metric namespace encodes the comparison policy (see
// registry.hpp): deterministic namespaces (engine/, latency/, fault/,
// obs/, profile/) fail the report when they drift beyond the threshold —
// for a fixed config and seed they are bit-stable, so any drift is a
// behavioural change; the time/ namespace is wall-clock noise and is only
// ever advisory (warn).
#pragma once

#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace smart {

struct ReportOptions {
  /// Relative drift tolerated on deterministic metrics before a fail.
  double threshold = 0.05;
  /// Relative drift tolerated on time/ metrics before a warn (wall clock
  /// jitters far more than simulation results; never a hard failure).
  double time_threshold = 0.25;
};

enum class Verdict : std::uint8_t {
  kPass,     ///< within threshold
  kWarn,     ///< advisory drift (time/ namespace only)
  kFail,     ///< deterministic metric drifted beyond threshold
  kMissing,  ///< metric present in A but absent in B: shape break, fails
  kNew,      ///< metric only in B: informational, passes
};

[[nodiscard]] constexpr const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kWarn: return "WARN";
    case Verdict::kFail: return "FAIL";
    case Verdict::kMissing: return "MISSING";
    case Verdict::kNew: return "new";
  }
  return "?";
}

/// One row of the verdict table. Histogram metrics expand into one row per
/// percentile (`name/p50` ...) plus the sample count.
struct MetricVerdict {
  std::string producer;
  std::string metric;
  double a = 0.0;
  double b = 0.0;
  double ratio = 0.0;   ///< b / a; meaningful only when has_ratio
  bool has_ratio = false;
  Verdict verdict = Verdict::kPass;
};

struct ReportResult {
  std::vector<MetricVerdict> rows;
  std::vector<std::string> notes;  ///< unpaired manifests etc.
  int failures = 0;                ///< kFail + kMissing rows
  int warnings = 0;                ///< kWarn rows

  [[nodiscard]] bool ok() const noexcept { return failures == 0; }
};

/// One parsed manifest: where it came from and its metric snapshot.
struct ManifestDoc {
  std::string path;
  std::string producer;
  MetricsRegistry metrics;
};

/// Loads every `*.manifest.json` / `MANIFEST_*.json` in `dir` (sorted by
/// filename). Returns false and fills `error` when the directory cannot be
/// read or a manifest fails to parse.
bool load_manifest_dir(const std::string& dir, std::vector<ManifestDoc>* out,
                       std::string* error);

/// Diffs two registries metric by metric under the namespace policy.
[[nodiscard]] ReportResult compare_registries(const std::string& producer,
                                              const MetricsRegistry& a,
                                              const MetricsRegistry& b,
                                              const ReportOptions& options);

/// Loads both directories, pairs manifests by producer, and concatenates
/// the per-pair comparisons. Manifests without a partner are reported in
/// `notes` (a producer missing from B counts as a failure).
[[nodiscard]] ReportResult compare_manifest_dirs(const std::string& dir_a,
                                                 const std::string& dir_b,
                                                 const ReportOptions& options,
                                                 std::string* error);

/// Renders the verdict table plus a one-line summary.
[[nodiscard]] std::string render_report(const ReportResult& result);

}  // namespace smart
