// Flight recorder (observability generation 3).
//
// A black-box-style, fixed-capacity ring of per-interval network
// snapshots: every `interval_cycles` the engine appends one FlightSnapshot
// capturing injected/accepted flit totals, stall-cause totals, active-set
// occupancy, buffered-flit load, escape pressure, throttled-NIC time and
// packet-age high water. The ring overwrites its oldest entry once full,
// so a run of any length retains the last `capacity` intervals — exactly
// the window that matters when a run collapses, livelocks or deadlocks.
//
// The recorder only *reads* end-of-cycle engine state; it never feeds
// back into routing, injection or arbitration, so simulation results are
// bit-identical with it on or off (pinned at threads 1/2/4/7 by
// tests/test_flight_recorder.cpp). That makes it cheap enough to leave
// enabled by default: the per-cycle cost is one predicted-taken branch,
// and the per-interval cost is a scan amortized over `interval_cycles`.
//
// Dumps: `smartsim_cli --flight <path>` writes the series after the run;
// when an anomaly watchdog fires (src/obs/anomaly.hpp) the CLI writes
// `<manifest>.flight.json` automatically, together with a dense snapshot
// of the hottest switches taken at the moment of the trigger.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "topology/topology.hpp"
#include "util/json.hpp"

namespace smart {

struct FlightSpec;

/// One per-interval sample of fabric-wide state. Cumulative fields are
/// since-cycle-0 totals; delta fields cover the interval since the
/// previous snapshot (computed by the recorder, so ring overwrites never
/// lose the baseline).
struct FlightSnapshot {
  std::uint64_t cycle = 0;
  std::uint64_t injected_flits = 0;  ///< cumulative flits injected
  std::uint64_t consumed_flits = 0;  ///< cumulative flits accepted
  std::uint64_t delta_injected = 0;
  std::uint64_t delta_consumed = 0;
  /// Cumulative fabric-wide stall totals by cause (zeros when the stall
  /// counters are not enabled for the run).
  std::array<std::uint64_t, kStallCauseCount> stalls{};
  std::uint64_t switch_frozen_cycles = 0;
  std::uint64_t active_switches = 0;  ///< active-set occupancy this cycle
  std::uint64_t active_nics = 0;
  std::uint64_t buffered_flits = 0;     ///< flits resident in switch lanes
  std::uint64_t lane_high_water = 0;    ///< running max of buffered_flits
  std::uint64_t in_flight_packets = 0;  ///< live pool slots
  std::uint64_t max_packet_age = 0;     ///< cycles since injection, max
  std::uint64_t throttled_nic_cycles = 0;  ///< cumulative
  double escape_pressure_mean = 0.0;  ///< mean over switches, this cycle
};

/// Dense state of one hot switch, captured when an anomaly fires.
struct HotSwitchSnapshot {
  SwitchId sw = 0;
  std::uint64_t buffered = 0;
  std::uint32_t bound_inputs = 0;
  double escape_pressure = 0.0;
};

/// The exported recorder state: ring contents oldest-first plus anomaly
/// context. Lives in SimulationResult so sweeps/replications keep their
/// series after the Network is destroyed.
struct FlightSeries {
  bool enabled = false;
  std::uint64_t interval_cycles = 0;
  std::uint64_t capacity = 0;
  /// Snapshots ever recorded; `total_recorded - snapshots.size()` were
  /// overwritten by the ring.
  std::uint64_t total_recorded = 0;
  std::vector<FlightSnapshot> snapshots;
  /// First anomaly that fired, if any ("" = clean run).
  std::string anomaly_kind;
  std::uint64_t anomaly_cycle = 0;
  /// Hottest switches (by buffered flits) at the anomaly trigger.
  std::vector<HotSwitchSnapshot> hot_switches;
};

/// Fixed-capacity overwrite ring. Separated from the recorder so the
/// wraparound arithmetic is unit-testable without an engine.
class FlightRing {
 public:
  explicit FlightRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(const FlightSnapshot& snap) {
    if (ring_.size() < capacity_) {
      ring_.push_back(snap);
    } else {
      ring_[total_ % capacity_] = snap;
    }
    ++total_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }

  /// Ring contents oldest-first.
  [[nodiscard]] std::vector<FlightSnapshot> ordered() const;

 private:
  std::vector<FlightSnapshot> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
};

/// Owns the ring plus delta bookkeeping and anomaly context. The engine
/// assembles each cumulative snapshot; the recorder derives interval
/// deltas and the running high water before storing it.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightSpec& spec);

  [[nodiscard]] std::uint64_t interval() const noexcept { return interval_; }

  /// Store one snapshot; fills delta_* and lane_high_water in place.
  void record(FlightSnapshot snap);

  /// Note the first anomaly only; later triggers keep the original scene.
  void note_anomaly(const std::string& kind, std::uint64_t cycle);
  void set_hot_switches(std::vector<HotSwitchSnapshot> hot);
  [[nodiscard]] bool anomaly_noted() const noexcept {
    return !anomaly_kind_.empty();
  }

  [[nodiscard]] FlightSeries series() const;

 private:
  FlightRing ring_;
  std::uint64_t interval_;
  std::uint64_t prev_injected_ = 0;
  std::uint64_t prev_consumed_ = 0;
  std::uint64_t high_water_ = 0;
  std::string anomaly_kind_;
  std::uint64_t anomaly_cycle_ = 0;
  std::vector<HotSwitchSnapshot> hot_switches_;
};

/// Schema `smartsim-flight-v1` document for `<out>.flight.json` dumps.
[[nodiscard]] json::Value flight_json(const FlightSeries& series);

/// Parse a dump written by write_flight; returns false on schema mismatch.
[[nodiscard]] bool parse_flight(const std::string& path, FlightSeries* out,
                                std::string* error);

/// Write the series to `path`; false (with *error set) on I/O failure.
[[nodiscard]] bool write_flight(const std::string& path,
                                const FlightSeries& series,
                                std::string* error);

/// Render the series as a fixed-width timeline table (smartsim_report
/// --timeline). One row per snapshot.
[[nodiscard]] std::string render_timeline(const FlightSeries& series);

/// Side-by-side diff of two series aligned by snapshot cycle
/// (smartsim_report --timeline-diff).
[[nodiscard]] std::string render_timeline_diff(const FlightSeries& a,
                                               const FlightSeries& b);

}  // namespace smart
