#include "obs/manifest.hpp"

#include <fstream>

#include "core/config.hpp"
#include "obs/registry.hpp"

#ifndef SMARTSIM_GIT_DESCRIBE
#define SMARTSIM_GIT_DESCRIBE "unknown"
#endif
#ifndef SMARTSIM_BUILD_TYPE
#define SMARTSIM_BUILD_TYPE "unknown"
#endif
#ifndef SMARTSIM_COMPILER
#define SMARTSIM_COMPILER "unknown"
#endif
#ifndef SMARTSIM_CXX_FLAGS
#define SMARTSIM_CXX_FLAGS ""
#endif

namespace smart {

const BuildInfo& build_info() {
  static const BuildInfo info{SMARTSIM_GIT_DESCRIBE, SMARTSIM_BUILD_TYPE,
                              SMARTSIM_COMPILER, SMARTSIM_CXX_FLAGS};
  return info;
}

std::string build_info_line() {
  const BuildInfo& b = build_info();
  return "smartsim " + b.git_describe + " (" + b.build_type + ", " +
         b.compiler + ")";
}

json::Value echo_config(const SimConfig& config, double clock_ns) {
  const NetworkSpec& net = config.net;

  json::Value network = json::Value::object();
  // The full "family:key=val,..." spec: generated fabrics are identified
  // by their spec, not a k/n pair.
  network.set("topology", json::Value(net.spec_string()));
  network.set("k", json::Value(static_cast<double>(net.k)));
  network.set("n", json::Value(static_cast<double>(net.n)));
  network.set("routing", json::Value(to_string(net.routing)));
  network.set("selection", json::Value(to_string(net.selection)));
  network.set("misroute", json::Value(net.misroute));
  network.set("wraparound", json::Value(net.wraparound));
  network.set("vcs", json::Value(static_cast<double>(net.vcs)));
  network.set("buffer_depth",
              json::Value(static_cast<double>(net.buffer_depth)));
  network.set("packet_bytes",
              json::Value(static_cast<double>(net.packet_bytes)));
  network.set("flit_bytes",
              json::Value(static_cast<double>(net.resolved_flit_bytes())));
  network.set("flits_per_packet",
              json::Value(static_cast<double>(net.flits_per_packet())));
  network.set("injection_channels",
              json::Value(static_cast<double>(net.injection_channels)));
  network.set("clock_ns", json::Value(clock_ns));

  json::Value traffic = json::Value::object();
  traffic.set("pattern", json::Value(to_string(config.traffic.pattern)));
  traffic.set("offered_fraction",
              json::Value(config.traffic.offered_fraction));
  traffic.set("seed",
              json::Value(static_cast<double>(config.traffic.seed)));
  traffic.set("injection", json::Value(to_string(config.traffic.injection)));
  traffic.set("throttle", json::Value(config.traffic.throttle));
  if (config.traffic.injection == InjectionKind::kBursty) {
    traffic.set("burst_factor", json::Value(config.traffic.burst_factor));
    traffic.set("mean_burst_cycles",
                json::Value(config.traffic.mean_burst_cycles));
  }

  json::Value timing = json::Value::object();
  timing.set("warmup_cycles",
             json::Value(static_cast<double>(config.timing.warmup_cycles)));
  timing.set("horizon_cycles",
             json::Value(static_cast<double>(config.timing.horizon_cycles)));
  timing.set("drain_after_horizon",
             json::Value(config.timing.drain_after_horizon));
  // Provenance only (stderr cadence); zero means no heartbeat lines.
  timing.set("heartbeat_cycles",
             json::Value(static_cast<double>(config.timing.heartbeat_cycles)));

  json::Value flight = json::Value::object();
  flight.set("enabled", json::Value(config.flight.enabled));
  flight.set("interval_cycles",
             json::Value(static_cast<double>(config.flight.interval_cycles)));
  flight.set("capacity",
             json::Value(static_cast<double>(config.flight.capacity)));

  json::Value echo = json::Value::object();
  echo.set("network", std::move(network));
  echo.set("traffic", std::move(traffic));
  echo.set("timing", std::move(timing));
  // The full "family:key=val,..." workload spec, like topology above;
  // empty string = open-loop synthetic traffic, no workload layer.
  echo.set("workload", json::Value(config.workload.spec_string()));
  echo.set("faults", json::Value(config.faults.to_string()));
  echo.set("obs_enabled", json::Value(config.obs.enabled));
  echo.set("profile_enabled", json::Value(config.prof.enabled));
  echo.set("anomaly_enabled", json::Value(config.anomaly.enabled));
  echo.set("flight", std::move(flight));
  // Provenance only: the sharded engine is bit-identical for every thread
  // count, so this never explains a metrics diff.
  echo.set("engine_threads",
           json::Value(static_cast<double>(config.engine_threads)));
  return echo;
}

json::Value manifest_json(const ManifestInfo& info) {
  const BuildInfo& b = build_info();
  json::Value build = json::Value::object();
  build.set("git_describe", json::Value(b.git_describe));
  build.set("build_type", json::Value(b.build_type));
  build.set("compiler", json::Value(b.compiler));
  build.set("cxx_flags", json::Value(b.cxx_flags));

  json::Value doc = json::Value::object();
  doc.set("schema", json::Value(std::string("smartsim-manifest-v1")));
  doc.set("producer", json::Value(info.producer));
  doc.set("command_line", json::Value(info.command_line));
  doc.set("build", std::move(build));
  doc.set("wall_seconds", json::Value(info.wall_seconds));
  doc.set("config", info.config.is_null() ? json::Value::object()
                                          : info.config);
  doc.set("metrics", info.registry != nullptr ? info.registry->to_json()
                                              : json::Value::object());
  return doc;
}

bool write_manifest(const std::string& path, const ManifestInfo& info,
                    std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << manifest_json(info).dump(2) << '\n';
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::string manifest_path_for(const std::string& artifact_path) {
  return artifact_path + ".manifest.json";
}

}  // namespace smart
