#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <utility>

#include "util/table.hpp"

namespace smart {
namespace {

// Sweeps prefix each point's slice (e.g. "load=0.300/time/..."), so the
// advisory namespace matches as a leading prefix or as a path segment.
bool is_time_metric(std::string_view name) {
  return name.rfind("time/", 0) == 0 ||
         name.find("/time/") != std::string_view::npos;
}

// Anomaly-watchdog trigger flags (obs/anomaly/<kind>, possibly behind a
// sweep prefix). A triggered flag in the candidate with a clean baseline
// is always a failure — even when the metric is new in B, which would
// otherwise pass as informational.
bool is_anomaly_flag(std::string_view name) {
  const auto pos = name.find("obs/anomaly/");
  if (pos != 0 && (pos == std::string_view::npos || name[pos - 1] != '/')) {
    return false;
  }
  return name.size() < 6 ||
         name.compare(name.size() - 6, 6, "_cycle") != 0;
}

/// Relative drift of b against a, tolerant of a zero baseline.
double relative_delta(double a, double b) {
  if (a == b) return 0.0;
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 0.0;
  return std::abs(b - a) / denom;
}

void add_scalar_row(ReportResult& result, const std::string& producer,
                    const std::string& name, double a, double b,
                    const ReportOptions& options) {
  MetricVerdict row;
  row.producer = producer;
  row.metric = name;
  row.a = a;
  row.b = b;
  if (a != 0.0) {
    row.ratio = b / a;
    row.has_ratio = true;
  }
  const double delta = relative_delta(a, b);
  if (is_time_metric(name)) {
    row.verdict =
        delta > options.time_threshold ? Verdict::kWarn : Verdict::kPass;
    if (row.verdict == Verdict::kWarn) ++result.warnings;
  } else {
    row.verdict = delta > options.threshold ? Verdict::kFail : Verdict::kPass;
    if (row.verdict == Verdict::kFail) ++result.failures;
  }
  result.rows.push_back(std::move(row));
}

bool manifest_filename(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  if (name.size() > 14 &&
      name.compare(name.size() - 14, 14, ".manifest.json") == 0) {
    return true;
  }
  return name.rfind("MANIFEST_", 0) == 0 && p.extension() == ".json";
}

}  // namespace

bool load_manifest_dir(const std::string& dir, std::vector<ManifestDoc>* out,
                       std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    if (error != nullptr) *error = dir + " is not a directory";
    return false;
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && manifest_filename(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  if (ec) {
    if (error != nullptr) *error = "cannot read " + dir + ": " + ec.message();
    return false;
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::string parse_error;
    const auto doc = json::parse_file(path.string(), &parse_error);
    if (!doc) {
      if (error != nullptr) *error = path.string() + ": " + parse_error;
      return false;
    }
    ManifestDoc manifest;
    manifest.path = path.string();
    manifest.producer = doc->string_at("producer").value_or(
        path.filename().string());
    if (const json::Value* metrics = doc->find("metrics")) {
      auto registry = MetricsRegistry::from_json(*metrics);
      if (!registry) {
        if (error != nullptr) {
          *error = path.string() + ": malformed metrics block";
        }
        return false;
      }
      manifest.metrics = std::move(*registry);
    }
    out->push_back(std::move(manifest));
  }
  return true;
}

ReportResult compare_registries(const std::string& producer,
                                const MetricsRegistry& a,
                                const MetricsRegistry& b,
                                const ReportOptions& options) {
  ReportResult result;
  for (const Metric& ma : a.metrics()) {
    const Metric* mb = b.find(ma.name);
    if (mb == nullptr) {
      MetricVerdict row;
      row.producer = producer;
      row.metric = ma.name;
      row.a = ma.kind == MetricKind::kHistogram
                  ? static_cast<double>(ma.hist.count)
                  : ma.value;
      row.verdict = Verdict::kMissing;
      ++result.failures;
      result.rows.push_back(std::move(row));
      continue;
    }
    if (ma.kind == MetricKind::kHistogram &&
        mb->kind == MetricKind::kHistogram) {
      add_scalar_row(result, producer, ma.name + "/count",
                     static_cast<double>(ma.hist.count),
                     static_cast<double>(mb->hist.count), options);
      add_scalar_row(result, producer, ma.name + "/p50", ma.hist.p50,
                     mb->hist.p50, options);
      add_scalar_row(result, producer, ma.name + "/p95", ma.hist.p95,
                     mb->hist.p95, options);
      add_scalar_row(result, producer, ma.name + "/p99", ma.hist.p99,
                     mb->hist.p99, options);
    } else {
      add_scalar_row(result, producer, ma.name, ma.value, mb->value, options);
    }
  }
  for (const Metric& mb : b.metrics()) {
    if (a.find(mb.name) != nullptr) continue;
    MetricVerdict row;
    row.producer = producer;
    row.metric = mb.name;
    row.b = mb.kind == MetricKind::kHistogram
                ? static_cast<double>(mb.hist.count)
                : mb.value;
    row.verdict = Verdict::kNew;
    if (mb.value > 0.0 && is_anomaly_flag(mb.name)) {
      row.verdict = Verdict::kFail;
      ++result.failures;
      result.notes.push_back("anomaly '" + mb.name + "' triggered in " +
                             producer + " with no baseline counterpart");
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

ReportResult compare_manifest_dirs(const std::string& dir_a,
                                   const std::string& dir_b,
                                   const ReportOptions& options,
                                   std::string* error) {
  ReportResult result;
  std::vector<ManifestDoc> docs_a;
  std::vector<ManifestDoc> docs_b;
  if (!load_manifest_dir(dir_a, &docs_a, error) ||
      !load_manifest_dir(dir_b, &docs_b, error)) {
    result.failures = 1;
    return result;
  }
  if (docs_a.empty()) {
    if (error != nullptr) *error = "no manifests found in " + dir_a;
    result.failures = 1;
    return result;
  }
  // Pair by producer; duplicate producers within one directory pair up in
  // filename order.
  std::map<std::string, std::vector<const ManifestDoc*>> by_producer_b;
  for (const ManifestDoc& doc : docs_b) {
    by_producer_b[doc.producer].push_back(&doc);
  }
  std::map<std::string, std::size_t> next_b;
  for (const ManifestDoc& doc : docs_a) {
    auto it = by_producer_b.find(doc.producer);
    const std::size_t index = next_b[doc.producer]++;
    if (it == by_producer_b.end() || index >= it->second.size()) {
      result.notes.push_back("producer '" + doc.producer + "' (" + doc.path +
                             ") has no counterpart in " + dir_b);
      ++result.failures;
      continue;
    }
    ReportResult pair = compare_registries(doc.producer, doc.metrics,
                                           it->second[index]->metrics,
                                           options);
    result.failures += pair.failures;
    result.warnings += pair.warnings;
    result.rows.insert(result.rows.end(),
                       std::make_move_iterator(pair.rows.begin()),
                       std::make_move_iterator(pair.rows.end()));
  }
  for (const auto& [producer, docs] : by_producer_b) {
    const std::size_t used = next_b[producer];
    for (std::size_t i = used; i < docs.size(); ++i) {
      result.notes.push_back("producer '" + producer + "' (" +
                             docs[i]->path + ") is new in " + dir_b);
    }
  }
  return result;
}

std::string render_report(const ReportResult& result) {
  Table table({"producer", "metric", "baseline", "candidate", "ratio",
               "verdict"});
  for (const MetricVerdict& row : result.rows) {
    table.begin_row()
        .add_cell(row.producer)
        .add_cell(row.metric)
        .add_cell(row.a, 6)
        .add_cell(row.b, 6)
        .add_cell(row.has_ratio ? format_double(row.ratio, 4) : "-")
        .add_cell(to_string(row.verdict));
  }
  std::string out = table.to_text();
  for (const std::string& note : result.notes) {
    out += "note: " + note + "\n";
  }
  out += "summary: " + std::to_string(result.rows.size()) + " metrics, " +
         std::to_string(result.failures) + " failures, " +
         std::to_string(result.warnings) + " warnings\n";
  return out;
}

}  // namespace smart
