// Chrome trace-event JSON exporter (observability layer).
//
// Emits one async event per packet — begin at generation, an instant at
// injection, end at delivery (or drop) — and, when hop tracing is on, one
// complete ("X") slice per switch the worm's header visited. The output is
// the Trace Event Format that chrome://tracing and Perfetto load directly;
// one simulated cycle maps to one microsecond of trace time.
//
// Rows: packets group under pid 0 with one track per source node; hop
// slices group under pid 1 with one track per switch, so a packet's path
// reads as a staircase across switch tracks.
//
// Events are buffered in memory and serialized by write(); timestamps are
// explicit, so emission order does not matter and delivered packets can be
// recorded retrospectively from their Packet bookkeeping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace smart {

class TraceExporter {
 public:
  /// Records gen -> inject -> deliver for one packet; `dropped` marks the
  /// worms discarded as unroutable (their async slice ends at the drop).
  void packet(std::uint64_t uid, NodeId src, NodeId dst,
              std::uint64_t gen_cycle, std::uint64_t inject_cycle,
              std::uint64_t end_cycle, std::uint32_t hops, bool dropped);

  /// Records one per-hop slice: the header occupied `sw` over
  /// [enter_cycle, exit_cycle].
  void hop(std::uint64_t uid, SwitchId sw, std::uint64_t enter_cycle,
           std::uint64_t exit_cycle);

  [[nodiscard]] std::size_t event_count() const noexcept;

  /// Serializes all buffered events as Trace Event Format JSON.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  struct PacketEvent {
    std::uint64_t uid = 0;
    NodeId src = 0;
    NodeId dst = 0;
    std::uint64_t gen = 0;
    std::uint64_t inject = 0;
    std::uint64_t end = 0;
    std::uint32_t hops = 0;
    bool dropped = false;
  };
  struct HopEvent {
    std::uint64_t uid = 0;
    SwitchId sw = 0;
    std::uint64_t enter = 0;
    std::uint64_t exit = 0;
  };

  std::vector<PacketEvent> packets_;
  std::vector<HopEvent> hops_;
};

}  // namespace smart
