#include "obs/anomaly.hpp"

#include <cinttypes>
#include <cstdio>

namespace smart {
namespace {

std::string format_detail(const char* fmt, double value, double threshold,
                          std::uint64_t cycle) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, value, threshold, cycle);
  return std::string(buf);
}

}  // namespace

AnomalyMonitor::AnomalyMonitor(const AnomalySpec& spec,
                               std::uint64_t deadlock_threshold)
    : spec_(spec),
      livelock_age_bound_(spec.livelock_age_cycles != 0
                              ? spec.livelock_age_cycles
                              : 4 * deadlock_threshold) {
  for (std::size_t i = 0; i < kAnomalyKindCount; ++i) {
    verdicts_[i].kind = static_cast<AnomalyKind>(i);
  }
}

void AnomalyMonitor::trigger(AnomalyKind kind, std::uint64_t cycle,
                             double value, double threshold,
                             std::string detail) {
  AnomalyVerdict& v = verdict(kind);
  if (v.triggered) return;  // first trigger per kind wins
  v.triggered = true;
  v.cycle = cycle;
  v.value = value;
  v.threshold = threshold;
  v.detail = std::move(detail);
  if (!any_) {
    first_kind_ = kind;
    first_cycle_ = cycle;
  }
  any_ = true;
  newly_triggered_ = true;
}

void AnomalyMonitor::check_window(double accepted_fraction,
                                  std::uint64_t cycle) {
  if (accepted_fraction > peak_window_) peak_window_ = accepted_fraction;
  const bool armed = peak_window_ >= spec_.collapse_min_peak;
  if (armed && accepted_fraction < spec_.collapse_fraction * peak_window_) {
    ++collapse_streak_;
    if (collapse_streak_ >= spec_.collapse_windows) {
      trigger(AnomalyKind::kThroughputCollapse, cycle, accepted_fraction,
              spec_.collapse_fraction * peak_window_,
              format_detail("window accepted %.4f below %.4f (cycle %" PRIu64
                            ")",
                            accepted_fraction,
                            spec_.collapse_fraction * peak_window_, cycle));
    }
  } else {
    collapse_streak_ = 0;
  }
}

void AnomalyMonitor::check_ages(std::uint64_t max_age, std::uint64_t cycle) {
  if (max_age > livelock_age_bound_) {
    trigger(AnomalyKind::kLivelock, cycle, static_cast<double>(max_age),
            static_cast<double>(livelock_age_bound_),
            format_detail("packet age %.0f exceeds bound %.0f (cycle %" PRIu64
                          ")",
                          static_cast<double>(max_age),
                          static_cast<double>(livelock_age_bound_), cycle));
  }
}

void AnomalyMonitor::check_queues(std::uint64_t max_queue,
                                  std::uint64_t median_queue,
                                  std::uint64_t cycle) {
  const double skew_bound =
      spec_.starvation_skew * static_cast<double>(median_queue + 1);
  if (max_queue >= spec_.starvation_queue &&
      static_cast<double>(max_queue) >= skew_bound) {
    trigger(AnomalyKind::kStarvation, cycle, static_cast<double>(max_queue),
            skew_bound,
            format_detail("source queue %.0f vs skew bound %.0f (cycle %"
                          PRIu64 ")",
                          static_cast<double>(max_queue), skew_bound, cycle));
  }
}

}  // namespace smart
