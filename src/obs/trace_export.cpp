#include "obs/trace_export.hpp"

#include <cinttypes>
#include <cstdio>

namespace smart {

void TraceExporter::packet(std::uint64_t uid, NodeId src, NodeId dst,
                           std::uint64_t gen_cycle, std::uint64_t inject_cycle,
                           std::uint64_t end_cycle, std::uint32_t hops,
                           bool dropped) {
  packets_.push_back(PacketEvent{uid, src, dst, gen_cycle, inject_cycle,
                                 end_cycle, hops, dropped});
}

void TraceExporter::hop(std::uint64_t uid, SwitchId sw,
                        std::uint64_t enter_cycle, std::uint64_t exit_cycle) {
  hops_.push_back(HopEvent{uid, sw, enter_cycle, exit_cycle});
}

std::size_t TraceExporter::event_count() const noexcept {
  // Each packet expands to begin + inject-instant + end.
  return packets_.size() * 3 + hops_.size();
}

std::string TraceExporter::to_json() const {
  std::string out;
  out.reserve(256 + event_count() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char buf[256];
  bool first = true;
  auto append = [&](const char* event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  // Name the two process groups so trace viewers label the tracks.
  append("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"packets (by source node)\"}}");
  append("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"switch hops\"}}");
  for (const PacketEvent& p : packets_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"b\",\"cat\":\"packet\",\"id\":%" PRIu64
                  ",\"name\":\"%s\",\"pid\":0,\"tid\":%u,\"ts\":%" PRIu64
                  ",\"args\":{\"src\":%u,\"dst\":%u,\"hops\":%u}}",
                  p.uid, p.dropped ? "dropped" : "packet", p.src, p.gen,
                  p.src, p.dst, p.hops);
    append(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"n\",\"cat\":\"packet\",\"id\":%" PRIu64
                  ",\"name\":\"inject\",\"pid\":0,\"tid\":%u,\"ts\":%" PRIu64
                  "}",
                  p.uid, p.src, p.inject);
    append(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"e\",\"cat\":\"packet\",\"id\":%" PRIu64
                  ",\"name\":\"%s\",\"pid\":0,\"tid\":%u,\"ts\":%" PRIu64 "}",
                  p.uid, p.dropped ? "dropped" : "packet", p.src, p.end);
    append(buf);
  }
  for (const HopEvent& h : hops_) {
    // Zero-duration slices render invisibly; stretch them to one cycle.
    const std::uint64_t dur = h.exit > h.enter ? h.exit - h.enter : 1;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"cat\":\"hop\",\"name\":\"pkt %" PRIu64
                  "\",\"pid\":1,\"tid\":%u,\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64 ",\"args\":{\"packet\":%" PRIu64 "}}",
                  h.uid, h.sw, h.enter, dur, h.uid);
    append(buf);
  }
  out += "\n]}\n";
  return out;
}

bool TraceExporter::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::string json = to_json();
  const bool wrote = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  const bool closed = std::fclose(file) == 0;
  return wrote && closed;
}

}  // namespace smart
