// Observability state: the engine-facing façade of src/obs/.
//
// Network owns one ObsState when observability is enabled (and none at all
// otherwise — the disabled path costs a single null check per hook site, so
// results stay bit-identical to a build without the subsystem, the same
// discipline src/fault/ established). The state aggregates the three
// collectors — stall attribution, the utilization/occupancy sampler, and
// the Chrome trace exporter — plus the per-packet bookkeeping the trace
// needs: a unique id per generated packet (pool ids recycle) and the
// header's current switch for hop slices.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/counters.hpp"
#include "obs/sampler.hpp"
#include "obs/trace_export.hpp"
#include "router/flit.hpp"
#include "topology/topology.hpp"

namespace smart {

class ObsState {
 public:
  ObsState(const Topology& topo, std::uint64_t sample_interval,
           unsigned lane_stride, bool trace_hops)
      : stalls(topo.switch_count(), topo.ports_per_switch()),
        sampler(topo, sample_interval, lane_stride),
        trace_hops_(trace_hops) {}

  StallCounters stalls;
  ObsSampler sampler;
  TraceExporter trace;

  [[nodiscard]] bool trace_hops() const noexcept { return trace_hops_; }

  /// Stable id for the packet currently occupying pool slot `id`; assigned
  /// on first use and retired by forget() when the worm leaves the network.
  [[nodiscard]] std::uint64_t uid_of(PacketId id) {
    if (id >= uid_.size()) uid_.resize(id + 1, kNoUid);
    if (uid_[id] == kNoUid) uid_[id] = next_uid_++;
    return uid_[id];
  }

  void forget(PacketId id) noexcept {
    if (id < uid_.size()) uid_[id] = kNoUid;
  }

  /// The header flit entered `sw` this cycle.
  void hop_enter(PacketId id, SwitchId sw, std::uint64_t cycle) {
    if (id >= hop_switch_.size()) {
      hop_switch_.resize(id + 1, 0);
      hop_enter_cycle_.resize(id + 1, 0);
    }
    hop_switch_[id] = sw;
    hop_enter_cycle_[id] = cycle;
  }

  /// The worm left its current switch this cycle; emits the hop slice.
  void hop_exit(PacketId id, std::uint64_t cycle) {
    if (id >= hop_switch_.size()) return;  // header never tracked
    trace.hop(uid_of(id), hop_switch_[id], hop_enter_cycle_[id], cycle);
  }

 private:
  static constexpr std::uint64_t kNoUid = ~0ULL;

  bool trace_hops_;
  std::uint64_t next_uid_ = 0;
  std::vector<std::uint64_t> uid_;
  std::vector<SwitchId> hop_switch_;
  std::vector<std::uint64_t> hop_enter_cycle_;
};

}  // namespace smart
