// Run manifests (observability layer).
//
// Every artifact the simulator emits (a CSV table, a bench JSON) gets a
// manifest next to it: a JSON record of *how* the numbers were produced —
// the full configuration echo, build provenance (git describe, compiler,
// flags), wall time, and a snapshot of the run's metrics registry. Two
// manifests are enough to re-run, attribute, or diff a result months
// later; tools/smartsim_report consumes pairs of manifest directories and
// renders a per-metric regression verdict table.
#pragma once

#include <string>

#include "util/json.hpp"

namespace smart {

struct SimConfig;
class MetricsRegistry;

/// Build provenance captured at configure time (top-level CMakeLists.txt
/// bakes the values into src/obs/manifest.cpp as compile definitions).
struct BuildInfo {
  std::string git_describe;
  std::string build_type;
  std::string compiler;
  std::string cxx_flags;
};

[[nodiscard]] const BuildInfo& build_info();

/// One-line provenance header, e.g. for `smartsim_cli --version`:
///   smartsim <describe> (<build type>, <compiler>)
[[nodiscard]] std::string build_info_line();

/// Serializes a SimConfig into the manifest's `config` object. `clock_ns`
/// is the cost-model clock the caller derived for this configuration (the
/// obs layer takes it as a value so it never depends on src/cost).
[[nodiscard]] json::Value echo_config(const SimConfig& config,
                                      double clock_ns);

/// Everything a manifest records besides the build provenance (which is
/// filled in automatically).
struct ManifestInfo {
  std::string producer;      ///< e.g. "smartsim_cli", "bench_engine"
  std::string command_line;  ///< argv joined, or the bench invocation
  json::Value config;        ///< echo_config() or a producer-specific echo
  double wall_seconds = 0.0;
  const MetricsRegistry* registry = nullptr;  ///< optional metric snapshot
};

/// Assembles the manifest document: schema tag, producer, command line,
/// build block, config echo, wall time, and the registry snapshot.
[[nodiscard]] json::Value manifest_json(const ManifestInfo& info);

/// Writes manifest_json() to `path` (pretty-printed, trailing newline).
/// Returns false and fills `error` (if non-null) on I/O failure.
bool write_manifest(const std::string& path, const ManifestInfo& info,
                    std::string* error = nullptr);

/// Conventional manifest path for an artifact: `<artifact>.manifest.json`.
[[nodiscard]] std::string manifest_path_for(const std::string& artifact_path);

}  // namespace smart
