// Stall-cause attribution counters (observability layer).
//
// The engine's per-cycle phases skip work for exactly four reasons: an
// output lane holds a flit but the downstream input lane has no free slot
// (credit-starved), a header found no free output lane at its switch
// (routing-blocked), a bound input lane could not advance because the
// output lane's buffer is full (crossbar-blocked), or a fault froze the
// component (fault-frozen). StallCounters attributes every such skipped
// opportunity to the switch port it happened at, turning "the network
// saturated" into "these ports starved for these reasons" — the lens the
// paper's §6–§9 analysis applies informally.
//
// One counter bump per (lane, cycle) event; totals are therefore
// lane-cycles lost, comparable across causes and against the number of
// flit-cycles actually delivered.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace smart {

enum class StallCause : std::uint8_t {
  kCreditStarved,   ///< flit ready, zero credits on the output lane
  kRoutingBlocked,  ///< header routed, but no free output lane anywhere legal
  kCrossbarBlocked, ///< bound lane stalled on a full output-lane buffer
  kFaultFrozen,     ///< flits frozen on a faulted link or dead switch
};
inline constexpr std::size_t kStallCauseCount = 4;

[[nodiscard]] constexpr const char* to_string(StallCause cause) noexcept {
  switch (cause) {
    case StallCause::kCreditStarved: return "credit-starved";
    case StallCause::kRoutingBlocked: return "routing-blocked";
    case StallCause::kCrossbarBlocked: return "crossbar-blocked";
    case StallCause::kFaultFrozen: return "fault-frozen";
  }
  return "unknown";
}

/// Fabric-wide stall totals, one slot per cause.
struct StallBreakdown {
  std::array<std::uint64_t, kStallCauseCount> by_cause{};

  [[nodiscard]] std::uint64_t operator[](StallCause cause) const noexcept {
    return by_cause[static_cast<std::size_t>(cause)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (std::uint64_t c : by_cause) sum += c;
    return sum;
  }
};

/// One switch port's stall attribution in a results report.
struct PortStallRecord {
  SwitchId sw = 0;
  PortId port = 0;
  StallBreakdown stalls;
};

/// Per-(switch, port) stall counters, flat storage for hot-path increments.
class StallCounters {
 public:
  StallCounters(std::size_t switch_count, std::size_t ports_per_switch)
      : ports_per_switch_(ports_per_switch),
        counters_(switch_count * ports_per_switch) {}

  void count(SwitchId sw, PortId port, StallCause cause) noexcept {
    ++counters_[sw * ports_per_switch_ + port]
          .by_cause[static_cast<std::size_t>(cause)];
  }

  /// A dead switch freezes every buffered flit it holds; counted once per
  /// cycle against the switch (not attributable to a single port).
  void count_switch_frozen() noexcept { ++switch_frozen_cycles_; }

  /// Bulk form for the sharded engine: each shard stages its freeze count
  /// during the parallel pass and the serial merge adds it here (additions
  /// commute, so only the sum matters).
  void add_switch_frozen(std::uint64_t n) noexcept {
    switch_frozen_cycles_ += n;
  }

  [[nodiscard]] const StallBreakdown& at(SwitchId sw, PortId port) const {
    return counters_[sw * ports_per_switch_ + port];
  }
  [[nodiscard]] std::uint64_t switch_frozen_cycles() const noexcept {
    return switch_frozen_cycles_;
  }

  /// Sum over all ports (switch_frozen_cycles excluded: different unit).
  [[nodiscard]] StallBreakdown totals() const;

  /// Ports with at least one stall, for the results report.
  [[nodiscard]] std::vector<PortStallRecord> nonzero_ports() const;

 private:
  std::size_t ports_per_switch_;
  std::vector<StallBreakdown> counters_;
  std::uint64_t switch_frozen_cycles_ = 0;
};

}  // namespace smart
