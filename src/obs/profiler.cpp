#include "obs/profiler.hpp"

namespace smart {

ProfileReport Profiler::report() const {
  ProfileReport out;
  out.enabled = true;
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < kProfPhaseCount; ++p) {
    out.phases[p].ns = phase_ns_[p];
    total += phase_ns_[p];
  }
  out.phase_ns_total = total;
  if (total > 0) {
    for (std::size_t p = 0; p < kProfPhaseCount; ++p) {
      out.phases[p].share =
          static_cast<double>(phase_ns_[p]) / static_cast<double>(total);
    }
  }
  out.cycles = cycles_;
  out.fused_cycles = fused_cycles_;
  if (cycles_ > 0) {
    out.active_switch_fraction_mean =
        switch_count_ > 0
            ? active_switch_sum_ /
                  (static_cast<double>(cycles_) *
                   static_cast<double>(switch_count_))
            : 0.0;
    out.active_nic_fraction_mean =
        nic_count_ > 0 ? active_nic_sum_ / (static_cast<double>(cycles_) *
                                            static_cast<double>(nic_count_))
                       : 0.0;
  }
  out.active_switches_max = active_switches_max_;
  out.active_nics_max = active_nics_max_;
  out.lane_flits_high_water = lane_high_water_;
  out.lane_capacity_flits = lane_capacity_;
  out.generated_packets = generated_packets;
  out.link_flits = link_flits;
  out.routed_headers = routed_headers;
  out.crossbar_flits = crossbar_flits;
  out.credit_acks = credit_acks;
  out.shards = shard_visits_.size();
  out.parallel_cycles = parallel_cycles;
  out.merge_staged_flits = merge_staged_flits;
  out.merge_staged_credits = merge_staged_credits;
  out.merge_staged_trace_events = merge_staged_trace_events;
  out.merge_staged_drops = merge_staged_drops;
  for (const std::uint64_t visits : shard_visits_) {
    if (visits > out.shard_switch_visits_max) {
      out.shard_switch_visits_max = visits;
    }
  }
  out.shard_switch_visits_min = out.shard_switch_visits_max;
  for (const std::uint64_t visits : shard_visits_) {
    if (visits < out.shard_switch_visits_min) {
      out.shard_switch_visits_min = visits;
    }
  }
  out.shard_region_a_ns = shard_region_a_ns;
  out.shard_region_b_ns = shard_region_b_ns;
  out.shard_barrier_wait_ns = shard_barrier_wait_ns;
  out.shard_merge_ns = shard_merge_ns;
  if (shard_imbalance_samples_ > 0) {
    out.shard_imbalance_mean =
        static_cast<double>(shard_imbalance_sum_) /
        static_cast<double>(shard_imbalance_samples_);
  }
  out.shard_imbalance_max = shard_imbalance_max_;
  return out;
}

}  // namespace smart
