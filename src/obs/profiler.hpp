// Engine self-profiler (observability layer, second generation).
//
// Answers "where does the simulator's wall-time go and is the active-set
// scheduler still earning its keep" — the questions PR 3's 2–3.5× engine
// speedup raised: without a trajectory, the next change can quietly give
// the speedup back. Gated behind SimConfig::prof.enabled (--profile) with
// the same null-check discipline as --obs and --faults: a disabled run
// never touches the profiler and results stay bit-identical; an enabled
// run only *reads* engine state (clocks, set occupancy, arena fill), so
// its results are bit-identical too — tests/test_profiler.cpp pins both.
//
// What it measures, per run:
//   - per-phase wall time (nic / link / routing / crossbar / credits, or
//     the fused fault-free pass) and each phase's share of the total;
//   - the fused-path hit rate: fraction of cycles that took the fused
//     link+routing+crossbar pass (1.0 fault-free or sharded — the sharded
//     pipeline stays fused even under faults by staging the drops — and
//     0.0 once a fault plan forces the serial phase-per-pass pipeline);
//   - dirty-list occupancy: mean/max fill of the active-switch and
//     active-NIC sets — the scheduler's effectiveness (1.0 means the
//     active sets degenerated into full scans);
//   - lane-store high-water mark: peak flits buffered in the arena
//     against its capacity;
//   - work counters bumped by the phase translation units (packets
//     generated, link/crossbar flit moves, headers routed, credits
//     acknowledged).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

namespace smart {

enum class ProfPhase : std::uint8_t {
  kNic,       ///< packet generation + source-queue streaming
  kLink,      ///< link transmission pass (phase-per-pass pipeline)
  kRouting,   ///< routing pass (phase-per-pass pipeline)
  kCrossbar,  ///< crossbar pass (phase-per-pass pipeline)
  kFused,     ///< fused fault-free link+routing+crossbar pass
  kCredits,   ///< delayed credit acknowledgement
  kSampling,  ///< observability sampler (only with --obs)
};
inline constexpr std::size_t kProfPhaseCount = 7;

[[nodiscard]] constexpr const char* to_string(ProfPhase phase) noexcept {
  switch (phase) {
    case ProfPhase::kNic: return "nic";
    case ProfPhase::kLink: return "link";
    case ProfPhase::kRouting: return "routing";
    case ProfPhase::kCrossbar: return "crossbar";
    case ProfPhase::kFused: return "fused";
    case ProfPhase::kCredits: return "credits";
    case ProfPhase::kSampling: return "sampling";
  }
  return "unknown";
}

struct PhaseProfile {
  std::uint64_t ns = 0;   ///< accumulated wall time
  double share = 0.0;     ///< ns / sum of all phase ns (0 when idle)
};

/// The profiler's end-of-run report (SimulationResult::profile). Wall
/// times are nondeterministic; every other field is bit-deterministic.
struct ProfileReport {
  bool enabled = false;

  std::array<PhaseProfile, kProfPhaseCount> phases{};
  std::uint64_t phase_ns_total = 0;

  std::uint64_t cycles = 0;
  std::uint64_t fused_cycles = 0;
  [[nodiscard]] double fused_hit_rate() const noexcept {
    return cycles > 0
               ? static_cast<double>(fused_cycles) / static_cast<double>(cycles)
               : 0.0;
  }

  // Dirty-list occupancy (active-set scheduler effectiveness).
  double active_switch_fraction_mean = 0.0;
  std::uint64_t active_switches_max = 0;
  double active_nic_fraction_mean = 0.0;
  std::uint64_t active_nics_max = 0;

  // Lane-store arena fill.
  std::uint64_t lane_flits_high_water = 0;
  std::uint64_t lane_capacity_flits = 0;

  // Work counters (bumped in the five phase_*.cpp translation units).
  std::uint64_t generated_packets = 0;
  std::uint64_t link_flits = 0;       ///< flit moves across links
  std::uint64_t routed_headers = 0;   ///< successful output-lane bindings
  std::uint64_t crossbar_flits = 0;   ///< input→output lane advances
  std::uint64_t credit_acks = 0;      ///< upstream credit acknowledgements

  // Sharded (multi-threaded) engine. All deterministic counts — but they
  // legitimately differ between a serial and a sharded run of the same
  // configuration (like fused_hit_rate differs between fault-free and
  // faulted runs), so thread-count bit-identity is pinned on the engine/
  // and latency/ namespaces, not on these.
  std::uint64_t shards = 0;           ///< worker shards (0 = serial engine)
  std::uint64_t parallel_cycles = 0;  ///< cycles run on the sharded path
  std::uint64_t merge_staged_flits = 0;    ///< cross-shard flit pushes merged
  std::uint64_t merge_staged_credits = 0;  ///< staged credit acks merged
  std::uint64_t merge_staged_trace_events = 0;  ///< staged hop events merged
  std::uint64_t merge_staged_drops = 0;    ///< staged fault drops merged
  /// Spread of per-shard switch visits over the run (static-partition load
  /// balance; equal shards ⇒ max ≈ min).
  std::uint64_t shard_switch_visits_max = 0;
  std::uint64_t shard_switch_visits_min = 0;

  // Per-shard contention telemetry (obs generation 3): where the sharded
  // pipeline's wall time actually goes. The ns fields are worker/leader
  // wall clocks (nondeterministic, registered under profile/shard/time/*
  // so the report gate treats them as advisory); the imbalance pair is
  // the per-cycle spread (max - min) of staged shard switch visits and is
  // bit-deterministic for a fixed shard count.
  std::uint64_t shard_region_a_ns = 0;      ///< workers inside region A (gen)
  std::uint64_t shard_region_b_ns = 0;      ///< workers inside region B (pass)
  std::uint64_t shard_barrier_wait_ns = 0;  ///< leader waiting on stragglers
  std::uint64_t shard_merge_ns = 0;         ///< serial cross-shard merge
  double shard_imbalance_mean = 0.0;
  std::uint64_t shard_imbalance_max = 0;

  [[nodiscard]] const PhaseProfile& phase(ProfPhase p) const noexcept {
    return phases[static_cast<std::size_t>(p)];
  }
};

/// Owned by Network (null unless --profile), written by the engine.
class Profiler {
 public:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] static Clock::time_point now() noexcept {
    return Clock::now();
  }

  /// Charges `t0 → now` to `phase` and returns the new lap start.
  Clock::time_point lap(Clock::time_point t0, ProfPhase phase) noexcept {
    const Clock::time_point t1 = Clock::now();
    phase_ns_[static_cast<std::size_t>(phase)] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    return t1;
  }

  /// End-of-cycle snapshot of the scheduler state and arena fill.
  void on_cycle(std::size_t active_switches, std::size_t switch_count,
                std::size_t active_nics, std::size_t nic_count,
                std::uint64_t buffered_flits, bool fused) noexcept {
    ++cycles_;
    if (fused) ++fused_cycles_;
    active_switch_sum_ += static_cast<double>(active_switches);
    active_nic_sum_ += static_cast<double>(active_nics);
    if (active_switches > active_switches_max_) {
      active_switches_max_ = active_switches;
    }
    if (active_nics > active_nics_max_) active_nics_max_ = active_nics;
    if (buffered_flits > lane_high_water_) lane_high_water_ = buffered_flits;
    switch_count_ = switch_count;
    nic_count_ = nic_count;
  }

  void set_lane_capacity(std::uint64_t flits) noexcept {
    lane_capacity_ = flits;
  }

  /// Declares the sharded engine's shard count (once, at engine
  /// construction); sizes the per-shard visit counters.
  void set_shards(std::size_t shards) { shard_visits_.assign(shards, 0); }

  /// Credits `visits` switch visits to `shard` (merged serially by the
  /// engine after each parallel pass).
  void add_shard_visits(std::size_t shard, std::uint64_t visits) noexcept {
    shard_visits_[shard] += visits;
  }

  /// One cycle's spread (max - min) of staged shard switch visits, fed by
  /// the serial merge. Deterministic for a fixed shard count.
  void add_shard_imbalance(std::uint64_t spread) noexcept {
    shard_imbalance_sum_ += spread;
    ++shard_imbalance_samples_;
    if (spread > shard_imbalance_max_) shard_imbalance_max_ = spread;
  }

  [[nodiscard]] ProfileReport report() const;

  // Hot work counters, incremented directly from the phase translation
  // units behind the engine's `if (prof_)` null checks.
  std::uint64_t generated_packets = 0;
  std::uint64_t link_flits = 0;
  std::uint64_t routed_headers = 0;
  std::uint64_t crossbar_flits = 0;
  std::uint64_t credit_acks = 0;
  // Sharded-engine counters (see ProfileReport for semantics).
  std::uint64_t parallel_cycles = 0;
  std::uint64_t merge_staged_flits = 0;
  std::uint64_t merge_staged_credits = 0;
  std::uint64_t merge_staged_trace_events = 0;
  std::uint64_t merge_staged_drops = 0;
  // Per-shard contention wall clocks (obs generation 3; accumulated from
  // phase_parallel.cpp / the worker team behind `if (prof_)` checks).
  std::uint64_t shard_region_a_ns = 0;
  std::uint64_t shard_region_b_ns = 0;
  std::uint64_t shard_barrier_wait_ns = 0;
  std::uint64_t shard_merge_ns = 0;

 private:
  std::array<std::uint64_t, kProfPhaseCount> phase_ns_{};
  std::uint64_t cycles_ = 0;
  std::uint64_t fused_cycles_ = 0;
  double active_switch_sum_ = 0.0;
  double active_nic_sum_ = 0.0;
  std::uint64_t active_switches_max_ = 0;
  std::uint64_t active_nics_max_ = 0;
  std::uint64_t lane_high_water_ = 0;
  std::uint64_t lane_capacity_ = 0;
  std::size_t switch_count_ = 0;
  std::size_t nic_count_ = 0;
  std::vector<std::uint64_t> shard_visits_;  ///< per-shard switch visits
  std::uint64_t shard_imbalance_sum_ = 0;
  std::uint64_t shard_imbalance_samples_ = 0;
  std::uint64_t shard_imbalance_max_ = 0;
};

}  // namespace smart
