#include "router/nic.hpp"

namespace smart {

Nic::Nic(NodeId node, LaneStore& lanes, unsigned downstream_lanes,
         unsigned channels, std::uint64_t seed)
    : node_(node), credits_(downstream_lanes, lanes.depth()), rng_(seed) {
  SMART_CHECK_MSG(channels == 1 || channels == downstream_lanes,
                  "injection channels must be 1 or match the terminal lanes");
  channels_.reserve(channels);
  for (unsigned c = 0; c < channels; ++c) {
    channels_.emplace_back();
    channels_.back().buf = LaneView(lanes, lanes.allocate());
  }
}

unsigned Nic::stream(std::uint64_t cycle, PacketPool& pool) {
  unsigned pushed = 0;
  for (InjectChannel& channel : channels_) {
    if (channel.current == kInvalidPacket) {
      if (inject_hold || source_queue_.empty()) continue;
      channel.current = source_queue_.front();
      source_queue_.pop_front();
      channel.streamed = 0;
      ++streaming_;
    }
    if (channel.buf.full()) continue;

    Packet& pkt = pool[channel.current];
    if (channel.streamed == 0) pkt.inject_cycle = cycle;

    Flit flit;
    flit.packet = channel.current;
    flit.seq = channel.streamed;
    flit.head = channel.streamed == 0;
    flit.tail = channel.streamed + 1 == pkt.size_flits;
    flit.arrival = static_cast<std::uint32_t>(cycle);
    channel.buf.push(flit);
    ++chan_flits;
    ++pushed;

    ++channel.streamed;
    if (channel.streamed == pkt.size_flits) {
      channel.current = kInvalidPacket;
      --streaming_;
    }
  }
  return pushed;
}

int Nic::choose_lane() const {
  int best = -1;
  std::uint32_t best_credits = 0;
  for (std::size_t lane = 0; lane < credits_.size(); ++lane) {
    if (credits_[lane] > best_credits) {
      best_credits = credits_[lane];
      best = static_cast<int>(lane);
    }
  }
  return best;
}

}  // namespace smart
