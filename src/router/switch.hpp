// Routing switch state (paper §4, Figure 4).
//
// A switch has one bidirectional port per external channel. Each port holds
// V input lanes and V output lanes (terminal ports may have a different
// input-lane count: the cube's single injection channel). The crossbar is
// represented implicitly by the input-lane bindings; the routing engine
// processes at most one header per T_routing (one simulator cycle).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "router/lanes.hpp"
#include "topology/topology.hpp"

namespace smart {

struct SwitchPort {
  std::vector<InputLane> in;
  std::vector<OutputLane> out;
  PortPeer peer;
  std::uint32_t link_rr = 0;  ///< round-robin pointer of the link arbiter
  std::uint32_t out_buffered = 0;  ///< flits across all output lanes
  std::uint64_t flits_sent = 0;    ///< flits transmitted while measuring
};

class Switch {
 public:
  Switch(SwitchId id, std::size_t port_count) : id_(id), ports_(port_count) {}

  [[nodiscard]] SwitchId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t port_count() const noexcept {
    return ports_.size();
  }
  [[nodiscard]] SwitchPort& port(PortId p) {
    SMART_DCHECK(p < ports_.size());
    return ports_[p];
  }
  [[nodiscard]] const SwitchPort& port(PortId p) const {
    SMART_DCHECK(p < ports_.size());
    return ports_[p];
  }

  /// Output lanes of port p that could accept a new binding right now.
  [[nodiscard]] unsigned free_output_lanes(PortId p) const {
    unsigned free_lanes = 0;
    for (const OutputLane& lane : ports_[p].out) {
      if (lane.bindable()) ++free_lanes;
    }
    return free_lanes;
  }

  /// Round-robin cursor used by the routing engine to scan input lanes and
  /// by the algorithms' fair tie-breaks; advanced once per routing success.
  std::uint32_t route_rr = 0;

  /// Flits currently buffered in any lane of this switch; maintained by the
  /// engine so idle switches can be skipped entirely.
  std::uint32_t buffered = 0;

  /// Active crossbar bindings; lets the crossbar phase skip idle switches.
  std::uint32_t bound_count = 0;

  /// Input lanes currently draining an unroutable packet (fault handling);
  /// lets the crossbar phase skip switches with nothing to drop.
  std::uint32_t dropping_count = 0;

  /// Flattened (port, lane) directory of all input lanes, built once after
  /// wiring; the routing engine scans it round-robin.
  [[nodiscard]] const std::vector<std::pair<std::uint16_t, std::uint16_t>>&
  input_lane_index() const noexcept {
    return in_lane_index_;
  }

  void build_input_lane_index() {
    in_lane_index_.clear();
    for (PortId p = 0; p < ports_.size(); ++p) {
      for (std::size_t v = 0; v < ports_[p].in.size(); ++v) {
        in_lane_index_.emplace_back(static_cast<std::uint16_t>(p),
                                    static_cast<std::uint16_t>(v));
      }
    }
  }

 private:
  SwitchId id_;
  std::vector<SwitchPort> ports_;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> in_lane_index_;
};

}  // namespace smart
