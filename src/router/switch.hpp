// Routing switch state (paper §4, Figure 4).
//
// A switch has one bidirectional port per external channel. Each port holds
// V input lanes and V output lanes (terminal ports may have a different
// input-lane count: the cube's single injection channel). The crossbar is
// represented implicitly by the input-lane bindings; the routing engine
// processes at most one header per T_routing (one simulator cycle).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "router/lanes.hpp"
#include "topology/topology.hpp"
#include "util/bitwords.hpp"

namespace smart {

class Switch;

struct SwitchPort {
  std::vector<InputLane> in;
  std::vector<OutputLane> out;
  PortPeer peer;
  std::uint32_t link_rr = 0;  ///< round-robin pointer of the link arbiter
  std::uint32_t out_buffered = 0;  ///< flits across all output lanes
  std::uint64_t flits_sent = 0;    ///< flits transmitted while measuring

  // Static link wiring, filled by the engine after fabric construction
  // (null/zero for terminal and unconnected ports): the peer switch, its
  // receiving input-lane array for this port, and the flat position of
  // that port's first input lane in the peer's input_lane_index(). Lane
  // buffers live on the heap, so these stay valid for the fabric's life.
  Switch* peer_sw = nullptr;
  InputLane* peer_in = nullptr;
  std::uint32_t peer_in_base = 0;
};

class Switch {
 public:
  Switch(SwitchId id, std::size_t port_count) : id_(id), ports_(port_count) {}

  [[nodiscard]] SwitchId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t port_count() const noexcept {
    return ports_.size();
  }
  [[nodiscard]] SwitchPort& port(PortId p) {
    SMART_DCHECK(p < ports_.size());
    return ports_[p];
  }
  [[nodiscard]] const SwitchPort& port(PortId p) const {
    SMART_DCHECK(p < ports_.size());
    return ports_[p];
  }

  /// Output lanes of port p that could accept a new binding right now.
  [[nodiscard]] unsigned free_output_lanes(PortId p) const {
    unsigned free_lanes = 0;
    for (const OutputLane& lane : ports_[p].out) {
      if (lane.bindable()) ++free_lanes;
    }
    return free_lanes;
  }

  /// Round-robin cursor used by the routing engine to scan input lanes and
  /// by the algorithms' fair tie-breaks; advanced once per routing success.
  std::uint32_t route_rr = 0;

  /// Flits currently buffered in any lane of this switch; maintained by the
  /// engine so idle switches can be skipped entirely.
  std::uint32_t buffered = 0;

  /// Active crossbar bindings; lets the crossbar phase skip idle switches.
  std::uint32_t bound_count = 0;

  /// Input lanes currently draining an unroutable packet (fault handling);
  /// lets the crossbar phase skip switches with nothing to drop.
  std::uint32_t dropping_count = 0;

  /// Bitset over input_lane_index() positions of the input lanes that
  /// currently hold at least one flit. Maintained by the engine on every
  /// in-lane push/pop; lets the routing phase scan only occupied lanes
  /// (empty lanes were pure no-ops in the legacy full scan). Sized by
  /// build_input_lane_index(); generated fabrics reach thousands of input
  /// lanes per switch (a 4K-node Clos spine has 256 ports x 4 lanes).
  BitWords in_nonempty;

  /// Companion bitset: input lanes currently bound to an output lane or
  /// draining an unroutable worm. The routing phase scans
  /// `in_nonempty & ~in_busy` word by word — busy lanes always failed its
  /// `bound() || dropping` guard without side effects, so masking them out
  /// up front changes nothing but the work done. Set on bind/drain start,
  /// cleared when the worm's tail leaves the lane.
  BitWords in_busy;

  /// Bitset by port id of the ports with at least one flit buffered in an
  /// output lane (out_buffered > 0). The link phase walks this set instead
  /// of probing every port; ports with nothing to send were skipped by the
  /// legacy scan's first check with no side effects. Set by the crossbar on
  /// push, cleared by the link phase when a port's last out-flit leaves.
  BitWords out_ports_nonempty;

  /// Flattened (port, lane) directory of all input lanes, built once after
  /// wiring; the routing engine scans it round-robin.
  [[nodiscard]] const std::vector<std::pair<std::uint16_t, std::uint16_t>>&
  input_lane_index() const noexcept {
    return in_lane_index_;
  }

  /// Position of (port, 0) inside input_lane_index(); flat index of
  /// (port, lane) is input_base(port) + lane.
  [[nodiscard]] std::uint32_t input_base(PortId p) const noexcept {
    return in_base_[p];
  }

  /// Direct handle to the input lane at a flat input_lane_index() position.
  /// The pointers go through the ports' heap storage, so they survive the
  /// Switch itself being moved (e.g. the owning vector reallocating).
  [[nodiscard]] InputLane& input_lane(std::uint32_t flat) noexcept {
    SMART_DCHECK(flat < in_lane_ptrs_.size());
    return *in_lane_ptrs_[flat];
  }

  void build_input_lane_index() {
    in_lane_index_.clear();
    in_lane_ptrs_.clear();
    in_base_.assign(ports_.size(), 0);
    for (PortId p = 0; p < ports_.size(); ++p) {
      in_base_[p] = static_cast<std::uint32_t>(in_lane_index_.size());
      for (std::size_t v = 0; v < ports_[p].in.size(); ++v) {
        in_lane_index_.emplace_back(static_cast<std::uint16_t>(p),
                                    static_cast<std::uint16_t>(v));
        in_lane_ptrs_.push_back(&ports_[p].in[v]);
      }
    }
    in_nonempty.resize(in_lane_index_.size());
    in_busy.resize(in_lane_index_.size());
    out_ports_nonempty.resize(ports_.size());
  }

  /// Input lanes (as flat indices into input_lane_index()) that are bound
  /// to an output lane or draining an unroutable worm — the only lanes the
  /// crossbar phase can move. Kept sorted so the crossbar scan preserves
  /// the legacy (port, lane) visiting order.
  [[nodiscard]] std::vector<std::uint32_t>& active_inputs() noexcept {
    return active_inputs_;
  }

  void add_active_input(std::uint32_t flat) {
    const auto it =
        std::lower_bound(active_inputs_.begin(), active_inputs_.end(), flat);
    SMART_DCHECK(it == active_inputs_.end() || *it != flat);
    active_inputs_.insert(it, flat);
  }

  void remove_active_input(std::uint32_t flat) {
    const auto it =
        std::lower_bound(active_inputs_.begin(), active_inputs_.end(), flat);
    SMART_DCHECK(it != active_inputs_.end() && *it == flat);
    active_inputs_.erase(it);
  }

 private:
  SwitchId id_;
  std::vector<SwitchPort> ports_;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> in_lane_index_;
  std::vector<InputLane*> in_lane_ptrs_;
  std::vector<std::uint32_t> in_base_;
  std::vector<std::uint32_t> active_inputs_;
};

}  // namespace smart
