// Flits, packets and the packet pool.
//
// Wormhole switching moves packets as worms of flits: a header flit that
// carries the routing information, body flits, and a tail flit that tears
// down the path. The simulator keeps per-packet state (source, destination,
// timestamps, routing state) in a pooled Packet record; a Flit is a small
// value referencing its packet.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"
#include "util/check.hpp"

namespace smart {

using PacketId = std::uint32_t;
inline constexpr PacketId kInvalidPacket = ~0U;

struct Flit {
  PacketId packet = kInvalidPacket;
  std::uint32_t seq = 0;  ///< flit index within the packet, 0 = header
  /// Cycle this flit entered its current buffer, truncated to 32 bits to
  /// keep the struct at 16 bytes (the lane arena is the simulator's hottest
  /// memory). Stamps only ever gate "arrived this very cycle", so the
  /// width is safe while a run stays under 2^32 cycles — the engine
  /// enforces that bound on its configured horizon.
  std::uint32_t arrival = 0;
  std::uint8_t lane = 0;  ///< VC assigned for the link being traversed
  bool head = false;
  bool tail = false;
};
static_assert(sizeof(Flit) == 16, "Flit is copied per move; keep it packed");

/// Per-packet record; recycled through PacketPool.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t size_flits = 0;

  std::uint64_t gen_cycle = 0;     ///< creation into the source queue
  std::uint64_t inject_cycle = 0;  ///< header flit entered the injection lane
  std::uint32_t hops = 0;          ///< network channels traversed by the head

  // Routing state.
  /// Set by a fault-aware routing algorithm when the packet has no healthy
  /// route left from its current switch; the engine then drains and drops
  /// the worm instead of stalling it forever (see docs/MODEL.md §8).
  bool unroutable = false;
  std::uint32_t wrap_mask = 0;  ///< per-dimension dateline-crossed bits (cube)
  std::uint8_t nic_lane = 0;    ///< VC chosen by the NIC on the terminal link
  std::uint8_t misroutes = 0;   ///< non-minimal hops taken (escape-adaptive)
  NodeId intermediate = 0;      ///< Valiant phase-1 target
  std::uint8_t val_phase = 0;   ///< Valiant: 0 = to intermediate, 1 = to dst
  bool val_assigned = false;    ///< Valiant intermediate drawn yet?

  // Delivery-invariant bookkeeping.
  std::uint32_t consumed_seq = 0;  ///< next flit index expected at the sink
};

/// Fixed-id pool of in-flight packets with free-list recycling. Ids stay
/// valid from allocation until release (tail consumed at the destination).
/// Live slots are tracked in a parallel byte vector so observability scans
/// (the livelock watchdog's packet-age high-water) can walk in-flight
/// packets without touching recycled records.
class PacketPool {
 public:
  PacketId allocate() {
    if (!free_.empty()) {
      const PacketId id = free_.back();
      free_.pop_back();
      packets_[id] = Packet{};
      live_[id] = 1;
      return id;
    }
    packets_.emplace_back();
    live_.push_back(1);
    return static_cast<PacketId>(packets_.size() - 1);
  }

  void release(PacketId id) {
    SMART_DCHECK(id < packets_.size());
    free_.push_back(id);
    live_[id] = 0;
  }

  /// Visit every in-flight packet (read-only observability walk).
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (std::size_t id = 0; id < packets_.size(); ++id) {
      if (live_[id] != 0) fn(packets_[id]);
    }
  }

  [[nodiscard]] Packet& operator[](PacketId id) {
    SMART_DCHECK(id < packets_.size());
    return packets_[id];
  }
  [[nodiscard]] const Packet& operator[](PacketId id) const {
    SMART_DCHECK(id < packets_.size());
    return packets_[id];
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return packets_.size();
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return packets_.size() - free_.size();
  }

 private:
  std::vector<Packet> packets_;
  std::vector<PacketId> free_;
  std::vector<std::uint8_t> live_;  ///< 1 = slot in flight, index-parallel
};

}  // namespace smart
