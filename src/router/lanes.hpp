// Virtual-channel lanes (paper §4, Figure 4).
//
// Each direction of a physical channel is split into V virtual channels;
// every virtual channel has an input lane on the receiving side and an
// output lane on the sending side, both FIFO buffers of a few flits. Each
// output lane keeps a credit counter initialized to the capacity of the
// matching input lane: it is decremented when a flit is sent and
// incremented when the downstream acknowledges a freed buffer slot.
#pragma once

#include <cstdint>

#include "router/flit.hpp"
#include "util/ring_buffer.hpp"

namespace smart {

/// Receiving side of a virtual channel inside a switch.
struct InputLane {
  RingBuffer<Flit> buf;
  std::int32_t bound_port = -1;  ///< crossbar binding target, -1 = unbound
  std::int32_t bound_lane = -1;
  std::uint64_t bound_cycle = 0;  ///< cycle the binding was established
  /// The lane head is an unroutable packet being drained: the engine
  /// discards its flits (crediting upstream) instead of switching them.
  bool dropping = false;

  [[nodiscard]] bool bound() const noexcept { return bound_port >= 0; }

  void bind(std::int32_t port, std::int32_t lane, std::uint64_t cycle) noexcept {
    bound_port = port;
    bound_lane = lane;
    bound_cycle = cycle;
  }

  void unbind() noexcept {
    bound_port = -1;
    bound_lane = -1;
  }
};

/// Sending side of a virtual channel inside a switch or NIC.
struct OutputLane {
  RingBuffer<Flit> buf;
  std::uint32_t credits = 0;  ///< free slots in the downstream input lane
  bool bound = false;         ///< currently the target of a crossbar binding

  /// Free for a new crossbar binding (paper: "neither full nor bound").
  [[nodiscard]] bool bindable() const noexcept {
    return !bound && !buf.full();
  }
};

}  // namespace smart
