// Virtual-channel lanes (paper §4, Figure 4).
//
// Each direction of a physical channel is split into V virtual channels;
// every virtual channel has an input lane on the receiving side and an
// output lane on the sending side, both FIFO buffers of a few flits. Each
// output lane keeps a credit counter initialized to the capacity of the
// matching input lane: it is decremented when a flit is sent and
// incremented when the downstream acknowledges a freed buffer slot.
//
// Lane buffers live in the engine's flat LaneStore arena (all lanes share
// the configured buffer depth); the structs below hold a LaneView handle
// plus the crossbar/credit state. lane_store.hpp is header-only, so this
// header adds no link dependency on the engine library.
#pragma once

#include <cstdint>

#include "engine/lane_store.hpp"
#include "router/flit.hpp"

namespace smart {

struct OutputLane;
struct SwitchPort;

/// Receiving side of a virtual channel inside a switch.
struct InputLane {
  LaneView buf;
  std::int32_t bound_port = -1;  ///< crossbar binding target, -1 = unbound
  std::int32_t bound_lane = -1;
  std::uint64_t bound_cycle = 0;  ///< cycle the binding was established
  /// Direct handles to the bound output lane and its port, cached when the
  /// routing phase establishes the binding so the crossbar advance skips
  /// the port/lane directory walk. Stale while unbound (bound_port gates).
  OutputLane* bound_out = nullptr;
  SwitchPort* bound_out_port = nullptr;
  /// The lane head is an unroutable packet being drained: the engine
  /// discards its flits (crediting upstream) instead of switching them.
  bool dropping = false;
  /// Credit counter of the upstream sender feeding this lane (the peer
  /// switch's matching output lane, or the NIC's per-lane credit). Wired
  /// once by the engine after fabric construction; null when no upstream
  /// exists (unconnected ports). Freed slots bump it with one cycle delay.
  std::uint32_t* upstream_credit = nullptr;

  [[nodiscard]] bool bound() const noexcept { return bound_port >= 0; }

  void bind(std::int32_t port, std::int32_t lane, std::uint64_t cycle) noexcept {
    bound_port = port;
    bound_lane = lane;
    bound_cycle = cycle;
  }

  void unbind() noexcept {
    bound_port = -1;
    bound_lane = -1;
  }
};

/// Sending side of a virtual channel inside a switch or NIC.
struct OutputLane {
  LaneView buf;
  std::uint32_t credits = 0;  ///< free slots in the downstream input lane
  bool bound = false;         ///< currently the target of a crossbar binding

  /// Free for a new crossbar binding (paper: "neither full nor bound").
  [[nodiscard]] bool bindable() const noexcept {
    return !bound && !buf.full();
  }
};

}  // namespace smart
