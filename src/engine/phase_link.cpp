// Phase 2: link transmission (paper §4).
//
// Per directed physical channel, a round-robin arbiter moves at most one
// flit with credit to the peer's input lane; flits crossing a terminal
// link are consumed by the node. Only active switches (flits buffered)
// and active NICs (flits in an injection channel) are visited, in
// ascending index order — the same order as the legacy full scan, so the
// PacketPool free-list recycling order (and with it every downstream
// allocation) is preserved bit-for-bit. Pushing into a peer marks it
// active; a mid-scan mark can only defer a visit that would have been a
// no-op (the new flit lands in an *input* lane, which this phase never
// reads — see ARCHITECTURE.md).
#include "engine/cycle_engine.hpp"

#include <bit>

#include "util/check.hpp"

namespace smart {

void CycleEngine::link_phase() {
  active_switches_.for_each([this](std::size_t s) {
    Switch& sw = switches_[s];
    if (sw.buffered == 0) return false;  // quiesced: prune from the set
    switch_link_phase(sw);
    return true;
  });
  active_nics_.for_each([this](std::size_t n) {
    Nic& nic = nics_[n];
    if (nic.chan_flits == 0) return false;  // channels empty: prune
    nic_link_phase(nic);
    return true;
  });
}

void CycleEngine::switch_link_phase(Switch& sw, EngineShard* shard) {
  if (faults_ && !faults_->switch_ok(sw.id())) {
    // Dead switch: every flit buffered inside is frozen this cycle. The
    // fabric-wide freeze counter is shared, so sharded passes stage the
    // count (additions commute; the merge adds it once).
    if (obs_) {
      if (shard) ++shard->obs_switch_frozen;
      else obs_->stalls.count_switch_frozen();
    }
    return;
  }
  // Walk only the ports holding out-flits (ascending id, like the legacy
  // full port scan minus its empty-port continues), one 64-port word at a
  // time. Pops below may clear bits, but only for the port being visited,
  // never a later one — so the per-word snapshot sees every port the full
  // snapshot would have.
  const std::size_t port_words = sw.out_ports_nonempty.word_count();
  std::size_t w = 0;
  std::uint64_t pmask = sw.out_ports_nonempty.word(0);
  while (true) {
    if (pmask == 0) {
      if (++w >= port_words) break;
      pmask = sw.out_ports_nonempty.word(w);
      continue;
    }
    const auto p = static_cast<PortId>(w * 64 + std::countr_zero(pmask));
    pmask &= pmask - 1;
    SwitchPort& port = sw.port(p);
    // A faulted link transmits nothing; its flits and credits freeze in
    // place until repair (docs/MODEL.md §8).
    if (faults_ && !faults_->link_ok(sw.id(), p)) {
      if (obs_) obs_->stalls.count(sw.id(), p, StallCause::kFaultFrozen);
      continue;
    }
    const auto lane_count = static_cast<unsigned>(port.out.size());
    const unsigned rr_start = port.link_rr;  // <= lane_count by construction
    for (unsigned i = 0; i < lane_count; ++i) {
      unsigned lane = i + rr_start;
      if (lane >= lane_count) lane -= lane_count;
      OutputLane& out = port.out[lane];
      if (out.buf.empty() || out.buf.front().arrival >= cycle_) continue;
      if (out.credits == 0) {
        // A flit was ready to cross but the downstream lane has no slot.
        if (obs_) obs_->stalls.count(sw.id(), p, StallCause::kCreditStarved);
        continue;
      }
      Flit flit = out.buf.pop();
      flit.arrival = static_cast<std::uint32_t>(cycle_);
      if (shard) ++shard->prof_link_flits;
      else if (prof_) ++prof_->link_flits;
      sw.buffered -= 1;
      port.out_buffered -= 1;
      if (port.out_buffered == 0) sw.out_ports_nonempty.clear(p);
      if (measuring_) ++port.flits_sent;
      if (obs_) obs_->sampler.on_flit(obs_->sampler.link_index(sw.id(), p));
      if (port.peer.kind == PeerKind::kTerminal) {
        if (flit.head) ++pool_[flit.packet].hops;
        SMART_CHECK_MSG(port.peer.id == pool_[flit.packet].dst,
                        "flit consumed at the wrong destination");
        // Hop events grow shared obs vectors and assign trace uids in
        // first-touch order — staged like the consume below, and replayed
        // before all consumes (see merge_shards for why that preserves
        // the serial uid order).
        if (obs_ && obs_->trace_hops() && flit.head) {
          if (shard) {
            shard->trace_ops.push_back(
                {EngineShard::StagedTraceOp::Kind::kHopExit, flit.packet, 0});
          } else {
            obs_->hop_exit(flit.packet, cycle_);
          }
        }
        // Sharded: consumption releases pool entries and feeds the global
        // delivery statistics, both order-sensitive — stage it for the
        // serial merge (shard order = this serial visit order).
        if (shard) shard->consumed.push_back(flit);
        else consume(flit);
      } else {
        out.credits -= 1;
        if (flit.head) ++pool_[flit.packet].hops;
        if (obs_ && obs_->trace_hops() && flit.head) {
          if (shard) {
            shard->trace_ops.push_back(
                {EngineShard::StagedTraceOp::Kind::kHopExit, flit.packet, 0});
            shard->trace_ops.push_back(
                {EngineShard::StagedTraceOp::Kind::kHopEnter, flit.packet,
                 port.peer.id});
          } else {
            obs_->hop_exit(flit.packet, cycle_);
            obs_->hop_enter(flit.packet, port.peer.id, cycle_);
          }
        }
        if (shard && shard_of_switch_[port.peer.id] != shard->index) {
          // Cross-shard hand-off: the peer's lane belongs to another
          // worker. Deferring the push to the merge is invisible to the
          // physics — the flit is stamped arrival == cycle_, which every
          // same-cycle reader ignores.
          shard->pushes.push_back({flit, &port.peer_in[lane], port.peer_sw,
                                   port.peer_in_base + lane});
        } else {
          Switch& peer = *port.peer_sw;
          InputLane& in = port.peer_in[lane];
          SMART_DCHECK(!in.buf.full());
          in.buf.push(flit);
          peer.buffered += 1;
          peer.in_nonempty.set(port.peer_in_base + lane);
          active_switches_.mark(port.peer.id);
        }
      }
      port.link_rr = lane + 1;
      if (shard) shard->progressed = true;
      else last_progress_cycle_ = cycle_;
      break;  // one flit per link direction per cycle
    }
  }
}

void CycleEngine::nic_link_phase(Nic& nic, EngineShard* shard) {
  const Attachment at = attach_[nic.node()];
  // A dead attachment switch (or faulted terminal link) freezes injection;
  // generated packets pile up in the source queue and injection channels.
  if (faults_ && !faults_->link_ok(at.sw, at.port)) return;
  SwitchPort& port = switches_[at.sw].port(at.port);
  auto& channels = nic.channels();
  const auto channel_count = static_cast<unsigned>(channels.size());
  const unsigned rr_start = nic.link_rr();  // <= channel_count
  for (unsigned i = 0; i < channel_count; ++i) {
    unsigned c = i + rr_start;
    if (c >= channel_count) c -= channel_count;
    InjectChannel& channel = channels[c];
    if (channel.buf.empty() || channel.buf.front().arrival >= cycle_) continue;

    Flit& front = channel.buf.front();
    unsigned lane;
    if (nic.fixed_lane_mapping()) {
      lane = c;
      if (nic.credits()[lane] == 0) continue;
    } else {
      if (front.head) {
        const int chosen = nic.choose_lane();
        if (chosen < 0) continue;
        pool_[front.packet].nic_lane = static_cast<std::uint8_t>(chosen);
      }
      lane = pool_[front.packet].nic_lane;
      if (nic.credits()[lane] == 0) continue;
    }

    Flit flit = channel.buf.pop();
    if (shard) ++shard->prof_link_flits;
    else if (prof_) ++prof_->link_flits;
    nic.chan_flits -= 1;
    flit.lane = static_cast<std::uint8_t>(lane);
    flit.arrival = static_cast<std::uint32_t>(cycle_);
    if (flit.head) ++pool_[flit.packet].hops;
    if (obs_) {
      obs_->sampler.on_flit(obs_->sampler.injection_index(nic.node()));
      if (obs_->trace_hops() && flit.head) {
        if (shard) {
          shard->trace_ops.push_back(
              {EngineShard::StagedTraceOp::Kind::kHopEnter, flit.packet,
               at.sw});
        } else {
          obs_->hop_enter(flit.packet, at.sw, cycle_);
        }
      }
    }
    Switch& sw = switches_[at.sw];
    if (shard) {
      // Sharded: the attachment switch can live in any shard, so the
      // switch-side push is always staged (and its buffer must not even
      // be read here — the owning shard may be popping it right now).
      // The lane cannot overflow: the NIC-side credit just checked above
      // counts exactly the free slots the merge will fill.
      shard->nic_pushes.push_back(
          {flit, &port.in[lane], &sw, sw.input_base(at.port) + lane});
    } else {
      InputLane& in = port.in[lane];
      SMART_DCHECK(!in.buf.full());
      in.buf.push(flit);
      sw.buffered += 1;
      sw.in_nonempty.set(sw.input_base(at.port) + lane);
      active_switches_.mark(at.sw);
    }
    if (measuring_) ++nic.flits_sent;
    nic.credits()[lane] -= 1;
    nic.link_rr() = c + 1;
    if (shard) shard->progressed = true;
    else last_progress_cycle_ = cycle_;
    break;  // the terminal link carries one flit per cycle per direction
  }
}

}  // namespace smart
