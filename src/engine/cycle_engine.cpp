#include "engine/cycle_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "util/check.hpp"

namespace smart {

namespace {
// Terminal (ejection) output lanes never wait for node-side credits: the
// node consumes at link rate. A large sentinel keeps the generic paths
// uniform without ever blocking.
constexpr std::uint32_t kSinkCredits =
    std::numeric_limits<std::uint32_t>::max() / 2;
}  // namespace

CycleEngine::CycleEngine(const SimConfig& config, const Topology& topo,
                         RoutingAlgorithm& routing, TrafficPattern& pattern,
                         std::vector<std::unique_ptr<InjectionProcess>>& injection,
                         FaultState* faults, ObsState* obs, Profiler* prof,
                         FlightRecorder* flight, double packet_rate,
                         double capacity, unsigned flits_per_packet,
                         Workload* workload)
    : config_(config),
      topo_(topo),
      routing_(routing),
      pattern_(pattern),
      injection_(injection),
      faults_(faults),
      obs_(obs),
      prof_(prof),
      flight_(flight),
      workload_(workload),
      lanes_(config.net.buffer_depth),
      packet_rate_(packet_rate),
      capacity_(capacity),
      flits_per_packet_(flits_per_packet) {
  // Flit arrival stamps are 32-bit (see flit.hpp); keep the run inside it.
  SMART_CHECK_MSG(
      config_.timing.horizon_cycles < std::numeric_limits<std::uint32_t>::max(),
      "horizon too long for 32-bit flit arrival stamps");
  if (config_.anomaly.enabled) {
    anomaly_ = std::make_unique<AnomalyMonitor>(
        config_.anomaly, config_.timing.deadlock_threshold);
  }
  build_fabric();
  active_switches_ = ActiveSet(switches_.size());
  active_nics_ = ActiveSet(nics_.size());
  setup_parallel();
  if (prof_) {
    prof_->set_lane_capacity(lanes_.lane_count() *
                             static_cast<std::uint64_t>(lanes_.depth()));
    prof_->set_shards(shards_.size());
    if (team_) team_->enable_wait_timing();
  }

  result_.offered_fraction = config_.traffic.offered_fraction;
  result_.offered_flits_per_node_cycle =
      config_.traffic.offered_fraction * capacity_;
  result_.injecting_fraction = pattern_.injecting_fraction();
  result_.capacity_flits_per_node_cycle = capacity_;
}

void CycleEngine::build_fabric() {
  const NetworkSpec& net = config_.net;
  const unsigned vcs = net.vcs;
  const unsigned depth = net.buffer_depth;
  // Terminal-link input lanes at the switch: the cube's processor interface
  // is the injection channel (paper: P = 2nV + 1); the fat-tree's terminal
  // link is a regular link with V lanes.
  const unsigned terminal_in_lanes =
      topo_.is_direct() ? net.injection_channels : vcs;

  switches_.reserve(topo_.switch_count());
  for (SwitchId s = 0; s < topo_.switch_count(); ++s) {
    switches_.emplace_back(s, topo_.ports_per_switch());
    Switch& sw = switches_.back();
    for (PortId p = 0; p < topo_.ports_per_switch(); ++p) {
      SwitchPort& port = sw.port(p);
      port.peer = topo_.port_peer(s, p);
      switch (port.peer.kind) {
        case PeerKind::kSwitch: {
          port.in.resize(vcs);
          port.out.resize(vcs);
          for (InputLane& lane : port.in) {
            lane.buf = LaneView(lanes_, lanes_.allocate());
          }
          for (OutputLane& lane : port.out) {
            lane.buf = LaneView(lanes_, lanes_.allocate());
            lane.credits = depth;  // peer input lane capacity
          }
          break;
        }
        case PeerKind::kTerminal: {
          port.in.resize(terminal_in_lanes);
          port.out.resize(vcs);
          for (InputLane& lane : port.in) {
            lane.buf = LaneView(lanes_, lanes_.allocate());
          }
          for (OutputLane& lane : port.out) {
            lane.buf = LaneView(lanes_, lanes_.allocate());
            lane.credits = kSinkCredits;
          }
          break;
        }
        case PeerKind::kUnconnected:
          break;  // no lanes: the fat-tree's root-level external links
      }
    }
    sw.build_input_lane_index();
    // The flat input-lane directory stores (port, lane) as 16-bit pairs;
    // the occupancy bitsets themselves size to the fabric. Director-class
    // spines of generated fabrics reach a few thousand lanes — far below
    // this bound.
    SMART_CHECK_MSG(sw.input_lane_index().size() <= 65535,
                    "more than 65535 input lanes per switch is unsupported");
    SMART_CHECK_MSG(sw.port_count() <= 65535,
                    "more than 65535 ports per switch is unsupported");
  }

  Rng seeder(config_.traffic.seed);
  nics_.reserve(topo_.node_count());
  attach_.reserve(topo_.node_count());
  for (NodeId node = 0; node < topo_.node_count(); ++node) {
    nics_.emplace_back(node, lanes_, terminal_in_lanes,
                       net.injection_channels, seeder.fork(node).next());
    attach_.push_back(topo_.terminal_attachment(node));
  }

  // Static wiring pass: every port learns its peer's receiving lanes and
  // every input lane learns the upstream credit counter it acknowledges
  // into, so the per-cycle phases follow one pointer instead of chasing
  // switch -> port -> lane chains on every flit move. All lane storage is
  // heap-backed and fixed after this point, so the pointers stay valid.
  for (Switch& sw : switches_) {
    for (PortId p = 0; p < sw.port_count(); ++p) {
      SwitchPort& port = sw.port(p);
      if (port.peer.kind == PeerKind::kSwitch) {
        Switch& peer = switches_[port.peer.id];
        SwitchPort& peer_port = peer.port(port.peer.port);
        port.peer_sw = &peer;
        port.peer_in = peer_port.in.data();
        port.peer_in_base = peer.input_base(port.peer.port);
        for (std::size_t v = 0; v < peer_port.in.size(); ++v) {
          peer_port.in[v].upstream_credit = &port.out[v].credits;
        }
      } else if (port.peer.kind == PeerKind::kTerminal) {
        for (std::size_t v = 0; v < port.in.size(); ++v) {
          port.in[v].upstream_credit = &nics_[port.peer.id].credits()[v];
        }
      }
    }
  }
}

PacketId CycleEngine::enqueue_packet(NodeId src, NodeId dst) {
  SMART_CHECK(src < nics_.size());
  SMART_CHECK(dst < topo_.node_count());
  const PacketId id = pool_.allocate();
  Packet& pkt = pool_[id];
  pkt.src = src;
  pkt.dst = dst;
  pkt.size_flits = flits_per_packet_;
  pkt.gen_cycle = cycle_;
  nics_[src].source_queue().push_back(id);
  if (measuring_) ++window_generated_packets_;
  return id;
}

void CycleEngine::advance_faults() {
  const unsigned prev_active = faults_->active_faults();
  const auto events = faults_->advance(cycle_);
  if (events.empty()) return;
  // Every activation/repair boundary closes the current fault epoch; the
  // cycle the events fire on starts the next one.
  if (cycle_ > epoch_start_cycle_) close_fault_epoch(cycle_ - 1, prev_active);
}

void CycleEngine::close_fault_epoch(std::uint64_t end_cycle,
                                    unsigned active_faults) {
  FaultEpoch epoch;
  epoch.start_cycle = epoch_start_cycle_;
  epoch.end_cycle = end_cycle;
  epoch.active_faults = active_faults;
  epoch.delivered_packets = epoch_delivered_packets_;
  epoch.delivered_flits = epoch_delivered_flits_;
  epoch.dropped_packets = epoch_dropped_packets_;
  if (epoch.cycles() > 0) {
    epoch.accepted_flits_per_node_cycle =
        static_cast<double>(epoch_delivered_flits_) /
        (static_cast<double>(epoch.cycles()) *
         static_cast<double>(topo_.node_count()));
  }
  if (epoch_latency_.count() > 0) {
    epoch.mean_latency_cycles = epoch_latency_.mean();
  }
  fault_epochs_.push_back(epoch);
  epoch_start_cycle_ = end_cycle + 1;
  epoch_delivered_packets_ = 0;
  epoch_delivered_flits_ = 0;
  epoch_dropped_packets_ = 0;
  epoch_latency_ = OnlineStats{};
}

void CycleEngine::update_inject_holds() {
  const double threshold = config_.traffic.throttle;
  for (NodeId node = 0; node < nics_.size(); ++node) {
    bool hold = false;
    // Never hold while draining: a wedged escape network past the horizon
    // must still empty its source queues.
    if (!draining_) {
      const Switch& sw = switches_[attach_[node].sw];
      hold = routing_.escape_pressure(sw) >= threshold;
    }
    if (hold) ++throttled_nic_cycles_;
    nics_[node].inject_hold = hold;
  }
}

void CycleEngine::record_stall() {
  // A stall with faults active means packets are wedged on failed
  // components; only a fault-free stall is the classic cyclic deadlock.
  if (faults_ && faults_->any_active()) {
    stall_verdict_ = StallVerdict::kFaultStall;
  } else {
    stall_verdict_ = StallVerdict::kDeadlock;
    deadlocked_ = true;
  }
  // The progress watchdog's verdict also lands in the anomaly framework so
  // every watchdog reports under the one obs/anomaly/* namespace. Exit
  // codes stay keyed off stall_verdict_ / deadlocked_ exactly as before.
  if (anomaly_) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "no flit movement since cycle %llu",
                  static_cast<unsigned long long>(last_progress_cycle_));
    anomaly_->trigger(stall_verdict_ == StallVerdict::kFaultStall
                          ? AnomalyKind::kFaultStall
                          : AnomalyKind::kDeadlock,
                      cycle_,
                      static_cast<double>(cycle_ - last_progress_cycle_),
                      static_cast<double>(config_.timing.deadlock_threshold),
                      detail);
  }
}

void CycleEngine::step() {
  ++cycle_;
  if (faults_) advance_faults();
  // Both hooks run serially before any phase and read only end-of-previous-
  // cycle state, so they are identical in the serial and sharded pipelines.
  routing_.begin_cycle(cycle_, obs_ ? &obs_->stalls : nullptr);
  if (config_.traffic.throttle > 0.0) update_inject_holds();
  if (!measuring_ && !draining_ && cycle_ > config_.timing.warmup_cycles) {
    measuring_ = true;
    stats_window_start_ = cycle_;
  }
  // Serial like the hooks above; the only place a workload injects packets.
  if (workload_) workload_phase();
  // Self-profiling wraps each phase in a steady-clock lap; the disabled
  // path costs one null check per phase (the --obs/--faults discipline),
  // and the enabled path only reads clocks, so results are bit-identical
  // either way.
  Profiler::Clock::time_point lap{};
  if (prof_) lap = Profiler::now();
  if (parallel_) {
    // Sharded pipeline (phase_parallel.cpp): generation draws + enqueue
    // merge charge to the nic lap, the barrier pass to the fused lap, and
    // the staged-effect merge (consumes + credits) to the credits lap.
    parallel_gen();
    if (prof_) lap = prof_->lap(lap, ProfPhase::kNic);
    parallel_pass();
    if (prof_) lap = prof_->lap(lap, ProfPhase::kFused);
    merge_shards();
    if (prof_) {
      const Profiler::Clock::time_point merge_start = lap;
      lap = prof_->lap(lap, ProfPhase::kCredits);
      // The kCredits lap on the sharded path IS the serial merge; mirror
      // it into the shard-contention report (profile/shard/time/merge_ns).
      prof_->shard_merge_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(lap -
                                                               merge_start)
              .count());
      ++prof_->parallel_cycles;
    }
  } else {
    nic_phase();
    if (prof_) lap = prof_->lap(lap, ProfPhase::kNic);
    if (faults_ != nullptr) {
      link_phase();
      if (prof_) lap = prof_->lap(lap, ProfPhase::kLink);
      routing_phase();
      if (prof_) lap = prof_->lap(lap, ProfPhase::kRouting);
      crossbar_phase();
      if (prof_) lap = prof_->lap(lap, ProfPhase::kCrossbar);
    } else {
      fused_phase();
      if (prof_) lap = prof_->lap(lap, ProfPhase::kFused);
    }
    apply_pending_credits();
    if (prof_) lap = prof_->lap(lap, ProfPhase::kCredits);
  }
  if (obs_ && config_.obs.sample_interval_cycles > 0 &&
      cycle_ % config_.obs.sample_interval_cycles == 0) {
    obs_->sampler.sample(cycle_, switches_, nics_);
    if (prof_) lap = prof_->lap(lap, ProfPhase::kSampling);
  }
  if (prof_) {
    // The sharded pipeline always runs the fused per-switch walk (staged
    // drops keep it safe under faults); serially only fault-free runs do.
    prof_->on_cycle(active_switches_.count(), switches_.size(),
                    active_nics_.count(), nics_.size(), lanes_.total_flits(),
                    /*fused=*/parallel_ || faults_ == nullptr);
  }
  if (measuring_ && config_.timing.stats_window_cycles > 0 &&
      cycle_ - stats_window_start_ + 1 >= config_.timing.stats_window_cycles) {
    const double per_node_cycle =
        static_cast<double>(stats_window_flits_) /
        (static_cast<double>(config_.timing.stats_window_cycles) *
         static_cast<double>(topo_.node_count()));
    const double accepted = per_node_cycle / capacity_;
    window_accepted_.push_back(accepted);
    if (anomaly_) anomaly_->check_window(accepted, cycle_);
    stats_window_flits_ = 0;
    stats_window_start_ = cycle_ + 1;
  }
  // Observability generation 3 taps: ring snapshot plus the periodic
  // livelock/starvation scans. Both run at fixed cycle counts (never at
  // wall-clock or thread-dependent points) and only read state, so they
  // are bit-identity-neutral and thread-invariant.
  if (flight_ && cycle_ % flight_->interval() == 0) record_flight_snapshot();
  if (anomaly_ && config_.timing.stats_window_cycles > 0 &&
      cycle_ % config_.timing.stats_window_cycles == 0) {
    run_anomaly_scans();
  }
  note_anomalies();
}

void CycleEngine::workload_phase() {
  workload_->begin_cycle(cycle_, measuring_, draining_,
                         [this](NodeId src, NodeId dst) {
                           return enqueue_packet(src, dst);
                         });
}

void CycleEngine::fused_phase() {
  active_switches_.for_each([this](std::size_t s) {
    Switch& sw = switches_[s];
    if (sw.buffered == 0) return false;  // quiesced: prune from the set
    switch_link_phase(sw);
    // Everything left for departure; later switches may still push fresh
    // flits in and re-mark (same end state as the pass-per-phase prunes).
    if (sw.buffered == 0) return false;
    route_switch(sw);
    if (!sw.active_inputs().empty()) crossbar_switch(sw);
    return true;
  });
  active_nics_.for_each([this](std::size_t n) {
    Nic& nic = nics_[n];
    if (nic.chan_flits == 0) return false;  // channels empty: prune
    nic_link_phase(nic);
    return true;
  });
}

const SimulationResult& CycleEngine::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t heartbeat = config_.timing.heartbeat_cycles;
  last_progress_cycle_ = 0;
  while (cycle_ < config_.timing.horizon_cycles) {
    step();
    if (heartbeat > 0 && cycle_ % heartbeat == 0) print_heartbeat(wall_start);
    if (pool_.in_flight() > 0 &&
        cycle_ - last_progress_cycle_ > config_.timing.deadlock_threshold) {
      record_stall();
      note_anomalies();
      break;
    }
  }
  // The measurement window closes here, whether or not a drain follows:
  // drain cycles run with injection off and must not dilute the window
  // rates (they used to, deflating accepted bandwidth by the drain length).
  measurement_end_cycle_ = cycle_;
  if (config_.timing.drain_after_horizon &&
      stall_verdict_ == StallVerdict::kNone) {
    // Time-to-drain: stop injecting and keep the fabric running until every
    // in-flight packet is delivered or dropped (or the watchdog fires).
    draining_ = true;
    measuring_ = false;
    const std::uint64_t drain_start = cycle_;
    // With a workload, an empty fabric is not enough: staged replies still
    // in service at a server will inject more packets — keep cycling until
    // the workload is quiescent too.
    while ((pool_.in_flight() > 0 ||
            (workload_ != nullptr && !workload_->quiescent())) &&
           cycle_ - drain_start < config_.timing.drain_max_cycles) {
      step();
      if (heartbeat > 0 && cycle_ % heartbeat == 0) {
        print_heartbeat(wall_start);
      }
      if (cycle_ - last_progress_cycle_ > config_.timing.deadlock_threshold) {
        record_stall();
        note_anomalies();
        break;
      }
    }
    result_.drain_cycles = cycle_ - drain_start;
    result_.drained_clean = pool_.in_flight() == 0;
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  result_.sim_wall_seconds = wall.count();
  if (wall.count() > 0.0) {
    result_.sim_cycles_per_second =
        static_cast<double>(cycle_) / wall.count();
    result_.sim_mflits_per_second =
        static_cast<double>(consumed_flits_) / wall.count() / 1e6;
  }
  finalize_result();
  return result_;
}

void CycleEngine::finalize_result() {
  // The window spans warm-up to the horizon snapshot taken before any
  // post-horizon drain ran (drain cycles inject nothing and would deflate
  // every per-cycle rate below).
  const std::uint64_t window_end =
      measurement_end_cycle_ > 0 ? measurement_end_cycle_ : cycle_;
  const std::uint64_t window =
      window_end > config_.timing.warmup_cycles
          ? window_end - config_.timing.warmup_cycles
          : 0;
  const auto nodes = static_cast<double>(topo_.node_count());
  result_.measured_cycles = window;
  result_.generated_packets = window_generated_packets_;
  result_.delivered_packets = window_delivered_packets_;
  result_.delivered_flits = window_delivered_flits_;
  if (window > 0) {
    const auto cycles = static_cast<double>(window);
    result_.generated_flits_per_node_cycle =
        static_cast<double>(window_generated_packets_) * flits_per_packet_ /
        (cycles * nodes);
    result_.accepted_flits_per_node_cycle =
        static_cast<double>(window_delivered_flits_) / (cycles * nodes);
    result_.accepted_fraction =
        result_.accepted_flits_per_node_cycle / capacity_;
  }
  result_.latency_cycles = window_latency_;
  result_.hops = window_hops_;
  result_.latency_histogram = latency_histogram_;
  result_.window_accepted = window_accepted_;
  if (window > 0) {
    const auto cycles = static_cast<double>(window);
    for (const Switch& sw : switches_) {
      for (PortId p = 0; p < sw.port_count(); ++p) {
        const SwitchPort& port = sw.port(p);
        if (port.peer.kind == PeerKind::kUnconnected || port.out.empty()) {
          continue;
        }
        result_.link_utilization.add(
            static_cast<double>(port.flits_sent) / cycles);
      }
    }
    for (const Nic& nic : nics_) {
      result_.link_utilization.add(static_cast<double>(nic.flits_sent) /
                                   cycles);
    }
  }
  result_.engine_parallel = parallel_;
  result_.engine_shards = parallel_ ? static_cast<unsigned>(shards_.size()) : 1;
  result_.engine_path_reason = engine_path_reason_;
  result_.packets_in_flight_end = pool_.in_flight();
  std::uint64_t backlog = 0;
  for (const Nic& nic : nics_) {
    backlog += nic.source_queue().size();
  }
  result_.source_queue_backlog_end = backlog;
  result_.deadlocked = deadlocked_;
  result_.stall_verdict = stall_verdict_;
  {
    const RoutingStats rstats = routing_.stats();
    result_.routing_adaptive_headers = rstats.adaptive_headers;
    result_.routing_escape_headers = rstats.escape_headers;
    result_.routing_misroute_headers = rstats.misroute_headers;
  }
  result_.nic_throttled_cycles = throttled_nic_cycles_;
  result_.unroutable_packets = unroutable_packets_;
  result_.dropped_packets = dropped_packets_;
  result_.dropped_flits = dropped_flits_;
  result_.window_unroutable_packets = window_unroutable_packets_;
  result_.drain_delivered_packets = drain_delivered_packets_;
  result_.drain_delivered_flits = drain_delivered_flits_;
  if (faults_) {
    if (cycle_ >= epoch_start_cycle_) {
      close_fault_epoch(cycle_, faults_->active_faults());
    }
    result_.fault_epochs = fault_epochs_;
    result_.active_faults_end = faults_->active_faults();
  }
  if (prof_) {
    if (team_) prof_->shard_barrier_wait_ns = team_->wait_ns();
    result_.profile = prof_->report();
  }
  if (workload_) result_.workload = workload_->report();
  if (flight_) result_.flight = flight_->series();
  if (anomaly_) {
    result_.anomaly_enabled = true;
    result_.anomaly_verdicts.assign(anomaly_->verdicts().begin(),
                                    anomaly_->verdicts().end());
  }
  if (obs_) {
    result_.obs.enabled = true;
    result_.obs.stalls = obs_->stalls.totals();
    result_.obs.switch_frozen_cycles = obs_->stalls.switch_frozen_cycles();
    result_.obs.port_stalls = obs_->stalls.nonzero_ports();
    result_.obs.series = obs_->sampler.take_series();
    if (config_.obs.trace_enabled()) {
      result_.obs.trace_events = obs_->trace.event_count();
      result_.obs.trace_written = obs_->trace.write(config_.obs.trace_out);
    }
  }
}

std::uint64_t CycleEngine::max_injected_age() const {
  std::uint64_t max_age = 0;
  pool_.for_each_live([&](const Packet& pkt) {
    // Packets still in the source queue have inject_cycle == 0; their age
    // is queueing delay, the starvation detector's domain, not livelock's.
    if (pkt.inject_cycle > 0 && pkt.inject_cycle <= cycle_) {
      const std::uint64_t age = cycle_ - pkt.inject_cycle;
      if (age > max_age) max_age = age;
    }
  });
  return max_age;
}

void CycleEngine::record_flight_snapshot() {
  FlightSnapshot snap;
  snap.cycle = cycle_;
  snap.injected_flits = injected_flits_;
  snap.consumed_flits = consumed_flits_;
  if (obs_) {
    snap.stalls = obs_->stalls.totals().by_cause;
    snap.switch_frozen_cycles = obs_->stalls.switch_frozen_cycles();
  }
  snap.active_switches = active_switches_.count();
  snap.active_nics = active_nics_.count();
  snap.buffered_flits = lanes_.total_flits();
  snap.in_flight_packets = pool_.in_flight();
  snap.max_packet_age = max_injected_age();
  snap.throttled_nic_cycles = throttled_nic_cycles_;
  if (!switches_.empty()) {
    double pressure = 0.0;
    for (const Switch& sw : switches_) {
      pressure += routing_.escape_pressure(sw);
    }
    snap.escape_pressure_mean =
        pressure / static_cast<double>(switches_.size());
  }
  flight_->record(snap);
}

void CycleEngine::run_anomaly_scans() {
  anomaly_->check_ages(max_injected_age(), cycle_);
  queue_scratch_.clear();
  std::uint64_t max_queue = 0;
  for (const Nic& nic : nics_) {
    auto depth = static_cast<std::uint64_t>(nic.source_queue().size());
    // A partly-open workload queues arrivals above the NIC while the
    // window is full; a client starved by a dead server looks the same to
    // the scan wherever its requests wait.
    if (workload_) depth += workload_->queued_requests(nic.node());
    queue_scratch_.push_back(depth);
    if (depth > max_queue) max_queue = depth;
  }
  if (queue_scratch_.empty()) return;
  const std::size_t mid = queue_scratch_.size() / 2;
  std::nth_element(queue_scratch_.begin(),
                   queue_scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                   queue_scratch_.end());
  anomaly_->check_queues(max_queue, queue_scratch_[mid], cycle_);
}

void CycleEngine::note_anomalies() {
  if (!anomaly_ || !anomaly_->take_newly_triggered()) return;
  if (flight_ == nullptr) return;
  flight_->note_anomaly(to_string(anomaly_->first_kind()),
                        anomaly_->first_cycle());
  // A final dense sample at the trigger plus the hottest-switch scene;
  // set_hot_switches keeps the first trigger's capture.
  record_flight_snapshot();
  std::vector<HotSwitchSnapshot> hot;
  hot.reserve(switches_.size());
  for (const Switch& sw : switches_) {
    if (sw.buffered == 0) continue;
    HotSwitchSnapshot h;
    h.sw = sw.id();
    h.buffered = sw.buffered;
    h.bound_inputs = sw.bound_count;
    h.escape_pressure = routing_.escape_pressure(sw);
    hot.push_back(h);
  }
  constexpr std::size_t kHotSwitchCount = 8;
  std::sort(hot.begin(), hot.end(),
            [](const HotSwitchSnapshot& a, const HotSwitchSnapshot& b) {
              if (a.buffered != b.buffered) return a.buffered > b.buffered;
              return a.sw < b.sw;
            });
  if (hot.size() > kHotSwitchCount) hot.resize(kHotSwitchCount);
  flight_->set_hot_switches(std::move(hot));
}

void CycleEngine::print_heartbeat(
    std::chrono::steady_clock::time_point wall_start) const {
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const double cps = secs > 0.0 ? static_cast<double>(cycle_) / secs : 0.0;
  // Accepted fraction so far: consumed flits per node-cycle against the
  // run's capacity — a progress estimate, not the windowed result.
  const double accepted =
      cycle_ > 0 && capacity_ > 0.0
          ? static_cast<double>(consumed_flits_) /
                (static_cast<double>(cycle_) *
                 static_cast<double>(topo_.node_count())) /
                capacity_
          : 0.0;
  const std::uint64_t target = draining_
                                   ? cycle_  // drain length is unknowable
                                   : config_.timing.horizon_cycles;
  const double eta =
      cps > 0.0 && target > cycle_
          ? static_cast<double>(target - cycle_) / cps
          : 0.0;
  std::fprintf(stderr,
               "[smartsim] heartbeat cycle %llu/%llu  %.0f cycles/s  "
               "accepted %.3f  eta %.1fs%s\n",
               static_cast<unsigned long long>(cycle_),
               static_cast<unsigned long long>(config_.timing.horizon_cycles),
               cps, accepted, eta, draining_ ? "  (draining)" : "");
}

}  // namespace smart
