// Phase 1: packet generation and source-queue streaming (paper §3).
//
// Every NIC is visited every cycle in node order — not just the active
// ones — because the injection processes draw from the per-NIC RNGs and
// those streams must advance identically whether or not the NIC has work
// (bit-identity with the legacy full scan). The active-NIC set is fed
// here: a NIC whose stream() pushed flits into its injection channels is
// marked for the link phase.
//
// The sharded pipeline (phase_parallel.cpp) splits this phase in two:
// nic_gen_shard() runs the draw loop below in parallel (staging the
// outcomes), the serial merge replays enqueue_packet in node order, and
// the streaming tail moves into shard_pass(). This serial function stays
// the reference implementation both paths must match bit-for-bit.
#include "engine/cycle_engine.hpp"

namespace smart {

void CycleEngine::nic_phase() {
  const bool injecting = !draining_ && packet_rate_ > 0.0;
  // All Bernoulli processes share the configured rate, so the common case
  // skips the virtual fires() dispatch; rng.bernoulli(packet_rate_) is the
  // exact BernoulliInjection::fires body — identical draws either way.
  const bool bernoulli =
      config_.traffic.injection == InjectionKind::kBernoulli;
  for (Nic& nic : nics_) {
    if (injecting &&
        (bernoulli ? nic.rng().bernoulli(packet_rate_)
                   : injection_[nic.node()]->fires(nic.rng()))) {
      const auto dst = pattern_.destination(nic.node(), nic.rng());
      if (dst) {
        enqueue_packet(nic.node(), *dst);
        if (prof_) ++prof_->generated_packets;
      }
    }
    if (nic.stream_pending()) {
      const unsigned pushed = nic.stream(cycle_, pool_);
      if (pushed > 0) {
        injected_flits_ += pushed;
        active_nics_.mark(nic.node());
      }
    }
  }
}

}  // namespace smart
