// The cycle engine: the per-cycle phase pipeline of the paper's switch
// model (§4), extracted from the former Network monolith.
//
// Network (src/core/) now only assembles the pieces — topology, routing
// algorithm, traffic pattern, injection processes, fault plan and
// observability hooks — and hands them here. The engine owns the hot
// state: the fabric (switches, NICs, the flat LaneStore arena behind
// every lane buffer), the packet pool, all counters, and the result under
// construction. Each cycle runs, in order:
//
//   1. nic phase      packet generation (Bernoulli/bursty per node) and
//                     streaming into the injection channel(s)
//                     [phase_nic.cpp]
//   2. link phase     per directed physical channel, a fair arbiter moves
//                     one flit with credit to the peer input lane; flits
//                     reaching a terminal are consumed [phase_link.cpp]
//   3. routing phase  per switch, at most one header is assigned an
//                     output lane (T_routing = 1 clock) [phase_routing.cpp]
//   4. crossbar phase every bound input lane advances one flit to its
//                     output lane; unroutable worms drain
//                     [phase_crossbar.cpp]
//   5. credits        freed buffer slots are acknowledged upstream with a
//                     one-cycle delay [phase_credits.cpp]
//
// The phases visit only the active sets — switches/NICs with flits
// buffered (plus, per switch, the sorted list of bound/draining input
// lanes for the crossbar) — in ascending index order, which preserves
// every shared-RNG draw and round-robin decision of the legacy full
// scans: results are bit-identical (tests/test_engine_refactor.cpp pins
// them). Arrival stamps guarantee a flit advances at most one pipeline
// stage per cycle. Statistics are collected between warm-up and horizon;
// a watchdog flags deadlock if nothing moves for a configurable number
// of cycles while packets are in flight.
//
// With SimConfig::engine_threads > 1 the engine runs the same pipeline
// sharded across a WorkerTeam (phase_parallel.cpp): switches and NICs are
// statically partitioned into word-aligned shards, each barrier-
// synchronized pass touches only its shard's state, and every cross-shard
// write (peer-lane pushes, terminal consumes, credit returns) is staged
// per shard and merged serially in fixed shard order. Fault plans, trace
// capture and randomized routing all shard too (staged drops/trace ops,
// per-switch RNG streams); results are bit-identical for every thread
// count — the determinism argument lives in docs/ARCHITECTURE.md
// §"Threading". Runs the serial pipeline only when the fabric is too
// small to shard or a custom routing algorithm is not concurrent-safe.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "engine/active_set.hpp"
#include "engine/lane_store.hpp"
#include "fault/fault.hpp"
#include "obs/anomaly.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "router/nic.hpp"
#include "router/switch.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace smart {

class CycleEngine {
 public:
  /// All collaborators are owned by the caller (Network) and must outlive
  /// the engine. `faults`/`obs`/`prof`/`flight`/`workload` may be null
  /// (feature disabled). With a workload, Network passes packet_rate == 0
  /// so the open-loop generators stay silent and the workload is the only
  /// packet source.
  CycleEngine(const SimConfig& config, const Topology& topo,
              RoutingAlgorithm& routing, TrafficPattern& pattern,
              std::vector<std::unique_ptr<InjectionProcess>>& injection,
              FaultState* faults, ObsState* obs, Profiler* prof,
              FlightRecorder* flight, double packet_rate, double capacity,
              unsigned flits_per_packet, Workload* workload = nullptr);

  /// Runs warm-up plus measurement (and the optional post-horizon drain)
  /// and fills result().
  const SimulationResult& run();

  /// Advances a single cycle.
  void step();

  [[nodiscard]] const SimulationResult& result() const noexcept {
    return result_;
  }
  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }

  [[nodiscard]] Switch& switch_at(SwitchId s) { return switches_.at(s); }
  [[nodiscard]] Nic& nic_at(NodeId node) { return nics_.at(node); }
  [[nodiscard]] const PacketPool& packets() const noexcept { return pool_; }

  /// Flits currently buffered anywhere in the system (invariant checks);
  /// a single pass over the lane arena.
  [[nodiscard]] std::uint64_t buffered_flits() const noexcept {
    return lanes_.total_flits();
  }
  [[nodiscard]] std::uint64_t injected_flits() const noexcept {
    return injected_flits_;
  }
  [[nodiscard]] std::uint64_t consumed_flits() const noexcept {
    return consumed_flits_;
  }
  [[nodiscard]] std::uint64_t dropped_flits() const noexcept {
    return dropped_flits_;
  }
  [[nodiscard]] bool deadlocked() const noexcept { return deadlocked_; }

  /// Manually enqueue one packet at `src` for `dst` (tests and examples);
  /// returns the packet id.
  PacketId enqueue_packet(NodeId src, NodeId dst);

 private:
  /// Per-shard working state of the sharded parallel pipeline
  /// (phase_parallel.cpp). A shard owns a word-aligned range of the
  /// switch and NIC index spaces (multiples of 64, so concurrent
  /// ActiveSet word updates never straddle shards); everything a pass
  /// would write outside that range is staged here and merged serially
  /// in ascending shard order after the barrier — which equals ascending
  /// element order, the serial pipeline's visit order. Cache-line aligned
  /// so two workers' staging writes never false-share a line.
  struct alignas(64) EngineShard {
    std::size_t index = 0;
    std::size_t sw_word_begin = 0, sw_word_end = 0;    ///< ActiveSet words
    std::size_t nic_word_begin = 0, nic_word_end = 0;  ///< ActiveSet words

    /// A deferred flit hand-off into another shard's input lane; the
    /// merge applies the push plus the receiver-side occupancy
    /// bookkeeping the serial path does inline.
    struct StagedPush {
      Flit flit;
      InputLane* in;
      Switch* peer;
      std::uint32_t in_index;  ///< the lane's peer->in_nonempty position
    };
    /// A generation draw ((src, dst), in node order); the pool
    /// allocation happens at merge time so packet ids are handed out in
    /// the serial pipeline's order.
    struct GenDraw {
      NodeId src;
      NodeId dst;
    };
    /// A deferred hop-trace event (--trace-hops): hop_enter/hop_exit grow
    /// the obs layer's shared per-packet vectors and assign trace uids in
    /// first-touch order, so the events are staged in visit order and
    /// replayed at the merge — in ascending shard order, which is the
    /// serial pipeline's emission order.
    struct StagedTraceOp {
      enum class Kind : std::uint8_t { kHopEnter, kHopExit };
      Kind kind;
      PacketId packet;
      SwitchId sw;  ///< entered switch (kHopEnter only)
    };

    std::vector<GenDraw> generated;       ///< nic gen pass
    std::vector<StagedPush> pushes;       ///< switch→switch, cross-shard
    std::vector<StagedPush> nic_pushes;   ///< NIC→switch (always staged)
    std::vector<Flit> consumed;           ///< terminal consumes, visit order
    std::vector<StagedTraceOp> trace_ops; ///< hop events, visit order
    std::vector<std::uint32_t*> credits;  ///< staged upstream credit acks
    /// Tails of worms whose drain completed this cycle (fault plans): the
    /// drop statistics, trace records and pool releases replay at the
    /// merge in shard order.
    std::vector<PacketId> dropped_tails;
    std::uint64_t dropped_flits = 0;      ///< drained flits this cycle
    std::uint64_t unroutable_headers = 0; ///< worms entering drain
    std::uint64_t obs_switch_frozen = 0;  ///< dead-switch freeze cycles
    std::uint64_t injected_flits = 0;
    bool progressed = false;  ///< any flit moved (watchdog feed)
    // Per-shard profiler counters, merged under the engine's prof_ check.
    std::uint64_t prof_generated = 0;
    std::uint64_t prof_link_flits = 0;
    std::uint64_t prof_routed = 0;
    std::uint64_t prof_crossbar = 0;
    std::uint64_t prof_visits = 0;  ///< switch visits (load balance)
    // Per-shard contention wall clocks (obs generation 3): time this
    // shard's worker spent inside region A (generation draws) and region
    // B (stream + fused pass). Written by the owning worker, merged by
    // the leader after the barrier (the done_ handshake orders them).
    std::uint64_t prof_region_a_ns = 0;
    std::uint64_t prof_region_b_ns = 0;
  };

  void build_fabric();
  /// Decides serial vs sharded execution and, for the latter, builds the
  /// shard partition and the worker team (called once, from the ctor).
  void setup_parallel();

  // Phase pipeline, one translation unit each (see header comment).
  // The per-switch/per-NIC helpers take the executing shard (null on the
  // serial path): with a shard, cross-shard writes are staged into it
  // instead of applied inline.
  void nic_phase();                        // phase_nic.cpp
  void link_phase();                       // phase_link.cpp
  void switch_link_phase(Switch& sw, EngineShard* shard = nullptr);
  void nic_link_phase(Nic& nic, EngineShard* shard = nullptr);
  void routing_phase();                    // phase_routing.cpp
  void route_switch(Switch& sw, EngineShard* shard = nullptr);
  void crossbar_phase();                   // phase_crossbar.cpp
  void crossbar_switch(Switch& sw, EngineShard* shard = nullptr);
  /// Fault-free fast path: one pass over the active switches running the
  /// link, routing and crossbar stages back to back per switch (then the
  /// NIC link pass). Bit-identical to the three separate passes — every
  /// cross-switch hand-off lands in an input lane stamped with the current
  /// cycle, which all same-cycle readers ignore, and credits only apply at
  /// end of cycle — but touches each switch's state once instead of three
  /// times. Serial fault drains would reorder PacketPool releases relative
  /// to deliveries, so serial faulted runs keep the phase-per-pass
  /// pipeline; the sharded pipeline stages both consumes and drops and
  /// replays them in the phase-per-pass order at the merge, so it runs
  /// fused even under faults.
  void fused_phase();
  /// Returns true when the drained worm's tail left the lane (the lane is
  /// done dropping and leaves the switch's active-input list). `flat` is
  /// the lane's position in the switch's input_lane_index(). With a shard,
  /// the drop bookkeeping (counters, trace, pool release) is staged.
  bool drain_lane(Switch& sw, InputLane& in, std::uint32_t flat,
                  EngineShard* shard = nullptr);
  /// Tail-of-worm drop bookkeeping: drop counters, the trace record and
  /// the pool release. Called inline by the serial drain, and from the
  /// merge for staged dropped_tails (in shard = serial drain order).
  void finish_drop(PacketId id);
  void apply_pending_credits();            // phase_credits.cpp
  void consume(Flit flit);                 // phase_credits.cpp

  // Sharded parallel pipeline (phase_parallel.cpp). One cycle runs: a
  // parallel generation-draw pass, a serial enqueue merge (pool
  // allocations in node order), a parallel stream + fused-switch +
  // NIC-link pass, and a serial merge of all staged cross-shard effects.
  void parallel_gen();                      ///< region A + its merge
  void nic_gen_shard(EngineShard& shard);
  void parallel_pass();                     ///< region B (barrier)
  void shard_pass(EngineShard& shard);
  void merge_shards();                      ///< staged effects, shard order
  void apply_staged_push(const EngineShard::StagedPush& push);

  /// Serial top-of-cycle workload hook: lets the closed-loop layer pop its
  /// due staged events and inject request/reply packets (via
  /// enqueue_packet). Runs before any phase in both pipelines, like
  /// RoutingAlgorithm::begin_cycle — see workload/workload.hpp for the
  /// determinism contract.
  void workload_phase();
  void advance_faults();
  void close_fault_epoch(std::uint64_t end_cycle, unsigned active_faults);
  void record_stall();
  void finalize_result();

  // Observability generation 3 (flight recorder + anomaly watchdogs). All
  // of these only *read* end-of-cycle engine state — never any feedback
  // into routing, injection or arbitration — so results stay bit-identical
  // with them on or off, across thread counts.
  /// Assemble and store one ring snapshot (cumulative counters; the
  /// recorder derives interval deltas).
  void record_flight_snapshot();
  /// Periodic livelock/starvation scans (stats-window cadence, so the
  /// trigger cycles are deterministic and thread-invariant).
  void run_anomaly_scans();
  /// After any detector fires: note the anomaly in the flight recorder,
  /// take a final dense sample and capture the hottest switches. One-shot
  /// (keeps the first trigger's scene).
  void note_anomalies();
  /// Age (cycles since injection) high-water over in-flight packets that
  /// actually entered the fabric (inject_cycle > 0).
  [[nodiscard]] std::uint64_t max_injected_age() const;
  /// One opt-in stderr progress line (--heartbeat): cycle, cycles/s,
  /// accepted fraction so far, ETA to the horizon.
  void print_heartbeat(std::chrono::steady_clock::time_point wall_start) const;
  /// Serial sweep at the top of a cycle: sets each NIC's inject hold from
  /// the routing algorithm's escape pressure at its switch, using
  /// end-of-previous-cycle credit state — identical in both pipelines, so
  /// throttling never perturbs thread-count bit-identity.
  void update_inject_holds();

  // Collaborators (owned by Network).
  const SimConfig& config_;
  const Topology& topo_;
  RoutingAlgorithm& routing_;
  TrafficPattern& pattern_;
  std::vector<std::unique_ptr<InjectionProcess>>& injection_;  ///< per node
  FaultState* faults_;  ///< null on a fault-free run
  ObsState* obs_;       ///< null unless obs is enabled
  Profiler* prof_;      ///< null unless --profile is enabled
  FlightRecorder* flight_;  ///< null when the flight recorder is disabled
  Workload* workload_;      ///< null unless --workload is configured
  /// Anomaly watchdogs (null when AnomalySpec::enabled is false). Owned
  /// here rather than by Network: the monitor is a pure function of the
  /// config and only the engine feeds it.
  std::unique_ptr<AnomalyMonitor> anomaly_;
  /// Scratch for the starvation scan's median (reused between scans).
  std::vector<std::uint64_t> queue_scratch_;

  // The fabric. All lane buffers live in the lanes_ arena; switches and
  // NICs hold LaneView handles into it.
  LaneStore lanes_;
  std::vector<Switch> switches_;
  std::vector<Nic> nics_;
  /// Terminal attachment of each NIC, cached from the topology (static).
  std::vector<Attachment> attach_;
  PacketPool pool_;

  // Active sets: indices with work pending (see active_set.hpp). A switch
  // is active iff flits are buffered in any of its lanes; a NIC is active
  // iff flits are buffered in its injection channels.
  ActiveSet active_switches_;
  ActiveSet active_nics_;

  // Sharded parallel pipeline (empty/null when running serially).
  bool parallel_ = false;
  /// Why setup_parallel() chose this execution path; echoed into the
  /// result (and from there the run manifest) so large-fabric runs are
  /// auditable.
  std::string engine_path_reason_;
  std::vector<EngineShard> shards_;
  /// Owning shard of each switch (cross-shard test in the link phase).
  std::vector<std::uint32_t> shard_of_switch_;
  std::unique_ptr<WorkerTeam> team_;

  std::uint64_t cycle_ = 0;
  double packet_rate_ = 0.0;
  double capacity_ = 0.0;
  unsigned flits_per_packet_ = 0;

  std::vector<std::uint32_t*> pending_credits_;

  // Counters (whole run).
  std::uint64_t injected_flits_ = 0;
  std::uint64_t consumed_flits_ = 0;
  std::uint64_t last_progress_cycle_ = 0;
  bool deadlocked_ = false;
  StallVerdict stall_verdict_ = StallVerdict::kNone;
  bool draining_ = false;  ///< past the horizon with injection stopped
  /// Cycle the measurement window closed: the horizon (or the stall that
  /// ended the run early), never extended by the post-horizon drain.
  std::uint64_t measurement_end_cycle_ = 0;
  // Deliveries during the post-horizon drain (kept out of the window).
  std::uint64_t drain_delivered_packets_ = 0;
  std::uint64_t drain_delivered_flits_ = 0;

  /// NIC-cycles spent holding injection under traffic.throttle (whole run).
  std::uint64_t throttled_nic_cycles_ = 0;

  // Resilience counters (whole run; stay zero without a fault plan).
  std::uint64_t unroutable_packets_ = 0;
  std::uint64_t dropped_packets_ = 0;
  std::uint64_t dropped_flits_ = 0;
  std::uint64_t window_unroutable_packets_ = 0;

  // Current fault epoch (see FaultEpoch; tracked only with faults_).
  std::uint64_t epoch_start_cycle_ = 1;
  std::uint64_t epoch_delivered_packets_ = 0;
  std::uint64_t epoch_delivered_flits_ = 0;
  std::uint64_t epoch_dropped_packets_ = 0;
  OnlineStats epoch_latency_;
  std::vector<FaultEpoch> fault_epochs_;

  // Counters (measurement window).
  bool measuring_ = false;
  std::uint64_t window_generated_packets_ = 0;
  std::uint64_t window_delivered_packets_ = 0;
  std::uint64_t window_delivered_flits_ = 0;
  OnlineStats window_latency_;
  OnlineStats window_hops_;
  Histogram latency_histogram_{10.0, 400};
  std::uint64_t stats_window_flits_ = 0;   ///< flits in the current window
  std::uint64_t stats_window_start_ = 0;   ///< cycle the window opened
  std::vector<double> window_accepted_;

  SimulationResult result_;
};

}  // namespace smart
