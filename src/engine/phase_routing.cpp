// Phase 3: routing (paper §4, T_routing = one clock).
//
// Per active switch, the occupied input lanes are scanned from a rotating
// start; the first header that obtains an output lane from the routing
// algorithm consumes this cycle's routing slot. The scan iterates the
// switch's in_nonempty bitmask in round-robin order (positions >= route_rr
// ascending, then the wrap-around remainder) instead of walking the full
// (port, lane) directory — empty lanes were pure no-ops in the legacy
// scan, so the considered headers, and with them every routing decision
// and RNG draw, are unchanged. Switches are visited in ascending id order
// on the serial path; randomized algorithms (Valiant's intermediate draw,
// the tree's random tie-break) draw from per-switch RNG streams, so the
// draws depend on the visiting switch, not on the order route() is called
// across switches — which is what lets the sharded engine run them
// concurrently and still match the serial pipeline bit for bit. A
// successful binding (or a worm entering unroutable drain) registers the
// input lane in the switch's sorted active-input list for the crossbar
// phase.
#include "engine/cycle_engine.hpp"

#include <bit>

#include "util/check.hpp"

namespace smart {

void CycleEngine::routing_phase() {
  active_switches_.for_each([this](std::size_t s) {
    Switch& sw = switches_[s];
    if (sw.buffered == 0) return false;  // quiesced: prune from the set
    if (faults_ && !faults_->switch_ok(sw.id())) return true;  // dead switch
    route_switch(sw);
    return true;
  });
}

void CycleEngine::route_switch(Switch& sw, EngineShard* shard) {
  const auto& lanes = sw.input_lane_index();
  const auto total_lanes = static_cast<unsigned>(lanes.size());

  // One header may win the routing slot; everything else stalls.
  const auto try_route = [&](unsigned index) {
    InputLane& in = sw.input_lane(index);
    if (in.bound() || in.dropping || in.buf.empty()) return false;
    const Flit& front = in.buf.front();
    if (!front.head || front.arrival >= cycle_) return false;

    Packet& pkt = pool_[front.packet];
    const auto choice = routing_.route(sw, lanes[index].first,
                                       lanes[index].second, pkt, cycle_);
    if (!choice) {
      // The header was considered but no legal output lane was free.
      if (obs_ && !pkt.unroutable) {
        obs_->stalls.count(sw.id(), lanes[index].first,
                           StallCause::kRoutingBlocked);
      }
      if (pkt.unroutable) {
        // Faults left this packet without a route: drain and discard the
        // worm (one flit per cycle, crediting upstream) instead of
        // letting it wedge the lane forever. The lane/switch state is
        // shard-owned; the fabric-wide counters are staged on the sharded
        // pipeline (counts commute — the merge adds them once).
        pkt.unroutable = false;
        in.dropping = true;
        sw.dropping_count += 1;
        sw.in_busy.set(index);
        sw.add_active_input(index);
        if (shard) {
          ++shard->unroutable_headers;
          shard->progressed = true;
        } else {
          ++unroutable_packets_;
          if (measuring_) ++window_unroutable_packets_;
          last_progress_cycle_ = cycle_;
        }
      }
      return false;  // header stalls; try the next candidate
    }
    SwitchPort& out_port = sw.port(choice->port);
    OutputLane& out = out_port.out[choice->lane];
    SMART_CHECK_MSG(out.bindable(),
                    "routing algorithm returned a non-bindable lane");
    in.bind(static_cast<std::int32_t>(choice->port),
            static_cast<std::int32_t>(choice->lane), cycle_);
    in.bound_out = &out;
    in.bound_out_port = &out_port;
    out.bound = true;
    sw.bound_count += 1;
    sw.in_busy.set(index);
    sw.add_active_input(index);
    sw.route_rr = index + 1;
    if (shard) ++shard->prof_routed;
    else if (prof_) ++prof_->routed_headers;
    return true;  // one successful routing decision per switch per cycle
  };

  // Busy (bound/draining) lanes always fail try_route's guard without side
  // effects, so the scan drops them at the bitset level, one 64-lane word
  // at a time. Candidates are visited in round-robin order (positions
  // >= route_rr ascending, then the wrap-around remainder) — the same
  // order as the legacy single-word two-pass scan.
  const auto scan = [&](unsigned begin, unsigned end) {
    for (std::size_t w = begin / 64; w * 64 < end; ++w) {
      std::uint64_t bits = sw.in_nonempty.word(w) & ~sw.in_busy.word(w);
      if (bits == 0) continue;
      const auto base = static_cast<unsigned>(w * 64);
      if (begin > base) bits &= ~((std::uint64_t{1} << (begin - base)) - 1);
      if (end - base < 64) bits &= (std::uint64_t{1} << (end - base)) - 1;
      while (bits != 0) {
        const auto index = base + static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        if (try_route(index)) return true;
      }
    }
    return false;
  };
  // route_rr is at most total_lanes (last winner + 1); == means wrap.
  const unsigned rr = sw.route_rr >= total_lanes ? 0 : sw.route_rr;
  if (scan(rr, total_lanes)) return;
  if (rr != 0) scan(0, rr);
}

}  // namespace smart
