// Phase 5: delayed credit acknowledgement, plus packet delivery.
//
// Buffer slots freed by the crossbar (or the unroutable drain) are
// acknowledged to the upstream credit counters one cycle later — the
// paper's credit round-trip. consume() lives here too: it retires a worm
// when its tail crosses the terminal link (called from the link phase)
// and feeds every delivery statistic of the measurement window.
//
// Both functions are serial-only by construction: the sharded pipeline
// stages credit pointers and consumed flits per shard and replays them
// through these exact code paths in the merge (merge_shards() in
// phase_parallel.cpp), in ascending shard order — so PacketPool releases
// and OnlineStats accumulation happen in the serial pipeline's sequence
// and the results stay bit-identical for every thread count.
#include "engine/cycle_engine.hpp"

#include "util/check.hpp"

namespace smart {

void CycleEngine::apply_pending_credits() {
  if (prof_) prof_->credit_acks += pending_credits_.size();
  for (std::uint32_t* credit : pending_credits_) *credit += 1;
  pending_credits_.clear();
}

void CycleEngine::consume(Flit flit) {
  ++consumed_flits_;
  Packet& pkt = pool_[flit.packet];
  SMART_CHECK_MSG(flit.seq == pkt.consumed_seq,
                  "flits of a packet arrived out of order");
  ++pkt.consumed_seq;
  if (flit.tail) {
    SMART_CHECK_MSG(pkt.consumed_seq == pkt.size_flits,
                    "tail flit arrived before the full worm");
    // Minimal algorithms must cross exactly the minimal number of channels
    // (+2 processor-interface crossings on the direct network, where the
    // terminal links are not network links); non-minimal ones (Valiant) at
    // least that many.
    const unsigned floor_hops =
        topo_.min_hops(pkt.src, pkt.dst) + (topo_.is_direct() ? 2U : 0U);
    if (routing_.is_minimal()) {
      SMART_CHECK_MSG(pkt.hops == floor_hops, "non-minimal path detected");
    } else {
      SMART_CHECK_MSG(pkt.hops >= floor_hops, "impossibly short path");
    }
    if (faults_) {
      ++epoch_delivered_packets_;
      epoch_delivered_flits_ += pkt.size_flits;
      epoch_latency_.add(static_cast<double>(cycle_ - pkt.inject_cycle));
    }
    if (draining_) {
      // Past the horizon: these deliveries belong to the drain report,
      // never to the measurement window.
      ++drain_delivered_packets_;
      drain_delivered_flits_ += pkt.size_flits;
    }
    if (obs_ && config_.obs.trace_enabled()) {
      obs_->trace.packet(obs_->uid_of(flit.packet), pkt.src, pkt.dst,
                         pkt.gen_cycle, pkt.inject_cycle, cycle_, pkt.hops,
                         /*dropped=*/false);
      obs_->forget(flit.packet);
    }
    if (measuring_) {
      ++window_delivered_packets_;
      window_delivered_flits_ += pkt.size_flits;
      stats_window_flits_ += pkt.size_flits;
      window_latency_.add(static_cast<double>(cycle_ - pkt.inject_cycle));
      latency_histogram_.add(static_cast<double>(cycle_ - pkt.inject_cycle));
      window_hops_.add(static_cast<double>(pkt.hops));
      if (config_.trace.collect_packet_log) {
        result_.packet_log.push_back(PacketRecord{pkt.src, pkt.dst,
                                                  pkt.gen_cycle,
                                                  pkt.inject_cycle, cycle_,
                                                  pkt.hops});
      }
    }
    // Serial and deterministic here (see the header comment), so the
    // workload's delivery accounting inherits the merge-order discipline.
    // Before release: the id is recycled the moment the pool frees it.
    if (workload_) {
      workload_->on_delivered(flit.packet, pkt.src, pkt.dst, cycle_);
    }
    pool_.release(flit.packet);
  }
}

}  // namespace smart
