// Phase 4: crossbar advance and unroutable-worm drain (paper §4).
//
// Every bound input lane moves one flit to its output lane; lanes
// draining an unroutable worm discard one flit instead (crediting
// upstream either way, visible next cycle). Instead of re-scanning every
// input lane of every switch, each switch keeps a sorted list of the
// flat input-lane indices that are bound or draining — the only lanes
// this phase can move. The list is appended only by the routing phase
// and shrunk only here (at the current scan position), so iterating it
// in order reproduces the legacy port-major lane walk exactly.
#include "engine/cycle_engine.hpp"

#include "util/check.hpp"

namespace smart {

void CycleEngine::crossbar_phase() {
  active_switches_.for_each([this](std::size_t s) {
    Switch& sw = switches_[s];
    if (sw.buffered == 0) return false;  // quiesced: prune from the set
    // Bound lanes can outlive the buffered flits (a worm's tail still
    // upstream), so the binding list alone does not keep a switch active.
    if (sw.active_inputs().empty()) return true;
    if (faults_ && !faults_->switch_ok(sw.id())) return true;  // dead switch
    crossbar_switch(sw);
    return true;
  });
}

void CycleEngine::crossbar_switch(Switch& sw, EngineShard* shard) {
  auto& active = sw.active_inputs();
  std::size_t i = 0;
  while (i < active.size()) {
    const std::uint32_t flat = active[i];
    InputLane& in = sw.input_lane(flat);
    if (in.dropping) {
      if (drain_lane(sw, in, flat, shard)) {
        sw.remove_active_input(flat);  // the worm's tail just drained
        continue;                      // `i` now indexes the next entry
      }
      ++i;
      continue;
    }
    // Invariant: a listed, non-dropping lane is bound.
    if (in.bound_cycle >= cycle_ || in.buf.empty() ||
        in.buf.front().arrival >= cycle_) {
      ++i;
      continue;
    }
    SwitchPort& out_port = *in.bound_out_port;
    OutputLane& out = *in.bound_out;
    if (out.buf.full()) {
      // Bound and ready, but the output lane's buffer has no slot.
      if (obs_) {
        obs_->stalls.count(sw.id(), sw.input_lane_index()[flat].first,
                           StallCause::kCrossbarBlocked);
      }
      ++i;
      continue;
    }

    Flit flit = in.buf.pop();
    if (in.buf.empty()) sw.in_nonempty.clear(flat);
    flit.lane = static_cast<std::uint8_t>(in.bound_lane);
    flit.arrival = static_cast<std::uint32_t>(cycle_);
    const bool is_tail = flit.tail;
    out.buf.push(flit);
    if (shard) ++shard->prof_crossbar;
    else if (prof_) ++prof_->crossbar_flits;
    out_port.out_buffered += 1;
    sw.out_ports_nonempty.set(static_cast<unsigned>(in.bound_port));
    if (shard) shard->progressed = true;
    else last_progress_cycle_ = cycle_;

    // Acknowledge the freed buffer slot upstream (visible next cycle).
    // Sharded, the upstream lane may belong to another worker, so the ack
    // is staged; += 1 commutes, so only end-of-cycle visibility matters.
    if (in.upstream_credit != nullptr) {
      if (shard) shard->credits.push_back(in.upstream_credit);
      else pending_credits_.push_back(in.upstream_credit);
    }

    if (is_tail) {
      in.unbind();
      out.bound = false;
      sw.bound_count -= 1;
      sw.in_busy.clear(flat);
      sw.remove_active_input(flat);
      continue;  // `i` now indexes the next entry
    }
    ++i;
  }
}

bool CycleEngine::drain_lane(Switch& sw, InputLane& in, std::uint32_t flat,
                             EngineShard* shard) {
  if (in.buf.empty() || in.buf.front().arrival >= cycle_) return false;
  const Flit flit = in.buf.pop();
  if (in.buf.empty()) sw.in_nonempty.clear(flat);
  sw.buffered -= 1;
  if (shard) ++shard->dropped_flits;
  else ++dropped_flits_;
  // The freed slot is acknowledged upstream exactly like a crossbar
  // advance, so body flits still in flight keep streaming to the drain.
  if (in.upstream_credit != nullptr) {
    if (shard) shard->credits.push_back(in.upstream_credit);
    else pending_credits_.push_back(in.upstream_credit);
  }
  if (shard) shard->progressed = true;
  else last_progress_cycle_ = cycle_;
  if (flit.tail) {
    in.dropping = false;
    sw.dropping_count -= 1;
    sw.in_busy.clear(flat);
    // The drop statistics, trace record and pool release are all
    // order-sensitive (like consumes) — sharded, they replay at the merge
    // after every consume, which is exactly the serial phase-per-pass
    // order (link-phase deliveries precede crossbar-phase drains).
    if (shard) shard->dropped_tails.push_back(flit.packet);
    else finish_drop(flit.packet);
    return true;
  }
  return false;
}

void CycleEngine::finish_drop(PacketId id) {
  ++dropped_packets_;
  ++epoch_dropped_packets_;
  if (obs_ && config_.obs.trace_enabled()) {
    const Packet& pkt = pool_[id];
    if (obs_->trace_hops()) obs_->hop_exit(id, cycle_);
    obs_->trace.packet(obs_->uid_of(id), pkt.src, pkt.dst, pkt.gen_cycle,
                       pkt.inject_cycle, cycle_, pkt.hops,
                       /*dropped=*/true);
    obs_->forget(id);
  }
  // Serial in both pipelines (inline here, staged dropped_tails replayed
  // in shard order); must precede release, which recycles the id.
  if (workload_) workload_->on_dropped(id, cycle_);
  pool_.release(id);
}

}  // namespace smart
