// Dirty-set of switch/NIC indices with pending work, as a flat bitset.
//
// Every per-cycle phase used to walk all switches (or NICs) and bail out
// per element when idle; at the paper's normal-traffic loads (<= 1/3 of
// capacity) most of the fabric is quiescent, so the walk itself dominated.
// The ActiveSet keeps one bit per element: producers mark() an element
// when they hand it work (a flit pushed into one of its lanes), and the
// phase loops visit only set bits in ascending index order — the same
// order as the legacy full scans, which bit-for-bit preserves every
// shared-RNG draw and round-robin decision. A visitor returns false to
// prune the element once its work is gone (lazy removal, so a brief idle
// gap costs at most one extra visit).
//
// Marking during iteration is allowed and targets words_ directly: a bit
// set in a word the scan has not reached yet is visited this pass, one in
// the current word's snapshot is deferred to the next pass — both safe
// here because the engine only marks elements whose visit would be a
// no-op this phase (see ARCHITECTURE.md "Active-set invariants").
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace smart {

class ActiveSet {
 public:
  ActiveSet() = default;
  explicit ActiveSet(std::size_t size) : words_((size + 63) / 64, 0) {}

  void mark(std::size_t index) noexcept {
    words_[index >> 6] |= std::uint64_t{1} << (index & 63);
  }

  [[nodiscard]] bool contains(std::size_t index) const noexcept {
    return (words_[index >> 6] >> (index & 63)) & 1u;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const std::uint64_t word : words_) {
      total += static_cast<std::size_t>(std::popcount(word));
    }
    return total;
  }

  /// Visits set indices in ascending order. The visitor returns true to
  /// keep the element in the set, false to prune it.
  template <typename Visitor>
  void for_each(Visitor&& visit) {
    for_each_words(0, words_.size(), std::forward<Visitor>(visit));
  }

  /// Range variant for the sharded engine: visits only the indices whose
  /// words lie in [word_begin, word_end). Shard boundaries are whole words
  /// (multiples of 64 indices), so concurrent shards mark() and prune
  /// disjoint words_ entries — no two threads ever touch the same word.
  template <typename Visitor>
  void for_each_words(std::size_t word_begin, std::size_t word_end,
                      Visitor&& visit) {
    if (word_end > words_.size()) word_end = words_.size();
    for (std::size_t w = word_begin; w < word_end; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t index = (w << 6) | bit;
        if (!visit(index)) {
          words_[w] &= ~(std::uint64_t{1} << bit);
        }
      }
    }
  }

  /// Number of 64-bit words backing the set (the sharding granularity).
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace smart
