// Sharded parallel execution of the per-cycle pipeline (PR 5).
//
// The engine's serial pipeline visits switches and NICs in ascending index
// order; that order is load-bearing (shared-RNG draw sequences, PacketPool
// free-list recycling, OnlineStats accumulation order). This file runs the
// same pipeline on N worker threads while preserving every one of those
// orders exactly, so results are bit-identical for every thread count:
//
//   region A   parallel: per shard, the NIC generation *draws* only (each
//              NIC owns its RNG; the (src, dst) outcomes are staged in
//              node order).
//   merge      serial: the staged draws allocate packets in ascending
//              shard = ascending node order — the serial pipeline's pool
//              allocation order.
//   region B   parallel: per shard, source-queue streaming, then the fused
//              link/routing/crossbar pass over the shard's active
//              switches, then the NIC link pass. Writes that land inside
//              the shard are applied inline; every write that would cross
//              a shard boundary or touch shared order-sensitive state —
//              peer-lane pushes, terminal consumes, upstream credit acks,
//              hop-trace events, fault-drain drops — is staged.
//   merge      serial: staged pushes, trace events, consumes, drops and
//              credits applied in ascending shard order.
//
// Why deferring the cross-shard writes cannot change any decision: every
// flit pushed across a switch boundary is stamped arrival == current
// cycle, and every same-cycle reader (link pop, routing header guard,
// crossbar advance) ignores flits with arrival >= cycle. Credits apply at
// end of cycle in both pipelines. Consumes, drops and trace events only
// touch the pool, the delivery/drop statistics and the obs event streams,
// all serialized by the merge in the serial pipeline's emission order.
// Fault masks are immutable during the regions (FaultState::advance runs
// serially at the top of the cycle), and randomized routing draws from
// per-switch RNG streams owned by the visiting shard. The full argument,
// including the active-set prune/re-mark equivalence, is written out in
// docs/ARCHITECTURE.md §"Threading".
//
// Shard boundaries are whole ActiveSet words (multiples of 64 indices),
// so two shards never store to the same words_ entry; all remaining
// shared engine state is either read-only during a region or staged.
#include "engine/cycle_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/check.hpp"

namespace smart {

void CycleEngine::setup_parallel() {
  const unsigned budget = config_.engine_threads;
  if (budget <= 1) {
    engine_path_reason_ = "engine_threads <= 1";
    return;
  }
  // Fault plans, trace capture and the built-in randomized routing
  // algorithms all shard now (staged drops/trace events, per-switch RNG
  // streams); what remains serial is a custom routing algorithm that has
  // not declared route() concurrent-safe, and fabrics too small for the
  // merge overhead to pay off. Every applicable reason is collected — a
  // manifest that named only the first would hide the second from
  // threads-1-vs-N determinism-gate diffs.
  std::vector<std::string> reasons;
  if (!routing_.concurrent_safe()) {
    reasons.push_back(routing_.name() + " routing is not concurrent-safe");
  }
  // Small fabrics run serially: with everything in one or two ActiveSet
  // words the merge overhead dwarfs the pass itself.
  const std::size_t largest = std::max(switches_.size(), nics_.size());
  if (largest <= config_.serial_fabric_threshold) {
    reasons.push_back("fabric at or below the serial-fallback threshold (" +
                      std::to_string(largest) + " <= " +
                      std::to_string(config_.serial_fabric_threshold) + ")");
  }

  const std::size_t words = std::max(active_switches_.word_count(),
                                     active_nics_.word_count());
  const std::size_t shard_count =
      std::min<std::size_t>(budget, words);
  if (shard_count <= 1) {
    reasons.push_back("fabric fits a single word-aligned shard");
  }
  if (!reasons.empty()) {
    engine_path_reason_ = reasons.front();
    for (std::size_t i = 1; i < reasons.size(); ++i) {
      engine_path_reason_ += "; " + reasons[i];
    }
    return;
  }

  shards_.resize(shard_count);
  const std::size_t sw_words = active_switches_.word_count();
  const std::size_t nic_words = active_nics_.word_count();
  for (std::size_t i = 0; i < shard_count; ++i) {
    EngineShard& shard = shards_[i];
    shard.index = i;
    shard.sw_word_begin = i * sw_words / shard_count;
    shard.sw_word_end = (i + 1) * sw_words / shard_count;
    shard.nic_word_begin = i * nic_words / shard_count;
    shard.nic_word_end = (i + 1) * nic_words / shard_count;
  }
  // shard_count is clamped to max(sw_words, nic_words), so the i*W/N
  // partition hands every shard at least one word of the LARGER index
  // space; in the smaller space some shards may own an empty range
  // (indirect fabrics have more NICs than switches and vice versa). An
  // empty range is benign — the shard's loop over it is a no-op and its
  // staging vectors stay empty, so the ascending-shard merge order over
  // the non-empty shards still equals ascending element order. The check
  // below pins the "at least one word somewhere" invariant the clamp is
  // supposed to guarantee.
  for (const EngineShard& shard : shards_) {
    SMART_CHECK_MSG(shard.sw_word_end > shard.sw_word_begin ||
                        shard.nic_word_end > shard.nic_word_begin,
                    "engine shard owns no words in either index space");
  }
  shard_of_switch_.resize(switches_.size());
  for (std::size_t i = 0; i < shard_count; ++i) {
    const std::size_t begin = shards_[i].sw_word_begin * 64;
    const std::size_t end =
        std::min(shards_[i].sw_word_end * 64, switches_.size());
    for (std::size_t s = begin; s < end; ++s) {
      shard_of_switch_[s] = static_cast<std::uint32_t>(i);
    }
  }
  team_ = std::make_unique<WorkerTeam>(shard_count);
  parallel_ = true;
  engine_path_reason_ =
      std::to_string(shard_count) + " word-aligned shards on " +
      std::to_string(budget) + " threads";
}

void CycleEngine::parallel_gen() {
  if (prof_) {
    // Region-A contention telemetry: each worker clocks its own shard.
    // Reads only a steady clock, so results stay bit-identical.
    team_->run([this](std::size_t t) {
      const auto t0 = Profiler::now();
      nic_gen_shard(shards_[t]);
      shards_[t].prof_region_a_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Profiler::now() - t0)
              .count());
    });
  } else {
    team_->run([this](std::size_t t) { nic_gen_shard(shards_[t]); });
  }
  for (EngineShard& shard : shards_) {
    for (const EngineShard::GenDraw& draw : shard.generated) {
      enqueue_packet(draw.src, draw.dst);
    }
    shard.generated.clear();
    if (prof_) prof_->generated_packets += shard.prof_generated;
    shard.prof_generated = 0;
  }
}

void CycleEngine::nic_gen_shard(EngineShard& shard) {
  // The draw loop of the serial nic phase (phase_nic.cpp), minus the
  // enqueue: every NIC's RNG advances exactly as it would serially (the
  // draws depend only on per-NIC state), and the outcomes are staged in
  // node order for the serial allocation merge.
  const bool injecting = !draining_ && packet_rate_ > 0.0;
  if (!injecting) return;
  const bool bernoulli =
      config_.traffic.injection == InjectionKind::kBernoulli;
  const auto begin = static_cast<NodeId>(shard.nic_word_begin * 64);
  const auto end = static_cast<NodeId>(
      std::min(shard.nic_word_end * 64, nics_.size()));
  for (NodeId node = begin; node < end; ++node) {
    Nic& nic = nics_[node];
    if (bernoulli ? nic.rng().bernoulli(packet_rate_)
                  : injection_[node]->fires(nic.rng())) {
      const auto dst = pattern_.destination(node, nic.rng());
      if (dst) {
        shard.generated.push_back({node, *dst});
        ++shard.prof_generated;
      }
    }
  }
}

void CycleEngine::parallel_pass() {
  if (prof_) {
    team_->run([this](std::size_t t) {
      const auto t0 = Profiler::now();
      shard_pass(shards_[t]);
      shards_[t].prof_region_b_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Profiler::now() - t0)
              .count());
    });
  } else {
    team_->run([this](std::size_t t) { shard_pass(shards_[t]); });
  }
}

void CycleEngine::shard_pass(EngineShard& shard) {
  // Source-queue streaming — the tail of the serial nic phase. Streaming
  // touches only the NIC's own channels and its own packets in the pool
  // (the arena is not re-allocated during a region: allocation happens
  // only in the serial gen merge).
  const auto nic_begin = static_cast<NodeId>(shard.nic_word_begin * 64);
  const auto nic_end = static_cast<NodeId>(
      std::min(shard.nic_word_end * 64, nics_.size()));
  for (NodeId node = nic_begin; node < nic_end; ++node) {
    Nic& nic = nics_[node];
    if (!nic.stream_pending()) continue;
    const unsigned pushed = nic.stream(cycle_, pool_);
    if (pushed > 0) {
      shard.injected_flits += pushed;
      active_nics_.mark(node);
    }
  }

  // The fused link/routing/crossbar pass over the shard's switches — the
  // same per-switch sequence as the serial fused_phase(), with pushes into
  // other shards staged. Under a fault plan the serial engine runs
  // phase-per-pass (inline drains would reorder pool releases against
  // deliveries); here both consumes and drops are staged and the merge
  // replays them in the phase-per-pass order, so the fused walk is safe.
  // The dead-switch guard mirrors the serial routing/crossbar passes
  // (switch_link_phase carries its own).
  active_switches_.for_each_words(
      shard.sw_word_begin, shard.sw_word_end, [this, &shard](std::size_t s) {
        Switch& sw = switches_[s];
        ++shard.prof_visits;
        if (sw.buffered == 0) return false;  // quiesced: prune from the set
        switch_link_phase(sw, &shard);
        if (sw.buffered == 0) return false;
        if (faults_ && !faults_->switch_ok(sw.id())) return true;  // dead
        route_switch(sw, &shard);
        if (!sw.active_inputs().empty()) crossbar_switch(sw, &shard);
        return true;
      });

  // NIC link pass: the switch-side push is always staged (the attachment
  // switch can live in any shard); the NIC-side bookkeeping (credits,
  // channel pop, round-robin) is applied inline.
  active_nics_.for_each_words(
      shard.nic_word_begin, shard.nic_word_end, [this, &shard](std::size_t n) {
        Nic& nic = nics_[n];
        if (nic.chan_flits == 0) return false;  // channels empty: prune
        nic_link_phase(nic, &shard);
        return true;
      });
}

void CycleEngine::apply_staged_push(const EngineShard::StagedPush& push) {
  SMART_DCHECK(!push.in->buf.full());
  push.in->buf.push(push.flit);
  push.peer->buffered += 1;
  push.peer->in_nonempty.set(push.in_index);
  active_switches_.mark(push.peer->id());
}

void CycleEngine::merge_shards() {
  // Ascending shard order = ascending sender order, the serial pipeline's
  // push order. (Each input lane receives at most one flit per cycle — a
  // lane has exactly one upstream link — so only the consume/credit
  // sequencing below actually depends on this order; keeping it anyway
  // makes the equivalence argument uniform.)
  std::uint64_t staged_flits = 0;
  for (EngineShard& shard : shards_) {
    staged_flits += shard.pushes.size();
    for (const EngineShard::StagedPush& push : shard.pushes) {
      apply_staged_push(push);
    }
    shard.pushes.clear();
  }
  for (EngineShard& shard : shards_) {
    staged_flits += shard.nic_pushes.size();
    for (const EngineShard::StagedPush& push : shard.nic_pushes) {
      apply_staged_push(push);
    }
    shard.nic_pushes.clear();
  }
  // Hop-trace events (--trace-hops) in shard order. Shard order replays
  // every hop_exit in ascending switch order — the serial link pass's
  // emission order — so trace uids (assigned on first touch, and with
  // trace_hops on, always first touched by a hop_exit) are handed out in
  // the serial sequence, and the trace's hop stream is byte-identical.
  // The NIC hop_enters interleave differently than serially (per shard
  // instead of after all switches), which is invisible: hop_enter assigns
  // no uid, appends to no stream, and a packet's head moves one pipeline
  // stage per cycle, so its enter and exit never race within a cycle.
  std::uint64_t staged_trace = 0;
  for (EngineShard& shard : shards_) {
    staged_trace += shard.trace_ops.size();
    for (const EngineShard::StagedTraceOp& op : shard.trace_ops) {
      if (op.kind == EngineShard::StagedTraceOp::Kind::kHopEnter) {
        obs_->hop_enter(op.packet, op.sw, cycle_);
      } else {
        obs_->hop_exit(op.packet, cycle_);
      }
    }
    shard.trace_ops.clear();
  }
  // Terminal consumes in shard (= ascending switch) order: PacketPool
  // releases and the delivery statistics (OnlineStats sums, histogram)
  // happen in exactly the serial sequence.
  for (EngineShard& shard : shards_) {
    for (const Flit& flit : shard.consumed) consume(flit);
    shard.consumed.clear();
  }
  // Fault-drain bookkeeping: dropped worm tails replay after every
  // consume, in shard order — the serial phase-per-pass order (all
  // link-phase deliveries, then all crossbar-phase drains, ascending
  // switch), so pool releases, drop statistics and trace records land in
  // the serial sequence. The scalar counts commute and are added once.
  std::uint64_t staged_drops = 0;
  for (EngineShard& shard : shards_) {
    if (shard.unroutable_headers > 0) {
      unroutable_packets_ += shard.unroutable_headers;
      if (measuring_) window_unroutable_packets_ += shard.unroutable_headers;
      shard.unroutable_headers = 0;
    }
    dropped_flits_ += shard.dropped_flits;
    shard.dropped_flits = 0;
    staged_drops += shard.dropped_tails.size();
    for (PacketId id : shard.dropped_tails) finish_drop(id);
    shard.dropped_tails.clear();
    if (shard.obs_switch_frozen > 0) {
      obs_->stalls.add_switch_frozen(shard.obs_switch_frozen);
      shard.obs_switch_frozen = 0;
    }
  }
  // Credit acks; *credit += 1 commutes, so only the count matters.
  std::uint64_t staged_credits = 0;
  for (EngineShard& shard : shards_) {
    staged_credits += shard.credits.size();
    for (std::uint32_t* credit : shard.credits) *credit += 1;
    shard.credits.clear();
  }
  for (EngineShard& shard : shards_) {
    injected_flits_ += shard.injected_flits;
    shard.injected_flits = 0;
    if (shard.progressed) {
      last_progress_cycle_ = cycle_;
      shard.progressed = false;
    }
  }
  if (prof_) {
    prof_->merge_staged_flits += staged_flits;
    prof_->merge_staged_credits += staged_credits;
    prof_->merge_staged_trace_events += staged_trace;
    prof_->merge_staged_drops += staged_drops;
    prof_->credit_acks += staged_credits;
    std::uint64_t visits_max = 0;
    std::uint64_t visits_min = std::numeric_limits<std::uint64_t>::max();
    for (EngineShard& shard : shards_) {
      prof_->link_flits += shard.prof_link_flits;
      prof_->routed_headers += shard.prof_routed;
      prof_->crossbar_flits += shard.prof_crossbar;
      prof_->add_shard_visits(shard.index, shard.prof_visits);
      if (shard.prof_visits > visits_max) visits_max = shard.prof_visits;
      if (shard.prof_visits < visits_min) visits_min = shard.prof_visits;
      prof_->shard_region_a_ns += shard.prof_region_a_ns;
      prof_->shard_region_b_ns += shard.prof_region_b_ns;
      shard.prof_region_a_ns = 0;
      shard.prof_region_b_ns = 0;
    }
    // This cycle's spread of switch visits across shards — the static
    // partition's per-cycle load imbalance (deterministic).
    prof_->add_shard_imbalance(visits_max - visits_min);
  }
  for (EngineShard& shard : shards_) {
    shard.prof_link_flits = 0;
    shard.prof_routed = 0;
    shard.prof_crossbar = 0;
    shard.prof_visits = 0;
  }
}

}  // namespace smart
