// Sharded parallel execution of the per-cycle pipeline (PR 5).
//
// The engine's serial pipeline visits switches and NICs in ascending index
// order; that order is load-bearing (shared-RNG draw sequences, PacketPool
// free-list recycling, OnlineStats accumulation order). This file runs the
// same pipeline on N worker threads while preserving every one of those
// orders exactly, so results are bit-identical for every thread count:
//
//   region A   parallel: per shard, the NIC generation *draws* only (each
//              NIC owns its RNG; the (src, dst) outcomes are staged in
//              node order).
//   merge      serial: the staged draws allocate packets in ascending
//              shard = ascending node order — the serial pipeline's pool
//              allocation order.
//   region B   parallel: per shard, source-queue streaming, then the fused
//              link/routing/crossbar pass over the shard's active
//              switches, then the NIC link pass. Writes that land inside
//              the shard are applied inline; every write that would cross
//              a shard boundary — peer-lane pushes, terminal consumes,
//              upstream credit acks — is staged.
//   merge      serial: staged pushes, consumes and credits applied in
//              ascending shard order.
//
// Why deferring the cross-shard writes cannot change any decision: every
// flit pushed across a switch boundary is stamped arrival == current
// cycle, and every same-cycle reader (link pop, routing header guard,
// crossbar advance) ignores flits with arrival >= cycle. Credits apply at
// end of cycle in both pipelines. Consumes only touch the pool and the
// delivery statistics, both serialized by the merge. The full argument,
// including the active-set prune/re-mark equivalence, is written out in
// docs/ARCHITECTURE.md §"Threading".
//
// Shard boundaries are whole ActiveSet words (multiples of 64 indices),
// so two shards never store to the same words_ entry; all remaining
// shared engine state is either read-only during a region or staged.
#include "engine/cycle_engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace smart {

void CycleEngine::setup_parallel() {
  const unsigned budget = config_.engine_threads;
  if (budget <= 1) {
    engine_path_reason_ = "engine_threads <= 1";
    return;
  }
  // Features the sharded pipeline cannot preserve bit-identically run the
  // serial pipeline instead: fault plans (drain/release ordering is
  // interleaved with the phases), trace capture (one global event stream;
  // trace_hops alone still grows the shared hop-tracking vectors from the
  // link pass), and routing algorithms whose route() draws from
  // cross-switch state. Plain --obs stays parallel: stall and sampler
  // counters are per-(switch, port) slots owned by the visiting shard.
  if (faults_ != nullptr) {
    engine_path_reason_ = "fault plan active";
    return;
  }
  if (config_.obs.trace_enabled() || config_.obs.trace_hops) {
    engine_path_reason_ = "trace capture active";
    return;
  }
  if (!routing_.concurrent_safe()) {
    engine_path_reason_ =
        routing_.name() + " routing is not concurrent-safe";
    return;
  }
  // Small fabrics run serially: with everything in one or two ActiveSet
  // words the merge overhead dwarfs the pass itself.
  const std::size_t largest = std::max(switches_.size(), nics_.size());
  if (largest <= config_.serial_fabric_threshold) {
    engine_path_reason_ =
        "fabric at or below the serial-fallback threshold (" +
        std::to_string(largest) + " <= " +
        std::to_string(config_.serial_fabric_threshold) + ")";
    return;
  }

  const std::size_t words = std::max(active_switches_.word_count(),
                                     active_nics_.word_count());
  const std::size_t shard_count =
      std::min<std::size_t>(budget, words);
  if (shard_count <= 1) {
    engine_path_reason_ = "fabric fits a single word-aligned shard";
    return;
  }

  shards_.resize(shard_count);
  const std::size_t sw_words = active_switches_.word_count();
  const std::size_t nic_words = active_nics_.word_count();
  for (std::size_t i = 0; i < shard_count; ++i) {
    EngineShard& shard = shards_[i];
    shard.index = i;
    shard.sw_word_begin = i * sw_words / shard_count;
    shard.sw_word_end = (i + 1) * sw_words / shard_count;
    shard.nic_word_begin = i * nic_words / shard_count;
    shard.nic_word_end = (i + 1) * nic_words / shard_count;
  }
  shard_of_switch_.resize(switches_.size());
  for (std::size_t i = 0; i < shard_count; ++i) {
    const std::size_t begin = shards_[i].sw_word_begin * 64;
    const std::size_t end =
        std::min(shards_[i].sw_word_end * 64, switches_.size());
    for (std::size_t s = begin; s < end; ++s) {
      shard_of_switch_[s] = static_cast<std::uint32_t>(i);
    }
  }
  team_ = std::make_unique<WorkerTeam>(shard_count);
  parallel_ = true;
  engine_path_reason_ =
      std::to_string(shard_count) + " word-aligned shards on " +
      std::to_string(budget) + " threads";
}

void CycleEngine::parallel_gen() {
  team_->run([this](std::size_t t) { nic_gen_shard(shards_[t]); });
  for (EngineShard& shard : shards_) {
    for (const EngineShard::GenDraw& draw : shard.generated) {
      enqueue_packet(draw.src, draw.dst);
    }
    shard.generated.clear();
    if (prof_) prof_->generated_packets += shard.prof_generated;
    shard.prof_generated = 0;
  }
}

void CycleEngine::nic_gen_shard(EngineShard& shard) {
  // The draw loop of the serial nic phase (phase_nic.cpp), minus the
  // enqueue: every NIC's RNG advances exactly as it would serially (the
  // draws depend only on per-NIC state), and the outcomes are staged in
  // node order for the serial allocation merge.
  const bool injecting = !draining_ && packet_rate_ > 0.0;
  if (!injecting) return;
  const bool bernoulli =
      config_.traffic.injection == InjectionKind::kBernoulli;
  const auto begin = static_cast<NodeId>(shard.nic_word_begin * 64);
  const auto end = static_cast<NodeId>(
      std::min(shard.nic_word_end * 64, nics_.size()));
  for (NodeId node = begin; node < end; ++node) {
    Nic& nic = nics_[node];
    if (bernoulli ? nic.rng().bernoulli(packet_rate_)
                  : injection_[node]->fires(nic.rng())) {
      const auto dst = pattern_.destination(node, nic.rng());
      if (dst) {
        shard.generated.push_back({node, *dst});
        ++shard.prof_generated;
      }
    }
  }
}

void CycleEngine::parallel_pass() {
  team_->run([this](std::size_t t) { shard_pass(shards_[t]); });
}

void CycleEngine::shard_pass(EngineShard& shard) {
  // Source-queue streaming — the tail of the serial nic phase. Streaming
  // touches only the NIC's own channels and its own packets in the pool
  // (the arena is not re-allocated during a region: allocation happens
  // only in the serial gen merge).
  const auto nic_begin = static_cast<NodeId>(shard.nic_word_begin * 64);
  const auto nic_end = static_cast<NodeId>(
      std::min(shard.nic_word_end * 64, nics_.size()));
  for (NodeId node = nic_begin; node < nic_end; ++node) {
    Nic& nic = nics_[node];
    if (!nic.stream_pending()) continue;
    const unsigned pushed = nic.stream(cycle_, pool_);
    if (pushed > 0) {
      shard.injected_flits += pushed;
      active_nics_.mark(node);
    }
  }

  // The fused link/routing/crossbar pass over the shard's switches — the
  // same per-switch sequence as the serial fused_phase(), with pushes into
  // other shards staged.
  active_switches_.for_each_words(
      shard.sw_word_begin, shard.sw_word_end, [this, &shard](std::size_t s) {
        Switch& sw = switches_[s];
        ++shard.prof_visits;
        if (sw.buffered == 0) return false;  // quiesced: prune from the set
        switch_link_phase(sw, &shard);
        if (sw.buffered == 0) return false;
        route_switch(sw, &shard);
        if (!sw.active_inputs().empty()) crossbar_switch(sw, &shard);
        return true;
      });

  // NIC link pass: the switch-side push is always staged (the attachment
  // switch can live in any shard); the NIC-side bookkeeping (credits,
  // channel pop, round-robin) is applied inline.
  active_nics_.for_each_words(
      shard.nic_word_begin, shard.nic_word_end, [this, &shard](std::size_t n) {
        Nic& nic = nics_[n];
        if (nic.chan_flits == 0) return false;  // channels empty: prune
        nic_link_phase(nic, &shard);
        return true;
      });
}

void CycleEngine::apply_staged_push(const EngineShard::StagedPush& push) {
  SMART_DCHECK(!push.in->buf.full());
  push.in->buf.push(push.flit);
  push.peer->buffered += 1;
  push.peer->in_nonempty.set(push.in_index);
  active_switches_.mark(push.peer->id());
}

void CycleEngine::merge_shards() {
  // Ascending shard order = ascending sender order, the serial pipeline's
  // push order. (Each input lane receives at most one flit per cycle — a
  // lane has exactly one upstream link — so only the consume/credit
  // sequencing below actually depends on this order; keeping it anyway
  // makes the equivalence argument uniform.)
  std::uint64_t staged_flits = 0;
  for (EngineShard& shard : shards_) {
    staged_flits += shard.pushes.size();
    for (const EngineShard::StagedPush& push : shard.pushes) {
      apply_staged_push(push);
    }
    shard.pushes.clear();
  }
  for (EngineShard& shard : shards_) {
    staged_flits += shard.nic_pushes.size();
    for (const EngineShard::StagedPush& push : shard.nic_pushes) {
      apply_staged_push(push);
    }
    shard.nic_pushes.clear();
  }
  // Terminal consumes in shard (= ascending switch) order: PacketPool
  // releases and the delivery statistics (OnlineStats sums, histogram)
  // happen in exactly the serial sequence.
  for (EngineShard& shard : shards_) {
    for (const Flit& flit : shard.consumed) consume(flit);
    shard.consumed.clear();
  }
  // Credit acks; *credit += 1 commutes, so only the count matters.
  std::uint64_t staged_credits = 0;
  for (EngineShard& shard : shards_) {
    staged_credits += shard.credits.size();
    for (std::uint32_t* credit : shard.credits) *credit += 1;
    shard.credits.clear();
  }
  for (EngineShard& shard : shards_) {
    injected_flits_ += shard.injected_flits;
    shard.injected_flits = 0;
    if (shard.progressed) {
      last_progress_cycle_ = cycle_;
      shard.progressed = false;
    }
  }
  if (prof_) {
    prof_->merge_staged_flits += staged_flits;
    prof_->merge_staged_credits += staged_credits;
    prof_->credit_acks += staged_credits;
    for (EngineShard& shard : shards_) {
      prof_->link_flits += shard.prof_link_flits;
      prof_->routed_headers += shard.prof_routed;
      prof_->crossbar_flits += shard.prof_crossbar;
      prof_->add_shard_visits(shard.index, shard.prof_visits);
    }
  }
  for (EngineShard& shard : shards_) {
    shard.prof_link_flits = 0;
    shard.prof_routed = 0;
    shard.prof_crossbar = 0;
    shard.prof_visits = 0;
  }
}

}  // namespace smart
