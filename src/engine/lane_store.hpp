// Flat structure-of-arrays storage for every virtual-channel lane buffer.
//
// The seed engine gave each input lane, output lane and injection channel
// its own RingBuffer<Flit>, i.e. its own heap vector: walking the fabric
// chased one pointer per lane and scattered the hot ring state (head,
// count) across objects. The LaneStore replaces all of that with one
// contiguous arena: every lane has the same depth (SimConfig's
// buffer_depth), so lane `id` owns slots [id * depth, (id + 1) * depth)
// of a single Flit vector, with the ring head/count packed together in
// one parallel meta vector (one cache line covers eight lanes' state).
// Lanes are allocated once at fabric-build time in (switch,
// port, lane) order — switch input lanes, then output lanes, then the NIC
// injection channels — which is exactly the order the phase loops visit
// them, so the per-cycle scans walk the arena forward.
//
// A LaneView is the per-lane handle stored inside InputLane/OutputLane/
// InjectChannel; it mirrors the RingBuffer interface so the routing
// algorithms and tests read lanes exactly as before.
#pragma once

#include <cstdint>
#include <vector>

#include "router/flit.hpp"
#include "util/check.hpp"

namespace smart {

using LaneId = std::uint32_t;

class LaneStore {
 public:
  LaneStore() = default;
  explicit LaneStore(unsigned depth) : depth_(depth) {
    SMART_CHECK(depth > 0);
  }

  /// Appends one empty lane to the arena and returns its id.
  [[nodiscard]] LaneId allocate() {
    SMART_CHECK_MSG(depth_ > 0, "LaneStore used before a depth was set");
    const auto id = static_cast<LaneId>(meta_.size());
    meta_.push_back(Meta{});
    slots_.resize(slots_.size() + depth_);
    return id;
  }

  [[nodiscard]] unsigned depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return meta_.size();
  }

  [[nodiscard]] std::uint32_t size(LaneId id) const noexcept {
    return meta_[id].count;
  }
  [[nodiscard]] bool empty(LaneId id) const noexcept {
    return meta_[id].count == 0;
  }
  [[nodiscard]] bool full(LaneId id) const noexcept {
    return meta_[id].count == depth_;
  }
  [[nodiscard]] std::uint32_t free_slots(LaneId id) const noexcept {
    return depth_ - meta_[id].count;
  }

  void push(LaneId id, const Flit& flit) {
    SMART_DCHECK(!full(id));
    Meta& m = meta_[id];
    std::uint32_t pos = m.head + m.count;
    if (pos >= depth_) pos -= depth_;
    slots_[static_cast<std::size_t>(id) * depth_ + pos] = flit;
    ++m.count;
  }

  [[nodiscard]] Flit& front(LaneId id) {
    SMART_DCHECK(!empty(id));
    return slots_[static_cast<std::size_t>(id) * depth_ + meta_[id].head];
  }
  [[nodiscard]] const Flit& front(LaneId id) const {
    SMART_DCHECK(!empty(id));
    return slots_[static_cast<std::size_t>(id) * depth_ + meta_[id].head];
  }

  /// Element i positions behind the front (i = 0 is the front itself).
  [[nodiscard]] const Flit& at(LaneId id, std::uint32_t i) const {
    SMART_DCHECK(i < meta_[id].count);
    std::uint32_t pos = meta_[id].head + i;
    if (pos >= depth_) pos -= depth_;
    return slots_[static_cast<std::size_t>(id) * depth_ + pos];
  }

  Flit pop(LaneId id) {
    SMART_DCHECK(!empty(id));
    Meta& m = meta_[id];
    const Flit flit = slots_[static_cast<std::size_t>(id) * depth_ + m.head];
    m.head = m.head + 1 == depth_ ? 0 : m.head + 1;
    --m.count;
    return flit;
  }

  /// Flits buffered across every lane of the arena (conservation checks).
  [[nodiscard]] std::uint64_t total_flits() const noexcept {
    std::uint64_t total = 0;
    for (const Meta& m : meta_) total += m.count;
    return total;
  }

 private:
  /// Hot ring state of one lane, packed so a push/pop touches one line.
  struct Meta {
    std::uint32_t head = 0;   ///< ring head
    std::uint32_t count = 0;  ///< fill
  };

  unsigned depth_ = 0;
  std::vector<Flit> slots_;  ///< [lane][slot], one flat arena
  std::vector<Meta> meta_;   ///< ring head/fill per lane
};

/// Handle of one lane inside a LaneStore; RingBuffer-compatible interface.
class LaneView {
 public:
  LaneView() = default;
  LaneView(LaneStore& store, LaneId id) : store_(&store), id_(id) {}

  [[nodiscard]] LaneId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return store_->depth();
  }
  [[nodiscard]] std::size_t size() const noexcept { return store_->size(id_); }
  [[nodiscard]] bool empty() const noexcept { return store_->empty(id_); }
  [[nodiscard]] bool full() const noexcept { return store_->full(id_); }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return store_->free_slots(id_);
  }

  void push(const Flit& flit) { store_->push(id_, flit); }
  [[nodiscard]] Flit& front() { return store_->front(id_); }
  [[nodiscard]] const Flit& front() const {
    return static_cast<const LaneStore*>(store_)->front(id_);
  }
  [[nodiscard]] const Flit& at(std::uint32_t i) const {
    return store_->at(id_, i);
  }
  Flit pop() { return store_->pop(id_); }

 private:
  LaneStore* store_ = nullptr;
  LaneId id_ = 0;
};

}  // namespace smart
