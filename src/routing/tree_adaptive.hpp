// Minimal adaptive routing on the k-ary n-tree (paper §2).
//
// A packet experiences two phases: an ascending ADAPTIVE phase up to one of
// the nearest common ancestors of source and destination, followed by a
// descending DETERMINISTIC phase (the down path from an ancestor is
// unique). While ascending, the algorithm picks the least-loaded up link —
// the one with the maximum number of free virtual channels — with a fair
// choice among links in a similar state; within the chosen link it takes
// the free lane with the most credits. The channel dependency graph of
// up*/down* routing is acyclic, so the algorithm is deadlock-free for any
// V >= 1 (the paper evaluates V = 1, 2 and 4).
//
// The paper leaves the fair tie-break unspecified; it turns out to matter
// (see DESIGN.md §6 and the selection-policy ablation):
//  * kSaltedAffine (default) starts the scan at the up port affine to the
//    input port, offset by a per-switch hash. Streams stay on their links
//    (back-to-back worms queue behind their predecessors), which keeps
//    congestion-free permutations such as complement conflict-free at any
//    V, while the salt decorrelates structured permutations.
//  * kRotating advances a per-switch round-robin pointer: maximal spreading
//    but no stream stability (complement degrades at V >= 2).
//  * kRandom draws the start uniformly: statistically like kRotating.
//  * kMostCredits uses the credit balance as a secondary key after the
//    free-lane count, scanning round-robin.
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "topology/kary_ntree.hpp"
#include "util/rng.hpp"

namespace smart {

class TreeAdaptiveRouting final : public RoutingAlgorithm {
 public:
  /// `seed` feeds the kRandom tie-break streams (one per switch, derived by
  /// SplitMix64 seed mixing); pass the run's traffic seed so replications
  /// and --seed sweeps actually vary the tie-breaks. Ignored by the other
  /// selection policies, which draw nothing.
  TreeAdaptiveRouting(const KaryNTree& tree, unsigned vcs,
                      TreeSelection selection = TreeSelection::kSaltedAffine,
                      std::uint64_t seed = 0x7ee5e1ec7ULL);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId in_port,
                                                  unsigned in_lane, Packet& pkt,
                                                  std::uint64_t cycle) override;
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }
  [[nodiscard]] TreeSelection selection() const noexcept { return selection_; }
  /// Every selection policy decides from the switch and packet alone —
  /// kRandom draws from the visiting switch's own stream — so route() is
  /// safe for the sharded engine under all policies.
  [[nodiscard]] bool concurrent_safe() const override { return true; }

 private:
  [[nodiscard]] unsigned scan_start(const Switch& sw, PortId in_port);

  /// Fault filter for one ascending candidate: the up link must be healthy
  /// and, when the parent is already an ancestor of `dst`, so must the
  /// parent's unique down link towards `dst` (one-step lookahead).
  [[nodiscard]] bool ascent_port_ok(const Switch& sw, PortId up_port,
                                    NodeId dst) const;

  const KaryNTree& tree_;
  unsigned vcs_;
  TreeSelection selection_;
  /// kRandom tie-break streams, one per switch (empty for the other
  /// policies). Each stream is touched only by the shard owning its switch,
  /// and the draws a switch makes are independent of the global route()
  /// call order — the sharded engine's bit-identity requirement.
  std::vector<Rng> rngs_;
};

}  // namespace smart
