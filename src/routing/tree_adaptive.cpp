#include "routing/tree_adaptive.hpp"

#include "fault/fault.hpp"
#include "util/check.hpp"

namespace smart {

TreeAdaptiveRouting::TreeAdaptiveRouting(const KaryNTree& tree, unsigned vcs,
                                         TreeSelection selection,
                                         std::uint64_t seed)
    : tree_(tree), vcs_(vcs), selection_(selection) {
  SMART_CHECK(vcs >= 1);
  // The stall-history policy needs the escape-adaptive core's serial
  // refresh hook; the plain tree algorithm has no per-cycle state.
  SMART_CHECK_MSG(selection_ != TreeSelection::kStallEwma,
                  "tree adaptive routing does not support the stall-history "
                  "selection policy");
  if (selection_ == TreeSelection::kRandom) {
    rngs_.reserve(tree_.switch_count());
    for (SwitchId s = 0; s < tree_.switch_count(); ++s) {
      rngs_.emplace_back(mix_seed(seed, s));
    }
  }
}

std::string TreeAdaptiveRouting::name() const {
  return "adaptive " + std::to_string(vcs_) + "vc";
}

unsigned TreeAdaptiveRouting::scan_start(const Switch& sw, PortId in_port) {
  const unsigned k = tree_.radix();
  switch (selection_) {
    case TreeSelection::kSaltedAffine: {
      std::uint64_t salt_state = sw.id() * 0x9e3779b97f4a7c15ULL + 1;
      const unsigned salt = static_cast<unsigned>(splitmix64(salt_state) % k);
      return (in_port + salt) % k;
    }
    case TreeSelection::kRotating:
    case TreeSelection::kMostCredits:
    case TreeSelection::kStallEwma:  // rejected in the ctor; keep -Wswitch happy
      return sw.route_rr % k;
    case TreeSelection::kRandom:
      return static_cast<unsigned>(rngs_[sw.id()].below(k));
  }
  return 0;
}

bool TreeAdaptiveRouting::ascent_port_ok(const Switch& sw, PortId up_port,
                                         NodeId dst) const {
  if (faults_ == nullptr) return true;
  if (!faults_->link_ok(sw.id(), up_port)) return false;
  // One-step lookahead: if the parent behind this up port is already an
  // ancestor of the destination, the descent starts there and its first
  // (unique) down hop is known now — avoid parents that cannot take it.
  // Faults deeper in the descent stay invisible until reached; packets
  // that meet one are dropped mid-descent.
  const PortPeer parent = tree_.port_peer(sw.id(), up_port);
  if (parent.kind != PeerKind::kSwitch) return false;
  if (tree_.is_ancestor(parent.id, dst)) {
    const PortId down = tree_.down_port_towards(parent.id, dst);
    if (!faults_->link_ok(parent.id, down)) return false;
  }
  return true;
}

std::optional<OutputChoice> TreeAdaptiveRouting::route(Switch& sw,
                                                       PortId in_port,
                                                       unsigned /*in_lane*/,
                                                       Packet& pkt,
                                                       std::uint64_t /*cycle*/) {
  if (tree_.is_ancestor(sw.id(), pkt.dst)) {
    // Descending phase: the down port is unique; only the lane is free.
    const PortId port = tree_.down_port_towards(sw.id(), pkt.dst);
    if (!link_ok(sw, port)) {
      pkt.unroutable = true;  // unique descent severed: no route remains
      return std::nullopt;
    }
    const auto lane = best_bindable_lane(sw.port(port), 0, vcs_);
    if (!lane) return std::nullopt;
    return OutputChoice{port, *lane};
  }

  // Ascending phase: any up port is minimal; pick the least loaded link —
  // the one with the most free virtual channels (paper §2). The tie-break
  // among links in a similar state is the selection policy; see the header
  // and DESIGN.md §6 for why the default keeps streams on their links.
  // Under faults the candidate set shrinks to the healthy siblings.
  const unsigned k = tree_.radix();
  const unsigned start = scan_start(sw, in_port);
  const bool use_credits = selection_ == TreeSelection::kMostCredits;
  std::optional<PortId> best_port;
  unsigned healthy_candidates = 0;
  unsigned best_free = 0;
  std::uint32_t best_credits = 0;
  for (unsigned i = 0; i < k; ++i) {
    const PortId port = k + (i + start) % k;
    if (!ascent_port_ok(sw, port, pkt.dst)) continue;
    ++healthy_candidates;
    const unsigned free_lanes = sw.free_output_lanes(port);
    if (free_lanes == 0) continue;
    std::uint32_t credits = 0;
    if (use_credits) {
      for (const OutputLane& lane : sw.port(port).out) credits += lane.credits;
    }
    const bool better =
        !best_port || free_lanes > best_free ||
        (use_credits && free_lanes == best_free && credits > best_credits);
    if (better) {
      best_free = free_lanes;
      best_credits = credits;
      best_port = port;
    }
  }
  if (!best_port) {
    // No healthy sibling at all is a fault partition, not congestion.
    if (faults_ != nullptr && healthy_candidates == 0) pkt.unroutable = true;
    return std::nullopt;
  }
  const auto lane = best_bindable_lane(sw.port(*best_port), 0, vcs_);
  SMART_DCHECK(lane.has_value());
  return OutputChoice{*best_port, *lane};
}

}  // namespace smart
