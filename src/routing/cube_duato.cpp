#include "routing/cube_duato.hpp"

#include <memory>

#include "routing/escape.hpp"
#include "util/check.hpp"

namespace smart {

CubeDuatoRouting::CubeDuatoRouting(const KaryNCube& cube, unsigned vcs)
    : EscapeAdaptiveRouting(
          cube, std::make_unique<CubeEscape>(cube), vcs,
          Options{SelectionKind::kMostCredits, /*misroute=*/false, /*seed=*/0}) {
  SMART_CHECK_MSG(vcs >= 4 && vcs % 2 == 0,
                  "Duato routing needs adaptive + two escape channels");
}

}  // namespace smart
