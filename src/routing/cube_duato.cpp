#include "routing/cube_duato.hpp"

#include "util/check.hpp"

namespace smart {

CubeDuatoRouting::CubeDuatoRouting(const KaryNCube& cube, unsigned vcs)
    : cube_(cube), escape_(cube, vcs), vcs_(vcs), adaptive_(vcs / 2) {
  SMART_CHECK_MSG(vcs >= 4 && vcs % 2 == 0,
                  "Duato routing needs adaptive + two escape channels");
}

std::optional<OutputChoice> CubeDuatoRouting::route(Switch& sw, PortId /*in_port*/,
                                                    unsigned /*in_lane*/,
                                                    Packet& pkt,
                                                    std::uint64_t cycle) {
  const SwitchId s = sw.id();
  if (s == pkt.dst) {
    const PortId local = cube_.local_port();
    const auto lane =
        best_bindable_lane(sw.port(local), 0,
                           static_cast<unsigned>(sw.port(local).out.size()));
    if (!lane) return std::nullopt;
    return OutputChoice{local, *lane};
  }

  // Adaptive channels first: any minimal direction over a healthy link,
  // most-credits lane, rotating tie-break across the candidate ports.
  std::optional<OutputChoice> best;
  std::uint32_t best_credits = 0;
  bool best_crossing = false;
  bool healthy_adaptive = false;  ///< some minimal direction survives faults
  const unsigned n = cube_.dimensions();
  const std::uint32_t rotate = sw.route_rr;
  for (unsigned i = 0; i < 2 * n; ++i) {
    const unsigned candidate = (i + rotate) % (2 * n);
    const unsigned dim = candidate / 2;
    const bool plus = (candidate % 2) == 0;
    if (!cube_.direction_minimal(s, pkt.dst, dim, plus)) continue;
    const PortId port = KaryNCube::port_of(dim, plus);
    if (!link_ok(sw, port)) continue;
    healthy_adaptive = true;
    const auto lane = best_bindable_lane(sw.port(port), 0, adaptive_);
    if (!lane) continue;
    const std::uint32_t credits = sw.port(port).out[*lane].credits;
    if (!best || credits > best_credits) {
      best = OutputChoice{port, *lane};
      best_credits = credits;
      best_crossing = cube_.crosses_wraparound(s, dim, plus);
    }
  }
  if (best) {
    if (best_crossing) {
      pkt.wrap_mask |= 1U << KaryNCube::dim_of_port(best->port);
    }
    return best;
  }

  // Escape path: the deterministic hop, restricted to the escape channels
  // of the dateline-selected virtual network. The escape network is never
  // rerouted around faults — that is what keeps it deadlock-free — so a
  // faulted escape hop either stalls the packet (healthy adaptive links
  // remain: wait for one of their lanes) or, when the faults severed every
  // minimal direction, makes it unroutable.
  const auto hop = escape_.dor_hop(s, pkt.dst);
  SMART_CHECK(hop.has_value());
  const auto [dim, plus] = *hop;
  const PortId port = KaryNCube::port_of(dim, plus);
  if (!link_ok(sw, port)) {
    if (!healthy_adaptive) pkt.unroutable = true;
    return std::nullopt;
  }
  const bool crossing = cube_.crosses_wraparound(s, dim, plus);
  const bool after_dateline = crossing || ((pkt.wrap_mask >> dim) & 1U) != 0;
  const unsigned escape_per_vn = (vcs_ - adaptive_) / 2;
  const unsigned first = adaptive_ + (after_dateline ? escape_per_vn : 0);
  const auto lane = best_bindable_lane(sw.port(port), first, escape_per_vn);
  if (!lane) return std::nullopt;
  if (crossing) pkt.wrap_mask |= 1U << dim;
  (void)cycle;
  return OutputChoice{port, *lane};
}

}  // namespace smart
