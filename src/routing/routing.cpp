#include "routing/routing.hpp"

#include "fault/fault.hpp"
#include "util/check.hpp"

namespace smart {

bool RoutingAlgorithm::link_ok(const Switch& sw, PortId port) const {
  return faults_ == nullptr || faults_->link_ok(sw.id(), port);
}

std::optional<unsigned> best_bindable_lane(const SwitchPort& port,
                                           unsigned first, unsigned count,
                                           std::uint32_t rr) {
  SMART_DCHECK(first + count <= port.out.size());
  std::optional<unsigned> best;
  std::uint32_t best_credits = 0;
  for (unsigned i = 0; i < count; ++i) {
    const unsigned lane = first + (i + rr) % count;
    const OutputLane& out = port.out[lane];
    if (!out.bindable()) continue;
    if (!best || out.credits > best_credits) {
      best = lane;
      best_credits = out.credits;
    }
  }
  return best;
}

}  // namespace smart
