#include "routing/selection.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "util/check.hpp"

namespace smart {
namespace {

/// EWMA refresh period in cycles. Coarse on purpose: real congestion
/// persists across hundreds of cycles, and a long period keeps the serial
/// per-cycle cost negligible.
constexpr std::uint64_t kRefreshPeriod = 64;

/// Penalty stays strictly below one credit step of the combined score
/// (credits << 20), so stall history only orders candidates whose best
/// lanes hold equal credits.
constexpr std::int64_t kPenaltyCap = (std::int64_t{1} << 20) - 1;

/// Gain on the per-period stall delta before it enters the EWMA.
constexpr unsigned kGainShift = 8;

}  // namespace

bool parse_selection_key(const std::string& key, SelectionKind* out) {
  if (key == "affine") *out = SelectionKind::kSaltedAffine;
  else if (key == "rotating") *out = SelectionKind::kRotating;
  else if (key == "random") *out = SelectionKind::kRandom;
  else if (key == "credits") *out = SelectionKind::kMostCredits;
  else if (key == "stall") *out = SelectionKind::kStallEwma;
  else return false;
  return true;
}

std::string selection_usage() {
  return "valid --selection policies: affine | rotating | random | "
         "credits | stall";
}

SelectionState::SelectionState(SelectionKind kind, std::size_t switch_count,
                               std::size_t ports_per_switch,
                               std::uint64_t seed)
    : kind_(kind),
      switch_count_(switch_count),
      ports_per_switch_(ports_per_switch) {
  if (kind_ == SelectionKind::kRandom) {
    rngs_.reserve(switch_count_);
    for (SwitchId s = 0; s < switch_count_; ++s) {
      rngs_.emplace_back(mix_seed(seed, s));
    }
  }
}

unsigned SelectionState::scan_start(const Switch& sw, PortId in_port,
                                    unsigned slots) {
  SMART_DCHECK(slots > 0);
  switch (kind_) {
    case SelectionKind::kSaltedAffine: {
      std::uint64_t salt_state = sw.id() * 0x9e3779b97f4a7c15ULL + 1;
      const unsigned salt =
          static_cast<unsigned>(splitmix64(salt_state) % slots);
      return (in_port + salt) % slots;
    }
    case SelectionKind::kRotating:
    // The credit-scored policies scan every candidate anyway; the rotating
    // start only orders equal scores (Duato's rotating tie-break).
    case SelectionKind::kMostCredits:
    case SelectionKind::kStallEwma:
      return sw.route_rr % slots;
    case SelectionKind::kRandom:
      return static_cast<unsigned>(rngs_[sw.id()].below(slots));
  }
  return 0;
}

void SelectionState::begin_cycle(std::uint64_t cycle,
                                 const StallCounters* stalls) {
  if (kind_ != SelectionKind::kStallEwma || stalls == nullptr) return;
  if (ewma_.empty()) {
    ewma_.assign(switch_count_, 0);
    last_total_.assign(switch_count_, 0);
  }
  if (last_refresh_ != 0 && cycle - last_refresh_ < kRefreshPeriod) return;
  last_refresh_ = cycle;
  for (SwitchId s = 0; s < switch_count_; ++s) {
    std::uint64_t total = 0;
    for (PortId p = 0; p < ports_per_switch_; ++p) {
      total += stalls->at(s, p).total();
    }
    const auto delta = static_cast<std::int64_t>(total - last_total_[s]);
    last_total_[s] = total;
    ewma_[s] = std::min((3 * ewma_[s] + (delta << kGainShift)) / 4,
                        kPenaltyCap);
  }
}

}  // namespace smart
