// Minimal adaptive routing on the k-ary n-cube based on Duato's methodology
// (paper §3; Duato TPDS'93/'95).
//
// Each link's V virtual channels split into V/2 adaptive channels — on
// which a packet may be routed along ANY minimal direction — and V/2
// deterministic escape channels. When no adaptive channel is free, the
// packet falls back to the escape channel of its dimension-order hop, whose
// virtual network is chosen by the dateline rule (one escape channel per
// virtual network). Channel allocation is non-monotonic: a packet in the
// escape channels re-enters the adaptive ones at the next hop whenever one
// is free. The single injection channel per node (source throttling) keeps
// throughput stable above saturation.
//
// With the paper's V = 4 on a 2-cube: 2 adaptive channels usable in both
// dimensions plus 2 escape channels, routing freedom F = 6.
//
// Since the escape-adaptive refactor this class is a thin instantiation of
// the generic EscapeAdaptiveRouting core with the cube's DOR escape
// provider and the most-credits selection policy — decision for decision
// identical to the original hand-written implementation (the
// engine-refactor goldens pin the equivalence bit for bit).
#pragma once

#include "routing/escape_adaptive.hpp"
#include "topology/kary_ncube.hpp"

namespace smart {

class CubeDuatoRouting final : public EscapeAdaptiveRouting {
 public:
  CubeDuatoRouting(const KaryNCube& cube, unsigned vcs);

  [[nodiscard]] std::string name() const override { return "Duato"; }
};

}  // namespace smart
