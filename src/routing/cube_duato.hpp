// Minimal adaptive routing on the k-ary n-cube based on Duato's methodology
// (paper §3; Duato TPDS'93/'95).
//
// Each link's V virtual channels split into V/2 adaptive channels — on
// which a packet may be routed along ANY minimal direction — and V/2
// deterministic escape channels. When no adaptive channel is free, the
// packet falls back to the escape channel of its dimension-order hop, whose
// virtual network is chosen by the dateline rule (one escape channel per
// virtual network). Channel allocation is non-monotonic: a packet in the
// escape channels re-enters the adaptive ones at the next hop whenever one
// is free. The single injection channel per node (source throttling) keeps
// throughput stable above saturation.
//
// With the paper's V = 4 on a 2-cube: 2 adaptive channels usable in both
// dimensions plus 2 escape channels, routing freedom F = 6.
#pragma once

#include "routing/cube_dor.hpp"
#include "routing/routing.hpp"
#include "topology/kary_ncube.hpp"

namespace smart {

class CubeDuatoRouting final : public RoutingAlgorithm {
 public:
  CubeDuatoRouting(const KaryNCube& cube, unsigned vcs);

  [[nodiscard]] std::string name() const override { return "Duato"; }
  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId in_port,
                                                  unsigned in_lane, Packet& pkt,
                                                  std::uint64_t cycle) override;
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }
  /// Pure function of (switch, packet); the escape path (DOR) is too.
  [[nodiscard]] bool concurrent_safe() const override { return true; }

 private:
  const KaryNCube& cube_;
  CubeDorRouting escape_;  ///< supplies the deterministic escape hop
  unsigned vcs_;
  unsigned adaptive_;  ///< adaptive channels per link (= V/2, lanes [0, adaptive))
};

}  // namespace smart
