// Escape-routing providers: the deterministic, deadlock-free subnetwork a
// topology contributes to the composable adaptive core (Duato's
// methodology, generalized beyond the hypercube).
//
// An EscapeRouting answers four questions about a (switch, packet) pair:
// has the packet arrived (eject port), which outputs are minimal adaptive
// candidates, which outputs would be legal one-time misroutes, and what is
// THE deterministic escape hop plus its virtual network. The provider is
// fault-blind: the adaptive core filters candidates by link health and
// owns the unroutable decision, so each provider is pure topology
// geometry. Four providers ship here:
//
//   cube-dor    dimension-order on the k-ary n-cube/mesh, 2 dateline VNs
//   torus-dor   dimension-order on the mixed-radix torus, 2 dateline VNs
//   updown      up*/down* on the two-level fat-tree / Clos, 1 VN
//   tree-updown deterministic ascent + unique descent on the k-ary
//               n-tree, 1 VN
//
// Each escape subnetwork's channel dependency graph is acyclic (DOR with
// dateline virtual networks; up-then-down orderings), which is the whole
// deadlock-freedom argument of the composed algorithm — see
// docs/ROUTING.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "router/flit.hpp"
#include "router/switch.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"
#include "topology/mixed_radix_torus.hpp"
#include "topology/topology.hpp"
#include "topology/two_level_fattree.hpp"

namespace smart {

/// One adaptive candidate: the output port, the provider's direction-slot
/// index (a stable position in a per-provider slot space; the selection
/// policies rotate their scan start over it), and the dateline bits to OR
/// into Packet::wrap_mask when the candidate wins.
struct AdaptiveCandidate {
  PortId port = 0;
  unsigned slot = 0;
  std::uint32_t wrap_bits = 0;
};

/// The deterministic escape hop: output port, the escape virtual network
/// selected by the provider's dateline rule, and the wrap bits to set once
/// a lane on the hop is actually taken.
struct EscapeHop {
  PortId port = 0;
  unsigned vn = 0;
  std::uint32_t wrap_bits = 0;
};

class EscapeRouting {
 public:
  virtual ~EscapeRouting() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Escape virtual networks required (cube/torus datelines need 2,
  /// up-then-down orderings need 1).
  [[nodiscard]] virtual unsigned virtual_networks() const = 0;

  /// Upper bound of candidate_slots() over all switches (buffer sizing).
  [[nodiscard]] virtual unsigned max_candidate_slots() const = 0;

  /// Size of the direction-slot space at `sw` for `pkt`; scan starts are
  /// taken modulo it.
  [[nodiscard]] virtual unsigned candidate_slots(const Switch& sw,
                                                 const Packet& pkt) const = 0;

  /// The delivery port when the packet has arrived; nullopt otherwise.
  [[nodiscard]] virtual std::optional<PortId> eject_port(
      const Switch& sw, const Packet& pkt) const = 0;

  /// Writes the minimal adaptive candidates into out[0..cap) in ascending
  /// slot order and returns the count. Fault-blind by contract.
  virtual unsigned minimal_candidates(const Switch& sw, const Packet& pkt,
                                      AdaptiveCandidate* out,
                                      unsigned cap) const = 0;

  /// Non-minimal candidates for a one-time misroute (never back out the
  /// input port). Default: none — indirect networks keep their up*/down*
  /// order on the adaptive lanes too.
  virtual unsigned misroute_candidates(const Switch& sw, PortId in_port,
                                       const Packet& pkt,
                                       AdaptiveCandidate* out,
                                       unsigned cap) const {
    (void)sw;
    (void)in_port;
    (void)pkt;
    (void)out;
    (void)cap;
    return 0;
  }

  /// The deterministic escape hop. Only called when eject_port() is empty.
  [[nodiscard]] virtual EscapeHop escape_hop(const Switch& sw,
                                             const Packet& pkt) const = 0;
};

/// Dimension-order escape on the k-ary n-cube/mesh (2 dateline VNs).
/// Slot 2d is dimension d in the + direction, slot 2d+1 the - direction —
/// the exact candidate order of the original CubeDuatoRouting.
class CubeEscape final : public EscapeRouting {
 public:
  explicit CubeEscape(const KaryNCube& cube) : cube_(cube) {}

  [[nodiscard]] std::string name() const override { return "cube DOR"; }
  [[nodiscard]] unsigned virtual_networks() const override { return 2; }
  [[nodiscard]] unsigned max_candidate_slots() const override {
    return 2 * cube_.dimensions();
  }
  [[nodiscard]] unsigned candidate_slots(const Switch&,
                                         const Packet&) const override {
    return 2 * cube_.dimensions();
  }
  [[nodiscard]] std::optional<PortId> eject_port(
      const Switch& sw, const Packet& pkt) const override;
  unsigned minimal_candidates(const Switch& sw, const Packet& pkt,
                              AdaptiveCandidate* out,
                              unsigned cap) const override;
  unsigned misroute_candidates(const Switch& sw, PortId in_port,
                               const Packet& pkt, AdaptiveCandidate* out,
                               unsigned cap) const override;
  [[nodiscard]] EscapeHop escape_hop(const Switch& sw,
                                     const Packet& pkt) const override;

 private:
  const KaryNCube& cube_;
};

/// Dimension-order escape on the mixed-radix torus (2 dateline VNs); the
/// same slot convention as CubeEscape with per-dimension radices.
class TorusEscape final : public EscapeRouting {
 public:
  explicit TorusEscape(const MixedRadixTorus& torus) : torus_(torus) {}

  [[nodiscard]] std::string name() const override { return "torus DOR"; }
  [[nodiscard]] unsigned virtual_networks() const override { return 2; }
  [[nodiscard]] unsigned max_candidate_slots() const override {
    return 2 * torus_.dims();
  }
  [[nodiscard]] unsigned candidate_slots(const Switch&,
                                         const Packet&) const override {
    return 2 * torus_.dims();
  }
  [[nodiscard]] std::optional<PortId> eject_port(
      const Switch& sw, const Packet& pkt) const override;
  unsigned minimal_candidates(const Switch& sw, const Packet& pkt,
                              AdaptiveCandidate* out,
                              unsigned cap) const override;
  unsigned misroute_candidates(const Switch& sw, PortId in_port,
                               const Packet& pkt, AdaptiveCandidate* out,
                               unsigned cap) const override;
  [[nodiscard]] EscapeHop escape_hop(const Switch& sw,
                                     const Packet& pkt) const override;

 private:
  const MixedRadixTorus& torus_;
};

/// Up*/down* escape on the two-level fat-tree / Clos (1 VN): the escape up
/// rail and down rail are hashed from the destination, adaptive candidates
/// are every up rail (leaf) or every rail to the destination leaf (spine).
class UpDownEscape final : public EscapeRouting {
 public:
  explicit UpDownEscape(const TwoLevelFatTree& fabric) : fabric_(fabric) {}

  [[nodiscard]] std::string name() const override { return "up*/down*"; }
  [[nodiscard]] unsigned virtual_networks() const override { return 1; }
  [[nodiscard]] unsigned max_candidate_slots() const override {
    return std::max(fabric_.up_port_count(), fabric_.rails());
  }
  [[nodiscard]] unsigned candidate_slots(const Switch& sw,
                                         const Packet& pkt) const override;
  [[nodiscard]] std::optional<PortId> eject_port(
      const Switch& sw, const Packet& pkt) const override;
  unsigned minimal_candidates(const Switch& sw, const Packet& pkt,
                              AdaptiveCandidate* out,
                              unsigned cap) const override;
  [[nodiscard]] EscapeHop escape_hop(const Switch& sw,
                                     const Packet& pkt) const override;

 private:
  const TwoLevelFatTree& fabric_;
};

/// Up*/down* escape on the k-ary n-tree (1 VN): deterministic ascent port
/// hashed from the destination, unique descent; adaptive candidates are
/// all k up ports while ascending.
class TreeEscape final : public EscapeRouting {
 public:
  explicit TreeEscape(const KaryNTree& tree) : tree_(tree) {}

  [[nodiscard]] std::string name() const override { return "tree up*/down*"; }
  [[nodiscard]] unsigned virtual_networks() const override { return 1; }
  [[nodiscard]] unsigned max_candidate_slots() const override {
    return tree_.radix();
  }
  [[nodiscard]] unsigned candidate_slots(const Switch& sw,
                                         const Packet& pkt) const override;
  [[nodiscard]] std::optional<PortId> eject_port(
      const Switch& sw, const Packet& pkt) const override;
  unsigned minimal_candidates(const Switch& sw, const Packet& pkt,
                              AdaptiveCandidate* out,
                              unsigned cap) const override;
  [[nodiscard]] EscapeHop escape_hop(const Switch& sw,
                                     const Packet& pkt) const override;

 private:
  const KaryNTree& tree_;
};

/// Builds the provider registered under `key` ("cube-dor", "torus-dor",
/// "updown", "tree-updown") for `topo`, or null with a message in *error
/// when the key is unknown or the topology's concrete type does not match.
/// The registry stores the string key (TopologyFamily::escape_routing) so
/// the topology/synth layers stay free of routing types.
[[nodiscard]] std::unique_ptr<EscapeRouting> make_escape_routing(
    const std::string& key, const Topology& topo, std::string* error);

}  // namespace smart
