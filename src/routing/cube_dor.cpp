#include "routing/cube_dor.hpp"

#include "util/check.hpp"

namespace smart {

CubeDorRouting::CubeDorRouting(const KaryNCube& cube, unsigned vcs)
    : cube_(cube), vcs_(vcs), per_vn_(vcs / 2) {
  SMART_CHECK_MSG(vcs >= 2 && vcs % 2 == 0,
                  "dimension-order routing needs two virtual networks");
  SMART_CHECK_MSG(cube.dimensions() <= 32,
                  "dateline mask supports up to 32 dimensions");
}

std::optional<std::pair<unsigned, bool>> CubeDorRouting::dor_hop(
    SwitchId s, NodeId dst) const {
  for (unsigned d = 0; d < cube_.dimensions(); ++d) {
    if (cube_.coord(s, d) == cube_.coord(dst, d)) continue;
    return std::make_pair(d, cube_.dor_direction(s, dst, d));
  }
  return std::nullopt;
}

std::optional<OutputChoice> CubeDorRouting::route(Switch& sw, PortId /*in_port*/,
                                                  unsigned /*in_lane*/,
                                                  Packet& pkt,
                                                  std::uint64_t /*cycle*/) {
  const auto hop = dor_hop(sw.id(), pkt.dst);
  if (!hop) {
    // Arrived: eject through the local processor interface.
    const PortId local = cube_.local_port();
    const auto lane =
        best_bindable_lane(sw.port(local), 0,
                           static_cast<unsigned>(sw.port(local).out.size()));
    if (!lane) return std::nullopt;
    return OutputChoice{local, *lane};
  }

  const auto [dim, plus] = *hop;
  const PortId port = KaryNCube::port_of(dim, plus);
  if (!link_ok(sw, port)) {
    // Dimension order is fully deterministic: a faulted hop leaves no legal
    // alternative, so report the packet unroutable instead of wedging.
    pkt.unroutable = true;
    return std::nullopt;
  }
  const bool crossing = cube_.crosses_wraparound(sw.id(), dim, plus);
  const bool after_dateline =
      crossing || ((pkt.wrap_mask >> dim) & 1U) != 0;
  const unsigned vn = after_dateline ? 1 : 0;

  const auto lane = best_bindable_lane(sw.port(port), vn * per_vn_, per_vn_);
  if (!lane) return std::nullopt;
  if (crossing) pkt.wrap_mask |= 1U << dim;
  return OutputChoice{port, *lane};
}

}  // namespace smart
