#include "routing/escape_adaptive.hpp"

#include "util/check.hpp"

namespace smart {
namespace {

/// Stack bound on one switch's candidate list; far above any registered
/// family (a 32-dim torus has 64 direction slots, a 4K fat-tree leaf a few
/// hundred up rails).
constexpr unsigned kMaxAdaptiveCandidates = 512;

}  // namespace

EscapeAdaptiveRouting::EscapeAdaptiveRouting(
    const Topology& topo, std::unique_ptr<EscapeRouting> escape, unsigned vcs,
    Options options)
    : escape_(std::move(escape)),
      vcs_(vcs),
      adaptive_(vcs / 2),
      options_(options),
      select_(options.selection, topo.switch_count(), topo.ports_per_switch(),
              options.seed),
      counters_(topo.switch_count()) {
  SMART_CHECK(escape_ != nullptr);
  const unsigned vns = escape_->virtual_networks();
  SMART_CHECK_MSG(
      adaptive_ >= 1 && vcs_ > adaptive_ && (vcs_ - adaptive_) >= vns &&
          (vcs_ - adaptive_) % vns == 0,
      "escape-adaptive routing needs >= 1 adaptive lane and an equal "
      "number of escape lanes per escape virtual network");
  escape_per_vn_ = (vcs_ - adaptive_) / vns;
  SMART_CHECK_MSG(escape_->max_candidate_slots() <= kMaxAdaptiveCandidates,
                  "escape provider exceeds the adaptive candidate bound");
}

std::string EscapeAdaptiveRouting::name() const {
  return "escape-adaptive(" + escape_->name() + ", " +
         to_string(select_.kind()) + (options_.misroute ? ", misroute" : "") +
         ") " + std::to_string(vcs_) + "vc";
}

std::optional<OutputChoice> EscapeAdaptiveRouting::pick(
    Switch& sw, PortId in_port, const AdaptiveCandidate* candidates,
    unsigned count, unsigned slots, std::uint32_t* wrap_bits) {
  if (count == 0) return std::nullopt;
  const unsigned start = select_.scan_start(sw, in_port, slots);
  // Candidates arrive in ascending slot order; starting at the first slot
  // >= start and wrapping visits them in exactly the rotated order a
  // modular scan over the full slot space would.
  unsigned first = 0;
  while (first < count && candidates[first].slot < start) ++first;
  if (first == count) first = 0;

  const bool credit_scored = select_.credit_scored();
  const bool stall_scored = select_.kind() == SelectionKind::kStallEwma;
  std::optional<OutputChoice> best;
  std::int64_t best_score = 0;
  for (unsigned j = 0; j < count; ++j) {
    const AdaptiveCandidate& cand = candidates[(first + j) % count];
    const SwitchPort& port = sw.port(cand.port);
    const auto lane = best_bindable_lane(port, 0, adaptive_);
    if (!lane) continue;
    std::int64_t score;
    if (credit_scored) {
      // Credit depth of the best lane; one credit always outweighs the
      // (sub-2^20) stall-history penalty of the downstream switch.
      score = static_cast<std::int64_t>(port.out[*lane].credits) << 20;
      if (stall_scored && port.peer.kind == PeerKind::kSwitch) {
        score -= select_.penalty(port.peer.id);
      }
    } else {
      // Positional policies rank by free adaptive lanes; the scan order
      // (affine/rotating/random start) is the fair choice among ties.
      unsigned free_lanes = 0;
      for (unsigned l = 0; l < adaptive_; ++l) {
        if (port.out[l].bindable()) ++free_lanes;
      }
      score = free_lanes;
    }
    if (!best || score > best_score) {
      best = OutputChoice{cand.port, *lane};
      best_score = score;
      *wrap_bits = cand.wrap_bits;
    }
  }
  return best;
}

std::optional<OutputChoice> EscapeAdaptiveRouting::route(
    Switch& sw, PortId in_port, unsigned /*in_lane*/, Packet& pkt,
    std::uint64_t /*cycle*/) {
  if (const auto eject = escape_->eject_port(sw, pkt)) {
    const auto lane =
        best_bindable_lane(sw.port(*eject), 0,
                           static_cast<unsigned>(sw.port(*eject).out.size()));
    if (!lane) return std::nullopt;
    return OutputChoice{*eject, *lane};
  }

  // Adaptive lanes first: any link-healthy minimal candidate, ranked by
  // the selection policy.
  AdaptiveCandidate buf[kMaxAdaptiveCandidates];
  const unsigned slots = escape_->candidate_slots(sw, pkt);
  unsigned count =
      escape_->minimal_candidates(sw, pkt, buf, kMaxAdaptiveCandidates);
  bool healthy_adaptive = false;  ///< some minimal direction survives faults
  if (faults_ != nullptr) {
    unsigned healthy = 0;
    for (unsigned i = 0; i < count; ++i) {
      if (!link_ok(sw, buf[i].port)) continue;
      buf[healthy++] = buf[i];  // keeps ascending slot order
    }
    count = healthy;
  }
  healthy_adaptive = count > 0;
  std::uint32_t wrap_bits = 0;
  if (auto choice = pick(sw, in_port, buf, count, slots, &wrap_bits)) {
    pkt.wrap_mask |= wrap_bits;
    ++counters_[sw.id()].adaptive;
    return choice;
  }

  // One optional misroute before falling back: a non-minimal hop on the
  // adaptive lanes, at most once per packet so progress stays bounded.
  if (options_.misroute && pkt.misroutes == 0) {
    unsigned mcount = escape_->misroute_candidates(sw, in_port, pkt, buf,
                                                   kMaxAdaptiveCandidates);
    if (faults_ != nullptr) {
      unsigned healthy = 0;
      for (unsigned i = 0; i < mcount; ++i) {
        if (!link_ok(sw, buf[i].port)) continue;
        buf[healthy++] = buf[i];
      }
      mcount = healthy;
    }
    if (auto choice = pick(sw, in_port, buf, mcount, slots, &wrap_bits)) {
      pkt.wrap_mask |= wrap_bits;
      ++pkt.misroutes;
      ++counters_[sw.id()].misroute;
      return choice;
    }
  }

  // Escape path: the deterministic hop, restricted to the escape lanes of
  // the provider-selected virtual network. The escape subnetwork is never
  // rerouted around faults — that is what keeps it deadlock-free — so a
  // faulted escape hop either stalls the packet (healthy adaptive links
  // remain: wait for one of their lanes) or, when the faults severed every
  // minimal direction, makes it unroutable.
  const EscapeHop hop = escape_->escape_hop(sw, pkt);
  if (!link_ok(sw, hop.port)) {
    if (!healthy_adaptive) pkt.unroutable = true;
    return std::nullopt;
  }
  const unsigned lane_base = adaptive_ + hop.vn * escape_per_vn_;
  const auto lane = best_bindable_lane(sw.port(hop.port), lane_base,
                                       escape_per_vn_);
  if (!lane) return std::nullopt;
  pkt.wrap_mask |= hop.wrap_bits;
  ++counters_[sw.id()].escape;
  return OutputChoice{hop.port, *lane};
}

double EscapeAdaptiveRouting::escape_pressure(const Switch& sw) const {
  unsigned lanes = 0;
  unsigned starved = 0;
  for (PortId p = 0; p < sw.port_count(); ++p) {
    const SwitchPort& port = sw.port(p);
    if (port.peer.kind != PeerKind::kSwitch) continue;
    if (port.out.size() < vcs_) continue;
    for (unsigned l = adaptive_; l < vcs_; ++l) {
      ++lanes;
      if (port.out[l].credits == 0) ++starved;
    }
  }
  if (lanes == 0) return 0.0;
  return static_cast<double>(starved) / static_cast<double>(lanes);
}

RoutingStats EscapeAdaptiveRouting::stats() const {
  RoutingStats total;
  for (const SwitchCounters& c : counters_) {
    total.adaptive_headers += c.adaptive;
    total.escape_headers += c.escape;
    total.misroute_headers += c.misroute;
  }
  return total;
}

}  // namespace smart
