// Output-selection policies for adaptive routing (shared by the tree's
// ascent tie-break and the generic escape-adaptive core).
//
// The paper specifies "the less loaded link ... (a fair choice is made when
// more links are in a similar state)" but leaves both the load signal and
// the fair choice open. This header unifies every policy the simulator
// implements behind one enum + one state object:
//
//  * kSaltedAffine — scan starts at the output affine to the input port,
//    offset by a per-switch hash. Stream-stable: back-to-back worms queue
//    behind their predecessors, which keeps congestion-free permutations
//    conflict-free (see DESIGN.md §6).
//  * kRotating — per-switch round-robin start: maximal spreading, no
//    stream stability.
//  * kRandom — uniform start from the visiting switch's own RNG stream.
//  * kMostCredits — rank candidates by the credit depth of their best
//    lane (the classic local congestion signal; Duato's protocol uses it).
//  * kStallEwma — credit depth, tie-broken by a decayed history of the
//    downstream switch's stall counters from the obs layer: candidates
//    whose far end has recently starved score lower. Needs --obs (the
//    engine enables the counters automatically for this policy).
//
// All mutable state is per-switch (RNG streams) or refreshed serially
// between cycles (the EWMA table, read-only during routing), so algorithms
// built on SelectionState keep RoutingAlgorithm::concurrent_safe() true
// and the engine's thread-count bit-identity holds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "router/switch.hpp"
#include "util/rng.hpp"

namespace smart {

class StallCounters;

enum class SelectionKind : std::uint8_t {
  kSaltedAffine,
  kRotating,
  kRandom,
  kMostCredits,
  kStallEwma,
};

/// Historical name: the tree's tie-break enum grew into the shared
/// selection-policy set; existing TreeSelection::k... spellings compile on.
using TreeSelection = SelectionKind;

/// Inline so the obs layer (which does not link smart_routing) can echo
/// the policy into run manifests.
[[nodiscard]] inline std::string to_string(SelectionKind selection) {
  switch (selection) {
    case SelectionKind::kSaltedAffine: return "salted affine";
    case SelectionKind::kRotating: return "rotating";
    case SelectionKind::kRandom: return "random";
    case SelectionKind::kMostCredits: return "most credits";
    case SelectionKind::kStallEwma: return "stall EWMA";
  }
  return "unknown";
}

/// Parses a CLI key (affine|rotating|random|credits|stall) into *out.
[[nodiscard]] bool parse_selection_key(const std::string& key,
                                       SelectionKind* out);

/// One-line listing of the valid CLI keys for error messages.
[[nodiscard]] std::string selection_usage();

/// Per-run selection state: scan starts for the tie-break policies and the
/// stall-history EWMA behind kStallEwma.
class SelectionState {
 public:
  /// `seed` feeds the kRandom streams (one per switch, derived by SplitMix64
  /// seed mixing); ignored by the other policies, which draw nothing.
  /// `ports_per_switch` sizes the stall-counter sweep for kStallEwma.
  SelectionState(SelectionKind kind, std::size_t switch_count,
                 std::size_t ports_per_switch, std::uint64_t seed);

  [[nodiscard]] SelectionKind kind() const noexcept { return kind_; }

  /// True when candidates are ranked by credit depth (kMostCredits,
  /// kStallEwma) rather than by free-lane count with a positional start.
  [[nodiscard]] bool credit_scored() const noexcept {
    return kind_ == SelectionKind::kMostCredits ||
           kind_ == SelectionKind::kStallEwma;
  }

  /// Where the candidate scan begins among `slots` direction slots at `sw`.
  /// First-seen wins ties, so the start IS the fair choice.
  [[nodiscard]] unsigned scan_start(const Switch& sw, PortId in_port,
                                    unsigned slots);

  /// Serial per-cycle hook (called by the engine before any routing):
  /// refreshes the per-switch stall EWMA from the obs layer's counters.
  /// Null `stalls` (obs disabled) leaves every penalty at zero.
  void begin_cycle(std::uint64_t cycle, const StallCounters* stalls);

  /// Congestion penalty of routing toward switch `peer` — the decayed
  /// stall history of the candidate's far end. Bounded below 2^20 so one
  /// credit of depth always outweighs any history (kStallEwma only;
  /// zero for every other policy).
  [[nodiscard]] std::int64_t penalty(SwitchId peer) const noexcept {
    return ewma_.empty() ? 0 : ewma_[peer];
  }

 private:
  SelectionKind kind_;
  std::size_t switch_count_;
  std::size_t ports_per_switch_;
  /// kRandom streams, one per switch: touched only by the shard owning the
  /// switch, and independent of the global route() call order.
  std::vector<Rng> rngs_;
  std::vector<std::int64_t> ewma_;          ///< kStallEwma history per switch
  std::vector<std::uint64_t> last_total_;   ///< previous counter snapshot
  std::uint64_t last_refresh_ = 0;
};

}  // namespace smart
