// Composable escape-channel adaptive routing (Duato's methodology for any
// topology with a deterministic deadlock-free subnetwork).
//
// Each link's V virtual channels split into V/2 adaptive lanes and the
// rest escape lanes, one block per escape virtual network. A header may
// take ANY adaptive lane of a minimal candidate the provider emits (plus,
// with Options::misroute, one non-minimal hop per packet); when no
// adaptive lane is bindable it falls back to THE escape hop, restricted to
// the escape lanes of the provider-selected virtual network. Channel
// allocation is non-monotonic: a packet on the escape lanes re-enters the
// adaptive ones at the next hop whenever one is free. Deadlock freedom is
// the extended-CDG argument (docs/ROUTING.md): every blocked header can
// always wait on its escape lane, and the escape subnetwork's own CDG is
// acyclic by construction.
//
// Candidate ranking is the pluggable SelectionPolicy (selection.hpp):
// credit depth (Duato's original), credit depth tie-broken by downstream
// stall history, or the positional tie-breaks (salted affine / rotating /
// random) over the free-lane count. With CubeEscape + kMostCredits this
// class reproduces the original CubeDuatoRouting decision for decision —
// CubeDuatoRouting is now a thin instantiation (cube_duato.hpp) and the
// engine-refactor goldens pin the equivalence bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "routing/escape.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"

namespace smart {

/// Tuning knobs of the escape-adaptive core (namespace scope so the
/// constructor's default argument works — a nested class's member
/// initializers would not be usable there yet).
struct EscapeAdaptiveOptions {
  SelectionKind selection = SelectionKind::kMostCredits;
  /// Allow one non-minimal hop per packet when every minimal adaptive
  /// lane is taken (direct topologies only; indirect providers emit no
  /// misroute candidates).
  bool misroute = false;
  /// Feeds the kRandom selection streams; ignored otherwise.
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
};

class EscapeAdaptiveRouting : public RoutingAlgorithm {
 public:
  using Options = EscapeAdaptiveOptions;

  EscapeAdaptiveRouting(const Topology& topo,
                        std::unique_ptr<EscapeRouting> escape, unsigned vcs,
                        Options options = Options());

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId in_port,
                                                  unsigned in_lane, Packet& pkt,
                                                  std::uint64_t cycle) override;
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }
  [[nodiscard]] bool is_minimal() const override { return !options_.misroute; }
  /// Decisions depend only on the visited switch + packet: the selection
  /// state is per-switch (RNG streams) or refreshed serially between
  /// cycles (stall EWMA), and the per-switch decision counters are owned
  /// by the visiting switch's shard.
  [[nodiscard]] bool concurrent_safe() const override { return true; }
  void begin_cycle(std::uint64_t cycle,
                   const StallCounters* stalls) override {
    select_.begin_cycle(cycle, stalls);
  }
  [[nodiscard]] double escape_pressure(const Switch& sw) const override;
  [[nodiscard]] RoutingStats stats() const override;

  [[nodiscard]] SelectionKind selection() const noexcept {
    return select_.kind();
  }
  [[nodiscard]] const EscapeRouting& escape() const noexcept {
    return *escape_;
  }

 private:
  /// Scans `count` link-healthy candidates in selection order and returns
  /// the best (port, lane) with its wrap bits, or nullopt when no adaptive
  /// lane is bindable anywhere.
  [[nodiscard]] std::optional<OutputChoice> pick(
      Switch& sw, PortId in_port, const AdaptiveCandidate* candidates,
      unsigned count, unsigned slots, std::uint32_t* wrap_bits);

  std::unique_ptr<EscapeRouting> escape_;
  unsigned vcs_;
  unsigned adaptive_;       ///< adaptive lanes per link (= V/2, lanes [0, adaptive))
  unsigned escape_per_vn_;  ///< escape lanes per virtual network
  Options options_;
  SelectionState select_;

  /// Per-switch decision counters, written only by the shard owning the
  /// switch; stats() sums them in ascending id order (deterministic).
  struct SwitchCounters {
    std::uint64_t adaptive = 0;
    std::uint64_t escape = 0;
    std::uint64_t misroute = 0;
  };
  std::vector<SwitchCounters> counters_;
};

}  // namespace smart
