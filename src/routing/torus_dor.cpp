#include "routing/torus_dor.hpp"

#include "util/check.hpp"

namespace smart {

TorusDorRouting::TorusDorRouting(const MixedRadixTorus& torus, unsigned vcs)
    : torus_(torus), vcs_(vcs), per_vn_(vcs / 2) {
  SMART_CHECK_MSG(vcs >= 2 && vcs % 2 == 0,
                  "dimension-order routing needs two virtual networks");
  SMART_CHECK_MSG(torus.dims() <= 32,
                  "dateline mask supports up to 32 dimensions");
}

std::optional<OutputChoice> TorusDorRouting::route(Switch& sw,
                                                   PortId /*in_port*/,
                                                   unsigned /*in_lane*/,
                                                   Packet& pkt,
                                                   std::uint64_t /*cycle*/) {
  // Lowest unfinished dimension first, exactly like the cube.
  unsigned dim = torus_.dims();
  for (unsigned d = 0; d < torus_.dims(); ++d) {
    if (torus_.coord(sw.id(), d) != torus_.coord(pkt.dst, d)) {
      dim = d;
      break;
    }
  }
  if (dim == torus_.dims()) {
    // Arrived: eject through the local processor interface.
    const PortId local = torus_.local_port();
    const auto lane =
        best_bindable_lane(sw.port(local), 0,
                           static_cast<unsigned>(sw.port(local).out.size()));
    if (!lane) return std::nullopt;
    return OutputChoice{local, *lane};
  }

  const bool plus = torus_.dor_direction(sw.id(), pkt.dst, dim);
  const PortId port = MixedRadixTorus::port_of(dim, plus);
  if (!link_ok(sw, port)) {
    // Dimension order is fully deterministic: a faulted hop leaves no legal
    // alternative, so report the packet unroutable instead of wedging.
    pkt.unroutable = true;
    return std::nullopt;
  }
  const bool crossing = torus_.crosses_wraparound(sw.id(), dim, plus);
  const bool after_dateline =
      crossing || ((pkt.wrap_mask >> dim) & 1U) != 0;
  const unsigned vn = after_dateline ? 1 : 0;

  const auto lane = best_bindable_lane(sw.port(port), vn * per_vn_, per_vn_);
  if (!lane) return std::nullopt;
  if (crossing) pkt.wrap_mask |= 1U << dim;
  return OutputChoice{port, *lane};
}

}  // namespace smart
