// Routing-algorithm interface.
//
// The routing engine of a switch calls route() for the header flit at the
// head of an input lane. The algorithm inspects the switch's output lanes
// and returns a (port, lane) pair that is currently bindable — an output
// lane that is neither full nor bound to another input lane (paper §4) —
// or nullopt to stall the header for this cycle. Algorithms may update the
// packet's routing state (e.g. dateline bits) when they commit to a choice,
// because a returned choice is always bound by the engine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "router/flit.hpp"
#include "router/switch.hpp"

namespace smart {

class FaultState;
class StallCounters;

struct OutputChoice {
  PortId port = 0;
  unsigned lane = 0;
};

/// Whole-run decision counters an algorithm may export (all zero for
/// algorithms that do not distinguish decision classes).
struct RoutingStats {
  std::uint64_t adaptive_headers = 0;  ///< headers routed on adaptive lanes
  std::uint64_t escape_headers = 0;    ///< headers that fell back to escape
  std::uint64_t misroute_headers = 0;  ///< headers routed non-minimally
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Engine wiring: gives the algorithm visibility of link health. Null
  /// (the default) means a fault-free fabric; algorithms must then behave
  /// exactly as if fault support did not exist. Fault-aware algorithms mark
  /// a packet that has NO healthy route left by setting Packet::unroutable
  /// before stalling it (returning nullopt); the engine drops such packets
  /// instead of letting the worm wedge the fabric.
  void attach_fault_state(const FaultState* faults) noexcept {
    faults_ = faults;
  }

  /// Chooses an output lane for `pkt`, whose header sits at the head of
  /// input lane (`in_port`, `in_lane`) of switch `sw`. Selection policies
  /// may use the input position for fair, stream-stable tie-breaking (a
  /// per-input-port arbiter start, as in hardware round-robin allocators).
  [[nodiscard]] virtual std::optional<OutputChoice> route(Switch& sw,
                                                          PortId in_port,
                                                          unsigned in_lane,
                                                          Packet& pkt,
                                                          std::uint64_t cycle) = 0;

  /// Virtual channels per link direction this algorithm requires/expects.
  [[nodiscard]] virtual unsigned virtual_channels() const = 0;

  /// True when every packet follows a minimal path (the engine then asserts
  /// hop counts against Topology::min_hops). Randomized two-phase schemes
  /// such as Valiant routing return false.
  [[nodiscard]] virtual bool is_minimal() const { return true; }

  /// True when route() may be called concurrently for switches in
  /// different engine shards: the decision must depend only on the switch
  /// and packet passed in, plus members that are immutable or owned by the
  /// visiting switch. Randomized algorithms satisfy this with per-switch
  /// RNG streams (one Rng per SwitchId, seeds derived by mix_seed) — the
  /// draws a switch makes are then independent of the global route() call
  /// order, which is what the engine's thread-count bit-identity guarantee
  /// needs; Valiant's intermediate draw and the tree's kRandom tie-break
  /// both work this way. An algorithm drawing from one RNG shared across
  /// switches must return false: the multi-threaded engine then keeps its
  /// serial pipeline. Defaults to false so extensions are serial until
  /// they opt in.
  [[nodiscard]] virtual bool concurrent_safe() const { return false; }

  /// Serial per-cycle hook, called by the engine at the top of every cycle
  /// before any routing (in both the serial and the sharded pipeline, so
  /// thread-count bit-identity is preserved by construction). `stalls` is
  /// the obs layer's per-port stall counters, or null when obs is off.
  /// Algorithms with congestion state (the stall-history selection policy)
  /// refresh it here; the default does nothing.
  virtual void begin_cycle(std::uint64_t cycle, const StallCounters* stalls) {
    (void)cycle;
    (void)stalls;
  }

  /// Fraction of `sw`'s escape output lanes (network ports only) with zero
  /// credits — the backpressure signal behind NIC injection throttling.
  /// Algorithms without an escape layer report no pressure.
  [[nodiscard]] virtual double escape_pressure(const Switch& sw) const {
    (void)sw;
    return 0.0;
  }

  /// Whole-run decision counters (see RoutingStats); default all-zero.
  [[nodiscard]] virtual RoutingStats stats() const { return {}; }

 protected:
  /// True when the physical channel behind output port `port` of `sw`
  /// currently accepts traffic (always true without an attached FaultState).
  [[nodiscard]] bool link_ok(const Switch& sw, PortId port) const;

  const FaultState* faults_ = nullptr;
};

/// The bindable lane with the most credits on `port`, scanning lanes
/// [first, first + count); nullopt if none is bindable. Ties go to the
/// lowest index past the rotating offset `rr` for fairness.
[[nodiscard]] std::optional<unsigned> best_bindable_lane(const SwitchPort& port,
                                                         unsigned first,
                                                         unsigned count,
                                                         std::uint32_t rr = 0);

}  // namespace smart
