#include "routing/escape.hpp"

#include "util/rng.hpp"

namespace smart {

// ---- cube ---------------------------------------------------------------

std::optional<PortId> CubeEscape::eject_port(const Switch& sw,
                                             const Packet& pkt) const {
  if (sw.id() != pkt.dst) return std::nullopt;
  return cube_.local_port();
}

unsigned CubeEscape::minimal_candidates(const Switch& sw, const Packet& pkt,
                                        AdaptiveCandidate* out,
                                        unsigned cap) const {
  const SwitchId s = sw.id();
  const unsigned n = cube_.dimensions();
  unsigned count = 0;
  for (unsigned slot = 0; slot < 2 * n && count < cap; ++slot) {
    const unsigned dim = slot / 2;
    const bool plus = (slot % 2) == 0;
    if (!cube_.direction_minimal(s, pkt.dst, dim, plus)) continue;
    out[count++] = AdaptiveCandidate{
        KaryNCube::port_of(dim, plus), slot,
        cube_.crosses_wraparound(s, dim, plus) ? (1U << dim) : 0U};
  }
  return count;
}

unsigned CubeEscape::misroute_candidates(const Switch& sw, PortId in_port,
                                         const Packet& pkt,
                                         AdaptiveCandidate* out,
                                         unsigned cap) const {
  const SwitchId s = sw.id();
  const unsigned n = cube_.dimensions();
  unsigned count = 0;
  for (unsigned slot = 0; slot < 2 * n && count < cap; ++slot) {
    const unsigned dim = slot / 2;
    const bool plus = (slot % 2) == 0;
    if (cube_.direction_minimal(s, pkt.dst, dim, plus)) continue;
    const PortId port = KaryNCube::port_of(dim, plus);
    if (port == in_port) continue;  // no immediate U-turn
    // Mesh edges: the port exists but leads nowhere.
    if (sw.port(port).peer.kind != PeerKind::kSwitch) continue;
    out[count++] = AdaptiveCandidate{
        port, slot,
        cube_.crosses_wraparound(s, dim, plus) ? (1U << dim) : 0U};
  }
  return count;
}

EscapeHop CubeEscape::escape_hop(const Switch& sw, const Packet& pkt) const {
  const SwitchId s = sw.id();
  // Lowest unfinished dimension first (only called when s != dst).
  unsigned dim = 0;
  while (dim + 1 < cube_.dimensions() &&
         cube_.coord(s, dim) == cube_.coord(pkt.dst, dim)) {
    ++dim;
  }
  const bool plus = cube_.dor_direction(s, pkt.dst, dim);
  const bool crossing = cube_.crosses_wraparound(s, dim, plus);
  const bool after_dateline =
      crossing || ((pkt.wrap_mask >> dim) & 1U) != 0;
  return EscapeHop{KaryNCube::port_of(dim, plus), after_dateline ? 1U : 0U,
                   crossing ? (1U << dim) : 0U};
}

// ---- mixed-radix torus --------------------------------------------------

std::optional<PortId> TorusEscape::eject_port(const Switch& sw,
                                              const Packet& pkt) const {
  if (sw.id() != pkt.dst) return std::nullopt;
  return torus_.local_port();
}

unsigned TorusEscape::minimal_candidates(const Switch& sw, const Packet& pkt,
                                         AdaptiveCandidate* out,
                                         unsigned cap) const {
  const SwitchId s = sw.id();
  const unsigned n = torus_.dims();
  unsigned count = 0;
  for (unsigned slot = 0; slot < 2 * n && count < cap; ++slot) {
    const unsigned dim = slot / 2;
    const bool plus = (slot % 2) == 0;
    if (!torus_.direction_minimal(s, pkt.dst, dim, plus)) continue;
    out[count++] = AdaptiveCandidate{
        MixedRadixTorus::port_of(dim, plus), slot,
        torus_.crosses_wraparound(s, dim, plus) ? (1U << dim) : 0U};
  }
  return count;
}

unsigned TorusEscape::misroute_candidates(const Switch& sw, PortId in_port,
                                          const Packet& pkt,
                                          AdaptiveCandidate* out,
                                          unsigned cap) const {
  const SwitchId s = sw.id();
  const unsigned n = torus_.dims();
  unsigned count = 0;
  for (unsigned slot = 0; slot < 2 * n && count < cap; ++slot) {
    const unsigned dim = slot / 2;
    const bool plus = (slot % 2) == 0;
    if (torus_.direction_minimal(s, pkt.dst, dim, plus)) continue;
    const PortId port = MixedRadixTorus::port_of(dim, plus);
    if (port == in_port) continue;  // no immediate U-turn
    out[count++] = AdaptiveCandidate{
        port, slot,
        torus_.crosses_wraparound(s, dim, plus) ? (1U << dim) : 0U};
  }
  return count;
}

EscapeHop TorusEscape::escape_hop(const Switch& sw, const Packet& pkt) const {
  const SwitchId s = sw.id();
  // Lowest unfinished dimension first (only called when s != dst).
  unsigned dim = 0;
  while (dim + 1 < torus_.dims() &&
         torus_.coord(s, dim) == torus_.coord(pkt.dst, dim)) {
    ++dim;
  }
  const bool plus = torus_.dor_direction(s, pkt.dst, dim);
  const bool crossing = torus_.crosses_wraparound(s, dim, plus);
  const bool after_dateline =
      crossing || ((pkt.wrap_mask >> dim) & 1U) != 0;
  return EscapeHop{MixedRadixTorus::port_of(dim, plus),
                   after_dateline ? 1U : 0U, crossing ? (1U << dim) : 0U};
}

// ---- two-level fat-tree / Clos ------------------------------------------

unsigned UpDownEscape::candidate_slots(const Switch& sw,
                                       const Packet& pkt) const {
  if (fabric_.is_spine(sw.id())) return fabric_.rails();
  if (fabric_.leaf_of(pkt.dst) == sw.id()) return 1;  // delivery, no scan
  return fabric_.up_port_count();
}

std::optional<PortId> UpDownEscape::eject_port(const Switch& sw,
                                               const Packet& pkt) const {
  if (fabric_.is_spine(sw.id())) return std::nullopt;
  if (fabric_.leaf_of(pkt.dst) != sw.id()) return std::nullopt;
  return fabric_.terminal_port(pkt.dst);
}

unsigned UpDownEscape::minimal_candidates(const Switch& sw, const Packet& pkt,
                                          AdaptiveCandidate* out,
                                          unsigned cap) const {
  unsigned count = 0;
  if (fabric_.is_spine(sw.id())) {
    // Descend on any rail to the unique destination leaf.
    const SwitchId dst_leaf = fabric_.leaf_of(pkt.dst);
    for (unsigned rail = 0; rail < fabric_.rails() && count < cap; ++rail) {
      out[count++] =
          AdaptiveCandidate{fabric_.down_port(dst_leaf, rail), rail, 0};
    }
    return count;
  }
  // Ascend: any spine rail is minimal.
  for (unsigned i = 0; i < fabric_.up_port_count() && count < cap; ++i) {
    out[count++] = AdaptiveCandidate{
        static_cast<PortId>(fabric_.up_port_base() + i), i, 0};
  }
  return count;
}

EscapeHop UpDownEscape::escape_hop(const Switch& sw, const Packet& pkt) const {
  if (fabric_.is_spine(sw.id())) {
    const SwitchId dst_leaf = fabric_.leaf_of(pkt.dst);
    return EscapeHop{fabric_.down_port(dst_leaf, pkt.dst % fabric_.rails()),
                     0, 0};
  }
  // Destination-hashed up rail: deterministic per packet, load spread
  // across the spines without any shared state.
  std::uint64_t state = std::uint64_t{pkt.dst} * 0x9e3779b97f4a7c15ULL + 1;
  const unsigned rail =
      static_cast<unsigned>(splitmix64(state) % fabric_.up_port_count());
  return EscapeHop{static_cast<PortId>(fabric_.up_port_base() + rail), 0, 0};
}

// ---- k-ary n-tree -------------------------------------------------------

unsigned TreeEscape::candidate_slots(const Switch& sw,
                                     const Packet& pkt) const {
  if (tree_.is_ancestor(sw.id(), pkt.dst)) return 1;  // unique descent
  return tree_.radix();
}

std::optional<PortId> TreeEscape::eject_port(const Switch& sw,
                                             const Packet& pkt) const {
  if (!tree_.is_ancestor(sw.id(), pkt.dst)) return std::nullopt;
  const PortId port = tree_.down_port_towards(sw.id(), pkt.dst);
  if (sw.port(port).peer.kind != PeerKind::kTerminal) return std::nullopt;
  return port;
}

unsigned TreeEscape::minimal_candidates(const Switch& sw, const Packet& pkt,
                                        AdaptiveCandidate* out,
                                        unsigned cap) const {
  if (tree_.is_ancestor(sw.id(), pkt.dst)) {
    // Descending phase: the down port is unique; only the lane is free.
    if (cap == 0) return 0;
    out[0] = AdaptiveCandidate{tree_.down_port_towards(sw.id(), pkt.dst), 0,
                               0};
    return 1;
  }
  const unsigned k = tree_.radix();
  unsigned count = 0;
  for (unsigned i = 0; i < k && count < cap; ++i) {
    out[count++] = AdaptiveCandidate{static_cast<PortId>(k + i), i, 0};
  }
  return count;
}

EscapeHop TreeEscape::escape_hop(const Switch& sw, const Packet& pkt) const {
  if (tree_.is_ancestor(sw.id(), pkt.dst)) {
    return EscapeHop{tree_.down_port_towards(sw.id(), pkt.dst), 0, 0};
  }
  // Destination-hashed ascent: deterministic, so the escape CDG is a fixed
  // acyclic up-then-down order.
  std::uint64_t state = std::uint64_t{pkt.dst} * 0x9e3779b97f4a7c15ULL + 1;
  const unsigned up =
      static_cast<unsigned>(splitmix64(state) % tree_.radix());
  return EscapeHop{static_cast<PortId>(tree_.radix() + up), 0, 0};
}

// ---- provider registry --------------------------------------------------

std::unique_ptr<EscapeRouting> make_escape_routing(const std::string& key,
                                                   const Topology& topo,
                                                   std::string* error) {
  if (key == "cube-dor") {
    if (const auto* cube = dynamic_cast<const KaryNCube*>(&topo)) {
      return std::make_unique<CubeEscape>(*cube);
    }
  } else if (key == "torus-dor") {
    if (const auto* torus = dynamic_cast<const MixedRadixTorus*>(&topo)) {
      return std::make_unique<TorusEscape>(*torus);
    }
  } else if (key == "updown") {
    if (const auto* fabric = dynamic_cast<const TwoLevelFatTree*>(&topo)) {
      return std::make_unique<UpDownEscape>(*fabric);
    }
  } else if (key == "tree-updown") {
    if (const auto* tree = dynamic_cast<const KaryNTree*>(&topo)) {
      return std::make_unique<TreeEscape>(*tree);
    }
  } else {
    if (error != nullptr) {
      *error = "unknown escape-routing key '" + key +
               "' (known: cube-dor, torus-dor, updown, tree-updown)";
    }
    return nullptr;
  }
  if (error != nullptr) {
    *error = "escape-routing key '" + key +
             "' does not match the concrete type of topology '" +
             topo.name() + "'";
  }
  return nullptr;
}

}  // namespace smart
