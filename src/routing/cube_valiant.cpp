#include "routing/cube_valiant.hpp"

#include "util/check.hpp"

namespace smart {

CubeValiantRouting::CubeValiantRouting(const KaryNCube& cube, unsigned vcs,
                                       std::uint64_t seed)
    : cube_(cube), vcs_(vcs) {
  SMART_CHECK_MSG(vcs >= 4 && vcs % 4 == 0,
                  "Valiant routing needs two phases of two virtual networks");
  per_phase_ = vcs / 2;
  per_vn_ = per_phase_ / 2;
  rngs_.reserve(cube_.switch_count());
  for (SwitchId s = 0; s < cube_.switch_count(); ++s) {
    rngs_.emplace_back(mix_seed(seed, s));
  }
}

std::optional<OutputChoice> CubeValiantRouting::route(Switch& sw,
                                                      PortId /*in_port*/,
                                                      unsigned /*in_lane*/,
                                                      Packet& pkt,
                                                      std::uint64_t /*cycle*/) {
  const SwitchId s = sw.id();
  if (!pkt.val_assigned) {
    pkt.intermediate = static_cast<NodeId>(rngs_[s].below(cube_.node_count()));
    pkt.val_assigned = true;
    pkt.val_phase = 0;
  }
  if (pkt.val_phase == 0 && s == pkt.intermediate) {
    pkt.val_phase = 1;
    pkt.wrap_mask = 0;  // fresh dateline state for the second phase
  }
  const NodeId target = pkt.val_phase == 0 ? pkt.intermediate : pkt.dst;

  if (pkt.val_phase == 1 && s == pkt.dst) {
    const PortId local = cube_.local_port();
    const auto lane =
        best_bindable_lane(sw.port(local), 0,
                           static_cast<unsigned>(sw.port(local).out.size()));
    if (!lane) return std::nullopt;
    return OutputChoice{local, *lane};
  }

  // Dimension-order hop toward the phase target.
  std::optional<unsigned> dim;
  for (unsigned d = 0; d < cube_.dimensions(); ++d) {
    if (cube_.coord(s, d) != cube_.coord(target, d)) {
      dim = d;
      break;
    }
  }
  SMART_CHECK(dim.has_value());
  const bool plus = cube_.dor_direction(s, target, *dim);
  const PortId port = KaryNCube::port_of(*dim, plus);
  if (!link_ok(sw, port)) {
    // Both phases are deterministic dimension-order walks; a faulted hop
    // leaves no legal alternative within the chosen phase subnetwork.
    pkt.unroutable = true;
    return std::nullopt;
  }
  const bool crossing = cube_.crosses_wraparound(s, *dim, plus);
  const bool after_dateline = crossing || ((pkt.wrap_mask >> *dim) & 1U) != 0;

  const unsigned first =
      pkt.val_phase * per_phase_ + (after_dateline ? per_vn_ : 0);
  const auto lane = best_bindable_lane(sw.port(port), first, per_vn_);
  if (!lane) return std::nullopt;
  if (crossing) pkt.wrap_mask |= 1U << *dim;
  return OutputChoice{port, *lane};
}

}  // namespace smart
