// Deterministic dimension-order routing on the mixed-radix torus — the
// generalization of CubeDorRouting the synthesis families default to.
//
// Packets correct dimensions in fixed order (0 first) along the unique
// minimal path (ties at distance k_d/2 go in the + direction). The
// wrap-around deadlock cycles are broken with the same two dateline
// virtual networks as on the uniform cube: a packet starts each
// dimension in virtual network 0 and switches to network 1 after
// crossing that dimension's wrap-around link. With V virtual channels
// per link each network owns V/2 of them, so the routing freedom is
// F = V/2 — which is what the derived-clock model charges
// (synth/design.hpp torus_derived_clock).
#pragma once

#include "routing/routing.hpp"
#include "topology/mixed_radix_torus.hpp"

namespace smart {

class TorusDorRouting final : public RoutingAlgorithm {
 public:
  TorusDorRouting(const MixedRadixTorus& torus, unsigned vcs);

  [[nodiscard]] std::string name() const override { return "torus DOR"; }
  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId in_port,
                                                  unsigned in_lane, Packet& pkt,
                                                  std::uint64_t cycle) override;
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }
  /// Pure function of (switch, packet): no RNG, no mutable members.
  [[nodiscard]] bool concurrent_safe() const override { return true; }

 private:
  const MixedRadixTorus& torus_;
  unsigned vcs_;
  unsigned per_vn_;  ///< channels per virtual network (V/2)
};

}  // namespace smart
