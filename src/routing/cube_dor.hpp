// Deterministic dimension-order routing on the k-ary n-cube (paper §3,
// Dally & Seitz).
//
// Packets correct dimensions in fixed order (0 first) along the unique
// minimal path (ties at distance k/2 go in the + direction). Deadlocks from
// the wrap-around links are avoided with two virtual networks: a packet
// travels in virtual network 0 within each dimension until it crosses that
// dimension's wrap-around link (the dateline), after which it uses virtual
// network 1 for the rest of the dimension. With V virtual channels per
// link, each virtual network owns V/2 of them (the paper uses V = 4, two
// channels per virtual network; routing freedom F = 2).
#pragma once

#include "routing/routing.hpp"
#include "topology/kary_ncube.hpp"

namespace smart {

class CubeDorRouting final : public RoutingAlgorithm {
 public:
  CubeDorRouting(const KaryNCube& cube, unsigned vcs);

  [[nodiscard]] std::string name() const override { return "deterministic"; }
  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId in_port,
                                                  unsigned in_lane, Packet& pkt,
                                                  std::uint64_t cycle) override;
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }
  /// Pure function of (switch, packet): no RNG, no mutable members.
  [[nodiscard]] bool concurrent_safe() const override { return true; }

  /// The unique productive (dimension, +direction) for a packet at switch s,
  /// or nullopt when s is the destination. Exposed for tests and for the
  /// Duato algorithm's escape path.
  [[nodiscard]] std::optional<std::pair<unsigned, bool>> dor_hop(
      SwitchId s, NodeId dst) const;

 private:
  const KaryNCube& cube_;
  unsigned vcs_;
  unsigned per_vn_;  ///< channels per virtual network (V/2)
};

}  // namespace smart
