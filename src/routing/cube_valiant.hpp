// Valiant randomized two-phase routing on the k-ary n-cube (Valiant &
// Brebner, 1981) — the classic oblivious baseline beyond the paper.
//
// Every packet first travels, by dimension-order routing, to an
// intermediate node drawn uniformly at random, and from there to its real
// destination. This destroys adversarial structure: ANY traffic pattern
// behaves like two superimposed uniform-random phases, at the cost of
// roughly doubling the average distance (so at most half the uniform
// capacity). Against the paper's algorithms it loses on uniform traffic
// but wins on patterns that concentrate load under minimal routing (e.g.
// tornado).
//
// Deadlock avoidance: the V virtual channels split into two phase
// subnetworks (lanes [0, V/2) for phase 1, [V/2, V) for phase 2); within
// each phase the dateline rule of deterministic routing applies, with
// V/4-channel virtual networks. Phases are strictly ordered, each phase
// subnetwork is acyclic, so the whole scheme is deadlock-free. V = 4 gives
// one lane per (phase, virtual network).
#pragma once

#include "routing/routing.hpp"
#include "topology/kary_ncube.hpp"
#include "util/rng.hpp"

namespace smart {

class CubeValiantRouting final : public RoutingAlgorithm {
 public:
  CubeValiantRouting(const KaryNCube& cube, unsigned vcs,
                     std::uint64_t seed = 0xa11ce);

  [[nodiscard]] std::string name() const override { return "Valiant"; }
  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId in_port,
                                                  unsigned in_lane, Packet& pkt,
                                                  std::uint64_t cycle) override;
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }
  [[nodiscard]] bool is_minimal() const override { return false; }
  /// The intermediate-node draw comes from rng_, shared across switches:
  /// the global order of route() calls is load-bearing, so the sharded
  /// engine must not run this algorithm concurrently (stays at default
  /// false; spelled out for documentation).
  [[nodiscard]] bool concurrent_safe() const override { return false; }

 private:
  const KaryNCube& cube_;
  unsigned vcs_;
  unsigned per_phase_;  ///< lanes per phase (V/2)
  unsigned per_vn_;     ///< lanes per virtual network within a phase (V/4, min 1)
  Rng rng_;
};

}  // namespace smart
