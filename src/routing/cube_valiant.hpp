// Valiant randomized two-phase routing on the k-ary n-cube (Valiant &
// Brebner, 1981) — the classic oblivious baseline beyond the paper.
//
// Every packet first travels, by dimension-order routing, to an
// intermediate node drawn uniformly at random, and from there to its real
// destination. This destroys adversarial structure: ANY traffic pattern
// behaves like two superimposed uniform-random phases, at the cost of
// roughly doubling the average distance (so at most half the uniform
// capacity). Against the paper's algorithms it loses on uniform traffic
// but wins on patterns that concentrate load under minimal routing (e.g.
// tornado).
//
// Deadlock avoidance: the V virtual channels split into two phase
// subnetworks (lanes [0, V/2) for phase 1, [V/2, V) for phase 2); within
// each phase the dateline rule of deterministic routing applies, with
// V/4-channel virtual networks. Phases are strictly ordered, each phase
// subnetwork is acyclic, so the whole scheme is deadlock-free. V = 4 gives
// one lane per (phase, virtual network).
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "topology/kary_ncube.hpp"
#include "util/rng.hpp"

namespace smart {

class CubeValiantRouting final : public RoutingAlgorithm {
 public:
  CubeValiantRouting(const KaryNCube& cube, unsigned vcs,
                     std::uint64_t seed = 0xa11ce);

  [[nodiscard]] std::string name() const override { return "Valiant"; }
  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId in_port,
                                                  unsigned in_lane, Packet& pkt,
                                                  std::uint64_t cycle) override;
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }
  [[nodiscard]] bool is_minimal() const override { return false; }
  /// The intermediate-node draw comes from the RNG stream of the switch
  /// doing the drawing (counter-mode streams: mix_seed(seed, switch id)),
  /// so route() depends only on the switch and packet passed in — safe for
  /// the sharded engine, which partitions switches across workers.
  [[nodiscard]] bool concurrent_safe() const override { return true; }

 private:
  const KaryNCube& cube_;
  unsigned vcs_;
  unsigned per_phase_;  ///< lanes per phase (V/2)
  unsigned per_vn_;     ///< lanes per virtual network within a phase (V/4, min 1)
  /// Per-switch intermediate-draw streams, indexed by SwitchId. Decorrelated
  /// by SplitMix64 seed mixing; each stream is touched only by the engine
  /// shard that owns its switch, and the draw sequence a packet sees is the
  /// same for every thread count (it depends on the visiting switch, not on
  /// the global route() call order a shared RNG would impose).
  std::vector<Rng> rngs_;
};

}  // namespace smart
