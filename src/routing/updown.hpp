// Up*/down* routing on the two-level fat-tree / Clos fabric.
//
// Every route ascends from the source leaf to some spine (unless source
// and destination share a leaf) and then descends: up links and down
// links form an acyclic channel dependency graph, so the scheme is
// deadlock-free with any number of virtual channels — the generated
// fat-tree and Clos families' deadlock-free default. The ascent is
// adaptive: any spine is minimal, and the router picks the up rail with
// the most free virtual channels, tie-broken from a salted-affine start
// (the same stream-stable arbiter as the k-ary n-tree's default
// selection, keeping the choice a pure function of switch and input so
// the algorithm stays concurrent-safe). The descent is deterministic up
// to the rail choice to the unique target leaf.
#pragma once

#include "routing/routing.hpp"
#include "topology/two_level_fattree.hpp"

namespace smart {

class UpDownRouting final : public RoutingAlgorithm {
 public:
  UpDownRouting(const TwoLevelFatTree& fabric, unsigned vcs);

  [[nodiscard]] std::string name() const override { return "up*/down*"; }
  [[nodiscard]] std::optional<OutputChoice> route(Switch& sw, PortId in_port,
                                                  unsigned in_lane, Packet& pkt,
                                                  std::uint64_t cycle) override;
  [[nodiscard]] unsigned virtual_channels() const override { return vcs_; }
  /// Pure function of (switch, packet, input port): no RNG, no mutable
  /// members — safe to call concurrently across engine shards.
  [[nodiscard]] bool concurrent_safe() const override { return true; }

 private:
  /// Salted-affine arbiter start in [0, count) for this (switch, input).
  [[nodiscard]] static unsigned scan_start(const Switch& sw, PortId in_port,
                                           unsigned count);
  /// Best candidate among `count` ports starting at `base`, scanning from
  /// the salted-affine offset: healthy, then most free output lanes.
  /// Sets *any_healthy for the fault-partition verdict.
  [[nodiscard]] std::optional<PortId> pick_port(const Switch& sw,
                                                PortId in_port, PortId base,
                                                unsigned count, NodeId dst,
                                                bool lookahead,
                                                bool* any_healthy) const;

  const TwoLevelFatTree& fabric_;
  unsigned vcs_;
};

}  // namespace smart
