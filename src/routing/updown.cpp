#include "routing/updown.hpp"

#include "fault/fault.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace smart {

UpDownRouting::UpDownRouting(const TwoLevelFatTree& fabric, unsigned vcs)
    : fabric_(fabric), vcs_(vcs) {
  SMART_CHECK(vcs >= 1);
}

unsigned UpDownRouting::scan_start(const Switch& sw, PortId in_port,
                                   unsigned count) {
  std::uint64_t salt_state = sw.id() * 0x9e3779b97f4a7c15ULL + 1;
  const unsigned salt = static_cast<unsigned>(splitmix64(salt_state) % count);
  return (in_port + salt) % count;
}

std::optional<PortId> UpDownRouting::pick_port(const Switch& sw,
                                               PortId in_port, PortId base,
                                               unsigned count, NodeId dst,
                                               bool lookahead,
                                               bool* any_healthy) const {
  const unsigned start = scan_start(sw, in_port, count);
  std::optional<PortId> best_port;
  unsigned best_free = 0;
  *any_healthy = false;
  for (unsigned i = 0; i < count; ++i) {
    const PortId port = base + (i + start) % count;
    if (faults_ != nullptr) {
      if (!faults_->link_ok(sw.id(), port)) continue;
      if (lookahead) {
        // One-step lookahead on the ascent: the spine behind this up
        // rail must still have a healthy rail down to the destination
        // leaf, or the deterministic descent would dead-end there.
        const PortPeer spine = fabric_.port_peer(sw.id(), port);
        SMART_DCHECK(spine.kind == PeerKind::kSwitch);
        const SwitchId dst_leaf = fabric_.leaf_of(dst);
        bool down_ok = false;
        for (unsigned rail = 0; rail < fabric_.rails() && !down_ok; ++rail) {
          down_ok = faults_->link_ok(spine.id,
                                     fabric_.down_port(dst_leaf, rail));
        }
        if (!down_ok) continue;
      }
    }
    *any_healthy = true;
    const unsigned free_lanes = sw.free_output_lanes(port);
    if (free_lanes == 0) continue;
    if (!best_port || free_lanes > best_free) {
      best_free = free_lanes;
      best_port = port;
    }
  }
  return best_port;
}

std::optional<OutputChoice> UpDownRouting::route(Switch& sw, PortId in_port,
                                                 unsigned /*in_lane*/,
                                                 Packet& pkt,
                                                 std::uint64_t /*cycle*/) {
  const SwitchId dst_leaf = fabric_.leaf_of(pkt.dst);

  if (!fabric_.is_spine(sw.id())) {
    if (dst_leaf == sw.id()) {
      // Arrived at the destination leaf: the terminal port is unique.
      const PortId port = fabric_.terminal_port(pkt.dst);
      if (!link_ok(sw, port)) {
        pkt.unroutable = true;  // the only link to the terminal is severed
        return std::nullopt;
      }
      const auto lane = best_bindable_lane(sw.port(port), 0, vcs_);
      if (!lane) return std::nullopt;
      return OutputChoice{port, *lane};
    }
    // Ascent: any spine is minimal; pick the up rail with the most free
    // virtual channels from a salted-affine start.
    bool any_healthy = false;
    const auto port =
        pick_port(sw, in_port, fabric_.up_port_base(),
                  fabric_.up_port_count(), pkt.dst,
                  /*lookahead=*/true, &any_healthy);
    if (!port) {
      // No healthy ascent at all is a fault partition, not congestion.
      if (faults_ != nullptr && !any_healthy) pkt.unroutable = true;
      return std::nullopt;
    }
    const auto lane = best_bindable_lane(sw.port(*port), 0, vcs_);
    SMART_DCHECK(lane.has_value());
    return OutputChoice{*port, *lane};
  }

  // Spine: descend on any rail to the unique destination leaf.
  bool any_healthy = false;
  const auto port = pick_port(sw, in_port, fabric_.down_port(dst_leaf, 0),
                              fabric_.rails(), pkt.dst,
                              /*lookahead=*/false, &any_healthy);
  if (!port) {
    if (faults_ != nullptr && !any_healthy) pkt.unroutable = true;
    return std::nullopt;
  }
  const auto lane = best_bindable_lane(sw.port(*port), 0, vcs_);
  SMART_DCHECK(lane.has_value());
  return OutputChoice{*port, *lane};
}

}  // namespace smart
