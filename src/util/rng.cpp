#include "util/rng.hpp"

#include "util/check.hpp"

#ifdef __SIZEOF_INT128__
__extension__ typedef unsigned __int128 uint128;  // NOLINT: pedantic-clean
#endif

namespace smart {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  SMART_DCHECK(bound > 0);
  if (bound <= 1) return 0;
#ifdef __SIZEOF_INT128__
  // Lemire's nearly-divisionless unbiased method.
  std::uint64_t x = next();
  uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<uint128>(x) * static_cast<uint128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
#else
  // Rejection sampling fallback.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % bound;
#endif
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  SMART_DCHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

}  // namespace smart
