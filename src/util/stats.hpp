// Online statistics accumulators for simulation metrics.
//
// OnlineStats implements Welford's streaming mean/variance; Histogram bins
// latencies with fixed-width buckets plus an overflow bin; both are cheap
// enough to update once per delivered packet.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace smart {

/// Streaming mean / variance / extrema (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;      ///< population variance
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void reset() noexcept { *this = OnlineStats{}; }

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram with an overflow bucket.
class Histogram {
 public:
  Histogram(double bin_width, std::size_t bin_count);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_width() const noexcept { return bin_width_; }

  /// Value below which `q` (in [0,1]) of the mass lies; linear within bins.
  [[nodiscard]] double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace smart
