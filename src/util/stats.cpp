#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace smart {

void OnlineStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::sample_variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double bin_width, std::size_t bin_count)
    : bin_width_(bin_width), bins_(bin_count, 0) {
  SMART_CHECK(bin_width > 0.0);
  SMART_CHECK(bin_count > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < 0.0) x = 0.0;
  const auto index = static_cast<std::size_t>(x / bin_width_);
  if (index < bins_.size()) {
    ++bins_[index];
  } else {
    ++overflow_;
  }
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto in_bin = static_cast<double>(bins_[i]);
    if (cumulative + in_bin >= target && in_bin > 0.0) {
      const double fraction = (target - cumulative) / in_bin;
      return (static_cast<double>(i) + fraction) * bin_width_;
    }
    cumulative += in_bin;
  }
  return static_cast<double>(bins_.size()) * bin_width_;
}

void Histogram::reset() noexcept {
  std::fill(bins_.begin(), bins_.end(), 0);
  overflow_ = 0;
  total_ = 0;
}

}  // namespace smart
