// Tabular output: aligned text tables for the console (the form the paper's
// tables take) and CSV emission for plotting the figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace smart {

/// A simple column-oriented table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendering right-aligns numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  Table& begin_row();
  Table& add_cell(std::string value);
  Table& add_cell(double value, int precision = 3);
  Table& add_cell(std::uint64_t value);
  Table& add_cell(unsigned value);
  Table& add_cell(int value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;
  [[nodiscard]] const std::string& header(std::size_t col) const;

  /// Renders an aligned monospace table.
  [[nodiscard]] std::string to_text() const;

  /// Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Writes to_csv() to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by Table and benches).
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace smart
