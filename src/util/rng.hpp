// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component of the simulator draws from an Rng instance
// seeded explicitly by the experiment harness, so a (seed, configuration)
// pair always reproduces the same trajectory bit-for-bit, independent of
// platform and of the C++ standard library in use (std::mt19937 streams are
// portable but distributions are not; we implement our own draws).
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>

namespace smart {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a decorrelated seed for stream `stream` of base seed `seed`.
/// Unlike arithmetic like `seed + stream`, the pair is hashed, so stream r
/// of seed s never lands on the stream of a neighbouring (seed, stream)
/// pair — structurally distinct pairs give structurally unrelated seeds.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t seed,
                                               std::uint64_t stream) noexcept {
  std::uint64_t state = seed;
  std::uint64_t mixed = splitmix64(state) ^ (stream * 0x9e3779b97f4a7c15ULL);
  return splitmix64(mixed);
}

/// xoshiro256** pseudo-random generator with explicit, portable draws.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  /// Raw 64-bit draw.
  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform draw in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform draw in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Derives an independent child stream; children with distinct indices
  /// are statistically independent of each other and of the parent.
  [[nodiscard]] Rng fork(std::uint64_t stream_index) noexcept {
    std::uint64_t s = state_[0] ^ (stream_index * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace smart
