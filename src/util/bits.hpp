// Bit-string manipulation of node labels.
//
// Following §7 of the paper, a node of a k-ary n-cube or k-ary n-tree is
// labelled p0 p1 ... p(n-1) in base k (p0 most significant), and the binary
// representation of that number is a0 a1 ... a(B-1) with B = n·log2(k) and
// a0 the most significant bit. The traffic permutations (complement, bit
// reversal, transpose) are defined on that a-indexed bit string; this header
// provides the exact transformations plus base-k digit utilities used by the
// topologies and routing algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace smart {

/// True iff x is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Exact integer log2; requires a power of two.
[[nodiscard]] constexpr unsigned log2_exact(std::uint64_t x) noexcept {
  unsigned bits = 0;
  while (x > 1) {
    x >>= 1;
    ++bits;
  }
  return bits;
}

/// Floor of log2(x) for x >= 1.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t x) noexcept {
  unsigned bits = 0;
  while (x > 1) {
    x >>= 1;
    ++bits;
  }
  return bits;
}

/// Ceiling of log2(x) for x >= 1.
[[nodiscard]] constexpr unsigned log2_ceil(std::uint64_t x) noexcept {
  return is_power_of_two(x) ? log2_exact(x) : log2_floor(x) + 1;
}

/// Integer power k^n (no overflow checking beyond 64 bits).
[[nodiscard]] constexpr std::uint64_t ipow(std::uint64_t k, unsigned n) noexcept {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < n; ++i) result *= k;
  return result;
}

/// Bit a_i of an MSB-first B-bit label (i = 0 is the most significant bit).
[[nodiscard]] constexpr unsigned label_bit(std::uint64_t label, unsigned i,
                                           unsigned total_bits) noexcept {
  return static_cast<unsigned>((label >> (total_bits - 1 - i)) & 1U);
}

/// Sets bit a_i of an MSB-first B-bit label to `value` (0 or 1).
[[nodiscard]] constexpr std::uint64_t with_label_bit(std::uint64_t label,
                                                     unsigned i,
                                                     unsigned total_bits,
                                                     unsigned value) noexcept {
  const std::uint64_t mask = 1ULL << (total_bits - 1 - i);
  return value != 0 ? (label | mask) : (label & ~mask);
}

/// Complement pattern: a0 a1 ... a(B-1) -> !a0 !a1 ... !a(B-1).
[[nodiscard]] constexpr std::uint64_t complement_bits(std::uint64_t label,
                                                      unsigned total_bits) noexcept {
  const std::uint64_t mask =
      total_bits >= 64 ? ~0ULL : ((1ULL << total_bits) - 1);
  return (~label) & mask;
}

/// Bit reversal pattern: a0 ... a(B-1) -> a(B-1) ... a0.
[[nodiscard]] constexpr std::uint64_t reverse_bits(std::uint64_t label,
                                                   unsigned total_bits) noexcept {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < total_bits; ++i) {
    out = (out << 1) | ((label >> i) & 1ULL);
  }
  return out;
}

/// Transpose pattern: swap the two halves of the bit string,
/// a(B/2) ... a(B-1) a0 ... a(B/2-1). Requires an even bit count.
[[nodiscard]] constexpr std::uint64_t transpose_bits(std::uint64_t label,
                                                     unsigned total_bits) noexcept {
  const unsigned half = total_bits / 2;
  const std::uint64_t low_mask = (1ULL << half) - 1;
  const std::uint64_t high = label >> half;
  const std::uint64_t low = label & low_mask;
  return (low << half) | high;
}

/// True iff the B-bit string reads the same forwards and backwards.
/// (Bit-reversal fixed points; the paper notes 16 such nodes for 256 nodes.)
[[nodiscard]] constexpr bool is_bit_palindrome(std::uint64_t label,
                                               unsigned total_bits) noexcept {
  return reverse_bits(label, total_bits) == label;
}

/// Base-k digit p_i of a node label (i = 0 most significant), given n digits.
[[nodiscard]] std::uint64_t digit(std::uint64_t label, unsigned i, unsigned n,
                                  std::uint64_t k) noexcept;

/// Decomposes a label into its n base-k digits, p0 first.
[[nodiscard]] std::vector<std::uint64_t> to_digits(std::uint64_t label,
                                                   unsigned n, std::uint64_t k);

/// Recomposes a label from base-k digits, p0 first.
[[nodiscard]] std::uint64_t from_digits(const std::vector<std::uint64_t>& digits,
                                        std::uint64_t k);

}  // namespace smart
