// Minimal JSON document model, writer and parser.
//
// The repo emits several JSON artifacts (bench reports, run manifests,
// metric registries) and the perf-regression tool must read them back.
// This is deliberately a small, self-contained subset: objects preserve
// insertion order, numbers are doubles, strings are escaped per RFC 8259
// (the escapes we emit; the parser additionally accepts \uXXXX for ASCII).
// It is not a general-purpose library — it exists so every producer and
// consumer in the repo shares one serialization dialect.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smart::json {

/// Escapes and quotes `value` for embedding in a JSON document.
[[nodiscard]] std::string quote(std::string_view value);

/// Formats a double the way our writers do: integral values without a
/// fractional part, everything else with enough digits to round-trip.
[[nodiscard]] std::string number(double value);

/// One JSON value. Objects keep their members in insertion order so the
/// documents we write diff cleanly between runs.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), number_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  [[nodiscard]] static Value array();
  [[nodiscard]] static Value object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }

  [[nodiscard]] const std::vector<Value>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const noexcept {
    return members_;
  }

  /// Object member by key; null when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// Member lookups with a type check; nullopt when absent or mistyped.
  [[nodiscard]] std::optional<double> number_at(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> string_at(
      std::string_view key) const;
  [[nodiscard]] std::optional<bool> bool_at(std::string_view key) const;

  void push_back(Value v);                      ///< array append
  void set(std::string key, Value v);           ///< object upsert

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one JSON document. Returns nullopt on malformed input and, when
/// `error` is non-null, a one-line description with the byte offset.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

/// Reads and parses a JSON file; nullopt on I/O or parse failure.
[[nodiscard]] std::optional<Value> parse_file(const std::string& path,
                                              std::string* error = nullptr);

}  // namespace smart::json
