// Minimal thread pool for running independent simulation points of a load
// sweep in parallel (each sweep point owns its RNG stream, so results are
// identical whether the sweep runs on one thread or many), plus the
// WorkerTeam the cycle engine uses for barrier-synchronized phase passes
// inside a single run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace smart {

class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw (the simulator reports errors
  /// through SMART_CHECK, which aborts).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// A persistent team of workers for fine-grained fork/join: run(fn) executes
/// fn(worker) on every worker index in [0, size()) and returns only when all
/// of them have finished (a full barrier). The calling thread participates
/// as worker 0, so a team of size 1 spawns no threads at all.
///
/// Unlike ThreadPool (a mutex/condvar task queue, fine for whole simulation
/// points), the team is built for the cycle engine's per-cycle phase passes:
/// a run() round trip costs a couple of atomic operations per worker, not a
/// queue lock. Workers spin briefly between epochs and park on a condition
/// variable when idle for longer, so an engine that stops stepping does not
/// burn CPU.
class WorkerTeam {
 public:
  /// `size` workers total, including the caller; 0 means
  /// hardware_concurrency (min 1).
  explicit WorkerTeam(std::size_t size);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  [[nodiscard]] std::size_t size() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs fn(worker) for every worker in [0, size()) — worker 0 on the
  /// calling thread — and returns when all have finished. fn must not
  /// throw. Not reentrant and not thread-safe: one run() at a time.
  void run(const std::function<void(std::size_t)>& fn);

  /// Opt-in contention telemetry: when enabled, run() accumulates the
  /// leader's straggler-wait (the spin after its own fn(0) finished until
  /// the last worker checks in) into wait_ns(). Off by default — two
  /// clock reads per run() round trip are pure overhead for callers that
  /// never read them (the engine enables this only under --profile).
  void enable_wait_timing() noexcept { time_waits_ = true; }
  [[nodiscard]] std::uint64_t wait_ns() const noexcept { return wait_ns_; }

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  /// Incremented by run() to publish fn_ (release); workers acquire it.
  std::atomic<std::uint64_t> epoch_{0};
  /// Workers that have finished the current epoch's fn.
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stop_{false};
  /// Workers currently parked on cv_ (after spinning too long idle).
  std::atomic<std::size_t> parked_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  /// Straggler-wait telemetry (leader thread only; see enable_wait_timing).
  bool time_waits_ = false;
  std::uint64_t wait_ns_ = 0;
};

}  // namespace smart
