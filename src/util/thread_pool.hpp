// Minimal thread pool for running independent simulation points of a load
// sweep in parallel. Each sweep point owns its RNG stream, so results are
// identical whether the sweep runs on one thread or many.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace smart {

class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw (the simulator reports errors
  /// through SMART_CHECK, which aborts).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace smart
