#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace smart {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1U, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with no work left
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {
// Spins this many iterations waiting for the next epoch before parking on
// the condition variable. run() is called a few times per simulated cycle,
// so the wait is almost always nanoseconds; parking matters only when the
// engine stops stepping (between runs, or a serial stretch of the driver).
constexpr int kSpinsBeforePark = 1 << 14;
}  // namespace

WorkerTeam::WorkerTeam(std::size_t size) {
  if (size == 0) {
    size = std::max(1U, std::thread::hardware_concurrency());
  }
  workers_.reserve(size - 1);
  for (std::size_t w = 1; w < size; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerTeam::~WorkerTeam() {
  stop_.store(true);
  {
    // The lock pairs with the parked workers' predicate re-check so the
    // stop flag cannot slip between their predicate test and wait.
    std::lock_guard lock(mutex_);
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void WorkerTeam::run(const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  fn_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  // Publishes fn_: workers acquire epoch_ before reading it. seq_cst (the
  // default) also orders the increment against the parked_ load below, so
  // a worker deciding to park either sees the new epoch or is seen here.
  epoch_.fetch_add(1);
  if (parked_.load() > 0) {
    std::lock_guard lock(mutex_);
    cv_.notify_all();
  }
  fn(0);
  // Spin for the stragglers; the passes are balanced by construction, so
  // this wait is short. yield() keeps oversubscribed runs (CI) live.
  if (time_waits_) {
    const auto t0 = std::chrono::steady_clock::now();
    while (done_.load(std::memory_order_acquire) < workers_.size()) {
      std::this_thread::yield();
    }
    wait_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  } else {
    while (done_.load(std::memory_order_acquire) < workers_.size()) {
      std::this_thread::yield();
    }
  }
  fn_ = nullptr;
}

void WorkerTeam::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (++spins < kSpinsBeforePark) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock lock(mutex_);
      parked_.fetch_add(1);
      cv_.wait(lock, [this, seen] {
        return epoch_.load(std::memory_order_acquire) != seen ||
               stop_.load(std::memory_order_acquire);
      });
      parked_.fetch_sub(1);
      break;  // re-test the outer condition
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (epoch_.load(std::memory_order_acquire) == seen) continue;
    // run() never advances the epoch while an epoch is in flight, so the
    // increment is exactly one ahead of `seen`.
    ++seen;
    (*fn_)(worker);
    done_.fetch_add(1, std::memory_order_acq_rel);
  }
}

}  // namespace smart
