#include "util/thread_pool.hpp"

#include <algorithm>

namespace smart {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1U, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with no work left
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace smart
