// Lightweight invariant checking.
//
// SMART_CHECK is active in all build types: simulator invariants guard the
// correctness of every experiment, and their cost is negligible next to the
// per-cycle work. SMART_DCHECK compiles out in release builds and is meant
// for hot-loop assertions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace smart {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "SMART_CHECK failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace smart

#define SMART_CHECK(expr)                                             \
  do {                                                                \
    if (!(expr)) ::smart::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define SMART_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::smart::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#ifdef NDEBUG
#define SMART_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define SMART_DCHECK(expr) SMART_CHECK(expr)
#endif
