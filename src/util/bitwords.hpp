// Dynamically-sized bitset over 64-bit words.
//
// The engine keeps per-switch occupancy masks (non-empty input lanes,
// busy lanes, ports with buffered output flits). Paper-scale fabrics fit
// in one 64-bit word, but generated fabrics do not: a 4K-node Clos spine
// has 256 ports and over a thousand input lanes. BitWords is the smallest
// structure that keeps the word-at-a-time scan idiom (snapshot a word,
// countr_zero-walk its set bits) while letting the width follow the
// fabric: a vector of words sized once at build time, never resized on
// the hot path. std::vector<bool> hides the words; std::bitset fixes the
// width at compile time — neither fits.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace smart {

class BitWords {
 public:
  BitWords() = default;

  /// Sizes the set to hold `bits` positions, all cleared. Called once per
  /// switch at fabric-build time; the hot path only sets/clears/tests.
  void resize(std::size_t bits) {
    words_.assign((bits + 63) / 64, 0);
  }

  void set(std::size_t i) noexcept {
    SMART_DCHECK(i / 64 < words_.size());
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  void clear(std::size_t i) noexcept {
    SMART_DCHECK(i / 64 < words_.size());
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    SMART_DCHECK(i / 64 < words_.size());
    return (words_[i / 64] >> (i % 64)) & 1U;
  }

  [[nodiscard]] bool any() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Raw word for the scan loops (positions [64w, 64w+63]).
  [[nodiscard]] std::uint64_t word(std::size_t w) const noexcept {
    SMART_DCHECK(w < words_.size());
    return words_[w];
  }

  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace smart
