#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace smart::json {

std::string quote(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  // Integral values (the common case for counters) print without noise.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<double> Value::number_at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::optional<std::string> Value::string_at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

std::optional<bool> Value::bool_at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_bool()) return std::nullopt;
  return v->as_bool();
}

void Value::push_back(Value v) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += number(number_); break;
    case Kind::kString: out += quote(string_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline(depth + 1);
        out += quote(members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> v = value();
    skip_ws();
    if (v && pos_ != text_.size()) {
      fail("trailing characters after document");
      v = std::nullopt;
    }
    if (!v && error != nullptr) {
      std::ostringstream os;
      os << error_ << " at byte " << error_pos_;
      *error = os.str();
    }
    return v;
  }

 private:
  void fail(const char* message) {
    if (error_ == nullptr) {
      error_ = message;
      error_pos_ = pos_;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    fail("unrecognized literal");
    return false;
  }

  std::optional<std::string> string_body() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // We only emit ASCII escapes; decode the BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string_body();
      if (!s) return std::nullopt;
      return Value(std::move(*s));
    }
    if (c == 't') return literal("true") ? std::optional<Value>(Value(true))
                                         : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Value>(Value(false))
                                          : std::nullopt;
    if (c == 'n') return literal("null") ? std::optional<Value>(Value{})
                                         : std::nullopt;
    return parse_number();
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    const auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) {
      fail("expected a number");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::optional<Value> array() {
    ++pos_;  // '['
    Value out = Value::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> object() {
    ++pos_;  // '{'
    Value out = Value::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      auto key = string_body();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      auto v = value();
      if (!v) return std::nullopt;
      out.set(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const char* error_ = nullptr;
  std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

std::optional<Value> parse_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), error);
}

}  // namespace smart::json
