// Fixed-capacity ring buffer used for virtual-channel lanes.
//
// Lanes hold at most a handful of flits (4 by default in the paper's router
// model), are pushed/popped every cycle across thousands of instances, and
// must never allocate in the simulation loop. Capacity is fixed at
// construction; overflow/underflow are checked invariants.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace smart {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    SMART_CHECK(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool full() const noexcept { return count_ == slots_.size(); }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return slots_.size() - count_;
  }

  void push(const T& value) {
    SMART_DCHECK(!full());
    slots_[tail_] = value;
    tail_ = advance(tail_);
    ++count_;
  }

  /// Push that doubles capacity instead of asserting when full. For
  /// unbounded FIFOs (the NIC source queue); fabric lanes stay fixed.
  void push_grow(const T& value) {
    if (full()) {
      grow(slots_.empty() ? kInitialGrowCapacity : slots_.size() * 2);
    }
    push(value);
  }

  [[nodiscard]] T& front() {
    SMART_DCHECK(!empty());
    return slots_[head_];
  }

  [[nodiscard]] const T& front() const {
    SMART_DCHECK(!empty());
    return slots_[head_];
  }

  /// Element i positions behind the front (i = 0 is the front itself).
  [[nodiscard]] const T& at(std::size_t i) const {
    SMART_DCHECK(i < count_);
    return slots_[(head_ + i) % slots_.size()];
  }

  T pop() {
    SMART_DCHECK(!empty());
    T value = slots_[head_];
    head_ = advance(head_);
    --count_;
    return value;
  }

  void clear() noexcept {
    head_ = tail_ = 0;
    count_ = 0;
  }

 private:
  static constexpr std::size_t kInitialGrowCapacity = 8;

  [[nodiscard]] std::size_t advance(std::size_t i) const noexcept {
    return (i + 1) % slots_.size();
  }

  /// Re-linearizes the occupied span into a larger slot vector.
  void grow(std::size_t new_capacity) {
    std::vector<T> fresh(new_capacity);
    for (std::size_t i = 0; i < count_; ++i) {
      fresh[i] = slots_[(head_ + i) % slots_.size()];
    }
    slots_ = std::move(fresh);
    head_ = 0;
    tail_ = count_ % new_capacity;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace smart
