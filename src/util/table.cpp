#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace smart {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != 'e' && c != 'E' && c != '-' && c != '+' && c != '%') {
      return false;
    }
  }
  return true;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SMART_CHECK(!headers_.empty());
}

Table& Table::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add_cell(std::string value) {
  SMART_CHECK_MSG(!rows_.empty(), "call begin_row() before add_cell()");
  SMART_CHECK_MSG(rows_.back().size() < headers_.size(),
                  "row has more cells than headers");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}

Table& Table::add_cell(std::uint64_t value) {
  return add_cell(std::to_string(value));
}

Table& Table::add_cell(unsigned value) {
  return add_cell(std::to_string(value));
}

Table& Table::add_cell(int value) { return add_cell(std::to_string(value)); }

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  SMART_CHECK(row < rows_.size());
  SMART_CHECK(col < rows_[row].size());
  return rows_[row][col];
}

const std::string& Table::header(std::size_t col) const {
  SMART_CHECK(col < headers_.size());
  return headers_[col];
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& value = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = widths[c] - value.size();
      os << "  ";
      const bool right = align_right && looks_numeric(value);
      if (right) os << std::string(pad, ' ');
      os << value;
      if (!right) os << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit_row(headers_, false);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace smart
