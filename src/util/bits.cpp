#include "util/bits.hpp"

namespace smart {

std::uint64_t digit(std::uint64_t label, unsigned i, unsigned n,
                    std::uint64_t k) noexcept {
  SMART_DCHECK(i < n);
  std::uint64_t divisor = ipow(k, n - 1 - i);
  return (label / divisor) % k;
}

std::vector<std::uint64_t> to_digits(std::uint64_t label, unsigned n,
                                     std::uint64_t k) {
  std::vector<std::uint64_t> digits(n);
  for (unsigned i = 0; i < n; ++i) {
    digits[n - 1 - i] = label % k;
    label /= k;
  }
  return digits;
}

std::uint64_t from_digits(const std::vector<std::uint64_t>& digits,
                          std::uint64_t k) {
  std::uint64_t label = 0;
  for (std::uint64_t d : digits) {
    SMART_CHECK(d < k);
    label = label * k + d;
  }
  return label;
}

}  // namespace smart
