// Performance normalization between the two network families (paper §5).
//
// Technological pin limits fix the number of pins per routing chip. The
// quaternary fat-tree switch has arity 2k = 8, the bi-dimensional cube
// router arity 2n = 4 (plus the local node). Equal pin budgets therefore
// allow the cube data paths to be (2k)/(2n) times wider: with the paper's
// baseline of 2-byte fat-tree phits, the 16-ary 2-cube gets 4-byte phits.
// The same normalization equalizes the total (peak) network bandwidth —
// the tree has n*k^n links, twice as many as the 2-cube — and makes the
// theoretical uniform-traffic capacity of both networks 2 bytes/node/cycle.
//
// Conversions to the absolute units of Figure 7 (bits/nsec and nsec) use
// each configuration's own router clock from the Chien model.
#pragma once

#include "cost/chien.hpp"
#include "topology/topology.hpp"

namespace smart {

/// Baseline fat-tree phit/flit width used by the paper.
inline constexpr unsigned kTreeFlitBytes = 2;

/// Paper packet size.
inline constexpr unsigned kPacketBytes = 64;

/// Flit width that equalizes the pin count of a k-ary n-tree switch
/// (arity 2k) and a k-ary n-cube router (arity 2n), with the tree at the
/// baseline width. For the paper's pair (k=4 tree, n=2 cube): 4 bytes.
[[nodiscard]] unsigned normalized_cube_flit_bytes(unsigned tree_k,
                                                  unsigned cube_n);

/// Flits needed to carry a packet of `packet_bytes` with `flit_bytes` phits.
[[nodiscard]] unsigned packet_flits(unsigned packet_bytes, unsigned flit_bytes);

/// Absolute accepted bandwidth for the whole network, in bits/nsec, from a
/// per-node flit rate measured in flits/node/cycle.
[[nodiscard]] double to_bits_per_ns(double flits_per_node_cycle,
                                    std::size_t nodes, unsigned flit_bytes,
                                    double clock_ns);

/// Absolute latency in nanoseconds from cycles.
[[nodiscard]] double to_ns(double cycles, double clock_ns);

/// Everything needed to place one network configuration on Figure 7's axes.
struct NormalizedScale {
  unsigned flit_bytes = 0;
  double clock_ns = 0.0;
  double capacity_flits_per_node_cycle = 0.0;  ///< paper §5 upper bound
  std::size_t nodes = 0;

  /// Network-wide injection rate at 100 % offered load, in bits/nsec.
  [[nodiscard]] double capacity_bits_per_ns() const {
    return to_bits_per_ns(capacity_flits_per_node_cycle, nodes, flit_bytes,
                          clock_ns);
  }
};

}  // namespace smart
