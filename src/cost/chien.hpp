// Chien's router cost/speed model (paper §5, eqs. 1-4).
//
// The model assumes a 0.8 micron CMOS gate-array implementation of the
// routing chip and expresses the three per-phase delays in nanoseconds as a
// function of the routing freedom F, the crossbar port count P and the
// virtual-channel count V:
//
//   T_routing  = 4.7  + 1.2 * log2(F)            (eq. 1)
//   T_crossbar = 3.4  + 0.6 * log2(P)            (eq. 2)
//   T_link     = 5.14 + 0.6 * log2(V)  (short)   (eq. 3)
//   T_link     = 9.64 + 0.6 * log2(V)  (medium)  (eq. 4)
//
// Low-dimensional cubes embed in 3-space with constant-length (short)
// wires; a 256-node quaternary fat-tree inevitably has some longer wires,
// so it is charged the medium-wire link delay. The router clock is the
// maximum of the three delays and every simulator phase takes one clock.
#pragma once

#include <string>

namespace smart {

[[nodiscard]] double t_routing_ns(unsigned degrees_of_freedom);
[[nodiscard]] double t_crossbar_ns(unsigned crossbar_ports);
[[nodiscard]] double t_link_short_ns(unsigned virtual_channels);
[[nodiscard]] double t_link_medium_ns(unsigned virtual_channels);

/// Extension of eqs. 3/4 to an explicit wire length: the short wire
/// (eq. 3) models runs up to ~0.1 m inside a board stack; each meter
/// beyond that adds 5 ns of flight time (~0.2 m/ns signal velocity), so
/// eq. 4's "medium" wire is the 1.0 m point (9.64 = 5.14 + 0.9 * 5).
/// The topology-synthesis families use this with their modeled cabinet
/// layout to derive a per-fabric clock (docs/TOPOLOGIES.md).
[[nodiscard]] double t_link_wire_ns(unsigned virtual_channels, double wire_m);

enum class WireLength : unsigned char { kShort, kMedium };

/// Which of the three phases sets the clock.
enum class LimitingPhase : unsigned char { kRouting, kCrossbar, kLink };

struct RouterDelays {
  double routing_ns = 0.0;
  double crossbar_ns = 0.0;
  double link_ns = 0.0;

  [[nodiscard]] double clock_ns() const noexcept;
  [[nodiscard]] LimitingPhase limiting_phase() const noexcept;
};

[[nodiscard]] std::string to_string(LimitingPhase phase);

/// Delays for arbitrary router parameters.
[[nodiscard]] RouterDelays router_delays(unsigned degrees_of_freedom,
                                         unsigned crossbar_ports,
                                         unsigned virtual_channels,
                                         WireLength wires);

// ---- The paper's concrete configurations -------------------------------

/// Deterministic dimension-order router of a k-ary n-cube with V virtual
/// channels per link (V/2 per virtual network): F = V/2 (the channels
/// available in the single permitted direction), P = 2nV + 1 (one injection
/// channel), short wires. The paper's 16-ary 2-cube with V = 4 gives
/// F = 2, P = 17, clock 6.34 ns.
[[nodiscard]] RouterDelays cube_deterministic_delays(unsigned n, unsigned vcs);

/// Duato minimal-adaptive router: half the channels are adaptive and usable
/// in every dimension, half are deterministic escape channels, so
/// F = n*(V/2) + V/2, P = 2nV + 1, short wires. The paper's configuration
/// gives F = 6, P = 17, clock 7.8 ns.
[[nodiscard]] RouterDelays cube_duato_delays(unsigned n, unsigned vcs);

/// Adaptive fat-tree router of a k-ary n-tree: in the ascending phase a
/// packet may take any of the 2k-1 other links, each with V channels, so
/// F = (2k-1)*V and P = 2kV; medium wires. The paper's 4-ary 4-tree gives
/// clocks 9.64 / 10.24 / 10.84 ns for V = 1 / 2 / 4.
[[nodiscard]] RouterDelays tree_adaptive_delays(unsigned k, unsigned vcs);

}  // namespace smart
