#include "cost/chien.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace smart {

namespace {
double log2d(unsigned x) {
  SMART_CHECK(x >= 1);
  return std::log2(static_cast<double>(x));
}
}  // namespace

double t_routing_ns(unsigned degrees_of_freedom) {
  return 4.7 + 1.2 * log2d(degrees_of_freedom);
}

double t_crossbar_ns(unsigned crossbar_ports) {
  return 3.4 + 0.6 * log2d(crossbar_ports);
}

double t_link_short_ns(unsigned virtual_channels) {
  return 5.14 + 0.6 * log2d(virtual_channels);
}

double t_link_medium_ns(unsigned virtual_channels) {
  return 9.64 + 0.6 * log2d(virtual_channels);
}

double t_link_wire_ns(unsigned virtual_channels, double wire_m) {
  SMART_CHECK_MSG(wire_m >= 0.0, "wire length must be non-negative");
  const double flight = wire_m > 0.1 ? (wire_m - 0.1) * 5.0 : 0.0;
  return t_link_short_ns(virtual_channels) + flight;
}

double RouterDelays::clock_ns() const noexcept {
  return std::max({routing_ns, crossbar_ns, link_ns});
}

LimitingPhase RouterDelays::limiting_phase() const noexcept {
  const double clock = clock_ns();
  if (clock == link_ns) return LimitingPhase::kLink;
  if (clock == routing_ns) return LimitingPhase::kRouting;
  return LimitingPhase::kCrossbar;
}

std::string to_string(LimitingPhase phase) {
  switch (phase) {
    case LimitingPhase::kRouting: return "routing";
    case LimitingPhase::kCrossbar: return "crossbar";
    case LimitingPhase::kLink: return "link";
  }
  return "unknown";
}

RouterDelays router_delays(unsigned degrees_of_freedom, unsigned crossbar_ports,
                           unsigned virtual_channels, WireLength wires) {
  RouterDelays delays;
  delays.routing_ns = t_routing_ns(degrees_of_freedom);
  delays.crossbar_ns = t_crossbar_ns(crossbar_ports);
  delays.link_ns = wires == WireLength::kShort
                       ? t_link_short_ns(virtual_channels)
                       : t_link_medium_ns(virtual_channels);
  return delays;
}

RouterDelays cube_deterministic_delays(unsigned n, unsigned vcs) {
  SMART_CHECK_MSG(vcs >= 2 && vcs % 2 == 0,
                  "deterministic cube routing needs two virtual networks");
  const unsigned freedom = vcs / 2;  // channels in the single legal direction
  const unsigned ports = 2 * n * vcs + 1;
  return router_delays(freedom, ports, vcs, WireLength::kShort);
}

RouterDelays cube_duato_delays(unsigned n, unsigned vcs) {
  SMART_CHECK_MSG(vcs >= 2 && vcs % 2 == 0,
                  "Duato routing splits channels into adaptive and escape");
  const unsigned adaptive = vcs / 2;
  const unsigned escape = vcs / 2;
  const unsigned freedom = n * adaptive + escape;
  const unsigned ports = 2 * n * vcs + 1;
  return router_delays(freedom, ports, vcs, WireLength::kShort);
}

RouterDelays tree_adaptive_delays(unsigned k, unsigned vcs) {
  SMART_CHECK(vcs >= 1);
  const unsigned freedom = (2 * k - 1) * vcs;
  const unsigned ports = 2 * k * vcs;
  return router_delays(freedom, ports, vcs, WireLength::kMedium);
}

}  // namespace smart
