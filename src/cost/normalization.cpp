#include "cost/normalization.hpp"

#include "util/check.hpp"

namespace smart {

unsigned normalized_cube_flit_bytes(unsigned tree_k, unsigned cube_n) {
  SMART_CHECK(tree_k >= 1 && cube_n >= 1);
  // Equal pin count: tree arity 2k at kTreeFlitBytes vs cube arity 2n.
  const unsigned bytes = kTreeFlitBytes * (2 * tree_k) / (2 * cube_n);
  SMART_CHECK_MSG(bytes >= 1, "cube arity exceeds the available pin budget");
  return bytes;
}

unsigned packet_flits(unsigned packet_bytes, unsigned flit_bytes) {
  SMART_CHECK(packet_bytes >= 1 && flit_bytes >= 1);
  return (packet_bytes + flit_bytes - 1) / flit_bytes;
}

double to_bits_per_ns(double flits_per_node_cycle, std::size_t nodes,
                      unsigned flit_bytes, double clock_ns) {
  SMART_CHECK(clock_ns > 0.0);
  return flits_per_node_cycle * static_cast<double>(nodes) *
         (8.0 * flit_bytes) / clock_ns;
}

double to_ns(double cycles, double clock_ns) { return cycles * clock_ns; }

}  // namespace smart
