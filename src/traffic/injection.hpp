// Packet-injection processes.
//
// The paper's load model is an open-loop Bernoulli process per node. The
// paper also motivates post-saturation stability with "bursty applications
// that require peak performance for a short period of time" (§6); the
// bursty process here makes that workload explicit: a two-state Markov-
// modulated Bernoulli process (on/off) with the same average rate but
// clustered arrivals. Each node owns one process instance (independent
// state), driven by the node's RNG stream.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hpp"

namespace smart {

enum class InjectionKind : std::uint8_t { kBernoulli, kBursty };

[[nodiscard]] std::string to_string(InjectionKind kind);

class InjectionProcess {
 public:
  virtual ~InjectionProcess() = default;

  /// One trial per node per cycle: true = generate a packet now.
  [[nodiscard]] virtual bool fires(Rng& rng) = 0;

  /// Long-run average packets/cycle this process generates.
  [[nodiscard]] virtual double average_rate() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Independent trials with fixed probability (the paper's model).
class BernoulliInjection final : public InjectionProcess {
 public:
  explicit BernoulliInjection(double rate);
  [[nodiscard]] bool fires(Rng& rng) override;
  [[nodiscard]] double average_rate() const override { return rate_; }
  [[nodiscard]] std::string name() const override { return "Bernoulli"; }

 private:
  double rate_;
};

/// Two-state on/off process. In the ON state packets are generated at
/// `burst_factor` times the average rate (clamped to 1 packet/cycle); the
/// OFF state generates nothing. State residence times are geometric with
/// the given mean ON duration; the OFF duration is derived so the long-run
/// average equals `rate`. burst_factor = 1 degenerates to Bernoulli.
class BurstyInjection final : public InjectionProcess {
 public:
  BurstyInjection(double rate, double burst_factor, double mean_on_cycles);
  [[nodiscard]] bool fires(Rng& rng) override;
  [[nodiscard]] double average_rate() const override { return rate_; }
  [[nodiscard]] std::string name() const override { return "bursty"; }

  [[nodiscard]] double on_rate() const noexcept { return on_rate_; }
  [[nodiscard]] bool on() const noexcept { return on_; }

 private:
  double rate_;
  double on_rate_;
  double p_leave_on_;   ///< per-cycle probability of ending a burst
  double p_leave_off_;  ///< per-cycle probability of starting a burst
  bool on_ = false;
};

/// Builds one process instance (per node). burst parameters are ignored by
/// the Bernoulli process.
[[nodiscard]] std::unique_ptr<InjectionProcess> make_injection(
    InjectionKind kind, double rate, double burst_factor = 8.0,
    double mean_on_cycles = 200.0);

}  // namespace smart
