#include "traffic/pattern.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace smart {

std::string to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::kUniform: return "uniform";
    case PatternKind::kComplement: return "complement";
    case PatternKind::kBitReversal: return "bit reversal";
    case PatternKind::kTranspose: return "transpose";
    case PatternKind::kTornado: return "tornado";
    case PatternKind::kNeighbor: return "neighbor";
    case PatternKind::kShuffle: return "shuffle";
    case PatternKind::kBitRotation: return "bit rotation";
    case PatternKind::kDigitReversal: return "digit reversal";
    case PatternKind::kRandomPermutation: return "random permutation";
    case PatternKind::kHotspot: return "hotspot";
  }
  return "unknown";
}

TrafficPattern::TrafficPattern(std::size_t nodes) : nodes_(nodes) {
  SMART_CHECK_MSG(nodes >= 2, "traffic pattern needs at least two nodes");
}

double TrafficPattern::injecting_fraction() const {
  Rng rng(0);
  std::size_t injecting = 0;
  for (NodeId src = 0; src < nodes_; ++src) {
    if (destination(src, rng).has_value()) ++injecting;
  }
  return static_cast<double>(injecting) / static_cast<double>(nodes_);
}

std::vector<NodeId> TrafficPattern::destination_table() const {
  SMART_CHECK_MSG(is_permutation(),
                  "destination_table() requires a permutation pattern");
  Rng rng(0);
  std::vector<NodeId> table(nodes_);
  for (NodeId src = 0; src < nodes_; ++src) {
    table[src] = destination(src, rng).value_or(src);
  }
  return table;
}

UniformPattern::UniformPattern(std::size_t nodes) : TrafficPattern(nodes) {}

std::optional<NodeId> UniformPattern::destination(NodeId src, Rng& rng) const {
  // Draw over N-1 values and skip over src, keeping the draw unbiased.
  auto dst = static_cast<NodeId>(rng.below(nodes_ - 1));
  if (dst >= src) ++dst;
  return dst;
}

BitPermutationPattern::BitPermutationPattern(std::size_t nodes,
                                             bool require_even_bits)
    : TrafficPattern(nodes), table_(nodes) {
  SMART_CHECK_MSG(is_power_of_two(nodes),
                  "bit-string patterns require a power-of-two node count");
  bits_ = log2_exact(nodes);
  if (require_even_bits) {
    SMART_CHECK_MSG(bits_ % 2 == 0,
                    "transpose requires an even number of label bits");
  }
}

std::optional<NodeId> BitPermutationPattern::destination(NodeId src,
                                                         Rng& /*rng*/) const {
  SMART_DCHECK(src < nodes_);
  const NodeId dst = table_[src];
  if (dst == src) return std::nullopt;  // fixed point: no packet injected
  return dst;
}

void BitPermutationPattern::set_destination(NodeId src, NodeId dst) {
  table_[src] = dst;
}

ComplementPattern::ComplementPattern(std::size_t nodes)
    : BitPermutationPattern(nodes, /*require_even_bits=*/false) {
  for (NodeId src = 0; src < nodes; ++src) {
    set_destination(src, static_cast<NodeId>(complement_bits(src, bits_)));
  }
}

BitReversalPattern::BitReversalPattern(std::size_t nodes)
    : BitPermutationPattern(nodes, /*require_even_bits=*/false) {
  for (NodeId src = 0; src < nodes; ++src) {
    set_destination(src, static_cast<NodeId>(reverse_bits(src, bits_)));
  }
}

TransposePattern::TransposePattern(std::size_t nodes)
    : BitPermutationPattern(nodes, /*require_even_bits=*/true) {
  for (NodeId src = 0; src < nodes; ++src) {
    set_destination(src, static_cast<NodeId>(transpose_bits(src, bits_)));
  }
}

ShufflePattern::ShufflePattern(std::size_t nodes)
    : BitPermutationPattern(nodes, /*require_even_bits=*/false) {
  for (NodeId src = 0; src < nodes; ++src) {
    const NodeId rotated = static_cast<NodeId>(
        ((static_cast<std::uint64_t>(src) << 1) |
         label_bit(src, 0, bits_)) &
        (nodes - 1));
    set_destination(src, rotated);
  }
}

BitRotationPattern::BitRotationPattern(std::size_t nodes)
    : BitPermutationPattern(nodes, /*require_even_bits=*/false) {
  for (NodeId src = 0; src < nodes; ++src) {
    const NodeId rotated = static_cast<NodeId>(
        (static_cast<std::uint64_t>(src) >> 1) |
        (static_cast<std::uint64_t>(src & 1U) << (bits_ - 1)));
    set_destination(src, rotated);
  }
}

DigitReversalPattern::DigitReversalPattern(unsigned k, unsigned n)
    : TrafficPattern(ipow(k, n)), k_(k), n_(n) {
  SMART_CHECK(k >= 2 && n >= 1);
}

std::optional<NodeId> DigitReversalPattern::destination(NodeId src,
                                                        Rng& /*rng*/) const {
  std::uint64_t value = src;
  std::uint64_t reversed = 0;
  for (unsigned d = 0; d < n_; ++d) {
    reversed = reversed * k_ + value % k_;
    value /= k_;
  }
  const auto dst = static_cast<NodeId>(reversed);
  if (dst == src) return std::nullopt;
  return dst;
}

TornadoPattern::TornadoPattern(unsigned k, unsigned n)
    : TrafficPattern(ipow(k, n)), k_(k), n_(n) {
  SMART_CHECK(k >= 2 && n >= 1);
}

std::optional<NodeId> TornadoPattern::destination(NodeId src,
                                                  Rng& /*rng*/) const {
  const unsigned shift = (k_ + 1) / 2 - 1;
  if (shift == 0) return std::nullopt;
  std::uint64_t dst = 0;
  std::uint64_t stride = 1;
  std::uint64_t value = src;
  for (unsigned d = 0; d < n_; ++d) {
    const std::uint64_t digit_value = value % k_;
    dst += ((digit_value + shift) % k_) * stride;
    value /= k_;
    stride *= k_;
  }
  return static_cast<NodeId>(dst);
}

NeighborPattern::NeighborPattern(std::size_t nodes) : TrafficPattern(nodes) {}

std::optional<NodeId> NeighborPattern::destination(NodeId src,
                                                   Rng& /*rng*/) const {
  return static_cast<NodeId>((src + 1) % nodes_);
}

RandomPermutationPattern::RandomPermutationPattern(std::size_t nodes,
                                                   std::uint64_t seed)
    : TrafficPattern(nodes), table_(nodes) {
  for (NodeId i = 0; i < nodes; ++i) table_[i] = i;
  Rng rng(seed);
  for (std::size_t i = nodes - 1; i > 0; --i) {
    const std::size_t j = rng.below(i + 1);
    std::swap(table_[i], table_[j]);
  }
}

std::optional<NodeId> RandomPermutationPattern::destination(
    NodeId src, Rng& /*rng*/) const {
  const NodeId dst = table_[src];
  if (dst == src) return std::nullopt;
  return dst;
}

HotspotPattern::HotspotPattern(std::size_t nodes, NodeId hotspot,
                               double fraction)
    : TrafficPattern(nodes), hotspot_(hotspot), fraction_(fraction) {
  SMART_CHECK(hotspot < nodes);
  SMART_CHECK(fraction >= 0.0 && fraction <= 1.0);
}

std::optional<NodeId> HotspotPattern::destination(NodeId src, Rng& rng) const {
  if (src != hotspot_ && rng.bernoulli(fraction_)) return hotspot_;
  auto dst = static_cast<NodeId>(rng.below(nodes_ - 1));
  if (dst >= src) ++dst;
  return dst;
}

std::unique_ptr<TrafficPattern> make_pattern(PatternKind kind,
                                             std::size_t nodes, unsigned k,
                                             unsigned n, std::uint64_t seed) {
  switch (kind) {
    case PatternKind::kUniform:
      return std::make_unique<UniformPattern>(nodes);
    case PatternKind::kComplement:
      return std::make_unique<ComplementPattern>(nodes);
    case PatternKind::kBitReversal:
      return std::make_unique<BitReversalPattern>(nodes);
    case PatternKind::kTranspose:
      return std::make_unique<TransposePattern>(nodes);
    case PatternKind::kShuffle:
      return std::make_unique<ShufflePattern>(nodes);
    case PatternKind::kBitRotation:
      return std::make_unique<BitRotationPattern>(nodes);
    case PatternKind::kDigitReversal:
      SMART_CHECK_MSG(k >= 2 && n >= 1 && ipow(k, n) == nodes,
                      "digit reversal needs the machine geometry (k, n)");
      return std::make_unique<DigitReversalPattern>(k, n);
    case PatternKind::kTornado:
      SMART_CHECK_MSG(k >= 2 && n >= 1 && ipow(k, n) == nodes,
                      "tornado needs the cube geometry (k, n)");
      return std::make_unique<TornadoPattern>(k, n);
    case PatternKind::kNeighbor:
      return std::make_unique<NeighborPattern>(nodes);
    case PatternKind::kRandomPermutation:
      return std::make_unique<RandomPermutationPattern>(nodes, seed);
    case PatternKind::kHotspot:
      return std::make_unique<HotspotPattern>(nodes, 0, 0.1);
  }
  SMART_CHECK_MSG(false, "unknown pattern kind");
  return nullptr;
}

}  // namespace smart
