#include "traffic/injection.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace smart {

std::string to_string(InjectionKind kind) {
  switch (kind) {
    case InjectionKind::kBernoulli: return "Bernoulli";
    case InjectionKind::kBursty: return "bursty";
  }
  return "unknown";
}

BernoulliInjection::BernoulliInjection(double rate) : rate_(rate) {
  SMART_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                  "injection rate must be in [0, 1] packets/cycle");
}

bool BernoulliInjection::fires(Rng& rng) { return rng.bernoulli(rate_); }

BurstyInjection::BurstyInjection(double rate, double burst_factor,
                                 double mean_on_cycles)
    : rate_(rate) {
  SMART_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                  "injection rate must be in [0, 1] packets/cycle");
  SMART_CHECK_MSG(burst_factor >= 1.0, "burst factor must be >= 1");
  SMART_CHECK_MSG(mean_on_cycles >= 1.0, "mean burst length must be >= 1");

  on_rate_ = std::min(1.0, burst_factor * rate);
  p_leave_on_ = 1.0 / mean_on_cycles;
  if (rate <= 0.0 || on_rate_ <= rate) {
    // Degenerate: always on (burst_factor 1, or rate saturating the clamp).
    on_rate_ = std::max(on_rate_, rate);
    p_leave_on_ = 0.0;
    p_leave_off_ = 1.0;
    on_ = true;
    return;
  }
  // Stationary fraction of ON time is rate / on_rate; geometric residence
  // times give p_off->on = p_on->off * f_on / (1 - f_on).
  const double f_on = rate_ / on_rate_;
  p_leave_off_ = p_leave_on_ * f_on / (1.0 - f_on);
  SMART_CHECK_MSG(p_leave_off_ <= 1.0,
                  "burst length too short for the requested burst factor");
}

bool BurstyInjection::fires(Rng& rng) {
  if (on_) {
    if (p_leave_on_ > 0.0 && rng.bernoulli(p_leave_on_)) on_ = false;
  } else {
    if (rng.bernoulli(p_leave_off_)) on_ = true;
  }
  return on_ && rng.bernoulli(on_rate_);
}

std::unique_ptr<InjectionProcess> make_injection(InjectionKind kind,
                                                 double rate,
                                                 double burst_factor,
                                                 double mean_on_cycles) {
  switch (kind) {
    case InjectionKind::kBernoulli:
      return std::make_unique<BernoulliInjection>(rate);
    case InjectionKind::kBursty:
      return std::make_unique<BurstyInjection>(rate, burst_factor,
                                               mean_on_cycles);
  }
  SMART_CHECK_MSG(false, "unknown injection kind");
  return nullptr;
}

}  // namespace smart
