// Synthetic traffic patterns (paper §7).
//
// A pattern maps a source node to a destination for each generated packet.
// The four patterns of the paper operate on the binary representation
// a_0 ... a_(B-1) of the node label (B = log2 N, a_0 most significant):
//
//   uniform      destinations drawn uniformly among the other nodes
//   complement   !a_0 !a_1 ... !a_(B-1)
//   bit reversal a_(B-1) ... a_0
//   transpose    a_(B/2) ... a_(B-1) a_0 ... a_(B/2-1)
//
// A permutation fixed point (e.g. the 16 palindromes under bit reversal on
// 256 nodes) means the node injects nothing. Additional patterns beyond the
// paper (tornado, neighbor, shuffle, random permutation, hotspot) are
// provided for wider experimentation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace smart {

enum class PatternKind : std::uint8_t {
  kUniform,
  kComplement,
  kBitReversal,
  kTranspose,
  kTornado,
  kNeighbor,
  kShuffle,
  kBitRotation,
  kDigitReversal,
  kRandomPermutation,
  kHotspot,
};

[[nodiscard]] std::string to_string(PatternKind kind);

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Destination of a packet generated at src; nullopt means the node does
  /// not inject (permutation fixed point). rng is only consulted by random
  /// patterns.
  [[nodiscard]] virtual std::optional<NodeId> destination(NodeId src,
                                                          Rng& rng) const = 0;

  /// True when every node has a single, fixed destination.
  [[nodiscard]] virtual bool is_permutation() const = 0;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }

  /// Fraction of nodes that actually inject (1.0 unless the permutation has
  /// fixed points).
  [[nodiscard]] double injecting_fraction() const;

  /// Destination table for permutations (fixed points map to self).
  [[nodiscard]] std::vector<NodeId> destination_table() const;

 protected:
  explicit TrafficPattern(std::size_t nodes);

  std::size_t nodes_;
};

/// Uniformly random destination among the N-1 other nodes.
class UniformPattern final : public TrafficPattern {
 public:
  explicit UniformPattern(std::size_t nodes);
  [[nodiscard]] std::string name() const override { return "uniform"; }
  [[nodiscard]] std::optional<NodeId> destination(NodeId src,
                                                  Rng& rng) const override;
  [[nodiscard]] bool is_permutation() const override { return false; }
};

/// Base for the bit-string permutations; precomputes the destination table.
class BitPermutationPattern : public TrafficPattern {
 public:
  [[nodiscard]] std::optional<NodeId> destination(NodeId src,
                                                  Rng& rng) const override;
  [[nodiscard]] bool is_permutation() const override { return true; }
  [[nodiscard]] unsigned total_bits() const noexcept { return bits_; }

 protected:
  BitPermutationPattern(std::size_t nodes, bool require_even_bits);

  void set_destination(NodeId src, NodeId dst);

  unsigned bits_;
  std::vector<NodeId> table_;
};

class ComplementPattern final : public BitPermutationPattern {
 public:
  explicit ComplementPattern(std::size_t nodes);
  [[nodiscard]] std::string name() const override { return "complement"; }
};

class BitReversalPattern final : public BitPermutationPattern {
 public:
  explicit BitReversalPattern(std::size_t nodes);
  [[nodiscard]] std::string name() const override { return "bit reversal"; }
};

class TransposePattern final : public BitPermutationPattern {
 public:
  explicit TransposePattern(std::size_t nodes);
  [[nodiscard]] std::string name() const override { return "transpose"; }
};

/// Perfect shuffle: left-rotate the bit string by one.
class ShufflePattern final : public BitPermutationPattern {
 public:
  explicit ShufflePattern(std::size_t nodes);
  [[nodiscard]] std::string name() const override { return "shuffle"; }
};

/// Inverse shuffle: right-rotate the bit string by one.
class BitRotationPattern final : public BitPermutationPattern {
 public:
  explicit BitRotationPattern(std::size_t nodes);
  [[nodiscard]] std::string name() const override { return "bit rotation"; }
};

/// Base-k digit reversal: p_0...p_(n-1) -> p_(n-1)...p_0. Coincides with
/// bit reversal only for k = 2; the natural FFT layout permutation on a
/// radix-k machine.
class DigitReversalPattern final : public TrafficPattern {
 public:
  DigitReversalPattern(unsigned k, unsigned n);
  [[nodiscard]] std::string name() const override { return "digit reversal"; }
  [[nodiscard]] std::optional<NodeId> destination(NodeId src,
                                                  Rng& rng) const override;
  [[nodiscard]] bool is_permutation() const override { return true; }

 private:
  unsigned k_;
  unsigned n_;
};

/// Tornado on a k-ary n-cube label: every base-k digit shifted by
/// ceil(k/2) - 1, the worst case for minimal routing on rings.
class TornadoPattern final : public TrafficPattern {
 public:
  TornadoPattern(unsigned k, unsigned n);
  [[nodiscard]] std::string name() const override { return "tornado"; }
  [[nodiscard]] std::optional<NodeId> destination(NodeId src,
                                                  Rng& rng) const override;
  [[nodiscard]] bool is_permutation() const override { return true; }

 private:
  unsigned k_;
  unsigned n_;
};

/// Ring neighbor: dst = (src + 1) mod N.
class NeighborPattern final : public TrafficPattern {
 public:
  explicit NeighborPattern(std::size_t nodes);
  [[nodiscard]] std::string name() const override { return "neighbor"; }
  [[nodiscard]] std::optional<NodeId> destination(NodeId src,
                                                  Rng& rng) const override;
  [[nodiscard]] bool is_permutation() const override { return true; }
};

/// A fixed random permutation (Fisher-Yates over a seeded stream); models a
/// global personalized exchange with an arbitrary layout.
class RandomPermutationPattern final : public TrafficPattern {
 public:
  RandomPermutationPattern(std::size_t nodes, std::uint64_t seed);
  [[nodiscard]] std::string name() const override {
    return "random permutation";
  }
  [[nodiscard]] std::optional<NodeId> destination(NodeId src,
                                                  Rng& rng) const override;
  [[nodiscard]] bool is_permutation() const override { return true; }

 private:
  std::vector<NodeId> table_;
};

/// With probability `fraction` the destination is the hotspot node;
/// otherwise uniform over the other nodes.
class HotspotPattern final : public TrafficPattern {
 public:
  HotspotPattern(std::size_t nodes, NodeId hotspot, double fraction);
  [[nodiscard]] std::string name() const override { return "hotspot"; }
  [[nodiscard]] std::optional<NodeId> destination(NodeId src,
                                                  Rng& rng) const override;
  [[nodiscard]] bool is_permutation() const override { return false; }

 private:
  NodeId hotspot_;
  double fraction_;
};

/// Factory covering the paper's four patterns plus the extensions. k and n
/// are only consulted by the tornado pattern; seed only by the random
/// permutation.
[[nodiscard]] std::unique_ptr<TrafficPattern> make_pattern(
    PatternKind kind, std::size_t nodes, unsigned k = 0, unsigned n = 0,
    std::uint64_t seed = 1);

}  // namespace smart
