// Experiment harness: load sweeps, saturation estimation, and the paper's
// two presentation forms.
//
// Chaos Normal Form (CNF, paper §6): two graphs per traffic pattern — the
// accepted bandwidth and the network latency, both against the offered
// bandwidth normalized by the maximum bandwidth acceptable under uniform
// traffic. The final comparison (paper §10, Figure 7) instead uses absolute
// units, bits/nsec and nsec, obtained from each configuration's own router
// clock via the Chien cost model.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "cost/chien.hpp"
#include "cost/normalization.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace smart {

/// One labelled curve of a figure: a sweep of simulation results.
struct Curve {
  std::string label;
  NetworkSpec spec;
  std::vector<SimulationResult> points;
};

/// Runs one simulation per load fraction (in parallel when threads != 1;
/// 0 = hardware concurrency). Results are deterministic for a fixed
/// (config, load) regardless of the thread count.
[[nodiscard]] std::vector<SimulationResult> run_sweep(
    const SimConfig& base, const std::vector<double>& loads,
    unsigned threads = 0);

/// Convenience wrapper building a labelled Curve.
[[nodiscard]] Curve run_curve(std::string label, const SimConfig& base,
                              const std::vector<double>& loads,
                              unsigned threads = 0);

/// Evenly spaced offered-load grid in (0, max]; the quick grid (used when
/// the SMARTSIM_QUICK environment variable is set) trades resolution for
/// runtime without changing the model.
[[nodiscard]] std::vector<double> default_load_grid(double max_fraction = 1.0);
[[nodiscard]] bool quick_mode();

/// Saturation (paper §6): the minimum offered bandwidth at which accepted
/// bandwidth drops below the packet-creation rate.
struct SaturationEstimate {
  double offered_fraction = 1.0;   ///< first offered load with a deficit
  double accepted_fraction = 0.0;  ///< throughput sustained at that load
  bool saturated = false;          ///< false = no deficit anywhere in sweep
  /// Post-saturation stability: min/max accepted fraction over all points
  /// at or beyond the saturation load.
  double post_saturation_min = 0.0;
  double post_saturation_max = 0.0;
};

[[nodiscard]] SaturationEstimate estimate_saturation(
    const std::vector<SimulationResult>& sweep, double tolerance = 0.05);

/// The paper's "normal traffic" operating point of a sweep: the last point
/// offering at most one third of capacity that delivered packets — the
/// low-load latency reference of the summary tables. Returns sweep.size()
/// when no point qualifies.
[[nodiscard]] std::size_t normal_traffic_index(
    const std::vector<SimulationResult>& sweep);

/// Router delays of a network configuration under the Chien model.
[[nodiscard]] RouterDelays delays_for(const NetworkSpec& spec);

/// Absolute-unit scale (flit width, clock, capacity) of a configuration.
[[nodiscard]] NormalizedScale scale_for(const NetworkSpec& spec);

/// Multi-seed replication of one load point: distribution of the accepted
/// fraction and of the mean latency across independent seeds.
struct ReplicatedPoint {
  double offered_fraction = 0.0;
  OnlineStats accepted_fraction;   ///< one sample per seed
  OnlineStats latency_mean_cycles; ///< one sample per seed

  /// Half-width of the ~95 % confidence interval on the mean accepted
  /// fraction (normal approximation, 1.96 * s / sqrt(n)).
  [[nodiscard]] double accepted_ci95() const;
};

/// Seed of replication `rep` under base seed `seed`: replication 0 runs
/// the base seed itself (one replication reproduces a plain run exactly);
/// later replications hash the (seed, rep) pair through SplitMix64 so the
/// streams of different (seed, rep) pairs never coincide — the old
/// `seed + rep` arithmetic made replication r of seed s reuse the stream
/// of replication r-1 of seed s+1.
[[nodiscard]] constexpr std::uint64_t replication_seed(
    std::uint64_t seed, std::uint64_t rep) noexcept {
  return rep == 0 ? seed : mix_seed(seed, rep);
}

/// Runs `replications` independent seeds per load (replication_seed) and
/// aggregates. Deterministic and thread-count independent.
[[nodiscard]] std::vector<ReplicatedPoint> run_replicated(
    const SimConfig& base, const std::vector<double>& loads,
    unsigned replications, unsigned threads = 0);

/// Table: offered, mean accepted +/- CI95, mean latency, across seeds.
[[nodiscard]] Table replicated_table(const std::vector<ReplicatedPoint>& points);

/// Long-format table of a packet log (src, dst, cycles, latency, hops).
[[nodiscard]] Table packet_log_table(const std::vector<PacketRecord>& log);

// ---- Tabular presentation ----------------------------------------------

/// CNF accepted-bandwidth table: one row per offered load, one column per
/// curve (fractions of capacity). All curves must share the load grid.
[[nodiscard]] Table cnf_accepted_table(const std::vector<Curve>& curves);

/// CNF network-latency table (average cycles; '-' above saturation when no
/// packet was delivered).
[[nodiscard]] Table cnf_latency_table(const std::vector<Curve>& curves);

/// Long-format absolute table (Figure 7 axes): one row per (curve, load),
/// offered and accepted traffic in bits/nsec, latency in nsec.
[[nodiscard]] Table absolute_table(const std::vector<Curve>& curves);

/// Saturation summary: label, saturation offered/accepted fraction,
/// absolute accepted bits/nsec, latency at the normal-traffic operating
/// point (one third of capacity, normal_traffic_index) and at saturation.
[[nodiscard]] Table saturation_summary_table(const std::vector<Curve>& curves);

}  // namespace smart
