#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "core/network.hpp"
#include "synth/families.hpp"
#include "topology/registry.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace smart {

namespace {

// Split the --threads budget between sweep-level parallelism (independent
// points on the ThreadPool) and run-level parallelism (the engine's
// sharded pipeline, config.engine_threads). Independent points scale
// embarrassingly, so they claim the budget first; whatever is left over
// goes inside each run. Either way results are bit-identical — the
// sharded engine is determinism-preserving and sweep points don't share
// state — so this is purely a scheduling decision.
struct ThreadSplit {
  unsigned outer;  // concurrent sweep points
  unsigned inner;  // engine threads per point
};

ThreadSplit split_threads(unsigned threads, std::size_t tasks) {
  if (threads == 0) {
    threads = std::max(1U, std::thread::hardware_concurrency());
  }
  const auto outer = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(tasks, 1)));
  return {outer, std::max(1U, threads / outer)};
}

}  // namespace

std::vector<SimulationResult> run_sweep(const SimConfig& base,
                                        const std::vector<double>& loads,
                                        unsigned threads) {
  const ThreadSplit split = split_threads(threads, loads.size());
  std::vector<SimulationResult> results(loads.size());
  auto run_point = [&](std::size_t i) {
    SimConfig config = base;
    config.traffic.offered_fraction = loads[i];
    config.engine_threads = split.inner;
    Network network(config);
    results[i] = network.run();
  };
  if (split.outer == 1 || loads.size() <= 1) {
    for (std::size_t i = 0; i < loads.size(); ++i) run_point(i);
  } else {
    ThreadPool pool(split.outer);
    pool.parallel_for(loads.size(), run_point);
  }
  return results;
}

Curve run_curve(std::string label, const SimConfig& base,
                const std::vector<double>& loads, unsigned threads) {
  Curve curve;
  curve.label = std::move(label);
  curve.spec = base.net;
  curve.points = run_sweep(base, loads, threads);
  return curve;
}

bool quick_mode() {
  const char* env = std::getenv("SMARTSIM_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::vector<double> default_load_grid(double max_fraction) {
  SMART_CHECK(max_fraction > 0.0 && max_fraction <= 1.0);
  const unsigned points = quick_mode() ? 6 : 13;
  std::vector<double> grid;
  grid.reserve(points);
  for (unsigned i = 1; i <= points; ++i) {
    grid.push_back(max_fraction * static_cast<double>(i) /
                   static_cast<double>(points));
  }
  return grid;
}

SaturationEstimate estimate_saturation(
    const std::vector<SimulationResult>& sweep, double tolerance) {
  SaturationEstimate est;
  SMART_CHECK(!sweep.empty());
  std::size_t sat_index = sweep.size();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SimulationResult& point = sweep[i];
    // Compare against the load actually entering the network: permutation
    // fixed points never inject, so a full-accepted sweep tops out at
    // injecting_fraction of the nominal offered load.
    if (point.accepted_fraction <
        point.effective_offered_fraction() * (1.0 - tolerance)) {
      sat_index = i;
      break;
    }
  }
  if (sat_index == sweep.size()) {
    // Never saturated within the sweep: report the last point.
    est.saturated = false;
    est.offered_fraction = sweep.back().offered_fraction;
    est.accepted_fraction = sweep.back().accepted_fraction;
    est.post_saturation_min = est.post_saturation_max = est.accepted_fraction;
    return est;
  }
  est.saturated = true;
  est.offered_fraction = sweep[sat_index].offered_fraction;
  est.accepted_fraction = sweep[sat_index].accepted_fraction;
  est.post_saturation_min = est.post_saturation_max =
      sweep[sat_index].accepted_fraction;
  for (std::size_t i = sat_index; i < sweep.size(); ++i) {
    est.post_saturation_min =
        std::min(est.post_saturation_min, sweep[i].accepted_fraction);
    est.post_saturation_max =
        std::max(est.post_saturation_max, sweep[i].accepted_fraction);
  }
  return est;
}

std::size_t normal_traffic_index(const std::vector<SimulationResult>& sweep) {
  std::size_t index = sweep.size();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].offered_fraction <= 1.0 / 3.0 + 1e-9 &&
        sweep[i].latency_cycles.count() > 0) {
      index = i;
    }
  }
  return index;
}

RouterDelays delays_for(const NetworkSpec& spec) {
  // A family with a derived-clock callback (the generated fabrics) sizes
  // its own cycle from channel width and modeled wire length; the paper
  // families fall back to the fixed normalization below.
  ensure_builtin_families();
  const TopologyFamily* family =
      TopologyRegistry::instance().find(spec.topology);
  SMART_CHECK_MSG(family != nullptr, "unknown topology family");
  if (family->clock) {
    DerivedClock derived;
    std::string error;
    SMART_CHECK_MSG(family->clock(spec.topo_spec(), spec.vcs, &derived, &error),
                    error.c_str());
    RouterDelays delays;
    delays.routing_ns = derived.routing_ns;
    delays.crossbar_ns = derived.crossbar_ns;
    delays.link_ns = derived.link_ns;
    return delays;
  }
  switch (spec.routing) {
    case RoutingKind::kCubeDeterministic:
      return cube_deterministic_delays(spec.n, spec.vcs);
    case RoutingKind::kCubeDuato:
      return cube_duato_delays(spec.n, spec.vcs);
    case RoutingKind::kCubeValiant:
      // Oblivious: the routing decision is as simple as dimension order.
      return cube_deterministic_delays(spec.n, spec.vcs);
    case RoutingKind::kTreeAdaptive:
      return tree_adaptive_delays(spec.k, spec.vcs);
    case RoutingKind::kEscapeAdaptive:
      // Same routing freedom as the per-family adaptive algorithms: the
      // tree prices its ascending-adaptive stage, the cube the Duato one.
      if (spec.topology == "tree") return tree_adaptive_delays(spec.k, spec.vcs);
      return cube_duato_delays(spec.n, spec.vcs);
    case RoutingKind::kTorusDor:
    case RoutingKind::kUpDown:
      // Only reachable with a paper family + generated-family routing,
      // which the builders reject before getting here.
      break;
  }
  SMART_CHECK_MSG(false, "no delay model for this topology/routing pair");
  return {};
}

NormalizedScale scale_for(const NetworkSpec& spec) {
  NormalizedScale scale;
  scale.flit_bytes = spec.resolved_flit_bytes();
  scale.clock_ns = delays_for(spec).clock_ns();
  ensure_builtin_families();
  std::string error;
  const auto topo =
      TopologyRegistry::instance().build(spec.topo_spec(), &error);
  SMART_CHECK_MSG(topo != nullptr, error.c_str());
  scale.nodes = topo->node_count();
  scale.capacity_flits_per_node_cycle =
      topo->uniform_capacity_flits_per_node_cycle();
  return scale;
}

double ReplicatedPoint::accepted_ci95() const {
  const auto n = static_cast<double>(accepted_fraction.count());
  if (n < 2.0) return 0.0;
  return 1.96 * std::sqrt(accepted_fraction.sample_variance() / n);
}

std::vector<ReplicatedPoint> run_replicated(const SimConfig& base,
                                            const std::vector<double>& loads,
                                            unsigned replications,
                                            unsigned threads) {
  SMART_CHECK(replications >= 1);
  std::vector<ReplicatedPoint> points(loads.size());
  // One flat task list so the pool stays busy across loads and seeds.
  std::vector<SimulationResult> results(loads.size() * replications);
  const ThreadSplit split = split_threads(threads, results.size());
  auto run_one = [&](std::size_t task) {
    const std::size_t load_index = task / replications;
    const std::size_t rep = task % replications;
    SimConfig config = base;
    config.traffic.offered_fraction = loads[load_index];
    config.traffic.seed = replication_seed(base.traffic.seed, rep);
    config.engine_threads = split.inner;
    Network network(config);
    results[task] = network.run();
  };
  if (split.outer == 1 || results.size() <= 1) {
    for (std::size_t task = 0; task < results.size(); ++task) run_one(task);
  } else {
    ThreadPool pool(split.outer);
    pool.parallel_for(results.size(), run_one);
  }
  for (std::size_t i = 0; i < loads.size(); ++i) {
    points[i].offered_fraction = loads[i];
    for (unsigned r = 0; r < replications; ++r) {
      const SimulationResult& result = results[i * replications + r];
      points[i].accepted_fraction.add(result.accepted_fraction);
      if (result.latency_cycles.count() > 0) {
        points[i].latency_mean_cycles.add(result.latency_cycles.mean());
      }
    }
  }
  return points;
}

Table replicated_table(const std::vector<ReplicatedPoint>& points) {
  Table table({"offered (frac)", "accepted mean", "accepted ci95",
               "accepted min", "accepted max", "latency mean (cycles)"});
  for (const ReplicatedPoint& point : points) {
    table.begin_row()
        .add_cell(point.offered_fraction, 3)
        .add_cell(point.accepted_fraction.mean(), 4)
        .add_cell(point.accepted_ci95(), 4)
        .add_cell(point.accepted_fraction.min(), 4)
        .add_cell(point.accepted_fraction.max(), 4)
        .add_cell(point.latency_mean_cycles.count() > 0
                      ? format_double(point.latency_mean_cycles.mean(), 1)
                      : std::string{"-"});
  }
  return table;
}

Table packet_log_table(const std::vector<PacketRecord>& log) {
  Table table({"src", "dst", "gen", "inject", "deliver", "latency (cycles)",
               "queueing (cycles)", "hops"});
  for (const PacketRecord& record : log) {
    table.begin_row()
        .add_cell(record.src)
        .add_cell(record.dst)
        .add_cell(record.gen_cycle)
        .add_cell(record.inject_cycle)
        .add_cell(record.deliver_cycle)
        .add_cell(record.network_latency())
        .add_cell(record.source_queueing())
        .add_cell(record.hops);
  }
  return table;
}

namespace {

void check_shared_grid(const std::vector<Curve>& curves) {
  SMART_CHECK(!curves.empty());
  for (const Curve& curve : curves) {
    SMART_CHECK_MSG(curve.points.size() == curves.front().points.size(),
                    "curves must share the offered-load grid");
  }
}

}  // namespace

Table cnf_accepted_table(const std::vector<Curve>& curves) {
  check_shared_grid(curves);
  std::vector<std::string> headers{"offered (frac)"};
  for (const Curve& curve : curves) headers.push_back(curve.label);
  Table table(std::move(headers));
  for (std::size_t row = 0; row < curves.front().points.size(); ++row) {
    table.begin_row().add_cell(curves.front().points[row].offered_fraction, 3);
    for (const Curve& curve : curves) {
      table.add_cell(curve.points[row].accepted_fraction, 3);
    }
  }
  return table;
}

Table cnf_latency_table(const std::vector<Curve>& curves) {
  check_shared_grid(curves);
  std::vector<std::string> headers{"offered (frac)"};
  for (const Curve& curve : curves) headers.push_back(curve.label);
  Table table(std::move(headers));
  for (std::size_t row = 0; row < curves.front().points.size(); ++row) {
    table.begin_row().add_cell(curves.front().points[row].offered_fraction, 3);
    for (const Curve& curve : curves) {
      const SimulationResult& point = curve.points[row];
      if (point.latency_cycles.count() == 0) {
        table.add_cell(std::string{"-"});
      } else {
        table.add_cell(point.latency_cycles.mean(), 1);
      }
    }
  }
  return table;
}

Table absolute_table(const std::vector<Curve>& curves) {
  Table table({"configuration", "offered (frac)", "offered (bits/ns)",
               "accepted (bits/ns)", "latency (ns)"});
  for (const Curve& curve : curves) {
    const NormalizedScale scale = scale_for(curve.spec);
    for (const SimulationResult& point : curve.points) {
      table.begin_row()
          .add_cell(curve.label)
          .add_cell(point.offered_fraction, 3)
          .add_cell(to_bits_per_ns(point.offered_flits_per_node_cycle,
                                   scale.nodes, scale.flit_bytes,
                                   scale.clock_ns),
                    1)
          .add_cell(to_bits_per_ns(point.accepted_flits_per_node_cycle,
                                   scale.nodes, scale.flit_bytes,
                                   scale.clock_ns),
                    1);
      if (point.latency_cycles.count() == 0) {
        table.add_cell(std::string{"-"});
      } else {
        table.add_cell(to_ns(point.latency_cycles.mean(), scale.clock_ns), 1);
      }
    }
  }
  return table;
}

Table saturation_summary_table(const std::vector<Curve>& curves) {
  Table table({"configuration", "saturation (frac)", "throughput (frac)",
               "throughput (bits/ns)", "latency@norm (ns)",
               "latency@sat (ns)", "post-sat stable"});
  for (const Curve& curve : curves) {
    const NormalizedScale scale = scale_for(curve.spec);
    const SaturationEstimate est = estimate_saturation(curve.points);
    // Latency at the paper's "normal traffic" operating point — one third
    // of capacity (normal_traffic_index) — and at the saturation point.
    const std::size_t low_index = normal_traffic_index(curve.points);
    const SimulationResult* low =
        low_index < curve.points.size() ? &curve.points[low_index] : nullptr;
    const SimulationResult* sat = nullptr;
    for (const SimulationResult& point : curve.points) {
      if (sat == nullptr &&
          point.offered_fraction >= est.offered_fraction - 1e-9) {
        sat = &point;
        break;
      }
    }
    // Built via insert rather than `">" + ...`: the char* + string&&
    // operator trips GCC 12's -Wrestrict false positive (PR 105651).
    std::string sat_cell = format_double(est.offered_fraction, 2);
    if (!est.saturated) sat_cell.insert(0, 1, '>');
    table.begin_row()
        .add_cell(curve.label)
        .add_cell(sat_cell)
        .add_cell(est.accepted_fraction, 3)
        .add_cell(to_bits_per_ns(
                      est.accepted_fraction *
                          scale.capacity_flits_per_node_cycle,
                      scale.nodes, scale.flit_bytes, scale.clock_ns),
                  1)
        .add_cell(low != nullptr && low->latency_cycles.count() > 0
                      ? format_double(
                            to_ns(low->latency_cycles.mean(), scale.clock_ns),
                            1)
                      : std::string{"-"})
        .add_cell(sat != nullptr && sat->latency_cycles.count() > 0
                      ? format_double(
                            to_ns(sat->latency_cycles.mean(), scale.clock_ns),
                            1)
                      : std::string{"-"})
        .add_cell(est.post_saturation_max - est.post_saturation_min < 0.08
                      ? std::string{"yes"}
                      : std::string{"no"});
  }
  return table;
}

}  // namespace smart
