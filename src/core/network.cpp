#include "core/network.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "routing/cube_dor.hpp"
#include "routing/cube_duato.hpp"
#include "routing/cube_valiant.hpp"
#include "routing/tree_adaptive.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"
#include "util/check.hpp"

namespace smart {

namespace {
// Terminal (ejection) output lanes never wait for node-side credits: the
// node consumes at link rate. A large sentinel keeps the generic paths
// uniform without ever blocking.
constexpr std::uint32_t kSinkCredits =
    std::numeric_limits<std::uint32_t>::max() / 2;
}  // namespace

Network::Network(SimConfig config) : config_(std::move(config)) {
  build_topology();
  build_routing();
  build_fabric();

  // Fault machinery engages only with a non-empty plan; a fault-free run
  // never touches it, keeping results bit-identical to earlier builds.
  if (!config_.faults.empty()) {
    faults_ = std::make_unique<FaultState>(*topo_, config_.faults);
    routing_->attach_fault_state(faults_.get());
  }

  // Observability engages only when requested; the disabled path costs one
  // null check per hook site and perturbs nothing (same discipline as the
  // fault machinery above).
  if (config_.obs.enabled) {
    const unsigned lane_stride =
        std::max({config_.net.vcs, config_.net.injection_channels, 1U});
    obs_ = std::make_unique<ObsState>(*topo_,
                                      config_.obs.sample_interval_cycles,
                                      lane_stride, config_.obs.trace_hops);
  }

  const NetworkSpec& net = config_.net;
  flits_per_packet_ = net.flits_per_packet();
  capacity_ = topo_->uniform_capacity_flits_per_node_cycle();
  const double offered_flits =
      config_.traffic.offered_fraction * capacity_;
  packet_rate_ = offered_flits / flits_per_packet_;
  SMART_CHECK_MSG(packet_rate_ <= 1.0,
                  "offered load exceeds one packet per node per cycle");

  if (config_.custom_pattern) {
    pattern_ = config_.custom_pattern(topo_->node_count());
    SMART_CHECK_MSG(pattern_ != nullptr, "custom pattern factory returned null");
  } else {
    pattern_ = make_pattern(config_.traffic.pattern, topo_->node_count(),
                            net.k, net.n, config_.traffic.seed);
  }
  injection_.reserve(topo_->node_count());
  for (NodeId node = 0; node < topo_->node_count(); ++node) {
    injection_.push_back(make_injection(
        config_.traffic.injection, packet_rate_, config_.traffic.burst_factor,
        config_.traffic.mean_burst_cycles));
  }

  result_.offered_fraction = config_.traffic.offered_fraction;
  result_.offered_flits_per_node_cycle = offered_flits;
  result_.injecting_fraction = pattern_->injecting_fraction();
  result_.capacity_flits_per_node_cycle = capacity_;
}

void Network::build_topology() {
  const NetworkSpec& net = config_.net;
  if (net.topology == TopologyKind::kCube) {
    auto cube = std::make_unique<KaryNCube>(net.k, net.n, net.wraparound);
    cube_ = cube.get();
    topo_ = std::move(cube);
  } else {
    auto tree = std::make_unique<KaryNTree>(net.k, net.n);
    tree_ = tree.get();
    topo_ = std::move(tree);
  }
}

void Network::build_routing() {
  const NetworkSpec& net = config_.net;
  if (config_.custom_routing) {
    routing_ = config_.custom_routing(*topo_);
    SMART_CHECK_MSG(routing_ != nullptr, "custom routing factory returned null");
    return;
  }
  switch (net.routing) {
    case RoutingKind::kCubeDeterministic:
      SMART_CHECK_MSG(cube_ != nullptr, "DOR routing requires a cube");
      routing_ = std::make_unique<CubeDorRouting>(*cube_, net.vcs);
      break;
    case RoutingKind::kCubeDuato:
      SMART_CHECK_MSG(cube_ != nullptr, "Duato routing requires a cube");
      routing_ = std::make_unique<CubeDuatoRouting>(*cube_, net.vcs);
      break;
    case RoutingKind::kCubeValiant:
      SMART_CHECK_MSG(cube_ != nullptr, "Valiant routing requires a cube");
      routing_ = std::make_unique<CubeValiantRouting>(
          *cube_, net.vcs, config_.traffic.seed ^ 0x7a11a57ULL);
      break;
    case RoutingKind::kTreeAdaptive:
      SMART_CHECK_MSG(tree_ != nullptr, "tree routing requires a fat-tree");
      routing_ = std::make_unique<TreeAdaptiveRouting>(*tree_, net.vcs,
                                                       net.tree_selection);
      break;
  }
}

void Network::build_fabric() {
  const NetworkSpec& net = config_.net;
  const unsigned vcs = net.vcs;
  const unsigned depth = net.buffer_depth;
  // Terminal-link input lanes at the switch: the cube's processor interface
  // is the injection channel (paper: P = 2nV + 1); the fat-tree's terminal
  // link is a regular link with V lanes.
  const unsigned terminal_in_lanes =
      topo_->is_direct() ? net.injection_channels : vcs;

  switches_.reserve(topo_->switch_count());
  for (SwitchId s = 0; s < topo_->switch_count(); ++s) {
    switches_.emplace_back(s, topo_->ports_per_switch());
    Switch& sw = switches_.back();
    for (PortId p = 0; p < topo_->ports_per_switch(); ++p) {
      SwitchPort& port = sw.port(p);
      port.peer = topo_->port_peer(s, p);
      switch (port.peer.kind) {
        case PeerKind::kSwitch: {
          port.in.resize(vcs);
          port.out.resize(vcs);
          for (InputLane& lane : port.in) lane.buf = RingBuffer<Flit>(depth);
          for (OutputLane& lane : port.out) {
            lane.buf = RingBuffer<Flit>(depth);
            lane.credits = depth;  // peer input lane capacity
          }
          break;
        }
        case PeerKind::kTerminal: {
          port.in.resize(terminal_in_lanes);
          port.out.resize(vcs);
          for (InputLane& lane : port.in) lane.buf = RingBuffer<Flit>(depth);
          for (OutputLane& lane : port.out) {
            lane.buf = RingBuffer<Flit>(depth);
            lane.credits = kSinkCredits;
          }
          break;
        }
        case PeerKind::kUnconnected:
          break;  // no lanes: the fat-tree's root-level external links
      }
    }
    sw.build_input_lane_index();
  }

  Rng seeder(config_.traffic.seed);
  nics_.reserve(topo_->node_count());
  for (NodeId node = 0; node < topo_->node_count(); ++node) {
    nics_.emplace_back(node, depth, terminal_in_lanes, net.injection_channels,
                       seeder.fork(node).next());
  }
}

PacketId Network::enqueue_packet(NodeId src, NodeId dst) {
  SMART_CHECK(src < nics_.size());
  SMART_CHECK(dst < topo_->node_count());
  const PacketId id = pool_.allocate();
  Packet& pkt = pool_[id];
  pkt.src = src;
  pkt.dst = dst;
  pkt.size_flits = flits_per_packet_;
  pkt.gen_cycle = cycle_;
  nics_[src].source_queue().push_back(id);
  if (measuring_) ++window_generated_packets_;
  return id;
}

void Network::nic_phase() {
  for (Nic& nic : nics_) {
    if (!draining_ && packet_rate_ > 0.0 &&
        injection_[nic.node()]->fires(nic.rng())) {
      const auto dst = pattern_->destination(nic.node(), nic.rng());
      if (dst) enqueue_packet(nic.node(), *dst);
    }
    // Count flits entering the injection channels.
    std::uint64_t buffered = 0;
    for (const InjectChannel& c : nic.channels()) buffered += c.buf.size();
    nic.stream(cycle_, pool_);
    std::uint64_t buffered_after = 0;
    for (const InjectChannel& c : nic.channels()) buffered_after += c.buf.size();
    injected_flits_ += buffered_after - buffered;
  }
}

void Network::switch_link_phase(Switch& sw) {
  if (sw.buffered == 0) return;
  if (faults_ && !faults_->switch_ok(sw.id())) {
    // Dead switch: every flit buffered inside is frozen this cycle.
    if (obs_) obs_->stalls.count_switch_frozen();
    return;
  }
  for (PortId p = 0; p < sw.port_count(); ++p) {
    SwitchPort& port = sw.port(p);
    if (port.out_buffered == 0) continue;
    // A faulted link transmits nothing; its flits and credits freeze in
    // place until repair (docs/MODEL.md §8).
    if (faults_ && !faults_->link_ok(sw.id(), p)) {
      if (obs_) obs_->stalls.count(sw.id(), p, StallCause::kFaultFrozen);
      continue;
    }
    const auto lane_count = static_cast<unsigned>(port.out.size());
    for (unsigned i = 0; i < lane_count; ++i) {
      const unsigned lane = (i + port.link_rr) % lane_count;
      OutputLane& out = port.out[lane];
      if (out.buf.empty() || out.buf.front().arrival >= cycle_) continue;
      if (out.credits == 0) {
        // A flit was ready to cross but the downstream lane has no slot.
        if (obs_) obs_->stalls.count(sw.id(), p, StallCause::kCreditStarved);
        continue;
      }
      Flit flit = out.buf.pop();
      flit.arrival = cycle_;
      sw.buffered -= 1;
      port.out_buffered -= 1;
      if (measuring_) ++port.flits_sent;
      if (obs_) obs_->sampler.on_flit(obs_->sampler.link_index(sw.id(), p));
      if (port.peer.kind == PeerKind::kTerminal) {
        if (flit.head) ++pool_[flit.packet].hops;
        SMART_CHECK_MSG(port.peer.id == pool_[flit.packet].dst,
                        "flit consumed at the wrong destination");
        if (obs_ && obs_->trace_hops() && flit.head) {
          obs_->hop_exit(flit.packet, cycle_);
        }
        consume(flit);
      } else {
        out.credits -= 1;
        Switch& peer = switches_[port.peer.id];
        InputLane& in = peer.port(port.peer.port).in[lane];
        SMART_DCHECK(!in.buf.full());
        if (flit.head) ++pool_[flit.packet].hops;
        if (obs_ && obs_->trace_hops() && flit.head) {
          obs_->hop_exit(flit.packet, cycle_);
          obs_->hop_enter(flit.packet, port.peer.id, cycle_);
        }
        in.buf.push(flit);
        peer.buffered += 1;
      }
      port.link_rr = lane + 1;
      last_progress_cycle_ = cycle_;
      break;  // one flit per link direction per cycle
    }
  }
}

void Network::nic_link_phase(Nic& nic) {
  const Attachment at = topo_->terminal_attachment(nic.node());
  // A dead attachment switch (or faulted terminal link) freezes injection;
  // generated packets pile up in the source queue and injection channels.
  if (faults_ && !faults_->link_ok(at.sw, at.port)) return;
  SwitchPort& port = switches_[at.sw].port(at.port);
  auto& channels = nic.channels();
  const auto channel_count = static_cast<unsigned>(channels.size());
  for (unsigned i = 0; i < channel_count; ++i) {
    const unsigned c = (i + nic.link_rr()) % channel_count;
    InjectChannel& channel = channels[c];
    if (channel.buf.empty() || channel.buf.front().arrival >= cycle_) continue;

    Flit& front = channel.buf.front();
    unsigned lane;
    if (nic.fixed_lane_mapping()) {
      lane = c;
      if (nic.credits()[lane] == 0) continue;
    } else {
      if (front.head) {
        const int chosen = nic.choose_lane();
        if (chosen < 0) continue;
        pool_[front.packet].nic_lane = static_cast<std::uint8_t>(chosen);
      }
      lane = pool_[front.packet].nic_lane;
      if (nic.credits()[lane] == 0) continue;
    }

    Flit flit = channel.buf.pop();
    flit.lane = static_cast<std::uint8_t>(lane);
    flit.arrival = cycle_;
    if (flit.head) ++pool_[flit.packet].hops;
    InputLane& in = port.in[lane];
    SMART_DCHECK(!in.buf.full());
    if (obs_) {
      obs_->sampler.on_flit(obs_->sampler.injection_index(nic.node()));
      if (obs_->trace_hops() && flit.head) {
        obs_->hop_enter(flit.packet, at.sw, cycle_);
      }
    }
    in.buf.push(flit);
    switches_[at.sw].buffered += 1;
    if (measuring_) ++nic.flits_sent;
    nic.credits()[lane] -= 1;
    nic.link_rr() = c + 1;
    last_progress_cycle_ = cycle_;
    break;  // the terminal link carries one flit per cycle per direction
  }
}

void Network::link_phase() {
  for (Switch& sw : switches_) switch_link_phase(sw);
  for (Nic& nic : nics_) nic_link_phase(nic);
}

void Network::routing_phase() {
  for (Switch& sw : switches_) {
    if (sw.buffered == 0) continue;
    if (faults_ && !faults_->switch_ok(sw.id())) continue;  // dead switch
    // Scan the flattened (port, lane) directory from a rotating start; the
    // first header that obtains an output lane consumes this T_routing.
    const auto& lanes = sw.input_lane_index();
    const auto total_lanes = static_cast<unsigned>(lanes.size());
    if (total_lanes == 0) continue;

    for (unsigned i = 0; i < total_lanes; ++i) {
      const unsigned index = (i + sw.route_rr) % total_lanes;
      InputLane& in = sw.port(lanes[index].first).in[lanes[index].second];
      if (in.bound() || in.dropping || in.buf.empty()) continue;
      const Flit& front = in.buf.front();
      if (!front.head || front.arrival >= cycle_) continue;

      Packet& pkt = pool_[front.packet];
      const auto choice = routing_->route(sw, lanes[index].first,
                                          lanes[index].second, pkt, cycle_);
      if (!choice) {
        // The header was considered but no legal output lane was free.
        if (obs_ && !pkt.unroutable) {
          obs_->stalls.count(sw.id(), lanes[index].first,
                             StallCause::kRoutingBlocked);
        }
        if (pkt.unroutable) {
          // Faults left this packet without a route: drain and discard the
          // worm (one flit per cycle, crediting upstream) instead of
          // letting it wedge the lane forever.
          pkt.unroutable = false;
          in.dropping = true;
          sw.dropping_count += 1;
          ++unroutable_packets_;
          if (measuring_) ++window_unroutable_packets_;
          last_progress_cycle_ = cycle_;
        }
        continue;  // header stalls; try the next candidate
      }
      OutputLane& out = sw.port(choice->port).out[choice->lane];
      SMART_CHECK_MSG(out.bindable(),
                      "routing algorithm returned a non-bindable lane");
      in.bind(static_cast<std::int32_t>(choice->port),
              static_cast<std::int32_t>(choice->lane), cycle_);
      out.bound = true;
      sw.bound_count += 1;
      sw.route_rr = index + 1;
      break;  // one successful routing decision per switch per cycle
    }
  }
}

void Network::drain_lane(Switch& sw, SwitchPort& port, InputLane& in) {
  if (in.buf.empty() || in.buf.front().arrival >= cycle_) return;
  const Flit flit = in.buf.pop();
  sw.buffered -= 1;
  ++dropped_flits_;
  // The freed slot is acknowledged upstream exactly like a crossbar
  // advance, so body flits still in flight keep streaming to the drain.
  const auto lane_index = static_cast<std::size_t>(&in - port.in.data());
  if (port.peer.kind == PeerKind::kSwitch) {
    pending_credits_.push_back(
        &switches_[port.peer.id].port(port.peer.port).out[lane_index].credits);
  } else if (port.peer.kind == PeerKind::kTerminal) {
    pending_credits_.push_back(&nics_[port.peer.id].credits()[lane_index]);
  }
  last_progress_cycle_ = cycle_;
  if (flit.tail) {
    in.dropping = false;
    sw.dropping_count -= 1;
    ++dropped_packets_;
    ++epoch_dropped_packets_;
    if (obs_ && config_.obs.trace_enabled()) {
      const Packet& pkt = pool_[flit.packet];
      if (obs_->trace_hops()) obs_->hop_exit(flit.packet, cycle_);
      obs_->trace.packet(obs_->uid_of(flit.packet), pkt.src, pkt.dst,
                         pkt.gen_cycle, pkt.inject_cycle, cycle_, pkt.hops,
                         /*dropped=*/true);
      obs_->forget(flit.packet);
    }
    pool_.release(flit.packet);
  }
}

void Network::crossbar_phase() {
  for (Switch& sw : switches_) {
    if (sw.bound_count == 0 && sw.dropping_count == 0) continue;
    if (faults_ && !faults_->switch_ok(sw.id())) continue;  // dead switch
    for (PortId p = 0; p < sw.port_count(); ++p) {
      SwitchPort& port = sw.port(p);
      for (InputLane& in : port.in) {
        if (in.dropping) {
          drain_lane(sw, port, in);
          continue;
        }
        if (!in.bound() || in.bound_cycle >= cycle_) continue;
        if (in.buf.empty() || in.buf.front().arrival >= cycle_) continue;
        SwitchPort& out_port = sw.port(static_cast<PortId>(in.bound_port));
        OutputLane& out = out_port.out[static_cast<std::size_t>(in.bound_lane)];
        if (out.buf.full()) {
          // Bound and ready, but the output lane's buffer has no slot.
          if (obs_) obs_->stalls.count(sw.id(), p, StallCause::kCrossbarBlocked);
          continue;
        }

        Flit flit = in.buf.pop();
        flit.lane = static_cast<std::uint8_t>(in.bound_lane);
        flit.arrival = cycle_;
        const bool is_tail = flit.tail;
        out.buf.push(flit);
        out_port.out_buffered += 1;
        last_progress_cycle_ = cycle_;

        // Acknowledge the freed buffer slot upstream (visible next cycle).
        if (port.peer.kind == PeerKind::kSwitch) {
          Switch& peer = switches_[port.peer.id];
          const auto lane_index = static_cast<std::size_t>(&in - port.in.data());
          pending_credits_.push_back(
              &peer.port(port.peer.port).out[lane_index].credits);
        } else if (port.peer.kind == PeerKind::kTerminal) {
          const auto lane_index = static_cast<std::size_t>(&in - port.in.data());
          pending_credits_.push_back(&nics_[port.peer.id].credits()[lane_index]);
        }

        if (is_tail) {
          in.unbind();
          out.bound = false;
          sw.bound_count -= 1;
        }
      }
    }
  }
}

void Network::apply_pending_credits() {
  for (std::uint32_t* credit : pending_credits_) *credit += 1;
  pending_credits_.clear();
}

void Network::consume(Flit flit) {
  ++consumed_flits_;
  Packet& pkt = pool_[flit.packet];
  SMART_CHECK_MSG(flit.seq == pkt.consumed_seq,
                  "flits of a packet arrived out of order");
  ++pkt.consumed_seq;
  if (flit.tail) {
    SMART_CHECK_MSG(pkt.consumed_seq == pkt.size_flits,
                    "tail flit arrived before the full worm");
    // Minimal algorithms must cross exactly the minimal number of channels
    // (+2 processor-interface crossings on the direct network, where the
    // terminal links are not network links); non-minimal ones (Valiant) at
    // least that many.
    const unsigned floor_hops =
        topo_->min_hops(pkt.src, pkt.dst) + (topo_->is_direct() ? 2U : 0U);
    if (routing_->is_minimal()) {
      SMART_CHECK_MSG(pkt.hops == floor_hops, "non-minimal path detected");
    } else {
      SMART_CHECK_MSG(pkt.hops >= floor_hops, "impossibly short path");
    }
    if (faults_) {
      ++epoch_delivered_packets_;
      epoch_delivered_flits_ += pkt.size_flits;
      epoch_latency_.add(static_cast<double>(cycle_ - pkt.inject_cycle));
    }
    if (draining_) {
      // Past the horizon: these deliveries belong to the drain report,
      // never to the measurement window.
      ++drain_delivered_packets_;
      drain_delivered_flits_ += pkt.size_flits;
    }
    if (obs_ && config_.obs.trace_enabled()) {
      obs_->trace.packet(obs_->uid_of(flit.packet), pkt.src, pkt.dst,
                         pkt.gen_cycle, pkt.inject_cycle, cycle_, pkt.hops,
                         /*dropped=*/false);
      obs_->forget(flit.packet);
    }
    if (measuring_) {
      ++window_delivered_packets_;
      window_delivered_flits_ += pkt.size_flits;
      stats_window_flits_ += pkt.size_flits;
      window_latency_.add(static_cast<double>(cycle_ - pkt.inject_cycle));
      latency_histogram_.add(static_cast<double>(cycle_ - pkt.inject_cycle));
      window_hops_.add(static_cast<double>(pkt.hops));
      if (config_.trace.collect_packet_log) {
        result_.packet_log.push_back(PacketRecord{pkt.src, pkt.dst,
                                                  pkt.gen_cycle,
                                                  pkt.inject_cycle, cycle_,
                                                  pkt.hops});
      }
    }
    pool_.release(flit.packet);
  }
}

void Network::advance_faults() {
  const unsigned prev_active = faults_->active_faults();
  const auto events = faults_->advance(cycle_);
  if (events.empty()) return;
  // Every activation/repair boundary closes the current fault epoch; the
  // cycle the events fire on starts the next one.
  if (cycle_ > epoch_start_cycle_) close_fault_epoch(cycle_ - 1, prev_active);
}

void Network::close_fault_epoch(std::uint64_t end_cycle,
                                unsigned active_faults) {
  FaultEpoch epoch;
  epoch.start_cycle = epoch_start_cycle_;
  epoch.end_cycle = end_cycle;
  epoch.active_faults = active_faults;
  epoch.delivered_packets = epoch_delivered_packets_;
  epoch.delivered_flits = epoch_delivered_flits_;
  epoch.dropped_packets = epoch_dropped_packets_;
  if (epoch.cycles() > 0) {
    epoch.accepted_flits_per_node_cycle =
        static_cast<double>(epoch_delivered_flits_) /
        (static_cast<double>(epoch.cycles()) *
         static_cast<double>(topo_->node_count()));
  }
  if (epoch_latency_.count() > 0) {
    epoch.mean_latency_cycles = epoch_latency_.mean();
  }
  fault_epochs_.push_back(epoch);
  epoch_start_cycle_ = end_cycle + 1;
  epoch_delivered_packets_ = 0;
  epoch_delivered_flits_ = 0;
  epoch_dropped_packets_ = 0;
  epoch_latency_ = OnlineStats{};
}

void Network::record_stall() {
  // A stall with faults active means packets are wedged on failed
  // components; only a fault-free stall is the classic cyclic deadlock.
  if (faults_ && faults_->any_active()) {
    stall_verdict_ = StallVerdict::kFaultStall;
  } else {
    stall_verdict_ = StallVerdict::kDeadlock;
    deadlocked_ = true;
  }
}

void Network::step() {
  ++cycle_;
  if (faults_) advance_faults();
  if (!measuring_ && !draining_ && cycle_ > config_.timing.warmup_cycles) {
    measuring_ = true;
    stats_window_start_ = cycle_;
  }
  nic_phase();
  link_phase();
  routing_phase();
  crossbar_phase();
  apply_pending_credits();
  if (obs_ && config_.obs.sample_interval_cycles > 0 &&
      cycle_ % config_.obs.sample_interval_cycles == 0) {
    obs_->sampler.sample(cycle_, switches_, nics_);
  }
  if (measuring_ && config_.timing.stats_window_cycles > 0 &&
      cycle_ - stats_window_start_ + 1 >= config_.timing.stats_window_cycles) {
    const double per_node_cycle =
        static_cast<double>(stats_window_flits_) /
        (static_cast<double>(config_.timing.stats_window_cycles) *
         static_cast<double>(topo_->node_count()));
    window_accepted_.push_back(per_node_cycle / capacity_);
    stats_window_flits_ = 0;
    stats_window_start_ = cycle_ + 1;
  }
}

const SimulationResult& Network::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  last_progress_cycle_ = 0;
  while (cycle_ < config_.timing.horizon_cycles) {
    step();
    if (pool_.in_flight() > 0 &&
        cycle_ - last_progress_cycle_ > config_.timing.deadlock_threshold) {
      record_stall();
      break;
    }
  }
  // The measurement window closes here, whether or not a drain follows:
  // drain cycles run with injection off and must not dilute the window
  // rates (they used to, deflating accepted bandwidth by the drain length).
  measurement_end_cycle_ = cycle_;
  if (config_.timing.drain_after_horizon &&
      stall_verdict_ == StallVerdict::kNone) {
    // Time-to-drain: stop injecting and keep the fabric running until every
    // in-flight packet is delivered or dropped (or the watchdog fires).
    draining_ = true;
    measuring_ = false;
    const std::uint64_t drain_start = cycle_;
    while (pool_.in_flight() > 0 &&
           cycle_ - drain_start < config_.timing.drain_max_cycles) {
      step();
      if (cycle_ - last_progress_cycle_ > config_.timing.deadlock_threshold) {
        record_stall();
        break;
      }
    }
    result_.drain_cycles = cycle_ - drain_start;
    result_.drained_clean = pool_.in_flight() == 0;
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  result_.sim_wall_seconds = wall.count();
  if (wall.count() > 0.0) {
    result_.sim_cycles_per_second =
        static_cast<double>(cycle_) / wall.count();
    result_.sim_mflits_per_second =
        static_cast<double>(consumed_flits_) / wall.count() / 1e6;
  }
  finalize_result();
  return result_;
}

void Network::finalize_result() {
  // The window spans warm-up to the horizon snapshot taken before any
  // post-horizon drain ran (drain cycles inject nothing and would deflate
  // every per-cycle rate below).
  const std::uint64_t window_end =
      measurement_end_cycle_ > 0 ? measurement_end_cycle_ : cycle_;
  const std::uint64_t window =
      window_end > config_.timing.warmup_cycles
          ? window_end - config_.timing.warmup_cycles
          : 0;
  const auto nodes = static_cast<double>(topo_->node_count());
  result_.measured_cycles = window;
  result_.generated_packets = window_generated_packets_;
  result_.delivered_packets = window_delivered_packets_;
  result_.delivered_flits = window_delivered_flits_;
  if (window > 0) {
    const auto cycles = static_cast<double>(window);
    result_.generated_flits_per_node_cycle =
        static_cast<double>(window_generated_packets_) * flits_per_packet_ /
        (cycles * nodes);
    result_.accepted_flits_per_node_cycle =
        static_cast<double>(window_delivered_flits_) / (cycles * nodes);
    result_.accepted_fraction =
        result_.accepted_flits_per_node_cycle / capacity_;
  }
  result_.latency_cycles = window_latency_;
  result_.hops = window_hops_;
  result_.latency_histogram = latency_histogram_;
  result_.window_accepted = window_accepted_;
  if (window > 0) {
    const auto cycles = static_cast<double>(window);
    for (const Switch& sw : switches_) {
      for (PortId p = 0; p < sw.port_count(); ++p) {
        const SwitchPort& port = sw.port(p);
        if (port.peer.kind == PeerKind::kUnconnected || port.out.empty()) {
          continue;
        }
        result_.link_utilization.add(
            static_cast<double>(port.flits_sent) / cycles);
      }
    }
    for (const Nic& nic : nics_) {
      result_.link_utilization.add(static_cast<double>(nic.flits_sent) /
                                   cycles);
    }
  }
  result_.packets_in_flight_end = pool_.in_flight();
  std::uint64_t backlog = 0;
  for (const Nic& nic : nics_) {
    backlog += nic.source_queue().size();
  }
  result_.source_queue_backlog_end = backlog;
  result_.deadlocked = deadlocked_;
  result_.stall_verdict = stall_verdict_;
  result_.unroutable_packets = unroutable_packets_;
  result_.dropped_packets = dropped_packets_;
  result_.dropped_flits = dropped_flits_;
  result_.window_unroutable_packets = window_unroutable_packets_;
  result_.drain_delivered_packets = drain_delivered_packets_;
  result_.drain_delivered_flits = drain_delivered_flits_;
  if (faults_) {
    if (cycle_ >= epoch_start_cycle_) {
      close_fault_epoch(cycle_, faults_->active_faults());
    }
    result_.fault_epochs = fault_epochs_;
    result_.active_faults_end = faults_->active_faults();
  }
  if (obs_) {
    result_.obs.enabled = true;
    result_.obs.stalls = obs_->stalls.totals();
    result_.obs.switch_frozen_cycles = obs_->stalls.switch_frozen_cycles();
    result_.obs.port_stalls = obs_->stalls.nonzero_ports();
    result_.obs.series = obs_->sampler.take_series();
    if (config_.obs.trace_enabled()) {
      result_.obs.trace_events = obs_->trace.event_count();
      result_.obs.trace_written = obs_->trace.write(config_.obs.trace_out);
    }
  }
}

std::uint64_t Network::buffered_flits() const {
  std::uint64_t total = 0;
  for (const Switch& sw : switches_) {
    for (PortId p = 0; p < sw.port_count(); ++p) {
      const SwitchPort& port = sw.port(p);
      for (const InputLane& lane : port.in) total += lane.buf.size();
      for (const OutputLane& lane : port.out) total += lane.buf.size();
    }
  }
  for (const Nic& nic : nics_) {
    for (const InjectChannel& channel : nic.channels()) {
      total += channel.buf.size();
    }
  }
  return total;
}

}  // namespace smart
