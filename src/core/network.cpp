#include "core/network.hpp"

#include <algorithm>

#include "routing/cube_dor.hpp"
#include "routing/cube_duato.hpp"
#include "routing/cube_valiant.hpp"
#include "routing/escape_adaptive.hpp"
#include "routing/torus_dor.hpp"
#include "routing/tree_adaptive.hpp"
#include "routing/updown.hpp"
#include "synth/families.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"
#include "topology/mixed_radix_torus.hpp"
#include "topology/registry.hpp"
#include "topology/two_level_fattree.hpp"
#include "util/check.hpp"

namespace smart {

Network::Network(SimConfig config) : config_(std::move(config)) {
  // The stall-history selection policy scores downstream switches from the
  // obs layer's per-port stall counters; auto-enable the counters (series
  // off) when the user did not ask for observability explicitly.
  if (config_.net.routing == RoutingKind::kEscapeAdaptive &&
      config_.net.selection == SelectionKind::kStallEwma &&
      !config_.obs.enabled) {
    config_.obs.enabled = true;
    config_.obs.sample_interval_cycles = 0;
  }
  SMART_CHECK_MSG(config_.traffic.throttle >= 0.0 &&
                      config_.traffic.throttle <= 1.0,
                  "injection throttle must lie in [0, 1]");
  SMART_CHECK_MSG(config_.traffic.throttle == 0.0 ||
                      config_.net.routing == RoutingKind::kEscapeAdaptive ||
                      config_.custom_routing,
                  "injection throttling needs an escape-adaptive routing "
                  "algorithm to supply the backpressure signal");
  build_topology();
  build_routing();

  // Fault machinery engages only with a non-empty plan; a fault-free run
  // never touches it, keeping results bit-identical to earlier builds.
  if (!config_.faults.empty()) {
    faults_ = std::make_unique<FaultState>(*topo_, config_.faults);
    routing_->attach_fault_state(faults_.get());
  }

  // Observability engages only when requested; the disabled path costs one
  // null check per hook site and perturbs nothing (same discipline as the
  // fault machinery above).
  if (config_.obs.enabled) {
    const unsigned lane_stride =
        std::max({config_.net.vcs, config_.net.injection_channels, 1U});
    obs_ = std::make_unique<ObsState>(*topo_,
                                      config_.obs.sample_interval_cycles,
                                      lane_stride, config_.obs.trace_hops);
  }

  // The self-profiler follows the same discipline: disabled means a null
  // pointer and one branch per hook site, never a behavioural change.
  if (config_.prof.enabled) profiler_ = std::make_unique<Profiler>();

  // The flight recorder is on by default (it only reads end-of-cycle
  // state, so it cannot perturb results); --no-flight / bench A/B rows
  // disable it to measure the ring's own cost.
  if (config_.flight.enabled) {
    flight_ = std::make_unique<FlightRecorder>(config_.flight);
  }

  const NetworkSpec& net = config_.net;
  flits_per_packet_ = net.flits_per_packet();
  capacity_ = topo_->uniform_capacity_flits_per_node_cycle();
  const double offered_flits =
      config_.traffic.offered_fraction * capacity_;
  packet_rate_ = offered_flits / flits_per_packet_;
  SMART_CHECK_MSG(packet_rate_ <= 1.0,
                  "offered load exceeds one packet per node per cycle");

  // A closed-loop workload replaces the open-loop generators: build it
  // from the registry and zero the packet rate so the NIC phases draw no
  // generation RNG at all — the workload's begin_cycle is then the only
  // packet source (traffic.seed still decorrelates its streams).
  if (config_.workload.enabled()) {
    ensure_builtin_workloads();
    std::string error;
    workload_ = WorkloadRegistry::instance().build(
        config_.workload, topo_->node_count(), config_.traffic.seed, &error);
    SMART_CHECK_MSG(workload_ != nullptr, error.c_str());
    packet_rate_ = 0.0;
  }

  if (config_.custom_pattern) {
    pattern_ = config_.custom_pattern(topo_->node_count());
    SMART_CHECK_MSG(pattern_ != nullptr, "custom pattern factory returned null");
  } else {
    pattern_ = make_pattern(config_.traffic.pattern, topo_->node_count(),
                            net.k, net.n, config_.traffic.seed);
  }
  injection_.reserve(topo_->node_count());
  for (NodeId node = 0; node < topo_->node_count(); ++node) {
    injection_.push_back(make_injection(
        config_.traffic.injection, packet_rate_, config_.traffic.burst_factor,
        config_.traffic.mean_burst_cycles));
  }

  engine_ = std::make_unique<CycleEngine>(
      config_, *topo_, *routing_, *pattern_, injection_, faults_.get(),
      obs_.get(), profiler_.get(), flight_.get(), packet_rate_, capacity_,
      flits_per_packet_, workload_.get());
}

void Network::build_topology() {
  ensure_builtin_families();
  std::string error;
  topo_ = TopologyRegistry::instance().build(config_.net.topo_spec(), &error);
  SMART_CHECK_MSG(topo_ != nullptr, error.c_str());
  // The routing constructors need the concrete fabric type.
  cube_ = dynamic_cast<const KaryNCube*>(topo_.get());
  tree_ = dynamic_cast<const KaryNTree*>(topo_.get());
  torus_ = dynamic_cast<const MixedRadixTorus*>(topo_.get());
  fattree_ = dynamic_cast<const TwoLevelFatTree*>(topo_.get());
}

void Network::build_routing() {
  const NetworkSpec& net = config_.net;
  if (config_.custom_routing) {
    routing_ = config_.custom_routing(*topo_);
    SMART_CHECK_MSG(routing_ != nullptr, "custom routing factory returned null");
    return;
  }
  switch (net.routing) {
    case RoutingKind::kCubeDeterministic:
      SMART_CHECK_MSG(cube_ != nullptr, "DOR routing requires a cube");
      routing_ = std::make_unique<CubeDorRouting>(*cube_, net.vcs);
      break;
    case RoutingKind::kCubeDuato:
      SMART_CHECK_MSG(cube_ != nullptr, "Duato routing requires a cube");
      routing_ = std::make_unique<CubeDuatoRouting>(*cube_, net.vcs);
      break;
    case RoutingKind::kCubeValiant:
      SMART_CHECK_MSG(cube_ != nullptr, "Valiant routing requires a cube");
      routing_ = std::make_unique<CubeValiantRouting>(
          *cube_, net.vcs, config_.traffic.seed ^ 0x7a11a57ULL);
      break;
    case RoutingKind::kTreeAdaptive:
      SMART_CHECK_MSG(tree_ != nullptr, "tree routing requires a fat-tree");
      // The kRandom tie-break streams derive from the run seed (salted away
      // from the NIC and Valiant streams) so --seed and replications vary
      // them; they used to be hardcoded, replaying one stream everywhere.
      routing_ = std::make_unique<TreeAdaptiveRouting>(
          *tree_, net.vcs, net.selection,
          config_.traffic.seed ^ 0x7ee5e1ec7ULL);
      break;
    case RoutingKind::kTorusDor:
      SMART_CHECK_MSG(torus_ != nullptr,
                      "torus DOR requires a mixed-radix torus");
      routing_ = std::make_unique<TorusDorRouting>(*torus_, net.vcs);
      break;
    case RoutingKind::kUpDown:
      SMART_CHECK_MSG(fattree_ != nullptr,
                      "up*/down* requires a two-level fat-tree");
      routing_ = std::make_unique<UpDownRouting>(*fattree_, net.vcs);
      break;
    case RoutingKind::kEscapeAdaptive: {
      // The family names its escape provider; the routing layer resolves
      // the key against the built fabric (topology stays routing-free).
      const TopologyFamily* family =
          TopologyRegistry::instance().find(net.topology);
      SMART_CHECK_MSG(family != nullptr && !family->escape_routing.empty(),
                      "this topology family registers no escape routing");
      std::string error;
      auto escape = make_escape_routing(family->escape_routing, *topo_, &error);
      SMART_CHECK_MSG(escape != nullptr, error.c_str());
      EscapeAdaptiveRouting::Options options;
      options.selection = net.selection;
      options.misroute = net.misroute;
      // Salted away from the NIC, Valiant and tree streams so --seed and
      // replications vary the kRandom selection draws independently.
      options.seed = config_.traffic.seed ^ 0xe5ca9ead5eed1234ULL;
      routing_ = std::make_unique<EscapeAdaptiveRouting>(
          *topo_, std::move(escape), net.vcs, options);
      break;
    }
  }
}

}  // namespace smart
