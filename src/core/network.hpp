// The simulated network: construction and configuration glue.
//
// Network assembles everything a simulation needs from a SimConfig — the
// topology, the routing algorithm, the traffic pattern and per-node
// injection processes, the optional fault plan and observability hooks —
// and hands the assembled collaborators to a CycleEngine (src/engine/),
// which owns the fabric and the per-cycle phase pipeline. Every query
// below forwards to the engine; the public API is unchanged from the
// pre-split monolith.
//
// See src/engine/cycle_engine.hpp for the phase pipeline and
// docs/ARCHITECTURE.md for the layer graph.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "engine/cycle_engine.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "router/nic.hpp"
#include "router/switch.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"
#include "workload/workload.hpp"

namespace smart {

class Network {
 public:
  explicit Network(SimConfig config);

  /// Runs warm-up plus measurement and fills result().
  const SimulationResult& run() { return engine_->run(); }

  /// Advances a single cycle (exposed for tests).
  void step() { engine_->step(); }

  [[nodiscard]] const SimulationResult& result() const noexcept {
    return engine_->result();
  }
  [[nodiscard]] std::uint64_t cycle() const noexcept {
    return engine_->cycle();
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const TrafficPattern& pattern() const noexcept {
    return *pattern_;
  }
  [[nodiscard]] const RoutingAlgorithm& routing() const noexcept {
    return *routing_;
  }

  [[nodiscard]] Switch& switch_at(SwitchId s) { return engine_->switch_at(s); }
  [[nodiscard]] Nic& nic_at(NodeId node) { return engine_->nic_at(node); }
  [[nodiscard]] const PacketPool& packets() const noexcept {
    return engine_->packets();
  }

  /// Per-node nominal injection rate, packets per cycle.
  [[nodiscard]] double packet_rate() const noexcept { return packet_rate_; }
  [[nodiscard]] double capacity_flits_per_node_cycle() const noexcept {
    return capacity_;
  }
  [[nodiscard]] unsigned flits_per_packet() const noexcept {
    return flits_per_packet_;
  }

  /// Flits currently buffered anywhere in the system (invariant checks).
  [[nodiscard]] std::uint64_t buffered_flits() const {
    return engine_->buffered_flits();
  }
  /// Injected minus consumed minus dropped flits must equal
  /// buffered_flits() at any time.
  [[nodiscard]] std::uint64_t injected_flits() const noexcept {
    return engine_->injected_flits();
  }
  [[nodiscard]] std::uint64_t consumed_flits() const noexcept {
    return engine_->consumed_flits();
  }
  /// Flits discarded while draining unroutable worms (fault handling).
  [[nodiscard]] std::uint64_t dropped_flits() const noexcept {
    return engine_->dropped_flits();
  }
  [[nodiscard]] bool deadlocked() const noexcept {
    return engine_->deadlocked();
  }

  /// Null on a fault-free run (empty SimConfig::faults).
  [[nodiscard]] const FaultState* fault_state() const noexcept {
    return faults_.get();
  }

  /// Null unless ObsSpec::enabled (see src/obs/).
  [[nodiscard]] const ObsState* obs_state() const noexcept {
    return obs_.get();
  }

  /// Null unless ProfSpec::enabled (see src/obs/profiler.hpp).
  [[nodiscard]] const Profiler* profiler() const noexcept {
    return profiler_.get();
  }

  /// Null when FlightSpec::enabled is false (see src/obs/flight.hpp).
  [[nodiscard]] const FlightRecorder* flight_recorder() const noexcept {
    return flight_.get();
  }

  /// Null unless SimConfig::workload is enabled (see src/workload/).
  [[nodiscard]] const Workload* workload() const noexcept {
    return workload_.get();
  }

  /// Manually enqueue one packet at `src` for `dst` (tests and examples);
  /// returns the packet id.
  PacketId enqueue_packet(NodeId src, NodeId dst) {
    return engine_->enqueue_packet(src, dst);
  }

 private:
  void build_topology();
  void build_routing();

  SimConfig config_;
  std::unique_ptr<Topology> topo_;
  // Concrete views (owned by topo_), set when the registry-built fabric
  // has the matching dynamic type; routing constructors need them.
  const class KaryNCube* cube_ = nullptr;
  const class KaryNTree* tree_ = nullptr;
  const class MixedRadixTorus* torus_ = nullptr;
  const class TwoLevelFatTree* fattree_ = nullptr;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::unique_ptr<TrafficPattern> pattern_;
  std::unique_ptr<FaultState> faults_;  ///< null when the plan is empty
  std::unique_ptr<ObsState> obs_;       ///< null unless obs is enabled
  std::unique_ptr<Profiler> profiler_;  ///< null unless prof is enabled
  std::unique_ptr<FlightRecorder> flight_;  ///< null when flight disabled
  std::unique_ptr<Workload> workload_;  ///< null without --workload
  std::vector<std::unique_ptr<InjectionProcess>> injection_;  ///< per node

  double packet_rate_ = 0.0;
  double capacity_ = 0.0;
  unsigned flits_per_packet_ = 0;

  /// Declared last: references every collaborator above.
  std::unique_ptr<CycleEngine> engine_;
};

}  // namespace smart
