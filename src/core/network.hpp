// The simulated network: construction and the cycle engine.
//
// Network builds the switches, lanes and NICs for a SimConfig, wires them
// according to the topology, and advances the whole system one router clock
// at a time. Each cycle runs the phases of the paper's switch model
// (§4) in order, with arrival stamps guaranteeing that a flit advances at
// most one pipeline stage per cycle:
//
//   1. NIC phase      packet generation (Bernoulli per node) and streaming
//                     into the injection channel(s)
//   2. link phase     per directed physical channel, a fair arbiter moves
//                     one flit with credit to the peer input lane; flits
//                     reaching a terminal are consumed by the node
//   3. routing phase  per switch, at most one header is assigned an output
//                     lane by the routing algorithm (T_routing = 1 clock)
//   4. crossbar phase every bound input lane advances one flit to its
//                     output lane; freed buffer slots are acknowledged to
//                     the upstream credit counter with a one-cycle delay
//
// Statistics are collected between warm-up and horizon (paper: 2000 and
// 20000 cycles). A watchdog flags deadlock if nothing moves for a
// configurable number of cycles while packets are in flight.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "router/nic.hpp"
#include "router/switch.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"

namespace smart {

class Network {
 public:
  explicit Network(SimConfig config);

  /// Runs warm-up plus measurement and fills result().
  const SimulationResult& run();

  /// Advances a single cycle (exposed for tests).
  void step();

  [[nodiscard]] const SimulationResult& result() const noexcept {
    return result_;
  }
  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  [[nodiscard]] const TrafficPattern& pattern() const noexcept {
    return *pattern_;
  }
  [[nodiscard]] const RoutingAlgorithm& routing() const noexcept {
    return *routing_;
  }

  [[nodiscard]] Switch& switch_at(SwitchId s) { return switches_.at(s); }
  [[nodiscard]] Nic& nic_at(NodeId node) { return nics_.at(node); }
  [[nodiscard]] const PacketPool& packets() const noexcept { return pool_; }

  /// Per-node nominal injection rate, packets per cycle.
  [[nodiscard]] double packet_rate() const noexcept { return packet_rate_; }
  [[nodiscard]] double capacity_flits_per_node_cycle() const noexcept {
    return capacity_;
  }
  [[nodiscard]] unsigned flits_per_packet() const noexcept {
    return flits_per_packet_;
  }

  /// Flits currently buffered anywhere in the system (invariant checks).
  [[nodiscard]] std::uint64_t buffered_flits() const;
  /// Injected minus consumed minus dropped flits must equal
  /// buffered_flits() at any time.
  [[nodiscard]] std::uint64_t injected_flits() const noexcept {
    return injected_flits_;
  }
  [[nodiscard]] std::uint64_t consumed_flits() const noexcept {
    return consumed_flits_;
  }
  /// Flits discarded while draining unroutable worms (fault handling).
  [[nodiscard]] std::uint64_t dropped_flits() const noexcept {
    return dropped_flits_;
  }
  [[nodiscard]] bool deadlocked() const noexcept { return deadlocked_; }

  /// Null on a fault-free run (empty SimConfig::faults).
  [[nodiscard]] const FaultState* fault_state() const noexcept {
    return faults_.get();
  }

  /// Null unless ObsSpec::enabled (see src/obs/).
  [[nodiscard]] const ObsState* obs_state() const noexcept {
    return obs_.get();
  }

  /// Manually enqueue one packet at `src` for `dst` (tests and examples);
  /// returns the packet id.
  PacketId enqueue_packet(NodeId src, NodeId dst);

 private:
  void build_topology();
  void build_routing();
  void build_fabric();

  void nic_phase();
  void link_phase();
  void switch_link_phase(Switch& sw);
  void nic_link_phase(Nic& nic);
  void routing_phase();
  void crossbar_phase();
  void drain_lane(Switch& sw, SwitchPort& port, InputLane& in);
  void apply_pending_credits();
  void consume(Flit flit);
  void advance_faults();
  void close_fault_epoch(std::uint64_t end_cycle, unsigned active_faults);
  void record_stall();
  void finalize_result();

  SimConfig config_;
  std::unique_ptr<Topology> topo_;
  const class KaryNCube* cube_ = nullptr;  // concrete views, owned by topo_
  const class KaryNTree* tree_ = nullptr;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::unique_ptr<TrafficPattern> pattern_;
  std::unique_ptr<FaultState> faults_;  ///< null when the plan is empty
  std::unique_ptr<ObsState> obs_;       ///< null unless obs is enabled

  std::vector<Switch> switches_;
  std::vector<Nic> nics_;
  std::vector<std::unique_ptr<InjectionProcess>> injection_;  ///< per node
  PacketPool pool_;

  std::uint64_t cycle_ = 0;
  double packet_rate_ = 0.0;
  double capacity_ = 0.0;
  unsigned flits_per_packet_ = 0;

  std::vector<std::uint32_t*> pending_credits_;

  // Counters (whole run).
  std::uint64_t injected_flits_ = 0;
  std::uint64_t consumed_flits_ = 0;
  std::uint64_t last_progress_cycle_ = 0;
  bool deadlocked_ = false;
  StallVerdict stall_verdict_ = StallVerdict::kNone;
  bool draining_ = false;  ///< past the horizon with injection stopped
  /// Cycle the measurement window closed: the horizon (or the stall that
  /// ended the run early), never extended by the post-horizon drain.
  std::uint64_t measurement_end_cycle_ = 0;
  // Deliveries during the post-horizon drain (kept out of the window).
  std::uint64_t drain_delivered_packets_ = 0;
  std::uint64_t drain_delivered_flits_ = 0;

  // Resilience counters (whole run; stay zero without a fault plan).
  std::uint64_t unroutable_packets_ = 0;
  std::uint64_t dropped_packets_ = 0;
  std::uint64_t dropped_flits_ = 0;
  std::uint64_t window_unroutable_packets_ = 0;

  // Current fault epoch (see FaultEpoch; tracked only with faults_).
  std::uint64_t epoch_start_cycle_ = 1;
  std::uint64_t epoch_delivered_packets_ = 0;
  std::uint64_t epoch_delivered_flits_ = 0;
  std::uint64_t epoch_dropped_packets_ = 0;
  OnlineStats epoch_latency_;
  std::vector<FaultEpoch> fault_epochs_;

  // Counters (measurement window).
  bool measuring_ = false;
  std::uint64_t window_generated_packets_ = 0;
  std::uint64_t window_delivered_packets_ = 0;
  std::uint64_t window_delivered_flits_ = 0;
  OnlineStats window_latency_;
  OnlineStats window_hops_;
  Histogram latency_histogram_{10.0, 400};
  std::uint64_t stats_window_flits_ = 0;   ///< flits in the current window
  std::uint64_t stats_window_start_ = 0;   ///< cycle the window opened
  std::vector<double> window_accepted_;

  SimulationResult result_;
};

}  // namespace smart
