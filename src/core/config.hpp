// Simulation configuration.
//
// A SimConfig fully determines a simulation run: the network (topology,
// routing algorithm, router parameters, normalization), the traffic
// (pattern, offered load as a fraction of the theoretical capacity, seed)
// and the timing (warm-up and horizon, paper §4: statistics collected after
// 2000 cycles, runs halted at 20000 cycles).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cost/normalization.hpp"
#include "fault/fault.hpp"
#include "routing/tree_adaptive.hpp"
#include "topology/registry.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"
#include "workload/spec.hpp"

namespace smart {

enum class RoutingKind : std::uint8_t {
  kCubeDeterministic,  ///< dimension order, two virtual networks
  kCubeDuato,          ///< minimal adaptive with escape channels
  kCubeValiant,        ///< randomized two-phase oblivious (extension)
  kTreeAdaptive,       ///< ascending adaptive / descending deterministic
  kTorusDor,           ///< dimension order on a mixed-radix torus
  kUpDown,             ///< up*/down* on a two-level fat-tree / Clos
  /// The composable escape-channel adaptive core on any family that
  /// registers an escape provider (docs/ROUTING.md).
  kEscapeAdaptive,
};

// Inline so layers below smart_core (the obs manifest writer) can name a
// configuration without linking the core library.
[[nodiscard]] inline std::string to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kCubeDeterministic: return "deterministic";
    case RoutingKind::kCubeDuato: return "Duato";
    case RoutingKind::kCubeValiant: return "Valiant";
    case RoutingKind::kTreeAdaptive: return "tree adaptive";
    case RoutingKind::kTorusDor: return "torus DOR";
    case RoutingKind::kUpDown: return "up*/down*";
    case RoutingKind::kEscapeAdaptive: return "escape-adaptive";
  }
  return "unknown";
}

struct NetworkSpec {
  /// Topology family name in the TopologyRegistry ("cube", "mesh",
  /// "tree", or a generated family: "fattree2", "clos", "torus",
  /// "tehcube"); see docs/TOPOLOGIES.md for the catalog.
  std::string topology = "cube";
  /// Family parameters as parsed from a spec like "clos:m=8,n=8,r=16".
  std::vector<std::pair<std::string, std::string>> topo_params;
  unsigned k = 16;  ///< radix (cube) / switch arity half (tree)
  unsigned n = 2;   ///< dimensions (cube) / levels (tree)
  RoutingKind routing = RoutingKind::kCubeDeterministic;
  /// Cube only: false builds the open-boundary mesh (Intel Delta/Paragon
  /// style) instead of the torus; the dateline virtual networks are then
  /// never engaged but remain configured.
  bool wraparound = true;
  unsigned vcs = 4;           ///< virtual channels per link direction
  unsigned buffer_depth = 4;  ///< flits per input and per output lane
  unsigned packet_bytes = 64;
  /// Phit/flit width; 0 selects the paper's normalization (2 bytes on the
  /// tree, pin-count-equalized width on the cube: 4 bytes for the paper's
  /// 4-ary-tree/2-cube pair).
  unsigned flit_bytes = 0;
  /// Injection channels between the processor and its router; 1 is the
  /// paper's source-throttled interface. Values > 1 (ablation) must not
  /// exceed the terminal link's input lanes.
  unsigned injection_channels = 1;
  /// Candidate-selection policy of the adaptive algorithms: the tree's
  /// ascending tie-break and the escape-adaptive core's output ranking
  /// share one policy set (src/routing/selection.hpp). kStallEwma is
  /// escape-adaptive only (the tree rejects it at construction).
  SelectionKind selection = SelectionKind::kSaltedAffine;
  /// Escape-adaptive only: allow one non-minimal adaptive hop per packet
  /// when every minimal adaptive lane is taken.
  bool misroute = false;

  /// The registry lookup key for this spec (family + params + the
  /// legacy k/n/wraparound knobs the paper families honor).
  [[nodiscard]] TopoSpec topo_spec() const {
    TopoSpec spec;
    spec.family = topology;
    spec.params = topo_params;
    spec.k = k;
    spec.n = n;
    spec.wraparound = wraparound;
    return spec;
  }

  /// The canonical "family:key=val,..." form for manifests and logs.
  [[nodiscard]] std::string spec_string() const {
    std::string text = topology;
    for (std::size_t i = 0; i < topo_params.size(); ++i) {
      text += i == 0 ? ':' : ',';
      text += topo_params[i].first;
      text += '=';
      text += topo_params[i].second;
    }
    return text;
  }

  [[nodiscard]] unsigned resolved_flit_bytes() const {
    if (flit_bytes != 0) return flit_bytes;
    if (topology == "cube" || topology == "mesh") {
      // Normalized against the paper's quaternary fat-tree switch arity.
      return normalized_cube_flit_bytes(/*tree_k=*/4, /*cube_n=*/n);
    }
    // Tree and the generated families default to the paper's 2-byte
    // fat-tree phit; --flit-bytes overrides.
    return kTreeFlitBytes;
  }
  [[nodiscard]] unsigned flits_per_packet() const {
    return packet_flits(packet_bytes, resolved_flit_bytes());
  }
  [[nodiscard]] std::string description() const;
};

struct TrafficSpec {
  PatternKind pattern = PatternKind::kUniform;
  double offered_fraction = 0.5;  ///< of the uniform-traffic capacity
  std::uint64_t seed = 1;
  /// Arrival process (paper: Bernoulli). Bursty keeps the same average
  /// rate but clusters packets into on/off phases.
  InjectionKind injection = InjectionKind::kBernoulli;
  double burst_factor = 8.0;      ///< peak/average rate during a burst
  double mean_burst_cycles = 200; ///< mean ON-phase duration
  /// End-to-end injection throttling (escape-adaptive only): when > 0, a
  /// NIC holds new worms while the fraction of zero-credit escape lanes
  /// at its switch is at or above this threshold (computed serially from
  /// end-of-previous-cycle state, so results stay bit-identical across
  /// thread counts). 0 disables throttling.
  double throttle = 0.0;
};

/// Optional per-packet delivery log (off by default: it grows with the
/// delivered-packet count).
struct TraceSpec {
  bool collect_packet_log = false;
};

/// Opt-in observability (src/obs/): stall-cause attribution per switch
/// port, utilization/occupancy time series, and Chrome trace export. Off
/// by default; with `enabled` false the engine never touches the subsystem
/// and results are bit-identical to a build without it.
struct ObsSpec {
  bool enabled = false;
  /// Cycles between utilization/occupancy samples (0 disables the series
  /// while keeping the stall counters and trace).
  std::uint64_t sample_interval_cycles = 1000;
  /// Chrome trace-event JSON output path; empty = no trace collected.
  std::string trace_out;
  /// Also emit one slice per switch the header visits (grows the trace by
  /// roughly the mean hop count per packet).
  bool trace_hops = false;

  [[nodiscard]] bool trace_enabled() const noexcept {
    return !trace_out.empty();
  }
};

/// Opt-in engine self-profiler (src/obs/profiler.hpp): per-phase wall-time
/// shares, fused-path hit rate, dirty-list occupancy, and lane-store
/// high-water marks. Off by default; the profiler only reads engine state
/// (clocks, set occupancy, arena fill), so results are bit-identical with
/// it on or off — the flag gates the bookkeeping cost, not the physics.
struct ProfSpec {
  bool enabled = false;
};

/// Always-on flight recorder (src/obs/flight.hpp, obs generation 3): a
/// fixed-capacity ring of per-interval network snapshots — injected /
/// accepted flits, stall-cause totals, active-set occupancy, escape
/// pressure, throttled-NIC count, lane-store high water. The recorder only
/// *reads* end-of-cycle engine state, so results are bit-identical with it
/// on or off (tests/test_flight_recorder.cpp pins the goldens at threads
/// 1/2/4/7); it is cheap enough to stay enabled by default and is dumped
/// to `out` on demand (--flight) or automatically when an anomaly
/// watchdog fires.
struct FlightSpec {
  bool enabled = true;
  /// Cycles between ring snapshots (also the resolution of the dump).
  std::uint64_t interval_cycles = 256;
  /// Snapshots retained; older entries are overwritten (black-box style).
  std::uint64_t capacity = 512;
  /// Dump path for `<out>.flight.json`-style artifacts; empty = dump only
  /// on anomaly (next to the run manifest, when one is written).
  std::string out;
};

/// Anomaly watchdog framework (src/obs/anomaly.hpp, obs generation 3):
/// subsumes the progress watchdog's deadlock / fault-stall verdicts and
/// adds throughput-collapse, livelock (packet-age high-water) and
/// source-queue starvation detectors. Every detector reads only
/// deterministic engine state at a deterministic cadence, so verdicts are
/// bit-identical across thread counts; they are recorded under
/// `obs/anomaly/*` in the run manifest and never change exit codes.
struct AnomalySpec {
  bool enabled = true;
  /// Throughput collapse: fires after `collapse_windows` consecutive stats
  /// windows below `collapse_fraction` of the peak window, once the peak
  /// reached `collapse_min_peak` (so idle runs never trip it).
  double collapse_fraction = 0.35;
  unsigned collapse_windows = 2;
  double collapse_min_peak = 0.08;
  /// Livelock: an injected packet older than this many cycles while the
  /// fabric still reports progress. 0 derives 4 * deadlock_threshold.
  std::uint64_t livelock_age_cycles = 0;
  /// Starvation: one source queue at least `starvation_queue` deep while
  /// also `starvation_skew` times the median queue — a few nodes starving
  /// behind a hotspot the rest of the fabric does not feel.
  std::uint64_t starvation_queue = 64;
  double starvation_skew = 8.0;
};

struct SimTiming {
  std::uint64_t warmup_cycles = 2000;
  std::uint64_t horizon_cycles = 20000;
  /// Cycles without any flit movement (with packets in flight) after which
  /// the run is declared stalled (deadlock or fault-stall verdict).
  std::uint64_t deadlock_threshold = 3000;
  /// Width of the throughput time-series windows in the results.
  std::uint64_t stats_window_cycles = 1000;
  /// When set, injection stops at the horizon and the run continues until
  /// every in-flight packet is delivered or dropped (or drain_max_cycles /
  /// the watchdog fire) — measures time-to-drain after a fault schedule.
  bool drain_after_horizon = false;
  std::uint64_t drain_max_cycles = 20000;
  /// Opt-in progress heartbeat: every this many cycles the engine prints
  /// one stderr line (cycle, cycles/s, accepted fraction, ETA) so long
  /// 64K-fabric runs are not a black box. 0 disables; the interval is
  /// echoed in the run manifest. Wall-clock only — never affects results.
  std::uint64_t heartbeat_cycles = 0;
};

/// Default SimConfig::serial_fabric_threshold (see that field).
inline constexpr unsigned kDefaultSerialFabricThreshold = 64;

struct SimConfig {
  NetworkSpec net;
  TrafficSpec traffic;
  SimTiming timing;
  TraceSpec trace;
  ObsSpec obs;
  ProfSpec prof;
  FlightSpec flight;
  AnomalySpec anomaly;

  /// Worker threads for THIS run (the engine's sharded parallel pipeline;
  /// docs/ARCHITECTURE.md §"Threading"). 1 = serial. Results are
  /// bit-identical for every value: the fabric is statically sharded and
  /// all cross-shard effects — flit pushes, consumes, credits, hop-trace
  /// events, fault drops — are staged and merged in fixed shard order, so
  /// no outcome depends on thread interleaving. Fault plans, trace capture
  /// and the built-in randomized routing algorithms all shard; the engine
  /// falls back to the serial pipeline only for fabrics at or below
  /// serial_fabric_threshold and for custom routing algorithms that are
  /// not concurrent-safe — the value is a budget, not a demand.
  unsigned engine_threads = 1;

  /// Below (or at) this many switches/NICs the engine stays serial even
  /// when engine_threads > 1: the sharded pipeline's staging overhead
  /// beats the parallel win on small fabrics. The chosen path and reason
  /// are echoed in SimulationResult::engine_path_reason and the run
  /// manifest. 64 keeps one word-aligned shard per mask word.
  unsigned serial_fabric_threshold = kDefaultSerialFabricThreshold;

  /// Closed-loop workload above the fabric (empty family = the classic
  /// open-loop synthetic traffic). When enabled, Network mutes the
  /// open-loop generators (packet rate 0) and the workload becomes the
  /// only packet source; traffic.seed still seeds its RNG streams. See
  /// src/workload/ and docs/WORKLOADS.md.
  WorkloadSpec workload;

  /// Deterministic fault schedule (empty = fault-free: the fault machinery
  /// is bypassed entirely and results are bit-identical to a build without
  /// it). See src/fault/fault.hpp and docs/MODEL.md §8.
  FaultPlan faults;

  /// Extension point: when set, overrides NetworkSpec::routing with a
  /// user-supplied algorithm (also how tests inject faulty algorithms to
  /// exercise the deadlock watchdog). The factory receives the built
  /// topology, which outlives the algorithm.
  std::function<std::unique_ptr<RoutingAlgorithm>(const Topology&)>
      custom_routing;

  /// Extension point: when set, overrides TrafficSpec::pattern.
  std::function<std::unique_ptr<TrafficPattern>(std::size_t nodes)>
      custom_pattern;
};

/// The paper's two evaluated networks, pre-normalized.
[[nodiscard]] NetworkSpec paper_cube_spec(RoutingKind routing);
[[nodiscard]] NetworkSpec paper_tree_spec(unsigned vcs);

}  // namespace smart
