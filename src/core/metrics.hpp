// Metrics of one simulation run (paper §6).
//
// Accepted bandwidth (throughput) is the sustained data delivery rate given
// some offered bandwidth; before saturation offered and accepted coincide.
// Network latency is the time from the insertion of the header flit in the
// injection lane until the reception of the tail flit at the destination —
// source queueing excluded. Both are collected only after the warm-up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/counters.hpp"
#include "obs/flight.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace smart {

/// Observability report (filled only when ObsSpec::enabled; see src/obs/).
struct ObsReport {
  bool enabled = false;
  /// Fabric-wide stall attribution totals, lane-cycle events per cause.
  StallBreakdown stalls;
  /// Cycles a dead switch spent frozen with flits buffered inside.
  std::uint64_t switch_frozen_cycles = 0;
  /// Per-port attribution, ports with at least one stall.
  std::vector<PortStallRecord> port_stalls;
  /// Utilization/occupancy time series (empty when the interval is 0).
  ObsSeries series;
  /// Chrome trace events collected / written to ObsSpec::trace_out.
  std::uint64_t trace_events = 0;
  bool trace_written = false;
};

/// One delivered packet (collected only when TraceSpec::collect_packet_log
/// is set).
struct PacketRecord {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t gen_cycle = 0;
  std::uint64_t inject_cycle = 0;
  std::uint64_t deliver_cycle = 0;
  std::uint32_t hops = 0;

  [[nodiscard]] std::uint64_t network_latency() const {
    return deliver_cycle - inject_cycle;
  }
  [[nodiscard]] std::uint64_t source_queueing() const {
    return inject_cycle - gen_cycle;
  }
};

/// Why a run stopped making progress (watchdog verdicts).
enum class StallVerdict : std::uint8_t {
  kNone,       ///< the run reached its horizon (or drained) normally
  kDeadlock,   ///< classic deadlock: no movement, no active fault
  kFaultStall, ///< no movement while faults were active: packets wedged on
               ///< failed components, not on a cyclic dependency
};

[[nodiscard]] constexpr const char* to_string(StallVerdict verdict) noexcept {
  switch (verdict) {
    case StallVerdict::kNone: return "none";
    case StallVerdict::kDeadlock: return "deadlock";
    case StallVerdict::kFaultStall: return "fault-stall";
  }
  return "unknown";
}

/// Resilience accounting for one fault epoch: the span of cycles between
/// two consecutive fault activations/repairs (first epoch starts at cycle
/// 1, last ends at the final cycle). Collected over the whole run — fault
/// schedules need not align with the measurement window.
struct FaultEpoch {
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;  ///< inclusive
  unsigned active_faults = 0;   ///< faults active during this epoch
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_flits = 0;
  std::uint64_t dropped_packets = 0;  ///< unroutable worms fully drained
  /// Accepted bandwidth over the epoch, flits per node per cycle.
  double accepted_flits_per_node_cycle = 0.0;
  /// Mean network latency of packets delivered in the epoch (0 if none).
  double mean_latency_cycles = 0.0;

  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return end_cycle >= start_cycle ? end_cycle - start_cycle + 1 : 0;
  }
};

struct SimulationResult {
  // Load axis.
  double offered_fraction = 0.0;            ///< of capacity, as configured
  double offered_flits_per_node_cycle = 0.0;
  double capacity_flits_per_node_cycle = 0.0;
  /// Fraction of nodes that inject (< 1 for permutations with fixed
  /// points, e.g. the 16 palindromes under bit reversal on 256 nodes).
  double injecting_fraction = 1.0;
  /// offered_fraction scaled by injecting_fraction: the load actually
  /// entering the network; accepted bandwidth is compared against this.
  [[nodiscard]] double effective_offered_fraction() const {
    return offered_fraction * injecting_fraction;
  }

  // Measured rates (per node per cycle, over the measurement window).
  double generated_flits_per_node_cycle = 0.0;
  double accepted_flits_per_node_cycle = 0.0;
  /// accepted / capacity, the y-axis of the paper's CNF throughput graphs.
  double accepted_fraction = 0.0;

  // Latency and distance of packets delivered in the window.
  OnlineStats latency_cycles;
  OnlineStats hops;
  /// Latency distribution (10-cycle bins, packets above 4000 cycles land in
  /// the overflow bin); quantiles via latency_percentile().
  Histogram latency_histogram{10.0, 400};
  [[nodiscard]] double latency_percentile(double q) const {
    return latency_histogram.quantile(q);
  }

  /// Accepted fraction of capacity per stats window (timing.stats_window
  /// cycles each), covering the measurement period in order. Shows whether
  /// throughput stays stable after saturation (paper §6).
  std::vector<double> window_accepted;
  /// max - min of window_accepted (0 when fewer than 2 windows).
  [[nodiscard]] double throughput_swing() const {
    if (window_accepted.size() < 2) return 0.0;
    double lo = window_accepted.front();
    double hi = lo;
    for (double w : window_accepted) {
      lo = lo < w ? lo : w;
      hi = hi > w ? hi : w;
    }
    return hi - lo;
  }

  // Link utilization over the measurement window: flits transmitted per
  // cycle per directed physical channel (terminal links included). The
  // mean shows overall fabric load; the max exposes hotspots (e.g. 1.0 on
  // the bisection links of the cube under complement traffic).
  OnlineStats link_utilization;

  // Raw counters (measurement window).
  std::uint64_t generated_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_flits = 0;
  std::uint64_t measured_cycles = 0;

  /// Per-packet delivery log (empty unless requested in TraceSpec).
  std::vector<PacketRecord> packet_log;

  // End-of-run state.
  std::uint64_t packets_in_flight_end = 0;
  std::uint64_t source_queue_backlog_end = 0;
  bool deadlocked = false;

  // Execution-path provenance: whether the engine ran the sharded
  // parallel pipeline or the serial one, and why (echoed into the run
  // manifest so large-fabric runs are auditable). Never affects the
  // simulated physics — results are bit-identical either way.
  bool engine_parallel = false;
  unsigned engine_shards = 1;
  std::string engine_path_reason;

  // Routing-layer provenance (all zero unless the algorithm reports
  // stats — the escape-adaptive core and its Duato instantiation): how
  // headers split between the adaptive and escape lane classes, and how
  // often the misroute freedom was used. Deterministic and thread-count
  // invariant, like every engine counter.
  std::uint64_t routing_adaptive_headers = 0;
  std::uint64_t routing_escape_headers = 0;
  std::uint64_t routing_misroute_headers = 0;
  /// NIC-cycles spent holding injection under --throttle (whole run).
  std::uint64_t nic_throttled_cycles = 0;

  // Resilience (all zero / empty on a fault-free run).
  /// Verdict of the progress watchdog; kDeadlock mirrors `deadlocked`.
  StallVerdict stall_verdict = StallVerdict::kNone;
  /// Packets declared unroutable by the routing layer (whole run).
  std::uint64_t unroutable_packets = 0;
  /// Unroutable packets whose worm finished draining (whole run).
  std::uint64_t dropped_packets = 0;
  /// Flits discarded while draining unroutable worms (whole run).
  std::uint64_t dropped_flits = 0;
  /// Unroutable packets declared inside the measurement window.
  std::uint64_t window_unroutable_packets = 0;
  /// Per-epoch degradation curve (empty without a fault plan).
  std::vector<FaultEpoch> fault_epochs;
  /// Faults active when the run ended.
  unsigned active_faults_end = 0;

  // Post-horizon drain (only when SimTiming::drain_after_horizon is set):
  // injection stops at the horizon and the run continues until the fabric
  // empties — the time-to-drain after the configured fault schedule. The
  // measurement window closes at the horizon: packets delivered while
  // draining count only here, never into the window rates above.
  std::uint64_t drain_cycles = 0;
  bool drained_clean = false;  ///< true when every in-flight packet left
  std::uint64_t drain_delivered_packets = 0;
  std::uint64_t drain_delivered_flits = 0;

  // Closed-loop workload service metrics (enabled == false unless the run
  // had a --workload; see src/workload/workload.hpp for the conservation
  // identity and metric definitions).
  WorkloadReport workload;

  // Observability (empty unless ObsSpec::enabled; see src/obs/).
  ObsReport obs;

  // Flight-recorder series (FlightSpec; enabled by default — the recorder
  // only reads engine state, so it never changes the fields above). Lives
  // here so sweeps and replications keep their series after the Network
  // is destroyed; dumped to .flight.json by the CLI.
  FlightSeries flight;

  // Anomaly watchdog verdicts (AnomalySpec; see src/obs/anomaly.hpp).
  // All five detectors report (triggered or not) when monitoring was on,
  // registered under obs/anomaly/* in the manifest. Deterministic.
  bool anomaly_enabled = false;
  std::vector<AnomalyVerdict> anomaly_verdicts;
  /// True when any detector fired (mirrors the obs/anomaly/any metric).
  [[nodiscard]] bool anomaly_triggered() const {
    for (const AnomalyVerdict& v : anomaly_verdicts) {
      if (v.triggered) return true;
    }
    return false;
  }

  // Engine self-profile (empty unless ProfSpec::enabled; see
  // src/obs/profiler.hpp). Wall times inside are nondeterministic; the
  // scheduler/work counters are bit-deterministic.
  ProfileReport profile;

  // Simulator self-metrics: wall-clock measurements of the simulator
  // itself, filled by Network::run(). Inherently nondeterministic — they
  // are excluded from every bit-identity guarantee.
  double sim_wall_seconds = 0.0;
  double sim_cycles_per_second = 0.0;   ///< simulated cycles / wall second
  double sim_mflits_per_second = 0.0;   ///< consumed flits / wall second, 1e6
};

}  // namespace smart
