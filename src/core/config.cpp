#include "core/config.hpp"

#include "cost/normalization.hpp"
#include "util/check.hpp"

namespace smart {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kCube: return "cube";
    case TopologyKind::kTree: return "fat tree";
  }
  return "unknown";
}

std::string to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kCubeDeterministic: return "deterministic";
    case RoutingKind::kCubeDuato: return "Duato";
    case RoutingKind::kCubeValiant: return "Valiant";
    case RoutingKind::kTreeAdaptive: return "tree adaptive";
  }
  return "unknown";
}

unsigned NetworkSpec::resolved_flit_bytes() const {
  if (flit_bytes != 0) return flit_bytes;
  if (topology == TopologyKind::kTree) return kTreeFlitBytes;
  // Normalized against the paper's quaternary fat-tree switch arity.
  return normalized_cube_flit_bytes(/*tree_k=*/4, /*cube_n=*/n);
}

unsigned NetworkSpec::flits_per_packet() const {
  return packet_flits(packet_bytes, resolved_flit_bytes());
}

std::string NetworkSpec::description() const {
  std::string base =
      std::to_string(k) + "-ary " + std::to_string(n) +
      (topology == TopologyKind::kCube ? (wraparound ? "-cube" : "-mesh")
                                       : "-tree");
  return base + ", " + to_string(routing) + ", " + std::to_string(vcs) + " vc";
}

NetworkSpec paper_cube_spec(RoutingKind routing) {
  SMART_CHECK(routing == RoutingKind::kCubeDeterministic ||
              routing == RoutingKind::kCubeDuato);
  NetworkSpec spec;
  spec.topology = TopologyKind::kCube;
  spec.k = 16;
  spec.n = 2;
  spec.routing = routing;
  spec.vcs = 4;
  return spec;
}

NetworkSpec paper_tree_spec(unsigned vcs) {
  SMART_CHECK(vcs == 1 || vcs == 2 || vcs == 4);
  NetworkSpec spec;
  spec.topology = TopologyKind::kTree;
  spec.k = 4;
  spec.n = 4;
  spec.routing = RoutingKind::kTreeAdaptive;
  spec.vcs = vcs;
  return spec;
}

}  // namespace smart
