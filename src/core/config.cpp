#include "core/config.hpp"

#include "util/check.hpp"

namespace smart {

std::string NetworkSpec::description() const {
  std::string base;
  if (topology == "cube" || topology == "mesh") {
    base = std::to_string(k) + "-ary " + std::to_string(n) +
           (topology == "cube" && wraparound ? "-cube" : "-mesh");
  } else if (topology == "tree") {
    base = std::to_string(k) + "-ary " + std::to_string(n) + "-tree";
  } else {
    base = spec_string();
  }
  return base + ", " + to_string(routing) + ", " + std::to_string(vcs) + " vc";
}

NetworkSpec paper_cube_spec(RoutingKind routing) {
  SMART_CHECK(routing == RoutingKind::kCubeDeterministic ||
              routing == RoutingKind::kCubeDuato);
  NetworkSpec spec;
  spec.topology = "cube";
  spec.k = 16;
  spec.n = 2;
  spec.routing = routing;
  spec.vcs = 4;
  return spec;
}

NetworkSpec paper_tree_spec(unsigned vcs) {
  SMART_CHECK(vcs == 1 || vcs == 2 || vcs == 4);
  NetworkSpec spec;
  spec.topology = "tree";
  spec.k = 4;
  spec.n = 4;
  spec.routing = RoutingKind::kTreeAdaptive;
  spec.vcs = vcs;
  return spec;
}

}  // namespace smart
