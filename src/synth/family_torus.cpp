// Family "torus": an auto-designed k-ary n-torus with mixed radices,
// after the automated torus design of arXiv:1301.6180. Either the
// solver factors a node count into near-equal radices over a dimension
// budget, or the radices are given explicitly:
//
//   torus:nodes=N[,dims=D]         (D defaults to 3)
//   torus:radices=AxBxC            (explicit per-dimension radices)
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "synth/design.hpp"
#include "synth/families.hpp"
#include "topology/mixed_radix_torus.hpp"
#include "topology/registry.hpp"

namespace smart {

namespace {

/// Parses "AxBxC" into per-dimension radices (each >= 2, at most 32
/// dimensions, product <= 2^32).
bool parse_radices(const std::string& text, std::vector<unsigned>* out,
                   std::string* error) {
  out->clear();
  std::uint64_t nodes = 1;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = std::min(text.find('x', pos), text.size());
    std::uint64_t value = 0;
    bool any = false;
    for (std::size_t i = pos; i < next; ++i) {
      if (text[i] < '0' || text[i] > '9') {
        if (error) *error = "radices must be digits separated by 'x'";
        return false;
      }
      value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
      if (value > 0xffffffffu) {
        if (error) *error = "radix out of range in '" + text + "'";
        return false;
      }
      any = true;
    }
    if (!any || value < 2) {
      if (error) *error = "every torus radix must be an integer >= 2";
      return false;
    }
    nodes *= value;
    if (nodes > (std::uint64_t{1} << 32)) {
      if (error) *error = "torus radices '" + text + "' exceed 2^32 nodes";
      return false;
    }
    out->push_back(static_cast<unsigned>(value));
    if (next == text.size()) break;
    pos = next + 1;
  }
  if (out->size() > 32) {
    if (error) *error = "a torus supports at most 32 dimensions";
    return false;
  }
  return true;
}

bool design_torus(const TopoSpec& spec, std::vector<unsigned>* radices,
                  std::string* error) {
  if (!spec.check_keys({"nodes", "dims", "radices"}, error)) return false;
  if (const std::string* text = spec.find("radices")) {
    if (spec.find("nodes") != nullptr || spec.find("dims") != nullptr) {
      if (error) *error = "give either radices=... or nodes=/dims=, not both";
      return false;
    }
    return parse_radices(*text, radices, error);
  }
  unsigned nodes = 0;
  unsigned dims = 3;
  if (!spec.get_unsigned("nodes", &nodes, error)) return false;
  if (!spec.get_unsigned("dims", &dims, error)) return false;
  if (nodes == 0) {
    if (error) {
      *error = "torus needs nodes=N (e.g. torus:nodes=4096) or radices=AxBxC";
    }
    return false;
  }
  return balanced_radices(nodes, dims, radices, error);
}

}  // namespace

void register_torus_family() {
  TopologyFamily fam;
  fam.name = "torus";
  fam.grammar = "torus:nodes=N[,dims=D] | torus:radices=AxBxC";
  fam.summary = "auto-designed mixed-radix torus (near-equal factorization)";
  fam.default_routing = "dor";
  fam.routing_keys = {"dor", "escape"};
  fam.escape_routing = "torus-dor";
  fam.build = [](const TopoSpec& spec,
                 std::string* error) -> std::unique_ptr<Topology> {
    std::vector<unsigned> radices;
    if (!design_torus(spec, &radices, error)) return nullptr;
    return std::make_unique<MixedRadixTorus>(std::move(radices));
  };
  fam.clock = [](const TopoSpec& spec, unsigned vcs, DerivedClock* out,
                 std::string* error) {
    std::vector<unsigned> radices;
    if (!design_torus(spec, &radices, error)) return false;
    if (vcs < 2 || vcs % 2 != 0) {
      if (error) *error = "torus DOR needs an even vcs count >= 2";
      return false;
    }
    *out = torus_derived_clock(radices, vcs);
    return true;
  };
  TopologyRegistry::instance().add(std::move(fam));
}

}  // namespace smart
