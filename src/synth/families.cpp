#include "synth/families.hpp"

#include <memory>
#include <string>

#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"
#include "topology/registry.hpp"

namespace smart {

namespace {

/// k^n with the engine's 2^32 node cap; false + message on overflow.
bool checked_pow(unsigned k, unsigned n, std::uint64_t* out,
                 std::string* error) {
  std::uint64_t nodes = 1;
  for (unsigned i = 0; i < n; ++i) {
    nodes *= k;
    if (nodes > (std::uint64_t{1} << 32)) {
      if (error) {
        *error = std::to_string(k) + "^" + std::to_string(n) +
                 " nodes exceeds the 2^32 node cap";
      }
      return false;
    }
  }
  *out = nodes;
  return true;
}

/// Resolves the paper families' k/n: NetworkSpec defaults, overridable
/// by explicit k=/n= params.
bool resolve_kn(const TopoSpec& spec, unsigned* k, unsigned* n,
                std::string* error) {
  *k = spec.k;
  *n = spec.n;
  if (!spec.check_keys({"k", "n"}, error)) return false;
  if (!spec.get_unsigned("k", k, error)) return false;
  if (!spec.get_unsigned("n", n, error)) return false;
  if (*k < 2) {
    if (error) *error = "radix k must be >= 2";
    return false;
  }
  if (*n < 1 || *n > 32) {
    if (error) *error = "dimension/level count n must be in [1, 32]";
    return false;
  }
  std::uint64_t nodes = 0;
  return checked_pow(*k, *n, &nodes, error);
}

void register_cube_family(bool wraparound) {
  TopologyFamily fam;
  fam.name = wraparound ? "cube" : "mesh";
  fam.grammar = fam.name + "[:k=K,n=N]";
  fam.summary = wraparound
                    ? "k-ary n-cube (torus), the paper's direct network"
                    : "k-ary n-mesh, the cube without wraparound links";
  fam.default_routing = "duato";
  fam.routing_keys = {"det", "duato", "valiant", "escape"};
  fam.escape_routing = "cube-dor";
  fam.build = [wraparound](const TopoSpec& spec,
                           std::string* error) -> std::unique_ptr<Topology> {
    unsigned k = 0;
    unsigned n = 0;
    if (!resolve_kn(spec, &k, &n, error)) return nullptr;
    // "cube" still honors NetworkSpec::wraparound = false (the tests'
    // historical way to ask for a mesh); "mesh" always opens the rings.
    const bool wrap = wraparound && spec.wraparound;
    return std::make_unique<KaryNCube>(k, n, wrap);
  };
  TopologyRegistry::instance().add(std::move(fam));
}

void register_tree_family() {
  TopologyFamily fam;
  fam.name = "tree";
  fam.grammar = "tree[:k=K,n=N]";
  fam.summary = "k-ary n-tree fat-tree, the paper's indirect network";
  fam.default_routing = "tree";
  fam.routing_keys = {"tree", "escape"};
  fam.escape_routing = "tree-updown";
  fam.build = [](const TopoSpec& spec,
                 std::string* error) -> std::unique_ptr<Topology> {
    unsigned k = 0;
    unsigned n = 0;
    if (!resolve_kn(spec, &k, &n, error)) return nullptr;
    return std::make_unique<KaryNTree>(k, n);
  };
  TopologyRegistry::instance().add(std::move(fam));
}

}  // namespace

void ensure_builtin_families() {
  // Thread-safe and idempotent: the static's initializer runs once.
  static const bool registered = [] {
    register_cube_family(/*wraparound=*/true);
    register_cube_family(/*wraparound=*/false);
    register_tree_family();
    register_fattree2_family();
    register_clos_family();
    register_torus_family();
    register_tehcube_family();
    return true;
  }();
  (void)registered;
}

}  // namespace smart
