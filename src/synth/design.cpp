#include "synth/design.hpp"

#include <algorithm>
#include <cmath>

#include "cost/chien.hpp"
#include "util/check.hpp"

namespace smart {

std::uint64_t largest_divisor_at_most(std::uint64_t n, std::uint64_t cap) {
  SMART_CHECK(n >= 1);
  cap = std::min(cap, n);
  for (std::uint64_t d = cap; d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

namespace {

/// Divisor of `rem` in [2, limit] closest to `ideal` (ties take the
/// larger divisor, keeping early dimensions at least as big as late
/// ones). Returns 0 when no divisor qualifies.
std::uint64_t closest_divisor(std::uint64_t rem, double ideal,
                              std::uint64_t limit) {
  std::uint64_t best = 0;
  double best_gap = 0.0;
  const auto consider = [&](std::uint64_t d) {
    if (d < 2 || d > limit) return;
    const double gap = std::abs(static_cast<double>(d) - ideal);
    if (best == 0 || gap < best_gap || (gap == best_gap && d > best)) {
      best = d;
      best_gap = gap;
    }
  };
  for (std::uint64_t d = 1; d * d <= rem; ++d) {
    if (rem % d != 0) continue;
    consider(d);
    consider(rem / d);
  }
  return best;
}

}  // namespace

bool balanced_radices(std::uint64_t nodes, unsigned dims,
                      std::vector<unsigned>* out, std::string* error) {
  SMART_CHECK(out != nullptr);
  out->clear();
  if (dims < 1 || dims > 32) {
    if (error) *error = "torus dimension count must be between 1 and 32";
    return false;
  }
  if (nodes < 2) {
    if (error) *error = "a torus needs at least 2 nodes";
    return false;
  }
  std::uint64_t rem = nodes;
  for (unsigned left = dims; left >= 1; --left) {
    const double ideal =
        std::pow(static_cast<double>(rem), 1.0 / static_cast<double>(left));
    // While more dimensions remain, the remainder after this pick must
    // itself still be splittable, so the pick is capped at rem / 2.
    const std::uint64_t limit = left > 1 ? rem / 2 : rem;
    const std::uint64_t pick = closest_divisor(rem, ideal, limit);
    if (pick == 0) {
      if (error) {
        *error = "cannot factor " + std::to_string(nodes) + " nodes into " +
                 std::to_string(dims) +
                 " radices >= 2; pick a node count with enough small factors "
                 "or fewer dims";
      }
      out->clear();
      return false;
    }
    out->push_back(static_cast<unsigned>(pick));
    rem /= pick;
  }
  SMART_CHECK(rem == 1);
  // Largest radix first: the wire model then folds the biggest ring
  // across the densest axis assignment.
  std::sort(out->begin(), out->end(), std::greater<>());
  return true;
}

double torus_longest_wire_m(const std::vector<unsigned>& radices) {
  SMART_CHECK(!radices.empty());
  // Dimensions go round-robin onto the three physical axes; on each
  // axis a dimension's folded wire spans twice the node stride of the
  // dimensions placed on that axis before it.
  double stride[3] = {1.0, 1.0, 1.0};
  double longest = kShortWireM;
  for (std::size_t d = 0; d < radices.size(); ++d) {
    const std::size_t axis = d % 3;
    const double wire = std::max(kShortWireM, 2.0 * stride[axis] * kNodePitchM);
    longest = std::max(longest, wire);
    stride[axis] *= static_cast<double>(radices[d]);
  }
  return longest;
}

double fattree_longest_wire_m(std::size_t nodes) {
  SMART_CHECK(nodes >= 1);
  const double cabinets = std::ceil(static_cast<double>(nodes) /
                                    static_cast<double>(kNodesPerCabinet));
  const double grid = std::ceil(std::sqrt(cabinets));
  // Half the floor diagonal of the cabinet grid to the central spine
  // rack, plus ~2 m of vertical rise and drop.
  return 0.707 * grid * kCabinetPitchM + 2.0;
}

DerivedClock torus_derived_clock(const std::vector<unsigned>& radices,
                                 unsigned vcs) {
  SMART_CHECK_MSG(vcs >= 2 && vcs % 2 == 0,
                  "torus DOR needs two virtual networks");
  DerivedClock clock;
  clock.freedom = vcs / 2;  // channels of the one legal direction's VN
  clock.ports = 2 * static_cast<unsigned>(radices.size()) * vcs + 1;
  clock.wire_m = torus_longest_wire_m(radices);
  clock.routing_ns = t_routing_ns(clock.freedom);
  clock.crossbar_ns = t_crossbar_ns(clock.ports);
  clock.link_ns = t_link_wire_ns(vcs, clock.wire_m);
  return clock;
}

DerivedClock fattree_derived_clock(std::size_t leaves, std::size_t spines,
                                   unsigned terminals, unsigned rails,
                                   unsigned vcs) {
  SMART_CHECK(vcs >= 1 && leaves >= 1 && spines >= 1 && terminals >= 1 &&
              rails >= 1);
  const std::size_t leaf_ports = terminals + spines * rails;
  const std::size_t spine_ports = leaves * rails;
  DerivedClock clock;
  clock.freedom = static_cast<unsigned>(spines * rails) * vcs;  // any up rail
  clock.ports =
      static_cast<unsigned>(std::max(leaf_ports, spine_ports)) * vcs;
  clock.wire_m = fattree_longest_wire_m(leaves * terminals);
  clock.routing_ns = t_routing_ns(clock.freedom);
  clock.crossbar_ns = t_crossbar_ns(clock.ports);
  clock.link_ns = t_link_wire_ns(vcs, clock.wire_m);
  return clock;
}

}  // namespace smart
