// Automated fabric design: sizing solvers and the physical layout model
// behind the generated topology families (src/synth/family_*.cpp).
//
// The solvers turn a target node count (and a radix/dimension budget)
// into concrete fabric parameters — near-equal torus radices per the
// automated torus design of arXiv:1301.6180, divisor-aligned leaf sizing
// for two-level fat-trees per arXiv:1301.6179. The layout model places
// 64 nodes per cabinet (a 4x4x4 sub-block, ~0.3 m between adjacent node
// positions per axis, 1.2 m cabinet pitch) and derives each family's
// longest wire, which the extended Chien model (cost/chien.hpp
// t_link_wire_ns) converts into the link delay of the derived clock:
//
//   - folded torus: dimensions map round-robin onto the three physical
//     axes; a dimension's wire spans twice its logical stride (folding),
//     so the first dimension on an axis gets short neighbor wires and
//     each further dimension stretches by the radix product before it;
//   - two-level fat-tree / Clos: leaves sit in the node cabinets, spines
//     in a central rack; the longest run crosses half the floor diagonal
//     of a near-square cabinet grid plus the vertical rise and drop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/registry.hpp"

namespace smart {

/// Cabinet layout constants of the physical budget model.
inline constexpr double kCabinetPitchM = 1.2;   ///< center-to-center
inline constexpr unsigned kNodesPerCabinet = 64;  ///< 4x4x4 sub-block
inline constexpr double kNodePitchM = 0.3;  ///< adjacent node positions
/// Wires at or below this length are the paper's "short" wires (eq. 3).
inline constexpr double kShortWireM = 0.1;

/// Largest divisor of n that is <= cap (>= 1; cap clamped to n).
[[nodiscard]] std::uint64_t largest_divisor_at_most(std::uint64_t n,
                                                    std::uint64_t cap);

/// Factors `nodes` into `dims` near-equal radices, every one >= 2
/// (greedy: each step takes the divisor closest to the ideal equal
/// root that leaves the remainder splittable). Returns false with a
/// message in *error when no such factorization exists (e.g. a prime
/// node count, or fewer than 2^dims nodes).
bool balanced_radices(std::uint64_t nodes, unsigned dims,
                      std::vector<unsigned>* out, std::string* error);

/// Longest wire of the folded-torus layout for the given radices.
[[nodiscard]] double torus_longest_wire_m(const std::vector<unsigned>& radices);

/// Longest leaf-spine cable of the centralized two-level layout.
[[nodiscard]] double fattree_longest_wire_m(std::size_t nodes);

/// Derived clock of a mixed-radix torus under dimension-order routing:
/// F = V/2 (the channels of the single legal direction's virtual
/// network), P = 2*dims*V + 1, link delay from the folded-torus wire.
[[nodiscard]] DerivedClock torus_derived_clock(
    const std::vector<unsigned>& radices, unsigned vcs);

/// Derived clock of a two-level fat-tree under up*/down* routing:
/// F = spines*rails*V (any up rail during the ascent), P = V times the
/// larger switch radix, link delay from the leaf-spine cable.
[[nodiscard]] DerivedClock fattree_derived_clock(std::size_t leaves,
                                                 std::size_t spines,
                                                 unsigned terminals,
                                                 unsigned rails,
                                                 unsigned vcs);

}  // namespace smart
