// Family "fattree2": a two-level fat-tree sized from a node count and a
// leaf-switch radix budget, after Solnushkin's automated two-level
// fat-tree design (arXiv:1301.6179).
//
//   fattree2:nodes=N[,radix=R]     (R defaults to 64)
//
// The solver splits the radix between downlinks and uplinks: the
// terminals-per-leaf n is the largest divisor of N not exceeding R/2
// (so at least half the radix goes up, keeping contention <= 1 at the
// leaf), giving L = N/n leaves and S = R - n director-class spines of
// radix L. Oversubscription is therefore n/S <= 1 and the fabric is
// rearrangeably non-blocking for the paper's uniform loads.
#include <algorithm>
#include <memory>
#include <string>

#include "synth/design.hpp"
#include "synth/families.hpp"
#include "topology/registry.hpp"
#include "topology/two_level_fattree.hpp"

namespace smart {

namespace {

struct FatTreeDesign {
  std::size_t leaves = 0;
  std::size_t spines = 0;
  unsigned terminals = 0;
};

bool design_fattree2(const TopoSpec& spec, FatTreeDesign* out,
                     std::string* error) {
  if (!spec.check_keys({"nodes", "radix"}, error)) return false;
  unsigned nodes = 0;
  unsigned radix = 64;
  if (!spec.get_unsigned("nodes", &nodes, error)) return false;
  if (!spec.get_unsigned("radix", &radix, error)) return false;
  if (nodes == 0) {
    if (error) *error = "fattree2 needs nodes=N (e.g. fattree2:nodes=4096)";
    return false;
  }
  if (nodes < 2) {
    if (error) *error = "fattree2 needs at least 2 nodes";
    return false;
  }
  if (radix < 2 || radix > 65535) {
    if (error) *error = "fattree2 radix must be in [2, 65535]";
    return false;
  }
  const auto terminals = static_cast<unsigned>(
      largest_divisor_at_most(nodes, std::max(1u, radix / 2)));
  const std::size_t leaves = nodes / terminals;
  const std::size_t spines = radix - terminals;
  if (leaves > 65535) {
    if (error) {
      *error = "fattree2 with nodes=" + std::to_string(nodes) + ",radix=" +
               std::to_string(radix) + " needs " + std::to_string(leaves) +
               " leaves, above the 65535 spine-radix cap; raise radix";
    }
    return false;
  }
  out->leaves = leaves;
  out->spines = spines;
  out->terminals = terminals;
  return true;
}

}  // namespace

void register_fattree2_family() {
  TopologyFamily fam;
  fam.name = "fattree2";
  fam.grammar = "fattree2:nodes=N[,radix=R]";
  fam.summary =
      "two-level fat-tree sized by leaf radix (director-class spines)";
  fam.default_routing = "updown";
  fam.routing_keys = {"updown", "escape"};
  fam.escape_routing = "updown";
  fam.build = [](const TopoSpec& spec,
                 std::string* error) -> std::unique_ptr<Topology> {
    FatTreeDesign d;
    if (!design_fattree2(spec, &d, error)) return nullptr;
    return std::make_unique<TwoLevelFatTree>(d.leaves, d.spines, d.terminals,
                                             /*rails=*/1);
  };
  fam.clock = [](const TopoSpec& spec, unsigned vcs, DerivedClock* out,
                 std::string* error) {
    FatTreeDesign d;
    if (!design_fattree2(spec, &d, error)) return false;
    *out = fattree_derived_clock(d.leaves, d.spines, d.terminals,
                                 /*rails=*/1, vcs);
    return true;
  };
  TopologyRegistry::instance().add(std::move(fam));
}

}  // namespace smart
