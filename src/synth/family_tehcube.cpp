// Family "tehcube": a torus-embedded hypercube — a binary hypercube
// whose first two dimensions are widened into k-ary rings, i.e. the
// mixed-radix torus [k, k, 2, 2, ...]. The k x k torus plane embeds
// naturally in the cabinet floor plan while the remaining binary
// dimensions stay short, trading hypercube diameter against the
// paper's wire-length constraints.
//
//   tehcube:k=K,dims=D             (defaults k=4, dims=8 -> 4096 nodes)
//
// K is the ring radix of the two torus dimensions, D the count of
// binary hypercube dimensions; the node count is K^2 * 2^D.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "synth/design.hpp"
#include "synth/families.hpp"
#include "topology/mixed_radix_torus.hpp"
#include "topology/registry.hpp"

namespace smart {

namespace {

bool design_tehcube(const TopoSpec& spec, std::vector<unsigned>* radices,
                    std::string* error) {
  if (!spec.check_keys({"k", "dims"}, error)) return false;
  unsigned k = 4;
  unsigned dims = 8;
  if (!spec.get_unsigned("k", &k, error)) return false;
  if (!spec.get_unsigned("dims", &dims, error)) return false;
  if (k < 2) {
    if (error) *error = "tehcube ring radix k must be >= 2";
    return false;
  }
  if (dims < 1 || dims > 30) {
    if (error) *error = "tehcube binary dims must be in [1, 30]";
    return false;
  }
  if (k > 65536 ||
      (std::uint64_t{k} * k) << dims > (std::uint64_t{1} << 32)) {
    if (error) *error = "tehcube k^2 * 2^dims exceeds the 2^32 node cap";
    return false;
  }
  radices->assign({k, k});
  radices->insert(radices->end(), dims, 2u);
  return true;
}

}  // namespace

void register_tehcube_family() {
  TopologyFamily fam;
  fam.name = "tehcube";
  fam.grammar = "tehcube:k=K,dims=D";
  fam.summary = "torus-embedded hypercube (k x k rings + binary dims)";
  fam.default_routing = "dor";
  fam.routing_keys = {"dor", "escape"};
  fam.escape_routing = "torus-dor";
  fam.build = [](const TopoSpec& spec,
                 std::string* error) -> std::unique_ptr<Topology> {
    std::vector<unsigned> radices;
    if (!design_tehcube(spec, &radices, error)) return nullptr;
    const std::string label =
        "tehcube(k=" + std::to_string(radices[0]) +
        ",dims=" + std::to_string(radices.size() - 2) + ")";
    return std::make_unique<MixedRadixTorus>(std::move(radices), label);
  };
  fam.clock = [](const TopoSpec& spec, unsigned vcs, DerivedClock* out,
                 std::string* error) {
    std::vector<unsigned> radices;
    if (!design_tehcube(spec, &radices, error)) return false;
    if (vcs < 2 || vcs % 2 != 0) {
      if (error) *error = "torus DOR needs an even vcs count >= 2";
      return false;
    }
    *out = torus_derived_clock(radices, vcs);
    return true;
  };
  TopologyRegistry::instance().add(std::move(fam));
}

}  // namespace smart
