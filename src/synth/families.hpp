// Registration of the built-in topology families.
//
// Call ensure_builtin_families() before looking anything up in
// TopologyRegistry — Network::build_topology, the experiment drivers,
// the CLI and the tests all do. The call is idempotent and thread-safe.
//
// Adding a family: write one src/synth/family_<name>.cpp defining a
// register_<name>_family() that fills a TopologyFamily and adds it to
// the registry, declare it below, and call it from
// ensure_builtin_families() in families.cpp.
#pragma once

namespace smart {

/// Registers every built-in family exactly once (thread-safe).
void ensure_builtin_families();

// One registration entry point per generated family, each defined in
// its own src/synth/family_*.cpp.
void register_fattree2_family();  // two-level fat-tree sized by radix
void register_clos_family();      // m x n x r Clos / multistage
void register_torus_family();     // auto-designed mixed-radix torus
void register_tehcube_family();   // torus-embedded hypercube

}  // namespace smart
