// Family "clos": a symmetric three-stage Clos / multistage network in
// the classic m x n x r form — r ingress/egress switches with n
// terminals each and m middle-stage switches of radix r (cf. the
// Graphite interconnect models). Folded along its middle stage it is
// exactly a two-level fat-tree with r leaves, m spines and n terminals
// per leaf, which is how it is built here; m >= n makes it
// rearrangeably non-blocking.
//
//   clos:m=M,n=N,r=R               (defaults m=8, n=8, r=16)
#include <memory>
#include <string>

#include "synth/design.hpp"
#include "synth/families.hpp"
#include "topology/registry.hpp"
#include "topology/two_level_fattree.hpp"

namespace smart {

namespace {

struct ClosDesign {
  unsigned m = 8;   ///< middle-stage (spine) switches
  unsigned n = 8;   ///< terminals per edge switch
  unsigned r = 16;  ///< edge (leaf) switches
};

bool design_clos(const TopoSpec& spec, ClosDesign* out, std::string* error) {
  if (!spec.check_keys({"m", "n", "r"}, error)) return false;
  if (!spec.get_unsigned("m", &out->m, error)) return false;
  if (!spec.get_unsigned("n", &out->n, error)) return false;
  if (!spec.get_unsigned("r", &out->r, error)) return false;
  if (out->r > 65535) {
    if (error) *error = "clos r must be <= 65535 (the spine radix cap)";
    return false;
  }
  const std::uint64_t edge_ports =
      std::uint64_t{out->n} + std::uint64_t{out->m};
  if (edge_ports > 65535) {
    if (error) *error = "clos n + m must be <= 65535 (the edge radix cap)";
    return false;
  }
  if (std::uint64_t{out->n} * out->r > (std::uint64_t{1} << 32)) {
    if (error) *error = "clos n*r nodes exceeds the 2^32 node cap";
    return false;
  }
  return true;
}

}  // namespace

void register_clos_family() {
  TopologyFamily fam;
  fam.name = "clos";
  fam.grammar = "clos:m=M,n=N,r=R";
  fam.summary = "m x n x r Clos multistage network (folded fat-tree form)";
  fam.default_routing = "updown";
  fam.routing_keys = {"updown", "escape"};
  fam.escape_routing = "updown";
  fam.build = [](const TopoSpec& spec,
                 std::string* error) -> std::unique_ptr<Topology> {
    ClosDesign d;
    if (!design_clos(spec, &d, error)) return nullptr;
    return std::make_unique<TwoLevelFatTree>(
        d.r, d.m, d.n, /*rails=*/1,
        "clos(m=" + std::to_string(d.m) + ",n=" + std::to_string(d.n) +
            ",r=" + std::to_string(d.r) + ")");
  };
  fam.clock = [](const TopoSpec& spec, unsigned vcs, DerivedClock* out,
                 std::string* error) {
    ClosDesign d;
    if (!design_clos(spec, &d, error)) return false;
    *out = fattree_derived_clock(d.r, d.m, d.n, /*rails=*/1, vcs);
    return true;
  };
  TopologyRegistry::instance().add(std::move(fam));
}

}  // namespace smart
