#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace smart {

void FaultPlan::add_random_links(unsigned count, std::uint64_t seed,
                                 std::uint64_t start, std::uint64_t repair) {
  if (count == 0) return;
  random_.push_back({count, 0.0, seed, start, repair});
}

void FaultPlan::add_random_fraction(double fraction, std::uint64_t seed,
                                    std::uint64_t start,
                                    std::uint64_t repair) {
  SMART_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                  "fault fraction must lie in [0, 1]");
  if (fraction == 0.0) return;
  random_.push_back({0, fraction, seed, start, repair});
}

std::vector<std::pair<SwitchId, PortId>> switch_links(const Topology& topo) {
  std::vector<std::pair<SwitchId, PortId>> links;
  for (SwitchId s = 0; s < topo.switch_count(); ++s) {
    for (PortId p = 0; p < topo.ports_per_switch(); ++p) {
      const PortPeer peer = topo.port_peer(s, p);
      if (peer.kind != PeerKind::kSwitch) continue;
      // Each bidirectional channel appears once from either side; keep the
      // lexicographically smaller endpoint. (Two parallel channels between
      // the same switch pair — e.g. a 2-ary ring — stay distinct because
      // their port pairs differ.)
      if (std::make_pair(peer.id, peer.port) <
          std::make_pair(s, p)) {
        continue;
      }
      links.emplace_back(s, p);
    }
  }
  return links;
}

std::vector<FaultSpec> FaultPlan::materialize(const Topology& topo) const {
  std::vector<FaultSpec> out;
  for (const FaultSpec& spec : faults_) {
    SMART_CHECK_MSG(spec.sw < topo.switch_count(),
                    "fault names a switch outside the topology");
    if (spec.kind == FaultKind::kLink) {
      SMART_CHECK_MSG(spec.port < topo.ports_per_switch(),
                      "fault names a port outside the switch radix");
      SMART_CHECK_MSG(
          topo.port_peer(spec.sw, spec.port).kind != PeerKind::kUnconnected,
          "fault names an unconnected port");
    }
    SMART_CHECK_MSG(spec.start_cycle < spec.repair_cycle,
                    "fault repair must come after activation");
    out.push_back(spec);
  }
  for (const RandomDirective& directive : random_) {
    auto links = switch_links(topo);
    unsigned count = directive.count;
    if (count == 0) {
      count = static_cast<unsigned>(std::llround(
          directive.fraction * static_cast<double>(links.size())));
    }
    count = std::min<unsigned>(count, static_cast<unsigned>(links.size()));
    // Seeded Fisher-Yates; taking the first `count` entries of the same
    // shuffle makes fault sets nested across increasing counts.
    Rng rng(directive.seed);
    for (std::size_t i = links.size(); i > 1; --i) {
      std::swap(links[i - 1], links[rng.below(i)]);
    }
    for (unsigned i = 0; i < count; ++i) {
      out.push_back({FaultKind::kLink, links[i].first, links[i].second,
                     directive.start, directive.repair});
    }
  }
  return out;
}

namespace {

/// Parses the unsigned integer at *s, advancing it; false on no digits.
bool parse_u64(const char*& s, std::uint64_t& out) {
  char* end = nullptr;
  if (*s < '0' || *s > '9') return false;
  out = std::strtoull(s, &end, 10);
  s = end;
  return true;
}

/// Parses "@START[:REPAIR]" into spec; false on malformed input.
bool parse_window(const char*& s, FaultSpec& spec) {
  if (*s != '@') return false;
  ++s;
  if (!parse_u64(s, spec.start_cycle)) return false;
  if (*s == ':') {
    ++s;
    if (!parse_u64(s, spec.repair_cycle)) return false;
    if (spec.repair_cycle <= spec.start_cycle) return false;
  }
  return true;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const char* s = entry.c_str();
    FaultSpec fault;
    std::uint64_t value = 0;
    if (entry.rfind("link:", 0) == 0) {
      s += 5;
      fault.kind = FaultKind::kLink;
      if (!parse_u64(s, value)) return std::nullopt;
      fault.sw = static_cast<SwitchId>(value);
      if (*s != ':') return std::nullopt;
      ++s;
      if (!parse_u64(s, value)) return std::nullopt;
      fault.port = static_cast<PortId>(value);
    } else if (entry.rfind("switch:", 0) == 0) {
      s += 7;
      fault.kind = FaultKind::kSwitch;
      if (!parse_u64(s, value)) return std::nullopt;
      fault.sw = static_cast<SwitchId>(value);
    } else {
      return std::nullopt;
    }
    if (!parse_window(s, fault) || *s != '\0') return std::nullopt;
    plan.add(fault);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  auto append_entry = [&out](const std::string& entry) {
    if (!out.empty()) out += ',';
    out += entry;
  };
  for (const FaultSpec& f : faults_) {
    std::string entry;
    if (f.kind == FaultKind::kLink) {
      entry.append("link:")
          .append(std::to_string(f.sw))
          .append(":")
          .append(std::to_string(f.port));
    } else {
      entry.append("switch:").append(std::to_string(f.sw));
    }
    entry.append("@").append(std::to_string(f.start_cycle));
    if (!f.permanent()) {
      entry.append(":").append(std::to_string(f.repair_cycle));
    }
    append_entry(entry);
  }
  for (const RandomDirective& d : random_) {
    std::string entry("rand:");
    entry
        .append(d.count > 0 ? std::to_string(d.count)
                            : std::to_string(d.fraction))
        .append("@")
        .append(std::to_string(d.start));
    append_entry(entry);
  }
  return out;
}

FaultState::FaultState(const Topology& topo, const FaultPlan& plan)
    : topo_(&topo),
      schedule_(plan.materialize(topo)),
      active_(schedule_.size(), 0),
      ports_(topo.ports_per_switch()),
      port_ok_(topo.switch_count() * topo.ports_per_switch(), 1),
      switch_ok_(topo.switch_count(), 1) {
  events_.reserve(2 * schedule_.size());
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const FaultSpec& spec = schedule_[i];
    // The engine's first cycle is 1; earlier activations clamp to it.
    events_.push_back({std::max<std::uint64_t>(spec.start_cycle, 1), i, true});
    if (!spec.permanent()) {
      events_.push_back(
          {std::max<std::uint64_t>(spec.repair_cycle, 1), i, false});
    }
  }
  std::sort(events_.begin(), events_.end(),
            [](const ScheduledEvent& a, const ScheduledEvent& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              if (a.fault_index != b.fault_index) {
                return a.fault_index < b.fault_index;
              }
              return a.activated && !b.activated;  // activate before repair
            });
}

std::vector<FaultEvent> FaultState::advance(std::uint64_t cycle) {
  std::vector<FaultEvent> fired;
  while (next_event_ < events_.size() && events_[next_event_].cycle <= cycle) {
    const ScheduledEvent& ev = events_[next_event_];
    ++next_event_;
    if (active_[ev.fault_index] == (ev.activated ? 1 : 0)) continue;
    active_[ev.fault_index] = ev.activated ? 1 : 0;
    if (ev.activated) {
      ++active_count_;
    } else {
      --active_count_;
    }
    fired.push_back({ev.cycle, ev.fault_index, ev.activated});
  }
  if (!fired.empty()) rebuild_masks();
  return fired;
}

void FaultState::rebuild_masks() {
  std::fill(port_ok_.begin(), port_ok_.end(), 1);
  std::fill(switch_ok_.begin(), switch_ok_.end(), 1);
  auto kill_port = [this](SwitchId s, PortId p) {
    port_ok_[static_cast<std::size_t>(s) * ports_ + p] = 0;
  };
  auto kill_link = [this, &kill_port](SwitchId s, PortId p) {
    kill_port(s, p);
    const PortPeer peer = topo_->port_peer(s, p);
    if (peer.kind == PeerKind::kSwitch) kill_port(peer.id, peer.port);
  };
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    if (active_[i] == 0) continue;
    const FaultSpec& spec = schedule_[i];
    if (spec.kind == FaultKind::kSwitch) {
      switch_ok_[spec.sw] = 0;
      for (PortId p = 0; p < ports_; ++p) kill_link(spec.sw, p);
    } else {
      kill_link(spec.sw, spec.port);
    }
  }
}

}  // namespace smart
