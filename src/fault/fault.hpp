// Fault injection: deterministic schedules of component failures.
//
// A FaultPlan describes WHICH components fail and WHEN: permanent or
// transient link and switch faults, either listed explicitly or drawn
// deterministically from a seed (same seed + same topology => same faulted
// links, and the set for N faults is a superset of the set for N-1, so
// degradation sweeps are nested). A FaultState resolves the plan against a
// concrete topology and answers the engine's per-cycle health queries.
//
// Semantics (docs/MODEL.md §8):
//  * A fault scheduled for cycle c takes effect before any phase of cycle
//    c (activation cycles below 1 clamp to 1, the first simulated cycle);
//    a transient fault with repair cycle r is active during [c, r).
//  * A faulted LINK stops transmitting in both directions. Flits already
//    buffered in its output lanes stay put and the lane's credits freeze;
//    transmission resumes on repair with credit state intact.
//  * A faulted SWITCH faults all its ports (links and terminal interface)
//    and freezes its routing engine and crossbar.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace smart {

enum class FaultKind : std::uint8_t { kLink, kSwitch };

/// Sentinel repair cycle: the fault is never repaired.
inline constexpr std::uint64_t kFaultPermanent = ~0ULL;

/// One scheduled component failure. Link faults identify the link by either
/// endpoint: (sw, port) faults the whole bidirectional physical channel.
struct FaultSpec {
  FaultKind kind = FaultKind::kLink;
  SwitchId sw = 0;
  PortId port = 0;  ///< meaningful for link faults only
  std::uint64_t start_cycle = 0;
  std::uint64_t repair_cycle = kFaultPermanent;

  [[nodiscard]] bool permanent() const noexcept {
    return repair_cycle == kFaultPermanent;
  }
  [[nodiscard]] bool operator==(const FaultSpec&) const = default;
};

/// One activation or repair that fired while advancing the FaultState.
struct FaultEvent {
  std::uint64_t cycle = 0;
  std::size_t fault_index = 0;  ///< into FaultState::schedule()
  bool activated = false;       ///< false = repaired
};

/// A deterministic schedule of faults. Topology-independent until
/// materialize(): explicit faults are stored as given; random directives
/// are resolved against the topology's switch-to-switch links.
class FaultPlan {
 public:
  void add(const FaultSpec& spec) { faults_.push_back(spec); }
  void add_link(SwitchId sw, PortId port, std::uint64_t start,
                std::uint64_t repair = kFaultPermanent) {
    faults_.push_back({FaultKind::kLink, sw, port, start, repair});
  }
  void add_switch(SwitchId sw, std::uint64_t start,
                  std::uint64_t repair = kFaultPermanent) {
    faults_.push_back({FaultKind::kSwitch, sw, 0, start, repair});
  }

  /// Schedules `count` distinct switch-to-switch link faults chosen by a
  /// seeded shuffle of the topology's links (resolved in materialize()).
  /// The same seed yields nested sets across increasing counts.
  void add_random_links(unsigned count, std::uint64_t seed,
                        std::uint64_t start,
                        std::uint64_t repair = kFaultPermanent);

  /// Like add_random_links, but as a fraction (0..1] of the topology's
  /// switch-to-switch links, rounded to the nearest whole link.
  void add_random_fraction(double fraction, std::uint64_t seed,
                           std::uint64_t start,
                           std::uint64_t repair = kFaultPermanent);

  [[nodiscard]] bool empty() const noexcept {
    return faults_.empty() && random_.empty();
  }
  [[nodiscard]] const std::vector<FaultSpec>& explicit_faults() const noexcept {
    return faults_;
  }

  /// Resolves the plan against a topology: validates explicit ids and
  /// expands random directives into concrete link faults. Deterministic.
  [[nodiscard]] std::vector<FaultSpec> materialize(const Topology& topo) const;

  /// Parses a comma-separated spec, e.g. "link:5:2@3000,switch:7@0:9000".
  /// Entries: link:SW:PORT@START[:REPAIR] | switch:SW@START[:REPAIR].
  /// Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<FaultPlan> parse(const std::string& spec);

  /// Inverse of parse() for the explicit faults (random directives are
  /// rendered as rand:COUNT@START entries, informational only).
  [[nodiscard]] std::string to_string() const;

 private:
  struct RandomDirective {
    unsigned count = 0;      ///< used when > 0
    double fraction = 0.0;   ///< used when count == 0
    std::uint64_t seed = 0;
    std::uint64_t start = 0;
    std::uint64_t repair = kFaultPermanent;
  };

  std::vector<FaultSpec> faults_;
  std::vector<RandomDirective> random_;
};

/// Canonical enumeration of a topology's bidirectional switch-to-switch
/// links, each listed once from its lexicographically smaller (switch,
/// port) endpoint. The order is deterministic (row-major scan).
[[nodiscard]] std::vector<std::pair<SwitchId, PortId>> switch_links(
    const Topology& topo);

/// The engine-facing view of a FaultPlan: advances through the schedule one
/// cycle at a time and answers O(1) health queries against precomputed
/// masks (rebuilt only on the rare activation/repair events).
class FaultState {
 public:
  FaultState(const Topology& topo, const FaultPlan& plan);

  /// Applies every activation and repair scheduled at or before `cycle`
  /// that has not fired yet; returns the events that fired. Must be called
  /// with non-decreasing cycles (the engine calls it once per cycle).
  std::vector<FaultEvent> advance(std::uint64_t cycle);

  [[nodiscard]] const std::vector<FaultSpec>& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] bool configured() const noexcept { return !schedule_.empty(); }
  [[nodiscard]] unsigned active_faults() const noexcept {
    return active_count_;
  }
  [[nodiscard]] bool any_active() const noexcept { return active_count_ > 0; }

  /// False when switch s is currently faulted.
  [[nodiscard]] bool switch_ok(SwitchId s) const {
    return switch_ok_[s] != 0;
  }
  /// False when the physical channel behind port p of switch s cannot
  /// carry flits: the link itself is faulted, or either endpoint switch is.
  [[nodiscard]] bool link_ok(SwitchId s, PortId p) const {
    return port_ok_[static_cast<std::size_t>(s) * ports_ + p] != 0;
  }

 private:
  struct ScheduledEvent {
    std::uint64_t cycle = 0;
    std::size_t fault_index = 0;
    bool activated = false;
  };

  void rebuild_masks();

  const Topology* topo_;
  std::vector<FaultSpec> schedule_;
  std::vector<ScheduledEvent> events_;  ///< sorted by cycle
  std::size_t next_event_ = 0;
  std::vector<std::uint8_t> active_;    ///< per schedule entry
  unsigned active_count_ = 0;
  std::size_t ports_ = 0;
  std::vector<std::uint8_t> port_ok_;   ///< switch-major [s * ports_ + p]
  std::vector<std::uint8_t> switch_ok_;
};

}  // namespace smart
