// Abstract interconnection-network topology.
//
// A topology describes the wiring of a network: a set of routing switches
// with bidirectional ports, some ports connected to peer switch ports, some
// to processing nodes (terminals), and some left unconnected (the external
// connections at the root of a fat-tree). The router engine consumes this
// wiring; routing algorithms additionally use the concrete subclasses'
// coordinate queries (see kary_ncube.hpp / kary_ntree.hpp).
//
// Distance conventions: min_hops counts physical network channels traversed
// between the source and destination processing nodes, *including* terminal
// links where those are real network links (indirect topologies such as the
// fat-tree). For direct topologies the processor/router interface is not a
// network link and is not counted. This matches the paper's fat-tree
// distance (eq. 5: distances n+2i on a k-ary n-tree).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace smart {

using NodeId = std::uint32_t;    ///< processing node (terminal)
using SwitchId = std::uint32_t;  ///< routing switch
using PortId = std::uint32_t;    ///< port index within a switch

/// What sits on the far side of a switch port.
enum class PeerKind : std::uint8_t {
  kSwitch,        ///< another switch port
  kTerminal,      ///< a processing node
  kUnconnected,   ///< e.g. root-level up links of a fat-tree
};

/// Far end of a switch port.
struct PortPeer {
  PeerKind kind = PeerKind::kUnconnected;
  std::uint32_t id = 0;    ///< SwitchId or NodeId depending on kind
  PortId port = 0;         ///< peer's port index (kSwitch only)
};

/// Where a processing node plugs into the switch fabric.
struct Attachment {
  SwitchId sw = 0;
  PortId port = 0;
};

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual std::size_t node_count() const = 0;
  [[nodiscard]] virtual std::size_t switch_count() const = 0;

  /// Ports per switch (uniform across switches for both families here).
  [[nodiscard]] virtual std::size_t ports_per_switch() const = 0;

  /// Wiring of port p of switch s.
  [[nodiscard]] virtual PortPeer port_peer(SwitchId s, PortId p) const = 0;

  /// Switch/port the given processing node attaches to.
  [[nodiscard]] virtual Attachment terminal_attachment(NodeId node) const = 0;

  /// Minimal channel distance between two processing nodes (see header
  /// comment for the counting convention).
  [[nodiscard]] virtual unsigned min_hops(NodeId src, NodeId dst) const = 0;

  /// Maximum of min_hops over all node pairs.
  [[nodiscard]] virtual unsigned diameter() const = 0;

  /// Mean of min_hops over all ordered pairs with src != dst.
  [[nodiscard]] virtual double average_distance() const;

  /// Unidirectional channels crossing the network bisection, counted in ONE
  /// direction (the other direction contributes the same number).
  [[nodiscard]] virtual std::size_t bisection_channels() const = 0;

  /// True for direct networks (router co-located with the node; injection
  /// and ejection use a dedicated processor/router interface instead of a
  /// network link).
  [[nodiscard]] virtual bool is_direct() const = 0;

  /// Mean node-to-node distance (channels) when every node p sends to
  /// destination_of[p]; fixed points contribute 0. For the k-ary n-tree
  /// under transpose / bit reversal this is the paper's d_m (eq. 5).
  [[nodiscard]] double average_distance_under_permutation(
      const std::vector<NodeId>& destination_of) const;

  /// Theoretical per-node injection upper bound under uniform traffic, in
  /// flits/node/cycle (paper §5). Direct, bisection-limited networks:
  /// 4·bisection_channels()/N. Indirect full-bandwidth networks: the
  /// terminal link rate, 1 flit/node/cycle.
  [[nodiscard]] virtual double uniform_capacity_flits_per_node_cycle() const;
};

}  // namespace smart
