// k-ary n-cube (torus) and k-ary n-mesh topology.
//
// k^n nodes arranged in an n-dimensional grid with k nodes per dimension and
// wrap-around links (paper §3). This is a *direct* network: every switch is
// co-located with a processing node and has 2n bidirectional network ports
// plus a local processor interface. The binary hypercube (k = 2) and the
// two-dimensional torus (n = 2) are special cases; the paper's evaluation
// uses the 16-ary 2-cube. Disabling the wrap-around links yields the mesh
// used by machines like the Intel Delta and Paragon; the boundary ports of
// a mesh are unconnected and the dateline machinery is never engaged.
//
// Coordinates: coordinate c_d of switch s in dimension d is
// (s / k^d) mod k, i.e. dimension 0 is the least-significant digit.
// Port numbering: port 2d goes in the +1 direction of dimension d, port
// 2d + 1 in the -1 direction; port 2n is the local processor interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace smart {

class KaryNCube final : public Topology {
 public:
  /// Builds a k-ary n-cube; requires k >= 2 and n >= 1 and k^n <= 2^32.
  /// `wraparound` = false builds the open-boundary mesh instead.
  explicit KaryNCube(unsigned k, unsigned n, bool wraparound = true);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t node_count() const override { return nodes_; }
  [[nodiscard]] std::size_t switch_count() const override { return nodes_; }
  [[nodiscard]] std::size_t ports_per_switch() const override {
    return 2 * n_ + 1;  // 2n network ports + local interface
  }
  [[nodiscard]] PortPeer port_peer(SwitchId s, PortId p) const override;
  [[nodiscard]] Attachment terminal_attachment(NodeId node) const override;
  [[nodiscard]] unsigned min_hops(NodeId src, NodeId dst) const override;
  [[nodiscard]] unsigned diameter() const override;
  [[nodiscard]] std::size_t bisection_channels() const override;
  [[nodiscard]] bool is_direct() const override { return true; }

  [[nodiscard]] unsigned radix() const noexcept { return k_; }
  [[nodiscard]] unsigned dimensions() const noexcept { return n_; }
  [[nodiscard]] bool wraparound() const noexcept { return wraparound_; }

  /// Index of the local processor-interface port.
  [[nodiscard]] PortId local_port() const noexcept { return 2 * n_; }

  /// Coordinate of switch s in dimension d.
  [[nodiscard]] unsigned coord(SwitchId s, unsigned d) const;

  /// Switch at the given coordinates (dimension 0 first).
  [[nodiscard]] SwitchId switch_at(const std::vector<unsigned>& coords) const;

  /// Neighbor of s one step along dimension d (+1 or -1, with wrap).
  [[nodiscard]] SwitchId neighbor(SwitchId s, unsigned d, bool plus) const;

  /// Network port for direction (d, +/-).
  [[nodiscard]] static constexpr PortId port_of(unsigned d, bool plus) noexcept {
    return 2 * d + (plus ? 0U : 1U);
  }
  [[nodiscard]] static constexpr unsigned dim_of_port(PortId p) noexcept {
    return p / 2;
  }
  [[nodiscard]] static constexpr bool is_plus_port(PortId p) noexcept {
    return (p % 2) == 0;
  }

  /// Hops from src to dst along dimension d going in the +1 direction
  /// (UINT_MAX on a mesh when the + direction cannot reach dst).
  [[nodiscard]] unsigned dist_plus(SwitchId src, SwitchId dst, unsigned d) const;

  /// Minimal ring distance along dimension d.
  [[nodiscard]] unsigned ring_distance(SwitchId src, SwitchId dst, unsigned d) const;

  /// True iff stepping from s along (d, +/-) crosses the wrap-around link
  /// (the dateline used by the deterministic algorithm's virtual networks).
  [[nodiscard]] bool crosses_wraparound(SwitchId s, unsigned d, bool plus) const;

  /// True iff moving along (d, +/-) from s lies on SOME minimal path to dst
  /// (false when the coordinates already agree in dimension d). On a mesh
  /// only the direct direction qualifies; on a torus both do when the two
  /// arcs tie at k/2.
  [[nodiscard]] bool direction_minimal(SwitchId s, NodeId dst, unsigned d,
                                       bool plus) const;

  /// The unique dimension-order direction along d (ties on a torus resolve
  /// to +); requires the coordinates to differ in dimension d.
  [[nodiscard]] bool dor_direction(SwitchId s, NodeId dst, unsigned d) const;

  /// Analytic mean ring distance per dimension under uniform traffic over
  /// all offsets including zero: k/4 for even k, (k^2-1)/(4k) for odd k.
  [[nodiscard]] static double mean_ring_distance(unsigned k) noexcept;

 private:
  unsigned k_;
  unsigned n_;
  bool wraparound_;
  std::size_t nodes_;
  std::vector<std::uint64_t> stride_;  ///< k^d for each dimension d
};

}  // namespace smart
