// Two-level fat-tree / folded-Clos fabric with director-class spines.
//
// L leaf switches, each with n terminal ports and c parallel links (rails)
// to every one of S spine switches; a spine is an L*c-port crossbar. This
// one class covers two generated families:
//
//   - the radix-driven two-level fat-tree of Solnushkin's automated design
//     (arXiv:1301.6179): leaves are fixed-radix edge switches, spines are
//     modular director switches sized to L*c ports;
//   - the Clos/multistage network in Dally's m x n x r notation
//     (SNIPPETS.md Snippet 2): m spines, r leaves, n terminals per leaf
//     maps to S = m, L = r, c = 1.
//
// This is an *indirect* network (like the k-ary n-tree): terminal links
// are network links and count toward the hop distance — 2 hops within a
// leaf, 4 via a spine. Up*/down* routing is deadlock-free with any number
// of virtual channels: every path ascends once and descends once.
//
// Port numbering: leaf l (switch id l < L) uses ports [0, n) for its
// terminals (node l*n + t on port t) and port n + s*c + j for rail j to
// spine s; spine s (switch id L + s) uses port l*c + j for rail j to leaf
// l. ports_per_switch() is the maximum of the two shapes; out-of-range
// ports report kUnconnected and carry no lanes.
#pragma once

#include <cstdint>
#include <string>

#include "topology/topology.hpp"
#include "util/check.hpp"

namespace smart {

class TwoLevelFatTree final : public Topology {
 public:
  /// Builds the fabric; requires leaves, spines, terminals_per_leaf and
  /// rails >= 1 and switch radices within the engine's 65535-port bound.
  /// `label` overrides the generated name() (the synthesis families stamp
  /// their spec string here).
  TwoLevelFatTree(std::size_t leaves, std::size_t spines,
                  unsigned terminals_per_leaf, unsigned rails,
                  std::string label = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t node_count() const override {
    return leaves_ * terminals_;
  }
  [[nodiscard]] std::size_t switch_count() const override {
    return leaves_ + spines_;
  }
  [[nodiscard]] std::size_t ports_per_switch() const override {
    return max_ports_;
  }
  [[nodiscard]] PortPeer port_peer(SwitchId s, PortId p) const override;
  [[nodiscard]] Attachment terminal_attachment(NodeId node) const override;
  [[nodiscard]] unsigned min_hops(NodeId src, NodeId dst) const override;
  [[nodiscard]] unsigned diameter() const override;
  /// Exact analytic mean (the O(N^2) default is unusable at 4K+ nodes).
  [[nodiscard]] double average_distance() const override;
  [[nodiscard]] std::size_t bisection_channels() const override;
  [[nodiscard]] bool is_direct() const override { return false; }
  /// min(1, S*c/n): with fewer up-rails than terminals per leaf the
  /// fabric is oversubscribed and uniform traffic saturates at the
  /// leaf-to-spine stage, not the terminal link.
  [[nodiscard]] double uniform_capacity_flits_per_node_cycle() const override;

  [[nodiscard]] std::size_t leaves() const noexcept { return leaves_; }
  [[nodiscard]] std::size_t spines() const noexcept { return spines_; }
  [[nodiscard]] unsigned terminals_per_leaf() const noexcept {
    return terminals_;
  }
  [[nodiscard]] unsigned rails() const noexcept { return rails_; }

  [[nodiscard]] bool is_spine(SwitchId s) const noexcept {
    return s >= leaves_;
  }
  [[nodiscard]] SwitchId leaf_of(NodeId node) const noexcept {
    return static_cast<SwitchId>(node / terminals_);
  }
  /// Leaf port of the given terminal.
  [[nodiscard]] PortId terminal_port(NodeId node) const noexcept {
    return static_cast<PortId>(node % terminals_);
  }
  /// First up port of a leaf; up port n + s*c + j is rail j to spine s.
  [[nodiscard]] PortId up_port_base() const noexcept { return terminals_; }
  [[nodiscard]] unsigned up_port_count() const noexcept {
    return static_cast<unsigned>(spines_) * rails_;
  }
  /// Spine port for rail j down to leaf l.
  [[nodiscard]] PortId down_port(SwitchId leaf, unsigned rail) const noexcept {
    return static_cast<PortId>(leaf * rails_ + rail);
  }

 private:
  std::size_t leaves_;
  std::size_t spines_;
  unsigned terminals_;
  unsigned rails_;
  std::size_t max_ports_;
  std::string label_;
};

}  // namespace smart
