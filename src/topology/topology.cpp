#include "topology/topology.hpp"

#include "util/check.hpp"

namespace smart {

double Topology::average_distance() const {
  const std::size_t n = node_count();
  SMART_CHECK(n > 1);
  std::uint64_t total = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      total += min_hops(s, d);
    }
  }
  const auto pairs = static_cast<double>(n) * static_cast<double>(n - 1);
  return static_cast<double>(total) / pairs;
}

double Topology::average_distance_under_permutation(
    const std::vector<NodeId>& destination_of) const {
  SMART_CHECK(destination_of.size() == node_count());
  std::uint64_t total = 0;
  for (NodeId p = 0; p < node_count(); ++p) {
    total += min_hops(p, destination_of[p]);
  }
  return static_cast<double>(total) / static_cast<double>(node_count());
}

double Topology::uniform_capacity_flits_per_node_cycle() const {
  if (is_direct()) {
    // Bisection argument (paper §5 footnote): under uniform traffic each
    // half sends half of its load across the cut in one direction, so
    // N/2 · lambda/2 <= B  =>  lambda <= 4B/N with B counted one-way.
    // Small radices are injection-limited instead: never above the
    // terminal link rate of 1 flit/cycle.
    const double bisection_bound =
        4.0 * static_cast<double>(bisection_channels()) /
        static_cast<double>(node_count());
    return bisection_bound < 1.0 ? bisection_bound : 1.0;
  }
  // Fat-trees are not bisection limited; the bound is the terminal link.
  return 1.0;
}

}  // namespace smart
