// String-keyed topology-family registry.
//
// A fabric family is a named plugin: a spec grammar ("clos:m=8,n=8,r=16"),
// a builder that turns a parsed spec into a Topology, a default routing
// key, and (for generated families) a derived-clock callback that sizes
// the router cycle from the family's channel width and physical wire
// lengths per the extended Chien model (src/cost/chien.hpp). The paper's
// hand-built families (cube, mesh, tree) register here too, so every
// consumer — Network assembly, the CLI, the experiment drivers — goes
// through one lookup path, and adding a family is one source file plus a
// registration call (src/synth/families.cpp).
//
// This layer stays cost-free (smart_cost links smart_topology, not the
// reverse): DerivedClock is a plain value type; the callbacks that fill
// it live in src/synth/, which links both.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topology/topology.hpp"

namespace smart {

/// A parsed --topology spec: family name plus key=value parameters, e.g.
/// "clos:m=8,n=8,r=16". The legacy knobs (k, n, wraparound) are threaded
/// from NetworkSpec for the paper families, which predate the param
/// syntax; explicit params override them.
struct TopoSpec {
  std::string family;
  std::vector<std::pair<std::string, std::string>> params;
  unsigned k = 16;
  unsigned n = 2;
  bool wraparound = true;

  /// The value of `key`, or null when absent.
  [[nodiscard]] const std::string* find(const std::string& key) const;

  /// Overwrites *out with params[key] parsed as an integer in
  /// [1, 2^32-1]; leaves *out untouched when the key is absent. Returns
  /// false (message in *error) on a malformed or out-of-range value.
  bool get_unsigned(const std::string& key, unsigned* out,
                    std::string* error) const;

  /// Rejects parameters outside `allowed` — typos must error, not
  /// silently fall back to defaults. Returns false with *error listing
  /// the offending key and the allowed set.
  bool check_keys(std::initializer_list<const char*> allowed,
                  std::string* error) const;
};

/// Parses "family" or "family:key=val,key=val" into *spec. Returns false
/// (message in *error) on an empty family name or a malformed/duplicate
/// key=value pair. Does not check that the family exists — callers look
/// it up in the registry to get a usage listing on miss.
bool parse_topology_spec(const std::string& text, TopoSpec* spec,
                         std::string* error);

/// Router clock of a generated fabric, derived from the family's routing
/// freedom, port count, channel width and modeled wire length by the
/// extended Chien model. Plain values only — this header must not depend
/// on src/cost/.
struct DerivedClock {
  double routing_ns = 0.0;
  double crossbar_ns = 0.0;
  double link_ns = 0.0;
  double wire_m = 0.0;    ///< modeled longest wire driving link_ns
  unsigned freedom = 0;   ///< routing freedom F behind routing_ns
  unsigned ports = 0;     ///< crossbar size P behind crossbar_ns

  /// The paper's rule: the slowest pipeline stage sets the cycle.
  [[nodiscard]] double clock_ns() const noexcept {
    double clock = routing_ns;
    if (crossbar_ns > clock) clock = crossbar_ns;
    if (link_ns > clock) clock = link_ns;
    return clock;
  }
};

struct TopologyFamily {
  std::string name;
  /// Spec grammar shown in usage listings, e.g. "clos:m=M,n=N,r=R".
  std::string grammar;
  /// One-line description for usage listings.
  std::string summary;
  /// Routing key the CLI defaults to for this family ("det", "duato",
  /// "tree", "dor", "updown", "escape").
  std::string default_routing;
  /// Every routing key whose deadlock-freedom proof applies to this
  /// family; the CLI rejects --routing values outside this set.
  std::vector<std::string> routing_keys;
  /// Escape-provider key for the composable escape-adaptive core
  /// (resolved by make_escape_routing in src/routing/escape.hpp); empty
  /// when the family supplies no deterministic escape subnetwork. A
  /// string, not a factory, so this layer stays routing-free.
  std::string escape_routing;
  /// Builds the fabric, or returns null with a message in *error on an
  /// invalid spec (unknown param, infeasible size, ...).
  std::function<std::unique_ptr<Topology>(const TopoSpec&,
                                          std::string* error)> build;
  /// Fills the family's derived clock for a spec (null for the paper
  /// families, whose clocks come from the fixed normalization in
  /// src/cost/chien.hpp). `vcs` is the configured virtual-channel count.
  std::function<bool(const TopoSpec&, unsigned vcs, DerivedClock* out,
                     std::string* error)> clock;
};

class TopologyRegistry {
 public:
  static TopologyRegistry& instance();

  /// Registers (or replaces, by name) a family.
  void add(TopologyFamily family);

  /// The family registered under `name`, or null.
  [[nodiscard]] const TopologyFamily* find(const std::string& name) const;

  /// Registered family names, registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Multi-line usage listing (one "name  grammar — summary" per family)
  /// for unknown-family error messages.
  [[nodiscard]] std::string usage() const;

  /// Multi-line per-family listing of the valid --routing keys (one
  /// "name: key, key, ... (default key)" per family) for unknown or
  /// incompatible --routing error messages.
  [[nodiscard]] std::string routing_usage() const;

  /// Looks up spec.family and builds it; null with a message in *error
  /// (including the usage listing for unknown families).
  [[nodiscard]] std::unique_ptr<Topology> build(const TopoSpec& spec,
                                                std::string* error) const;

 private:
  std::vector<TopologyFamily> families_;
};

}  // namespace smart
