#include "topology/mixed_radix_torus.hpp"

#include <algorithm>

#include "topology/kary_ncube.hpp"
#include "util/check.hpp"

namespace smart {

MixedRadixTorus::MixedRadixTorus(std::vector<unsigned> radices,
                                 std::string label)
    : radices_(std::move(radices)), label_(std::move(label)) {
  SMART_CHECK_MSG(!radices_.empty(), "mixed-radix torus requires >= 1 dimension");
  // The dateline state is one bit per dimension in Packet::wrap_mask.
  SMART_CHECK_MSG(radices_.size() <= 32,
                  "mixed-radix torus supports at most 32 dimensions");
  std::uint64_t count = 1;
  stride_.reserve(radices_.size());
  for (const unsigned k : radices_) {
    SMART_CHECK_MSG(k >= 2, "mixed-radix torus requires every radix >= 2");
    stride_.push_back(count);
    SMART_CHECK_MSG(count <= (1ULL << 32) / k,
                    "mixed-radix torus exceeds 2^32 nodes");
    count *= k;
  }
  nodes_ = static_cast<std::size_t>(count);
}

std::string MixedRadixTorus::name() const {
  if (!label_.empty()) return label_;
  std::string out = "torus(";
  for (unsigned d = 0; d < dims(); ++d) {
    if (d != 0) out += "x";
    out += std::to_string(radices_[d]);
  }
  return out + ")";
}

unsigned MixedRadixTorus::coord(SwitchId s, unsigned d) const {
  SMART_DCHECK(d < dims());
  return static_cast<unsigned>((s / stride_[d]) % radices_[d]);
}

SwitchId MixedRadixTorus::switch_at(
    const std::vector<unsigned>& coords) const {
  SMART_CHECK(coords.size() == radices_.size());
  std::uint64_t s = 0;
  for (unsigned d = 0; d < dims(); ++d) {
    SMART_CHECK(coords[d] < radices_[d]);
    s += coords[d] * stride_[d];
  }
  return static_cast<SwitchId>(s);
}

SwitchId MixedRadixTorus::neighbor(SwitchId s, unsigned d, bool plus) const {
  SMART_DCHECK(d < dims());
  const unsigned k = radices_[d];
  const unsigned c = coord(s, d);
  const unsigned nc = plus ? (c + 1) % k : (c + k - 1) % k;
  const std::uint64_t base = s - c * stride_[d];
  return static_cast<SwitchId>(base + nc * stride_[d]);
}

PortPeer MixedRadixTorus::port_peer(SwitchId s, PortId p) const {
  SMART_DCHECK(s < nodes_);
  if (p == local_port()) {
    return PortPeer{PeerKind::kTerminal, s, 0};
  }
  SMART_CHECK(p < 2 * dims());
  const unsigned d = dim_of_port(p);
  const bool plus = is_plus_port(p);
  const SwitchId peer = neighbor(s, d, plus);
  // The peer receives us on its opposite-direction port of the same
  // dimension. For radix-2 dimensions + and - reach the same switch; the
  // pairing (our + to its -, our - to its +) keeps the wiring symmetric
  // and yields two parallel channels per hypercube edge.
  return PortPeer{PeerKind::kSwitch, peer, port_of(d, !plus)};
}

Attachment MixedRadixTorus::terminal_attachment(NodeId node) const {
  SMART_DCHECK(node < nodes_);
  return Attachment{node, local_port()};
}

unsigned MixedRadixTorus::ring_distance(SwitchId src, SwitchId dst,
                                        unsigned d) const {
  const unsigned k = radices_[d];
  const unsigned cs = coord(src, d);
  const unsigned cd = coord(dst, d);
  const unsigned forward = (cd + k - cs) % k;
  return std::min(forward, k - forward);
}

unsigned MixedRadixTorus::min_hops(NodeId src, NodeId dst) const {
  unsigned hops = 0;
  for (unsigned d = 0; d < dims(); ++d) hops += ring_distance(src, dst, d);
  return hops;
}

unsigned MixedRadixTorus::diameter() const {
  unsigned hops = 0;
  for (const unsigned k : radices_) hops += k / 2;
  return hops;
}

double MixedRadixTorus::average_distance() const {
  // Dimensions are independent, so the mean over all ordered pairs
  // (including src == dst, which contributes 0) is the sum of the
  // per-dimension mean ring distances; rescale to exclude the N equal
  // pairs.
  double mean_all = 0.0;
  for (const unsigned k : radices_) {
    mean_all += KaryNCube::mean_ring_distance(k);
  }
  const auto n = static_cast<double>(nodes_);
  return mean_all * n / (n - 1.0);
}

std::size_t MixedRadixTorus::bisection_channels() const {
  // Cutting dimension d in half severs every one of the N/k_d rings at
  // two points; the worst (smallest) cut is across the largest radix.
  // Radix-2 dimensions have two parallel channels per edge, so the
  // 2N/k_d count holds there too.
  std::size_t best = 0;
  for (const unsigned k : radices_) {
    const std::size_t channels = 2 * nodes_ / k;
    if (best == 0 || channels < best) best = channels;
  }
  return best;
}

double MixedRadixTorus::uniform_capacity_flits_per_node_cycle() const {
  const double bisection_bound =
      4.0 * static_cast<double>(bisection_channels()) /
      static_cast<double>(nodes_);
  return bisection_bound < 1.0 ? bisection_bound : 1.0;
}

bool MixedRadixTorus::crosses_wraparound(SwitchId s, unsigned d,
                                         bool plus) const {
  const unsigned c = coord(s, d);
  return plus ? (c == radices_[d] - 1) : (c == 0);
}

bool MixedRadixTorus::direction_minimal(SwitchId s, NodeId dst, unsigned d,
                                        bool plus) const {
  const unsigned k = radices_[d];
  const unsigned cs = coord(s, d);
  const unsigned cd = coord(dst, d);
  if (cs == cd) return false;
  const unsigned forward = (cd + k - cs) % k;
  const unsigned dist = plus ? forward : k - forward;
  return dist <= k - dist;
}

bool MixedRadixTorus::dor_direction(SwitchId s, NodeId dst, unsigned d) const {
  const unsigned k = radices_[d];
  const unsigned cs = coord(s, d);
  const unsigned cd = coord(dst, d);
  SMART_DCHECK(cs != cd);
  const unsigned forward = (cd + k - cs) % k;
  return forward <= k - forward;  // ties resolve to +
}

}  // namespace smart
