#include "topology/registry.hpp"

#include <cstdint>

namespace smart {

const std::string* TopoSpec::find(const std::string& key) const {
  for (const auto& [name, value] : params) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool TopoSpec::get_unsigned(const std::string& key, unsigned* out,
                            std::string* error) const {
  const std::string* text = find(key);
  if (text == nullptr) return true;
  std::uint64_t value = 0;
  bool ok = !text->empty();
  for (const char c : *text) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xffffffffULL) {
      ok = false;
      break;
    }
  }
  if (!ok || value == 0) {
    if (error != nullptr) {
      *error = "topology param " + key + "=" + *text +
               ": expected an integer in [1, 4294967295]";
    }
    return false;
  }
  *out = static_cast<unsigned>(value);
  return true;
}

bool TopoSpec::check_keys(std::initializer_list<const char*> allowed,
                          std::string* error) const {
  for (const auto& [name, value] : params) {
    bool known = false;
    for (const char* key : allowed) {
      if (name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      if (error != nullptr) {
        *error = "unknown param '" + name + "' for topology family '" +
                 family + "' (accepted:";
        for (const char* key : allowed) *error += std::string(" ") + key;
        *error += ")";
      }
      return false;
    }
  }
  return true;
}

bool parse_topology_spec(const std::string& text, TopoSpec* spec,
                         std::string* error) {
  spec->params.clear();
  const std::size_t colon = text.find(':');
  spec->family = text.substr(0, colon);
  if (spec->family.empty()) {
    if (error != nullptr) {
      *error = "topology spec '" + text + "': empty family name";
    }
    return false;
  }
  if (colon == std::string::npos) return true;

  std::size_t pos = colon + 1;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      if (error != nullptr) {
        *error = "topology spec '" + text + "': malformed param '" + item +
                 "' (expected key=value)";
      }
      return false;
    }
    const std::string key = item.substr(0, eq);
    if (spec->find(key) != nullptr) {
      if (error != nullptr) {
        *error = "topology spec '" + text + "': duplicate param '" + key + "'";
      }
      return false;
    }
    spec->params.emplace_back(key, item.substr(eq + 1));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry registry;
  return registry;
}

void TopologyRegistry::add(TopologyFamily family) {
  for (TopologyFamily& existing : families_) {
    if (existing.name == family.name) {
      existing = std::move(family);
      return;
    }
  }
  families_.push_back(std::move(family));
}

const TopologyFamily* TopologyRegistry::find(const std::string& name) const {
  for (const TopologyFamily& family : families_) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

std::vector<std::string> TopologyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const TopologyFamily& family : families_) out.push_back(family.name);
  return out;
}

std::string TopologyRegistry::usage() const {
  std::string out = "registered topology families:\n";
  for (const TopologyFamily& family : families_) {
    out += "  " + family.grammar + "\n      " + family.summary +
           " (default routing: " + family.default_routing + ")\n";
  }
  return out;
}

std::string TopologyRegistry::routing_usage() const {
  std::string out = "valid --routing keys per family:\n";
  for (const TopologyFamily& family : families_) {
    out += "  " + family.name + ": ";
    for (std::size_t i = 0; i < family.routing_keys.size(); ++i) {
      if (i != 0) out += ", ";
      out += family.routing_keys[i];
    }
    out += " (default " + family.default_routing + ")\n";
  }
  return out;
}

std::unique_ptr<Topology> TopologyRegistry::build(const TopoSpec& spec,
                                                  std::string* error) const {
  const TopologyFamily* family = find(spec.family);
  if (family == nullptr) {
    if (error != nullptr) {
      *error = "unknown topology family '" + spec.family + "'\n" + usage();
    }
    return nullptr;
  }
  return family->build(spec, error);
}

}  // namespace smart
