#include "topology/kary_ncube.hpp"

#include <algorithm>
#include <limits>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace smart {

KaryNCube::KaryNCube(unsigned k, unsigned n, bool wraparound)
    : k_(k), n_(n), wraparound_(wraparound) {
  SMART_CHECK_MSG(k >= 2, "k-ary n-cube requires radix k >= 2");
  SMART_CHECK_MSG(n >= 1, "k-ary n-cube requires dimension n >= 1");
  std::uint64_t count = 1;
  stride_.reserve(n);
  for (unsigned d = 0; d < n; ++d) {
    stride_.push_back(count);
    SMART_CHECK_MSG(count <= (1ULL << 32) / k, "k^n exceeds 2^32 nodes");
    count *= k;
  }
  nodes_ = static_cast<std::size_t>(count);
}

std::string KaryNCube::name() const {
  return std::to_string(k_) + "-ary " + std::to_string(n_) +
         (wraparound_ ? "-cube" : "-mesh");
}

unsigned KaryNCube::coord(SwitchId s, unsigned d) const {
  SMART_DCHECK(d < n_);
  return static_cast<unsigned>((s / stride_[d]) % k_);
}

SwitchId KaryNCube::switch_at(const std::vector<unsigned>& coords) const {
  SMART_CHECK(coords.size() == n_);
  std::uint64_t s = 0;
  for (unsigned d = 0; d < n_; ++d) {
    SMART_CHECK(coords[d] < k_);
    s += coords[d] * stride_[d];
  }
  return static_cast<SwitchId>(s);
}

SwitchId KaryNCube::neighbor(SwitchId s, unsigned d, bool plus) const {
  SMART_DCHECK(d < n_);
  const unsigned c = coord(s, d);
  const unsigned nc = plus ? (c + 1) % k_ : (c + k_ - 1) % k_;
  const std::uint64_t base = s - c * stride_[d];
  return static_cast<SwitchId>(base + nc * stride_[d]);
}

PortPeer KaryNCube::port_peer(SwitchId s, PortId p) const {
  SMART_DCHECK(s < nodes_);
  if (p == local_port()) {
    return PortPeer{PeerKind::kTerminal, s, 0};
  }
  SMART_CHECK(p < 2 * n_);
  const unsigned d = dim_of_port(p);
  const bool plus = is_plus_port(p);
  if (!wraparound_ && crosses_wraparound(s, d, plus)) {
    return PortPeer{PeerKind::kUnconnected, 0, 0};  // mesh boundary
  }
  const SwitchId peer = neighbor(s, d, plus);
  // The peer receives us on its opposite-direction port of the same dim.
  return PortPeer{PeerKind::kSwitch, peer, port_of(d, !plus)};
}

Attachment KaryNCube::terminal_attachment(NodeId node) const {
  SMART_DCHECK(node < nodes_);
  return Attachment{node, local_port()};
}

unsigned KaryNCube::dist_plus(SwitchId src, SwitchId dst, unsigned d) const {
  const unsigned cs = coord(src, d);
  const unsigned cd = coord(dst, d);
  if (!wraparound_) {
    return cd >= cs ? cd - cs : std::numeric_limits<unsigned>::max();
  }
  return (cd + k_ - cs) % k_;
}

unsigned KaryNCube::ring_distance(SwitchId src, SwitchId dst, unsigned d) const {
  const unsigned cs = coord(src, d);
  const unsigned cd = coord(dst, d);
  if (!wraparound_) return cd >= cs ? cd - cs : cs - cd;
  const unsigned forward = (cd + k_ - cs) % k_;
  return std::min(forward, k_ - forward);
}

unsigned KaryNCube::min_hops(NodeId src, NodeId dst) const {
  unsigned hops = 0;
  for (unsigned d = 0; d < n_; ++d) hops += ring_distance(src, dst, d);
  return hops;
}

unsigned KaryNCube::diameter() const {
  return wraparound_ ? n_ * (k_ / 2) : n_ * (k_ - 1);
}

std::size_t KaryNCube::bisection_channels() const {
  // Cutting the highest dimension into two arcs severs every one of the
  // k^(n-1) rings at exactly two points (one point for the open lines of a
  // mesh); one unidirectional channel crosses at each point per direction.
  const std::size_t cuts_per_line = wraparound_ ? 2 : 1;
  return cuts_per_line * static_cast<std::size_t>(ipow(k_, n_ - 1));
}

bool KaryNCube::crosses_wraparound(SwitchId s, unsigned d, bool plus) const {
  // On a mesh this marks the boundary ports, which are unconnected.
  const unsigned c = coord(s, d);
  return plus ? (c == k_ - 1) : (c == 0);
}

bool KaryNCube::direction_minimal(SwitchId s, NodeId dst, unsigned d,
                                  bool plus) const {
  const unsigned cs = coord(s, d);
  const unsigned cd = coord(dst, d);
  if (cs == cd) return false;
  if (!wraparound_) return plus ? cd > cs : cd < cs;
  const unsigned forward = (cd + k_ - cs) % k_;
  const unsigned dist = plus ? forward : k_ - forward;
  return dist <= k_ - dist;
}

bool KaryNCube::dor_direction(SwitchId s, NodeId dst, unsigned d) const {
  const unsigned cs = coord(s, d);
  const unsigned cd = coord(dst, d);
  SMART_DCHECK(cs != cd);
  if (!wraparound_) return cd > cs;
  const unsigned forward = (cd + k_ - cs) % k_;
  return forward <= k_ - forward;  // ties resolve to +
}

double KaryNCube::mean_ring_distance(unsigned k) noexcept {
  if (k % 2 == 0) return static_cast<double>(k) / 4.0;
  return (static_cast<double>(k) * k - 1.0) / (4.0 * k);
}

}  // namespace smart
