// Mixed-radix torus: an n-dimensional torus with a per-dimension radix.
//
// The generalization of the k-ary n-cube the automated torus designer
// (arXiv:1301.6180) produces: node counts that are not perfect powers
// factor into near-equal radices instead, e.g. 2048 = 16 x 16 x 8. The
// binary hypercube is the all-radix-2 special case, and the
// torus-embedded hypercube (SNIPPETS.md Snippet 1) mixes two torus
// dimensions of radix k with hypercube dimensions of radix 2. Like the
// uniform cube this is a *direct* network: every switch is co-located
// with a processing node and has 2 ports per dimension plus a local
// processor interface.
//
// Coordinates and port numbering follow KaryNCube: coordinate c_d of
// switch s is (s / stride_d) mod k_d with stride_d the product of the
// lower radices; port 2d goes in the +1 direction of dimension d, port
// 2d + 1 in the -1 direction; the last port is the local interface. For
// radix-2 dimensions the + and - neighbors coincide; the two ports are
// wired as a symmetric pair (s's + port to t's - port and vice versa),
// giving the hypercube two parallel channels per edge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"
#include "util/check.hpp"

namespace smart {

class MixedRadixTorus final : public Topology {
 public:
  /// Builds a torus with the given per-dimension radices (dimension 0
  /// first). Requires 1..32 dimensions, every radix >= 2, and at most
  /// 2^32 nodes. `label` overrides the generated name() (the synthesis
  /// families stamp their spec string here).
  explicit MixedRadixTorus(std::vector<unsigned> radices,
                           std::string label = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t node_count() const override { return nodes_; }
  [[nodiscard]] std::size_t switch_count() const override { return nodes_; }
  [[nodiscard]] std::size_t ports_per_switch() const override {
    return 2 * dims() + 1;  // 2 network ports per dimension + local
  }
  [[nodiscard]] PortPeer port_peer(SwitchId s, PortId p) const override;
  [[nodiscard]] Attachment terminal_attachment(NodeId node) const override;
  [[nodiscard]] unsigned min_hops(NodeId src, NodeId dst) const override;
  [[nodiscard]] unsigned diameter() const override;
  /// Exact analytic mean (the O(N^2) default is unusable at 64K nodes).
  [[nodiscard]] double average_distance() const override;
  [[nodiscard]] std::size_t bisection_channels() const override;
  [[nodiscard]] bool is_direct() const override { return true; }
  /// min(1, 4·bisection/N): high-dimensional tori are injection-limited
  /// (the processor interface carries one flit per cycle), not
  /// bisection-limited, so the paper's 4·B/N formula is capped.
  [[nodiscard]] double uniform_capacity_flits_per_node_cycle() const override;

  [[nodiscard]] const std::vector<unsigned>& radices() const noexcept {
    return radices_;
  }
  [[nodiscard]] unsigned dims() const noexcept {
    return static_cast<unsigned>(radices_.size());
  }
  [[nodiscard]] unsigned radix(unsigned d) const {
    SMART_DCHECK(d < radices_.size());
    return radices_[d];
  }

  /// Index of the local processor-interface port.
  [[nodiscard]] PortId local_port() const noexcept { return 2 * dims(); }

  /// Coordinate of switch s in dimension d.
  [[nodiscard]] unsigned coord(SwitchId s, unsigned d) const;

  /// Switch at the given coordinates (dimension 0 first).
  [[nodiscard]] SwitchId switch_at(const std::vector<unsigned>& coords) const;

  /// Neighbor of s one step along dimension d (+1 or -1, with wrap).
  [[nodiscard]] SwitchId neighbor(SwitchId s, unsigned d, bool plus) const;

  /// Network port for direction (d, +/-) — same convention as KaryNCube.
  [[nodiscard]] static constexpr PortId port_of(unsigned d,
                                                bool plus) noexcept {
    return 2 * d + (plus ? 0U : 1U);
  }
  [[nodiscard]] static constexpr unsigned dim_of_port(PortId p) noexcept {
    return p / 2;
  }
  [[nodiscard]] static constexpr bool is_plus_port(PortId p) noexcept {
    return (p % 2) == 0;
  }

  /// Minimal ring distance along dimension d.
  [[nodiscard]] unsigned ring_distance(SwitchId src, SwitchId dst,
                                       unsigned d) const;

  /// True iff stepping from s along (d, +/-) crosses the wrap-around link
  /// (the dateline of the DOR virtual networks).
  [[nodiscard]] bool crosses_wraparound(SwitchId s, unsigned d,
                                        bool plus) const;

  /// True when stepping along (d, +/-) lies on a minimal path — the ring
  /// distance in d shrinks (both directions qualify on a distance tie,
  /// e.g. every radix-2 dimension). Same convention as KaryNCube.
  [[nodiscard]] bool direction_minimal(SwitchId s, NodeId dst, unsigned d,
                                       bool plus) const;

  /// The unique dimension-order direction along d (ties resolve to +);
  /// requires the coordinates to differ in dimension d.
  [[nodiscard]] bool dor_direction(SwitchId s, NodeId dst, unsigned d) const;

 private:
  std::vector<unsigned> radices_;
  std::string label_;
  std::size_t nodes_ = 0;
  std::vector<std::uint64_t> stride_;  ///< product of lower radices
};

}  // namespace smart
