#include "topology/two_level_fattree.hpp"

#include "util/check.hpp"

namespace smart {

TwoLevelFatTree::TwoLevelFatTree(std::size_t leaves, std::size_t spines,
                                 unsigned terminals_per_leaf, unsigned rails,
                                 std::string label)
    : leaves_(leaves),
      spines_(spines),
      terminals_(terminals_per_leaf),
      rails_(rails),
      label_(std::move(label)) {
  SMART_CHECK_MSG(leaves_ >= 1 && spines_ >= 1,
                  "two-level fat-tree requires >= 1 leaf and >= 1 spine");
  SMART_CHECK_MSG(terminals_ >= 1 && rails_ >= 1,
                  "two-level fat-tree requires >= 1 terminal port and rail");
  const std::size_t leaf_ports = terminals_ + spines_ * rails_;
  const std::size_t spine_ports = leaves_ * rails_;
  SMART_CHECK_MSG(leaf_ports <= 65535 && spine_ports <= 65535,
                  "two-level fat-tree switch radix exceeds 65535 ports");
  SMART_CHECK_MSG(leaves_ <= (1ULL << 32) / terminals_,
                  "two-level fat-tree exceeds 2^32 nodes");
  max_ports_ = leaf_ports > spine_ports ? leaf_ports : spine_ports;
}

std::string TwoLevelFatTree::name() const {
  if (!label_.empty()) return label_;
  return "fattree2(L=" + std::to_string(leaves_) +
         ",S=" + std::to_string(spines_) + ",n=" + std::to_string(terminals_) +
         ",c=" + std::to_string(rails_) + ")";
}

PortPeer TwoLevelFatTree::port_peer(SwitchId s, PortId p) const {
  SMART_DCHECK(s < switch_count());
  if (is_spine(s)) {
    const std::size_t spine = s - leaves_;
    if (p >= leaves_ * rails_) return PortPeer{PeerKind::kUnconnected, 0, 0};
    const auto leaf = static_cast<SwitchId>(p / rails_);
    const unsigned rail = static_cast<unsigned>(p % rails_);
    return PortPeer{PeerKind::kSwitch, leaf,
                    static_cast<PortId>(terminals_ + spine * rails_ + rail)};
  }
  if (p < terminals_) {
    return PortPeer{PeerKind::kTerminal,
                    static_cast<NodeId>(s * terminals_ + p), 0};
  }
  const std::size_t up = p - terminals_;
  if (up >= spines_ * rails_) return PortPeer{PeerKind::kUnconnected, 0, 0};
  const auto spine = static_cast<SwitchId>(leaves_ + up / rails_);
  const unsigned rail = static_cast<unsigned>(up % rails_);
  return PortPeer{PeerKind::kSwitch, spine, down_port(s, rail)};
}

Attachment TwoLevelFatTree::terminal_attachment(NodeId node) const {
  SMART_DCHECK(node < node_count());
  return Attachment{leaf_of(node), terminal_port(node)};
}

unsigned TwoLevelFatTree::min_hops(NodeId src, NodeId dst) const {
  if (src == dst) return 0;
  // Terminal links are network links on the indirect fabric: 2 hops
  // within a leaf (up to the leaf, down to the peer terminal), 4 hops
  // across (leaf, spine, leaf, terminal).
  return leaf_of(src) == leaf_of(dst) ? 2 : 4;
}

unsigned TwoLevelFatTree::diameter() const { return leaves_ > 1 ? 4 : 2; }

double TwoLevelFatTree::average_distance() const {
  // Per source: n-1 same-leaf destinations at 2 hops, n*(L-1) cross-leaf
  // destinations at 4.
  const auto nodes = static_cast<double>(node_count());
  const auto n = static_cast<double>(terminals_);
  const auto l = static_cast<double>(leaves_);
  return (2.0 * (n - 1.0) + 4.0 * n * (l - 1.0)) / (nodes - 1.0);
}

std::size_t TwoLevelFatTree::bisection_channels() const {
  // Splitting the leaves in half cuts half of every spine's down links;
  // exact for even L, the floor approximates odd L.
  return spines_ * rails_ * (leaves_ / 2);
}

double TwoLevelFatTree::uniform_capacity_flits_per_node_cycle() const {
  if (leaves_ <= 1) return 1.0;
  const double up = static_cast<double>(spines_ * rails_) /
                    static_cast<double>(terminals_);
  return up < 1.0 ? up : 1.0;
}

}  // namespace smart
